#pragma once
// Shared sweep machinery for Figs. 4, 5, 6 and 8: for every case and
// processor count, evaluate both remapping policies (after vs before
// subdivision) on real marking/partitioning data and convert the per-rank
// counters into SP2-model times.

#include <vector>

#include "common.hpp"
#include "partition/multilevel.hpp"
#include "remap/mapping.hpp"
#include "remap/volume.hpp"
#include "sim/machine.hpp"
#include "util/stats.hpp"

namespace plum::bench {

/// One (case, P) evaluation of both policies.
struct SweepPoint {
  Rank nprocs = 0;
  int mark_rounds = 0;
  Index dual_vertices = 0;
  int partition_levels = 1;

  // Subdivision work (children created) per rank under the old (remap
  // after) and the new (remap before) distribution.
  std::vector<Index> work_after;
  std::vector<Index> work_before;
  std::vector<Index> elems_after;   ///< local element counts (marking cost)
  std::vector<Index> elems_before;

  remap::RemapVolume vol_after;   ///< moving post-subdivision trees
  remap::RemapVolume vol_before;  ///< moving pre-subdivision trees

  // Solver-load extremes for Fig. 8.
  Weight wmax_unbalanced = 0;  ///< predicted wcomp max on old partition
  Weight wmax_balanced = 0;    ///< ... on the remapped new partition
  Weight wtotal = 0;
};

/// Case-level data computed once (marking is P-independent).
struct CaseData {
  const char* name;
  double growth = 0;  ///< the case's G
  adapt::PredictedWeights predicted;
  mesh::RootWeights current;
  std::vector<SweepPoint> points;  ///< one per kProcCounts entry
};

inline std::vector<Weight> rank_sums(const partition::PartVec& part,
                                     const std::vector<Weight>& w, Rank P) {
  std::vector<Weight> out(static_cast<std::size_t>(P), 0);
  for (std::size_t v = 0; v < part.size(); ++v) {
    out[static_cast<std::size_t>(part[v])] += w[v];
  }
  return out;
}

inline std::vector<Index> to_index(const std::vector<Weight>& w) {
  std::vector<Index> out(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    out[i] = static_cast<Index>(w[i]);
  }
  return out;
}

/// Runs the full sweep for one marking fraction.
inline CaseData evaluate_case(const Workload& base, const PaperCase& c) {
  CaseData out;
  out.name = c.name;

  mesh::TetMesh mesh = base.mesh;  // marking is non-destructive, but keep
                                   // per-case state isolated anyway
  adapt::MeshAdaptor adaptor(&mesh);
  const auto& marks =
      adaptor.mark(adapt::mark_top_fraction(mesh, base.err, c.fraction));
  out.predicted = adaptor.predicted_weights();
  out.current = mesh.root_weights();
  out.growth = static_cast<double>(vec_sum(out.predicted.wcomp)) /
               static_cast<double>(vec_sum(out.current.wcomp));

  // Per-root subdivision work = tree growth.
  std::vector<Weight> growth_w(out.current.wremap.size());
  for (std::size_t v = 0; v < growth_w.size(); ++v) {
    growth_w[v] = out.predicted.wremap[v] - out.current.wremap[v];
  }

  auto dual = mesh.build_initial_dual();

  for (Rank P : kProcCounts) {
    SweepPoint pt;
    pt.nprocs = P;
    pt.mark_rounds = marks.propagation_rounds;
    pt.dual_vertices = dual.num_vertices();

    // Old partitioning: balanced for the pre-adaption mesh.
    partition::MultilevelOptions popt;
    popt.nparts = P;
    dual.set_weights(out.current.wcomp, out.current.wremap);
    const auto old_res = partition::partition(dual, popt);
    pt.partition_levels = static_cast<int>(old_res.levels.size());

    // New partitioning on predicted weights (warm start) + greedy mapper.
    dual.set_weights(out.predicted.wcomp, out.predicted.wremap);
    const auto new_res = partition::repartition(dual, old_res.part, popt);
    const auto S_before = remap::SimilarityMatrix::build(
        old_res.part, new_res.part, out.current.wremap, P, P);
    const auto S_after = remap::SimilarityMatrix::build(
        old_res.part, new_res.part, out.predicted.wremap, P, P);
    const auto assign = remap::map_heuristic_greedy(S_before);
    pt.vol_before = remap::evaluate_assignment(S_before, assign);
    pt.vol_after = remap::evaluate_assignment(S_after, assign);

    // Compose partition -> processor.
    partition::PartVec new_proc(new_res.part.size());
    for (std::size_t v = 0; v < new_proc.size(); ++v) {
      new_proc[v] = assign.part_to_proc[static_cast<std::size_t>(
          new_res.part[v])];
    }

    pt.work_after = to_index(rank_sums(old_res.part, growth_w, P));
    pt.work_before = to_index(rank_sums(new_proc, growth_w, P));
    pt.elems_after = to_index(rank_sums(old_res.part, out.current.wcomp, P));
    pt.elems_before = to_index(rank_sums(new_proc, out.current.wcomp, P));

    pt.wmax_unbalanced = vec_max(rank_sums(old_res.part, out.predicted.wcomp, P));
    pt.wmax_balanced = vec_max(rank_sums(new_proc, out.predicted.wcomp, P));
    pt.wtotal = vec_sum(out.predicted.wcomp);

    out.points.push_back(std::move(pt));
  }
  return out;
}

/// Serial (P = 1) adaption time baseline for speedups.
inline double serial_adaption_seconds(const sim::CostModel& cm,
                                      const CaseData& cd) {
  const Weight total_work =
      vec_sum(cd.predicted.wremap) - vec_sum(cd.current.wremap);
  const Weight total_elems = vec_sum(cd.current.wcomp);
  return cm.adaption_seconds({static_cast<Index>(total_work)},
                             {static_cast<Index>(total_elems)},
                             /*mark_rounds=*/1);
}

}  // namespace plum::bench
