// Reproduces Fig. 4: speedup of the parallel mesh adaptor for the three
// marking strategies, with data remapped either *after* or *before* mesh
// refinement. Remap-before balances the subdivision work, so its speedups
// are far higher — the paper quotes Real_1 improving from 9.3x to 23.9x and
// Real_3-before reaching 52.5x on 64 processors.

#include <iostream>

#include "figures_common.hpp"
#include "io/table.hpp"
#include "json_report.hpp"

int main() {
  using namespace plum;
  const auto w = bench::make_workload();
  const sim::CostModel cm;

  io::Table table({"case", "P", "speedup_after", "speedup_before"});
  bench::JsonReport report("bench_fig4");
  for (const auto& c : bench::kRealCases) {
    const auto cd = bench::evaluate_case(w, c);
    const double t1 = bench::serial_adaption_seconds(cm, cd);
    for (const auto& pt : cd.points) {
      const double t_after =
          cm.adaption_seconds(pt.work_after, pt.elems_after, pt.mark_rounds);
      const double t_before = cm.adaption_seconds(pt.work_before,
                                                  pt.elems_before,
                                                  pt.mark_rounds);
      table.add_row({cd.name, io::Table::fmt(std::int64_t{pt.nprocs}),
                     io::Table::fmt(t1 / t_after, 1),
                     io::Table::fmt(t1 / t_before, 1)});
      report.add_run(cd.name, pt.nprocs)
          .metric("serial_adaption_s", t1)
          .metric("adaption_after_s", t_after)
          .metric("adaption_before_s", t_before)
          .metric("speedup_after", t1 / t_after)
          .metric("speedup_before", t1 / t_before);
    }
  }
  std::cout << "Fig. 4: parallel mesh adaptor speedup, remap after vs "
               "before refinement\n";
  table.print(std::cout);
  std::cout << "\npaper anchors at P=64: Real_1 9.3x -> 23.9x; Real_3 "
               "before-refinement 52.5x\n";
  return report.write().empty() ? 1 : 0;
}
