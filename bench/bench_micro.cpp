// Google-benchmark microbenchmarks for the performance-critical kernels:
// the three reassignment algorithms (dense similarity matrices — the regime
// where the paper's Table 2 ordering heuristic << optimal MWBG << optimal
// BMCM shows), HEM coarsening, k-way refinement, marking propagation and
// subdivision, the full multilevel partitioner, and the BSP engines.
//
// `--threads N` (consumed before google-benchmark's own flags) selects the
// engine for the BSP benchmarks: 1 = sequential reference Engine, 0 = one
// worker per core, N > 1 = ParallelEngine with N workers. The modeled
// ledger counters reported by those benchmarks are engine-invariant — only
// wall-clock changes with N, which is how the speedup is measured:
//
//   ./bench_micro --threads 1 --benchmark_filter='Bsp|ParallelSolver'
//   ./bench_micro --threads 8 --benchmark_filter='Bsp|ParallelSolver'

#include <benchmark/benchmark.h>

#include <cstring>

#include "adapt/adaptor.hpp"
#include "json_report.hpp"
#include "obs/memory.hpp"
#include "obs/scope.hpp"
#include "graph/dual.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/hem.hpp"
#include "partition/multilevel.hpp"
#include "partition/refine_kway.hpp"
#include "pmesh/dist_mesh.hpp"
#include "pmesh/migrate.hpp"
#include "pmesh/parallel_solver.hpp"
#include "remap/mapping.hpp"
#include "runtime/engine.hpp"
#include "solver/init_conditions.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace plum;

int g_threads = 1;  // set by --threads in main()

remap::SimilarityMatrix dense_matrix(Rank P, std::uint64_t seed) {
  Rng rng(seed);
  remap::SimilarityMatrix S(P, P);
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < P; ++j) {
      S.at(i, j) = static_cast<Weight>(rng.below(2000));
    }
  }
  return S;
}

void BM_MapperGreedy(benchmark::State& state) {
  const auto S = dense_matrix(static_cast<Rank>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap::map_heuristic_greedy(S));
  }
}
BENCHMARK(BM_MapperGreedy)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MapperOptimalMwbg(benchmark::State& state) {
  const auto S = dense_matrix(static_cast<Rank>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap::map_optimal_mwbg(S));
  }
}
BENCHMARK(BM_MapperOptimalMwbg)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MapperOptimalBmcm(benchmark::State& state) {
  const auto S = dense_matrix(static_cast<Rank>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap::map_optimal_bmcm(S));
  }
}
BENCHMARK(BM_MapperOptimalBmcm)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_HemCoarsen(benchmark::State& state) {
  const auto mesh =
      mesh::make_box_mesh(mesh::small_box(static_cast<int>(state.range(0))));
  const auto dual = mesh.build_initial_dual();
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(partition::coarsen_hem(dual, rng));
  }
  state.SetItemsProcessed(state.iterations() * dual.num_vertices());
}
BENCHMARK(BM_HemCoarsen)->Arg(6)->Arg(10)->Arg(14);

void BM_MultilevelPartition(benchmark::State& state) {
  const auto mesh = mesh::make_box_mesh(mesh::small_box(10));
  const auto dual = mesh.build_initial_dual();
  partition::MultilevelOptions opt;
  opt.nparts = static_cast<Rank>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition(dual, opt));
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(4)->Arg(16)->Arg(64);

void BM_KwayRefine(benchmark::State& state) {
  const auto mesh = mesh::make_box_mesh(mesh::small_box(10));
  const auto dual = mesh.build_initial_dual();
  partition::MultilevelOptions opt;
  opt.nparts = 16;
  const auto base = partition::partition(dual, opt);
  partition::RefineOptions ropt;
  for (auto _ : state) {
    auto part = base.part;
    Rng rng(3);
    benchmark::DoNotOptimize(
        partition::refine_kway(dual, part, 16, ropt, rng));
  }
}
BENCHMARK(BM_KwayRefine);

void BM_MarkPropagation(benchmark::State& state) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(10));
  Rng rng(5);
  std::vector<char> seeds(static_cast<std::size_t>(mesh.num_edges()), 0);
  for (auto& s : seeds) s = rng.uniform() < 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapt::propagate_marks(mesh, seeds));
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_active_elements());
}
BENCHMARK(BM_MarkPropagation);

// Compute-bound BSP workload: each rank relaxes a private field of doubles
// and exchanges halo values with its ring neighbours every superstep. This
// is the pure-engine scaling probe — per-rank work is identical, so the
// wall-clock ratio between --threads 1 and --threads N is the engine
// speedup. The ledger counters are engine-invariant by the determinism
// contract and are exported so a smoke run can assert they stayed put.
void BM_BspStencilSweep(benchmark::State& state) {
  const Rank P = static_cast<Rank>(state.range(0));
  constexpr int kField = 1 << 14;   // doubles per rank
  constexpr int kSweeps = 4;        // relaxation passes per superstep
  constexpr int kSupersteps = 8;

  auto eng = rt::make_engine(P, g_threads);
  std::vector<std::vector<double>> field(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    auto& f = field[static_cast<std::size_t>(r)];
    f.resize(kField);
    for (int i = 0; i < kField; ++i) f[i] = r + 0.25 * i;
  }

  for (auto _ : state) {
    eng->run([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
      auto& f = field[static_cast<std::size_t>(r)];
      for (const auto& m : in.messages()) {
        f.front() = 0.5 * (f.front() + rt::unpack<double>(m)[0]);
      }
      for (int s = 0; s < kSweeps; ++s) {
        for (int i = 1; i + 1 < kField; ++i) {
          f[i] = 0.25 * f[i - 1] + 0.5 * f[i] + 0.25 * f[i + 1];
        }
      }
      out.charge(kField * kSweeps);
      if (out.step() + 1 >= kSupersteps) return false;
      out.send_vec<double>((r + 1) % P, 0, {f.back()});
      return true;
    });
    benchmark::DoNotOptimize(field);
  }

  const auto& led = eng->ledger();
  state.counters["threads"] = g_threads;
  state.counters["ledger_bytes_per_run"] =
      static_cast<double>(led.total_bytes()) /
      static_cast<double>(state.iterations());
  state.counters["ledger_max_compute"] =
      static_cast<double>(led.max_rank_compute()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BspStencilSweep)->Arg(16)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The real workload: the parallel Euler solver sweeping a distributed box
// mesh. Residual exchange and CFL reduction go through the engine; fluxes
// are the per-rank compute. Modeled SP2 traffic (ledger) is identical for
// every --threads value.
void BM_ParallelSolverSweep(benchmark::State& state) {
  const Rank P = static_cast<Rank>(state.range(0));
  auto global = mesh::make_box_mesh(mesh::small_box(10));
  const auto dual = global.build_initial_dual();
  partition::MultilevelOptions popt;
  popt.nparts = P;
  const auto part = partition::partition(dual, popt).part;
  pmesh::DistMesh dm(global, part, P);

  auto eng = rt::make_engine(P, g_threads);
  pmesh::ParallelEulerSolver solver(&dm, eng.get());
  solver::BlastSpec blast;
  blast.radius = 0.2;
  for (Rank r = 0; r < P; ++r) {
    solver::init_blast(dm.local(r).mesh, solver.solution(r), blast);
  }

  for (auto _ : state) {
    solver.run(2);
  }

  const auto& led = eng->ledger();
  state.counters["threads"] = g_threads;
  state.counters["ledger_bytes"] = static_cast<double>(led.total_bytes());
  state.counters["supersteps"] = led.num_supersteps();
}
BENCHMARK(BM_ParallelSolverSweep)->Arg(16)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The flight recorder is always on in DistFramework, so its per-event cost
// is a budget item: one ring-slot write per rank per superstep must stay in
// the tens of nanoseconds for "always on" to be defensible. Rotating the
// rank spreads writes across the per-rank rings like the engines do.
void BM_ScopeRecorderEvent(benchmark::State& state) {
  const Rank P = static_cast<Rank>(state.range(0));
  obs::FlightRecorder rec(P);
  auto handles = rec.handles();
  std::int64_t step = 0;
  for (auto _ : state) {
    const auto r = static_cast<std::size_t>(step % P);
    handles[r].record_event(static_cast<int>(step), /*ticks=*/step);
    ++step;
  }
  benchmark::DoNotOptimize(rec.events_recorded(0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopeRecorderEvent)->Arg(16);

// Deterministic companion report for the plum-diff gate: a fixed recording
// workload whose ring-accounting counters (events recorded, survivors,
// overwrites) are pure functions of the capacity and event count, plus the
// measured per-event overhead as a wall-named (report-only) metric. Written
// on every bench_micro invocation, whatever --benchmark_filter selected.
std::string write_scope_report() {
  constexpr Rank kRanks = 16;
  constexpr int kCapacity = 256;
  constexpr std::int64_t kEventsPerRank = 1000;  // > capacity: ring wraps

  obs::FlightRecorder rec(kRanks, kCapacity);
  auto handles = rec.handles();
  const Timer timer;
  for (std::int64_t e = 0; e < kEventsPerRank; ++e) {
    for (Rank r = 0; r < kRanks; ++r) {
      handles[static_cast<std::size_t>(r)].record_event(
          static_cast<int>(e), /*ticks=*/e);
    }
  }
  const double total_s = timer.seconds();
  const auto total_events = kEventsPerRank * kRanks;

  std::int64_t recorded = 0, surviving = 0;
  for (Rank r = 0; r < kRanks; ++r) {
    recorded += static_cast<std::int64_t>(rec.events_recorded(r));
    surviving += static_cast<std::int64_t>(rec.last_events(r).size());
  }

  bench::JsonReport report("bench_micro_scope");
  report.add_run("ring16", kRanks)
      .metric_int("events_recorded", recorded)
      .metric_int("events_surviving", surviving)
      .metric_int("events_overwritten", recorded - surviving)
      .metric_int("ring_capacity", rec.capacity())
      // Wall-named => plum-diff reports it without gating: per-event
      // recording overhead in nanoseconds.
      .metric("scope_event_wall_ns",
              total_s * 1e9 / static_cast<double>(total_events));
  return report.write();
}

// Arena bump allocation against the operator-new path the scratch
// conversion replaced. The bump must stay single-digit nanoseconds for
// "arena-back the hot phases" to be free in steady state (reset() rewinds,
// so after the first iteration no chunk is ever requested again).
void BM_ArenaAllocate(benchmark::State& state) {
  obs::Arena arena;
  constexpr int kAllocs = 1024;
  for (auto _ : state) {
    arena.reset();
    for (int i = 0; i < kAllocs; ++i) {
      benchmark::DoNotOptimize(arena.allocate(64, 8));
    }
  }
  state.SetItemsProcessed(state.iterations() * kAllocs);
}
BENCHMARK(BM_ArenaAllocate);

void BM_ArenaHeapBaseline(benchmark::State& state) {
  constexpr int kAllocs = 1024;
  std::vector<void*> ptrs(kAllocs);
  for (auto _ : state) {
    for (int i = 0; i < kAllocs; ++i) {
      ptrs[static_cast<std::size_t>(i)] = ::operator new(64);
      benchmark::DoNotOptimize(ptrs[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < kAllocs; ++i) {
      ::operator delete(ptrs[static_cast<std::size_t>(i)]);
    }
  }
  state.SetItemsProcessed(state.iterations() * kAllocs);
}
BENCHMARK(BM_ArenaHeapBaseline);

// TrackedVec growth through the counting allocator: Arg(1) arena-backed,
// Arg(0) plain heap (tap still counting). The delta between the two is the
// arena's win; the delta against a raw std::vector is the tap's cost.
void BM_ArenaTrackedVecGrow(benchmark::State& state) {
  const bool use_arena = state.range(0) != 0;
  obs::MemoryTracker mem(1);
  constexpr int kElems = 4096;
  for (auto _ : state) {
    mem.reset_arenas();
    obs::MemScratch s = mem.scratch(0);
    if (!use_arena) s.arena = nullptr;
    obs::TrackedVec<std::int64_t> v{obs::TrackingAllocator<std::int64_t>{s}};
    for (int i = 0; i < kElems; ++i) v.push_back(i);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kElems);
}
BENCHMARK(BM_ArenaTrackedVecGrow)->Arg(0)->Arg(1);

// Deterministic allocation-churn report for the plum-diff gate: fixed
// workloads for the three converted hot phases (HEM matching, KL-FM
// refinement, remap pack staging) run under a MemoryTracker. The
// alloc/byte counts are pure functions of the inputs — committed as
// bench/baselines/BENCH_bench_micro_mem.json, so a drift means the scratch
// structures changed shape and the baseline must be regenerated
// deliberately. The measured arena overhead rides along as a wall-named
// (report-only) metric. Written on every invocation, like the scope report.
std::string write_mem_report() {
  constexpr Rank kRanks = 16;
  obs::MemoryTracker mem(kRanks);

  struct Churn {
    std::int64_t allocs = 0;
    std::int64_t bytes = 0;
  };
  const auto phase_churn = [&mem](const std::string& name) {
    Churn c;
    const auto& names = mem.phase_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] != name) continue;
      for (int row = 0; row <= kRanks; ++row) {
        const auto s = mem.stats(row, static_cast<std::int32_t>(i));
        c.allocs += s.allocs;
        c.bytes += s.bytes_requested;
      }
    }
    return c;
  };

  // HEM matching on the fixed box-8 dual (host row: serial phase).
  const auto mesh8 = mesh::make_box_mesh(mesh::small_box(8));
  const auto dual8 = mesh8.build_initial_dual();
  mem.set_phase("hem_match");
  {
    Rng rng(7);
    benchmark::DoNotOptimize(
        partition::coarsen_hem(dual8, rng, mem.host_scratch()));
  }

  // KL-FM refinement of a multilevel 16-way split of the box-10 dual.
  const auto mesh10 = mesh::make_box_mesh(mesh::small_box(10));
  const auto dual10 = mesh10.build_initial_dual();
  partition::MultilevelOptions popt;
  popt.nparts = kRanks;
  auto part = partition::partition(dual10, popt).part;
  mem.set_phase("klfm_refine");
  {
    Rng rng(3);
    partition::RefineOptions ropt;
    benchmark::DoNotOptimize(
        partition::refine_kway(dual10, part, kRanks, ropt, rng,
                               mem.host_scratch()));
  }

  // Remap pack staging: rotate every root one rank forward and migrate.
  // The measuring pass lands on the host row, the per-destination staging
  // on each rank's row — all attributed to this phase.
  auto global = mesh::make_box_mesh(mesh::small_box(8));
  const auto gdual = global.build_initial_dual();
  partition::MultilevelOptions gpopt;
  gpopt.nparts = kRanks;
  const auto gpart = partition::partition(gdual, gpopt).part;
  pmesh::DistMesh dm(global, gpart, kRanks);
  rt::Engine eng(kRanks);
  partition::PartVec new_part(gpart.size());
  for (std::size_t v = 0; v < gpart.size(); ++v) {
    new_part[v] = (gpart[v] + 1) % kRanks;
  }
  mem.set_phase("remap_pack");
  pmesh::migrate(dm, eng, new_part, nullptr, &mem);
  mem.clear_phase();

  const Churn hem = phase_churn("hem_match");
  const Churn klfm = phase_churn("klfm_refine");
  const Churn remap = phase_churn("remap_pack");

  // Measured bump cost — wall-named so plum-diff reports it without gating.
  double arena_ns = 0;
  {
    obs::Arena arena;
    constexpr int kProbe = 1 << 16;
    const Timer timer;
    for (int i = 0; i < kProbe; ++i) {
      benchmark::DoNotOptimize(arena.allocate(64, 8));
    }
    arena_ns = timer.seconds() * 1e9 / kProbe;
  }

  bench::JsonReport report("bench_micro_mem");
  report.add_run("mem16", kRanks)
      .metric_int("hem_match_allocs", hem.allocs)
      .metric_int("hem_match_bytes", hem.bytes)
      .metric_int("klfm_refine_allocs", klfm.allocs)
      .metric_int("klfm_refine_bytes", klfm.bytes)
      .metric_int("remap_pack_allocs", remap.allocs)
      .metric_int("remap_pack_bytes", remap.bytes)
      // Every scratch container above is destroyed by now, so tracked live
      // bytes must read zero — the invariant the steady-state leak check
      // gates at cycle granularity.
      .metric_int("live_bytes_after", mem.total_live_bytes())
      .metric("arena_alloc_wall_ns", arena_ns);
  return report.write();
}

void BM_Subdivision(benchmark::State& state) {
  // Mesh + marks rebuilt each iteration (refine mutates); time is dominated
  // by refine_mesh itself.
  for (auto _ : state) {
    state.PauseTiming();
    auto mesh = mesh::make_box_mesh(mesh::small_box(8));
    Rng rng(5);
    std::vector<char> seeds(static_cast<std::size_t>(mesh.num_edges()), 0);
    for (auto& s : seeds) s = rng.uniform() < 0.10;
    const auto marks = adapt::propagate_marks(mesh, seeds);
    state.ResumeTiming();
    benchmark::DoNotOptimize(adapt::refine_mesh(mesh, marks));
  }
}
BENCHMARK(BM_Subdivision);

}  // namespace

// Custom main: strip our --threads flag before handing the rest to
// google-benchmark (it rejects flags it does not know).
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = std::atoi(argv[i] + 10);
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Always emit the deterministic scope-recorder and allocation-churn
  // reports (plum-diff gates their counters against bench/baselines/).
  if (write_scope_report().empty()) return 1;
  if (write_mem_report().empty()) return 1;
  return 0;
}
