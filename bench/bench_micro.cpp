// Google-benchmark microbenchmarks for the performance-critical kernels:
// the three reassignment algorithms (dense similarity matrices — the regime
// where the paper's Table 2 ordering heuristic << optimal MWBG << optimal
// BMCM shows), HEM coarsening, k-way refinement, marking propagation and
// subdivision, and the full multilevel partitioner.

#include <benchmark/benchmark.h>

#include "adapt/adaptor.hpp"
#include "graph/dual.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/hem.hpp"
#include "partition/multilevel.hpp"
#include "partition/refine_kway.hpp"
#include "remap/mapping.hpp"
#include "util/rng.hpp"

namespace {

using namespace plum;

remap::SimilarityMatrix dense_matrix(Rank P, std::uint64_t seed) {
  Rng rng(seed);
  remap::SimilarityMatrix S(P, P);
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < P; ++j) {
      S.at(i, j) = static_cast<Weight>(rng.below(2000));
    }
  }
  return S;
}

void BM_MapperGreedy(benchmark::State& state) {
  const auto S = dense_matrix(static_cast<Rank>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap::map_heuristic_greedy(S));
  }
}
BENCHMARK(BM_MapperGreedy)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MapperOptimalMwbg(benchmark::State& state) {
  const auto S = dense_matrix(static_cast<Rank>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap::map_optimal_mwbg(S));
  }
}
BENCHMARK(BM_MapperOptimalMwbg)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MapperOptimalBmcm(benchmark::State& state) {
  const auto S = dense_matrix(static_cast<Rank>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap::map_optimal_bmcm(S));
  }
}
BENCHMARK(BM_MapperOptimalBmcm)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_HemCoarsen(benchmark::State& state) {
  const auto mesh =
      mesh::make_box_mesh(mesh::small_box(static_cast<int>(state.range(0))));
  const auto dual = mesh.build_initial_dual();
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(partition::coarsen_hem(dual, rng));
  }
  state.SetItemsProcessed(state.iterations() * dual.num_vertices());
}
BENCHMARK(BM_HemCoarsen)->Arg(6)->Arg(10)->Arg(14);

void BM_MultilevelPartition(benchmark::State& state) {
  const auto mesh = mesh::make_box_mesh(mesh::small_box(10));
  const auto dual = mesh.build_initial_dual();
  partition::MultilevelOptions opt;
  opt.nparts = static_cast<Rank>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition(dual, opt));
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(4)->Arg(16)->Arg(64);

void BM_KwayRefine(benchmark::State& state) {
  const auto mesh = mesh::make_box_mesh(mesh::small_box(10));
  const auto dual = mesh.build_initial_dual();
  partition::MultilevelOptions opt;
  opt.nparts = 16;
  const auto base = partition::partition(dual, opt);
  partition::RefineOptions ropt;
  for (auto _ : state) {
    auto part = base.part;
    Rng rng(3);
    benchmark::DoNotOptimize(
        partition::refine_kway(dual, part, 16, ropt, rng));
  }
}
BENCHMARK(BM_KwayRefine);

void BM_MarkPropagation(benchmark::State& state) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(10));
  Rng rng(5);
  std::vector<char> seeds(static_cast<std::size_t>(mesh.num_edges()), 0);
  for (auto& s : seeds) s = rng.uniform() < 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapt::propagate_marks(mesh, seeds));
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_active_elements());
}
BENCHMARK(BM_MarkPropagation);

void BM_Subdivision(benchmark::State& state) {
  // Mesh + marks rebuilt each iteration (refine mutates); time is dominated
  // by refine_mesh itself.
  for (auto _ : state) {
    state.PauseTiming();
    auto mesh = mesh::make_box_mesh(mesh::small_box(8));
    Rng rng(5);
    std::vector<char> seeds(static_cast<std::size_t>(mesh.num_edges()), 0);
    for (auto& s : seeds) s = rng.uniform() < 0.10;
    const auto marks = adapt::propagate_marks(mesh, seeds);
    state.ResumeTiming();
    benchmark::DoNotOptimize(adapt::refine_mesh(mesh, marks));
  }
}
BENCHMARK(BM_Subdivision);

}  // namespace

BENCHMARK_MAIN();
