#pragma once
// Machine-readable bench output (schema "plum-bench/2").
//
// Every figure/table bench builds a JsonReport alongside its io::Table and
// writes BENCH_<name>.json so CI (and downstream plotting) can consume the
// numbers without scraping stdout:
//
//   {
//     "schema": "plum-bench/2",
//     "bench":  "bench_fig4",
//     "runs": [
//       { "case": "Real_1", "P": 8,
//         "metrics": { "speedup_before": 12.4,
//                      "imbalance": [1.3, 1.05, ...], ... },
//         "phases":  [ { "name": "solve", "wall_s": ..., "modeled_s": ...,
//                        "supersteps": ..., ... }, ... ],
//         "comm_matrix": { "nranks": 8, "msgs": [[...]], "bytes": [[...]] },
//         "gate_audit":  [ { "cycle": 0, "accepted": true, ... }, ... ] },
//       ...
//     ]
//   }
//
// v2 extends plum-bench/1 with gauge series and fixed-bound histogram
// objects under "metrics", the per-run "comm_matrix", "gate_audit",
// "critical_path" (the counter-sourced plum-path decomposition), and
// "calibration" (a plum-calibration/1 document, sim/calibration.hpp); all
// are optional per run, so v1-shaped producers keep working.
//
// The output directory defaults to the working directory and is overridden
// by PLUM_BENCH_JSON_DIR. tools/check_bench_json validates the files in CI
// with the same obs::validate_bench_report the unit tests use.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>
#include <utility>

#include "obs/bench_schema.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace plum::bench {

class JsonReport {
 public:
  /// One (case, P) record under "runs".
  class Run {
   public:
    Run(std::string case_name, Rank nprocs)
        : case_(std::move(case_name)), nprocs_(nprocs) {}

    Run& metric(const std::string& name, double value) {
      metrics_.set(name, value);
      return *this;
    }
    Run& metric_int(const std::string& name, std::int64_t value) {
      metrics_.set_int(name, value);
      return *this;
    }

    /// Appends one phase record by hand (benches that model phases without
    /// running the BSP loop).
    Run& phase(const std::string& name, double wall_s, double modeled_s,
               int supersteps = 0) {
      obs::Json p = obs::Json::object();
      p.set("name", obs::Json::str(name))
          .set("wall_s", obs::Json::number(wall_s))
          .set("modeled_s", obs::Json::number(modeled_s))
          .set("supersteps", obs::Json::integer(supersteps));
      phases_.push(std::move(p));
      return *this;
    }

    /// Appends one sample to a gauge series under "metrics".
    Run& gauge(const std::string& name, double value) {
      metrics_.add_sample(name, value);
      return *this;
    }
    Run& gauge_int(const std::string& name, std::int64_t value) {
      metrics_.add_sample_int(name, value);
      return *this;
    }

    /// Copies every scalar and series out of a live registry (e.g. a
    /// Framework's per-cycle gauges) into this run's "metrics".
    Run& metrics_from(const obs::MetricsRegistry& reg) {
      metrics_.merge_from(reg);
      return *this;
    }

    /// Attaches the run's P-by-P comm matrix (from an engine ledger or a
    /// TraceRecorder) as the "comm_matrix" section.
    Run& comm_matrix_from(const rt::CommMatrix& m) {
      comm_matrix_ = obs::comm_matrix_json(m);
      has_comm_matrix_ = true;
      return *this;
    }

    /// Attaches the recorder's gate-audit records as "gate_audit".
    Run& gate_audit_from(const obs::TraceRecorder& rec) {
      gate_audit_ = obs::gate_audit_json(rec.gate_records());
      has_gate_audit_ = true;
      return *this;
    }

    /// Attaches the counter-sourced critical-path decomposition (per-rank
    /// busy/wait, per-phase straggler attribution — deterministic, so it
    /// diffs cleanly across commits) as "critical_path".
    Run& critical_path_from(const obs::TraceRecorder& rec) {
      critical_path_ =
          obs::analyze_critical_path(rec, obs::PathSource::kCounters)
              .to_json();
      has_critical_path_ = true;
      return *this;
    }

    /// Attaches a plum-calibration/1 document (sim::Calibration::to_json())
    /// as the run's "calibration" section.
    Run& calibration(obs::Json doc) {
      calibration_ = std::move(doc);
      has_calibration_ = true;
      return *this;
    }

    /// Copies every closed phase out of a plum-trace recorder.
    Run& phases_from(const obs::TraceRecorder& rec) {
      for (const auto& ph : rec.phases()) {
        obs::Json p = obs::Json::object();
        p.set("name", obs::Json::str(ph.name))
            .set("wall_s", obs::Json::number(ph.wall_s))
            .set("modeled_s", obs::Json::number(ph.modeled_s))
            .set("supersteps", obs::Json::integer(ph.supersteps))
            .set("depth", obs::Json::integer(ph.depth))
            .set("compute_units", obs::Json::integer(ph.compute_units))
            .set("msgs_sent", obs::Json::integer(ph.msgs_sent))
            .set("bytes_sent", obs::Json::integer(ph.bytes_sent));
        phases_.push(std::move(p));
      }
      return *this;
    }

    [[nodiscard]] obs::Json to_json() const {
      obs::Json r = obs::Json::object();
      r.set("case", obs::Json::str(case_))
          .set("P", obs::Json::integer(nprocs_))
          .set("metrics", metrics_.to_json())
          .set("phases", phases_);
      if (has_comm_matrix_) r.set("comm_matrix", comm_matrix_);
      if (has_gate_audit_) r.set("gate_audit", gate_audit_);
      if (has_critical_path_) r.set("critical_path", critical_path_);
      if (has_calibration_) r.set("calibration", calibration_);
      return r;
    }

   private:
    std::string case_;
    Rank nprocs_;
    obs::MetricsRegistry metrics_;
    obs::Json phases_ = obs::Json::array();
    obs::Json comm_matrix_;
    obs::Json gate_audit_;
    obs::Json critical_path_;
    obs::Json calibration_;
    bool has_comm_matrix_ = false;
    bool has_gate_audit_ = false;
    bool has_critical_path_ = false;
    bool has_calibration_ = false;
  };

  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  Run& add_run(const std::string& case_name, Rank nprocs) {
    runs_.emplace_back(case_name, nprocs);
    return runs_.back();
  }

  [[nodiscard]] obs::Json to_json() const {
    obs::Json doc = obs::Json::object();
    doc.set("schema", obs::Json::str("plum-bench/2"))
        .set("bench", obs::Json::str(bench_));
    obs::Json runs = obs::Json::array();
    for (const auto& r : runs_) runs.push(r.to_json());
    doc.set("runs", std::move(runs));
    return doc;
  }

  /// Writes BENCH_<name>.json into $PLUM_BENCH_JSON_DIR (default: cwd).
  /// Self-validates against the schema first; returns the path written, or
  /// "" on validation/IO failure (and says why on stderr).
  std::string write() const {
    const obs::Json doc = to_json();
    const std::string err = obs::validate_bench_report(doc);
    if (!err.empty()) {
      std::fprintf(stderr, "BENCH_%s.json failed self-validation: %s\n",
                   bench_.c_str(), err.c_str());
      return "";
    }
    const char* dir = std::getenv("PLUM_BENCH_JSON_DIR");
    std::string path = (dir && dir[0]) ? std::string(dir) : std::string(".");
    path += "/BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return "";
    }
    out << doc.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      return "";
    }
    return path;
  }

 private:
  std::string bench_;
  std::deque<Run> runs_;  // stable references across add_run calls
};

}  // namespace plum::bench
