// Reproduces Fig. 8: the *actual* impact of load balancing on flow solver
// execution times — the ratio of the bottleneck processor's load without
// any rebalancing to the bottleneck load after repartitioning+remapping,
// measured on the real marking data for the three strategies.
//
// Paper anchors at P = 64: Real_1 3.46x, Real_2 2.03x, Real_3 1.52x; the
// curves follow the same shape as Fig. 7's analytic bound and Real_3
// already attains its maximum.

#include <algorithm>
#include <iostream>

#include "figures_common.hpp"
#include "io/table.hpp"

int main() {
  using namespace plum;
  const auto w = bench::make_workload();

  io::Table table({"case", "G", "P", "improvement", "fig7_bound"});
  for (const auto& c : bench::kRealCases) {
    const auto cd = bench::evaluate_case(w, c);
    for (const auto& pt : cd.points) {
      const double improvement =
          static_cast<double>(pt.wmax_unbalanced) /
          static_cast<double>(std::max<Weight>(pt.wmax_balanced, 1));
      const double bound =
          std::min(8.0, pt.nprocs * (cd.growth - 1.0) + 1.0) / cd.growth;
      table.add_row({cd.name, io::Table::fmt(cd.growth, 3),
                     io::Table::fmt(std::int64_t{pt.nprocs}),
                     io::Table::fmt(improvement, 2),
                     io::Table::fmt(bound, 2)});
    }
  }
  std::cout << "Fig. 8: actual impact of load balancing on solver load "
               "(bottleneck ratio), with the Fig. 7 analytic bound\n";
  table.print(std::cout);
  std::cout << "\npaper anchors at P=64: Real_1 3.46, Real_2 2.03, Real_3 "
               "1.52; actual <= bound everywhere,\nsmaller refinement "
               "regions gain more, curves rise with P\n";
  return 0;
}
