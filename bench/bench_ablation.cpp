// Ablation benches for the design choices DESIGN.md calls out:
//   (a) warm-start (diffusive) repartitioning vs from-scratch — the
//       parallel-MeTiS property the paper highlights because it shrinks the
//       remapping volume;
//   (b) F > 1 partitions per processor (paper §4.3) — finer mapping
//       granularity trades mapper time for movement volume;
//   (c) TotalV vs MaxV cost metrics across mappers.

#include <iostream>

#include "common.hpp"

#include "util/stats.hpp"
#include "io/table.hpp"
#include "partition/multilevel.hpp"
#include "remap/mapping.hpp"
#include "remap/volume.hpp"

int main() {
  using namespace plum;

  auto w = bench::make_workload();
  adapt::MeshAdaptor adaptor(&w.mesh);
  adaptor.mark(adapt::mark_top_fraction(w.mesh, w.err, 0.33));  // Real_2
  const auto predicted = adaptor.predicted_weights();
  const auto current = w.mesh.root_weights();
  auto dual = w.mesh.build_initial_dual();

  // ---- (a) warm start vs scratch -------------------------------------------
  {
    io::Table t({"P", "warm: moved", "warm: cut", "warm: imb",
                 "scratch: moved", "scratch: cut", "scratch: imb"});
    for (Rank P : {8, 16, 32, 64}) {
      partition::MultilevelOptions popt;
      popt.nparts = P;
      dual.set_weights(current.wcomp, current.wremap);
      const auto old_part = partition::partition(dual, popt).part;

      dual.set_weights(predicted.wcomp, predicted.wremap);
      const auto warm = partition::repartition(dual, old_part, popt);
      const auto scratch = partition::partition(dual, popt);

      auto moved_with = [&](const partition::PartVec& np) {
        const auto S = remap::SimilarityMatrix::build(old_part, np,
                                                      current.wremap, P, P);
        const auto a = remap::map_heuristic_greedy(S);
        return remap::evaluate_assignment(S, a).total_elems;
      };
      t.add_row({io::Table::fmt(std::int64_t{P}),
                 io::Table::fmt(std::int64_t{moved_with(warm.part)}),
                 io::Table::fmt(std::int64_t{warm.cut}),
                 io::Table::fmt(warm.imbalance, 3),
                 io::Table::fmt(std::int64_t{moved_with(scratch.part)}),
                 io::Table::fmt(std::int64_t{scratch.cut}),
                 io::Table::fmt(scratch.imbalance, 3)});
    }
    std::cout << "Ablation (a): warm-start vs scratch repartitioning "
                 "(Real_2; moved = greedy-mapped remap volume)\n";
    t.print(std::cout);
    std::cout << '\n';
  }

  // ---- (b) F sweep -----------------------------------------------------------
  {
    constexpr Rank P = 16;
    io::Table t({"F", "parts", "moved", "imbalance", "mapper_ms"});
    for (Rank F : {1, 2, 4, 8}) {
      partition::MultilevelOptions popt;
      popt.nparts = P * F;
      dual.set_weights(current.wcomp, current.wremap);
      const auto old_parts = partition::partition(dual, popt).part;
      // Old processor of a dual vertex: partition j lived on proc j / F.
      partition::PartVec old_proc(old_parts.size());
      for (std::size_t v = 0; v < old_proc.size(); ++v) {
        old_proc[v] = old_parts[v] / F;
      }
      dual.set_weights(predicted.wcomp, predicted.wremap);
      const auto new_parts = partition::partition(dual, popt).part;

      const auto S = remap::SimilarityMatrix::build(
          old_proc, new_parts, current.wremap, P, P * F);
      const auto a = remap::map_heuristic_greedy(S);
      const auto vol = remap::evaluate_assignment(S, a);

      // Achieved processor balance under the F-granular mapping.
      std::vector<Weight> loads(P, 0);
      for (std::size_t v = 0; v < new_parts.size(); ++v) {
        loads[static_cast<std::size_t>(
            a.part_to_proc[static_cast<std::size_t>(new_parts[v])])] +=
            predicted.wcomp[v];
      }
      t.add_row({io::Table::fmt(std::int64_t{F}),
                 io::Table::fmt(std::int64_t{P * F}),
                 io::Table::fmt(std::int64_t{vol.total_elems}),
                 io::Table::fmt(plum::imbalance(loads), 3),
                 io::Table::fmt(a.solve_seconds * 1e3, 3)});
    }
    std::cout << "Ablation (b): partitions per processor (P = 16, scratch "
                 "partitions, greedy mapper)\n";
    t.print(std::cout);
    std::cout << '\n';
  }

  // ---- (c) metric x mapper ----------------------------------------------------
  {
    constexpr Rank P = 32;
    partition::MultilevelOptions popt;
    popt.nparts = P;
    dual.set_weights(current.wcomp, current.wremap);
    const auto old_part = partition::partition(dual, popt).part;
    dual.set_weights(predicted.wcomp, predicted.wremap);
    const auto new_part = partition::repartition(dual, old_part, popt).part;
    const auto S = remap::SimilarityMatrix::build(old_part, new_part,
                                                  current.wremap, P, P);
    io::Table t({"mapper", "Ctotal", "Ntotal", "Cmax", "Nmax",
                 "max(sent,recv)"});
    struct Row {
      const char* name;
      remap::Assignment a;
    };
    const Row rows[] = {{"OptMWBG", remap::map_optimal_mwbg(S)},
                        {"HeuMWBG", remap::map_heuristic_greedy(S)},
                        {"OptBMCM", remap::map_optimal_bmcm(S)}};
    for (const auto& r : rows) {
      const auto vol = remap::evaluate_assignment(S, r.a);
      t.add_row({r.name, io::Table::fmt(std::int64_t{vol.total_elems}),
                 io::Table::fmt(std::int64_t{vol.total_sets}),
                 io::Table::fmt(std::int64_t{vol.bottleneck_elems}),
                 io::Table::fmt(std::int64_t{vol.bottleneck_sets}),
                 io::Table::fmt(std::int64_t{vol.max_sent_or_recv})});
    }
    std::cout << "Ablation (c): TotalV vs MaxV movement profiles at P = 32\n";
    t.print(std::cout);
  }
  return 0;
}
