// Reproduces Fig. 7: the analytic maximum impact of load balancing on flow
// solver execution time for one refinement step (paper §5).
//
// With N elements on P processors and mesh growth factor G, the worst case
// puts all 1:8 refinement on a subset of processors: the most loaded one
// then holds min(8N/P, GN - (P-1)N/P) elements vs GN/P when balanced, so
//   max improvement = min(8, P(G-1)+1) / G.
// Paper: G=1.353 -> 5.91 for P>=20; G=3.310 -> 2.42 (P>=4);
//        G=5.279 -> 1.52 (P>=2).

#include <algorithm>
#include <iostream>

#include "io/table.hpp"

int main() {
  using plum::io::Table;

  const double gs[] = {1.353, 3.310, 5.279};
  Table table({"P", "G=1.353", "G=3.310", "G=5.279"});
  for (int p = 1; p <= 64; p *= 2) {
    std::vector<std::string> row = {Table::fmt(std::int64_t{p})};
    for (double g : gs) {
      const double improvement = std::min(8.0, p * (g - 1.0) + 1.0) / g;
      row.push_back(Table::fmt(improvement, 2));
    }
    table.add_row(row);
  }
  std::cout << "Fig. 7: maximum impact of load balancing, min(8, P(G-1)+1)/G\n";
  table.print(std::cout);
  std::cout << "\nplateaus: 5.91 (G=1.353, P>=20), 2.42 (G=3.310, P>=4), "
               "1.52 (G=5.279, P>=2) — matching the paper exactly\n";
  return 0;
}
