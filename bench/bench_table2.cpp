// Reproduces Table 2: the three processor-reassignment algorithms compared
// on the Real_2 strategy — elements moved (total and bottleneck max of
// sent/received) and *measured* reassignment wall-clock — for P = 2..64.
//
// Paper reference (Real_2, SP2):
//    P  Max(Sent,Recd)  OptMWBG: total/time   HeuMWBG: total/time   OptBMCM: total/time
//    2      11295          22522 / 0.0002        22522 / 0.0000        22522 / 0.0003
//    4       6827          16813 / 0.0004        16813 / 0.0001        16813 / 0.0006
//    8       8169          30071 / 0.0013        30071 / 0.0002        35506 / 0.0019
//   16       7131          35096 / 0.0045        36520 / 0.0005        50488 / 0.0070
//   32       4410          34738 / 0.0177        35032 / 0.0017        49641 / 0.0323
//   64       2264          38059 / 0.0650        38283 / 0.0088        52837 / 0.1327
//
// Shape targets: heuristic ~10x faster than optimal MWBG with nearly equal
// total movement; optimal BMCM slowest with larger total volume but the
// smallest per-processor bottleneck.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "io/table.hpp"
#include "json_report.hpp"
#include "obs/gate_audit.hpp"
#include "partition/multilevel.hpp"
#include "partition/quality.hpp"
#include "remap/mapping.hpp"
#include "remap/volume.hpp"
#include "sim/calibration.hpp"

int main() {
  using namespace plum;

  auto w = bench::make_workload();
  adapt::MeshAdaptor adaptor(&w.mesh);
  adaptor.mark(adapt::mark_top_fraction(w.mesh, w.err, 0.33));  // Real_2
  const auto predicted = adaptor.predicted_weights();
  const auto current = w.mesh.root_weights();

  auto dual = w.mesh.build_initial_dual();

  io::Table table({"P", "Max(Sent,Recd)", "OptMWBG elems", "OptMWBG s",
                   "HeuMWBG elems", "HeuMWBG s", "OptBMCM elems",
                   "OptBMCM s"});
  bench::JsonReport report("bench_table2");

  // Synthetic calibration demo: each P's heuristic remap is priced with the
  // stock SP2 byte constants, then "measured" on a machine whose element
  // payload is 25% heavier and whose per-set framing is double. Everything
  // is a counter, so the calibrated drift column is deterministic and the
  // baseline gates that the fit actually converges.
  sim::MachineParams truth;
  truth.bytes_per_element =
      static_cast<double>(truth.words_per_element) * 8.0 * 1.25;
  truth.bytes_per_set *= 2.0;
  const sim::CostModel truth_model(truth);
  sim::CalibrationOptions copt;
  copt.enabled = true;
  copt.fit_timings = false;
  sim::Calibration calib(sim::MachineParams{}, copt);

  for (Rank P : bench::kProcCounts) {
    // Old partitioning: balanced on the pre-adaption mesh.
    partition::MultilevelOptions popt;
    popt.nparts = P;
    dual.set_weights(current.wcomp, current.wremap);
    const auto old_part = partition::partition(dual, popt).part;

    // Repartition with the predicted weights (warm start, as parallel MeTiS
    // does); remap-before-subdivision volume = current tree sizes.
    dual.set_weights(predicted.wcomp, predicted.wremap);
    const auto new_part = partition::repartition(dual, old_part, popt).part;
    const auto S = remap::SimilarityMatrix::build(old_part, new_part,
                                                  current.wremap, P, P);

    const auto opt = remap::map_optimal_mwbg(S);
    const auto heu = remap::map_heuristic_greedy(S);
    const auto bm = remap::map_optimal_bmcm(S);
    const auto v_opt = remap::evaluate_assignment(S, opt);
    const auto v_heu = remap::evaluate_assignment(S, heu);
    const auto v_bm = remap::evaluate_assignment(S, bm);

    // Quality of the repartitioning under the predicted weights — the same
    // "imbalance" / "edge_cut" fields the Framework's live gauges record.
    const auto quality = partition::evaluate_quality(dual, new_part, P);

    table.add_row({io::Table::fmt(std::int64_t{P}),
                   io::Table::fmt(std::int64_t{v_bm.max_sent_or_recv}),
                   io::Table::fmt(std::int64_t{v_opt.total_elems}),
                   io::Table::fmt(opt.solve_seconds, 6),
                   io::Table::fmt(std::int64_t{v_heu.total_elems}),
                   io::Table::fmt(heu.solve_seconds, 6),
                   io::Table::fmt(std::int64_t{v_bm.total_elems}),
                   io::Table::fmt(bm.solve_seconds, 6)});

    auto& run =
        report.add_run("Real_2", P)
            .metric_int("bmcm_max_sent_or_recv", v_bm.max_sent_or_recv)
            .metric_int("opt_mwbg_total_elems", v_opt.total_elems)
            // Measured timer reads, so spelled *_seconds: plum-diff's
            // regression gate treats that suffix as wall clock (report-only).
            .metric("opt_mwbg_solve_seconds", opt.solve_seconds)
            .metric_int("heu_mwbg_total_elems", v_heu.total_elems)
            .metric("heu_mwbg_solve_seconds", heu.solve_seconds)
            .metric_int("opt_bmcm_total_elems", v_bm.total_elems)
            .metric("opt_bmcm_solve_seconds", bm.solve_seconds)
            .metric("imbalance", quality.imbalance)
            .metric_int("edge_cut", quality.edge_cut);
    // Full RemapVolume breakdown for the heuristic mapper (the framework's
    // default), under the canonical gauge names.
    for (const auto& [name, value] : remap::volume_fields(v_heu)) {
      run.metric_int(name, value);
    }

    // Calibration demo on the heuristic remap's TotalV regressors.
    const auto elems = static_cast<std::int64_t>(v_heu.total_elems);
    const auto sets = static_cast<std::int64_t>(v_heu.total_sets);
    sim::CalibrationSample cs;
    cs.remap_executed = true;
    cs.moved_elems = elems;
    cs.moved_sets = sets;
    cs.predicted_move_bytes = calib.predicted_bytes(elems, sets);
    cs.measured_move_bytes = std::llround(
        truth_model.move_bytes_per_element() * static_cast<double>(elems) +
        truth.bytes_per_set * static_cast<double>(sets));
    const double drift_static = std::abs(obs::gate_drift(
        sim::CostModel(sim::MachineParams{})
            .predicted_move_bytes(v_heu, sim::CostMetric::kTotalV),
        cs.measured_move_bytes));
    calib.observe(cs);
    run.metric("calib_drift_abs_static", drift_static)
        .metric("calib_drift_abs_calibrated",
                calib.recalibrated_abs_drift(cs))
        .calibration(calib.to_json());
  }

  std::cout << "Table 2: mapper comparison on Real_2 (remap before "
               "subdivision; volumes in initial-mesh elements)\n";
  table.print(std::cout);
  std::cout << "\nShape checks vs paper: HeuMWBG total ~= OptMWBG total; "
               "OptBMCM total larger;\nHeuMWBG time ~10x under OptMWBG; "
               "OptBMCM time largest and growing fastest in P.\n";
  return report.write().empty() ? 1 : 0;
}
