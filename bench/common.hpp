#pragma once
// Shared workload for the paper-reproduction benches.
//
// The paper's evaluation (§5) marks 5%, 33% and 60% of the 78,343 edges of
// a 60,968-element rotor mesh (strategies Real_1/2/3), based on an error
// indicator computed from an actual flow solution. We reproduce the setup
// with the paper-scale box mesh (60,984 tets), a blast flow solution, and
// the same three marking fractions applied to the same edge-error
// indicator (DESIGN.md §3 and §4).

#include <cstdio>
#include <string>
#include <vector>

#include "adapt/adaptor.hpp"
#include "mesh/box_mesh.hpp"
#include "solver/euler.hpp"
#include "solver/init_conditions.hpp"
#include "util/timer.hpp"

namespace plum::bench {

struct PaperCase {
  const char* name;
  double fraction;  ///< fraction of active edges marked for refinement
};

inline constexpr PaperCase kRealCases[] = {
    {"Real_1", 0.05},
    {"Real_2", 0.33},
    {"Real_3", 0.60},
};

/// The paper's processor counts.
inline constexpr Rank kProcCounts[] = {2, 4, 8, 16, 32, 64};

struct Workload {
  mesh::TetMesh mesh;        ///< paper-scale initial mesh
  std::vector<double> err;   ///< per-edge error from the flow solution
};

/// Builds the paper-scale mesh and a short blast solve to obtain a
/// realistic, spatially localized error indicator. ~61k tets; a few seconds.
inline Workload make_paper_workload(int solver_steps = 12) {
  Workload w{mesh::make_box_mesh(mesh::paper_scale_box()), {}};
  solver::EulerSolver solver(&w.mesh);
  solver::BlastSpec blast;
  blast.center = {0.4, 0.45, 0.5};
  blast.radius = 0.18;
  blast.inner_pressure = 15.0;
  solver::init_blast(w.mesh, solver.solution(), blast);
  solver.run(solver_steps);
  w.err = adapt::edge_error(w.mesh, solver.density_field(), 1.0);
  return w;
}

/// A smaller workload for quick runs (set PLUM_BENCH_SMALL=1).
inline Workload make_small_workload() {
  Workload w{mesh::make_box_mesh(mesh::small_box(10)), {}};
  solver::EulerSolver solver(&w.mesh);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(w.mesh, solver.solution(), blast);
  solver.run(10);
  w.err = adapt::edge_error(w.mesh, solver.density_field(), 1.0);
  return w;
}

inline Workload make_workload() {
  const char* small = std::getenv("PLUM_BENCH_SMALL");
  if (small && small[0] == '1') {
    std::printf("[plum-bench] PLUM_BENCH_SMALL=1: using reduced mesh\n");
    return make_small_workload();
  }
  return make_paper_workload();
}

}  // namespace plum::bench
