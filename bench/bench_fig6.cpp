// Reproduces Fig. 6: anatomy of the execution time — adaption (refinement),
// repartitioning, and remapping — per strategy and processor count, with
// remap-before-subdivision and the TotalV metric (the paper's production
// configuration).
//
// Paper anchors at P = 64 (refine, partition, remap):
//   Real_1 (0.25, 0.57, 0.71); Real_2 (0.55, 0.58, 0.89);
//   Real_3 (0.81, 0.60, 1.03).
// Shape: partition time nearly flat with a shallow minimum near P = 16;
// remap time decreasing in P; phases comparable beyond 32 processors.

#include <iostream>

#include "figures_common.hpp"
#include "io/table.hpp"
#include "json_report.hpp"

int main() {
  using namespace plum;
  const auto w = bench::make_workload();
  const sim::CostModel cm;

  io::Table table(
      {"case", "P", "adaption_s", "partition_s", "remap_s"});
  bench::JsonReport report("bench_fig6");
  for (const auto& c : bench::kRealCases) {
    const auto cd = bench::evaluate_case(w, c);
    for (const auto& pt : cd.points) {
      const double t_adapt = cm.adaption_seconds(
          pt.work_before, pt.elems_before, pt.mark_rounds);
      const double t_part = cm.partition_seconds(
          pt.dual_vertices, pt.partition_levels, pt.nprocs);
      const double t_remap = cm.remap_seconds(pt.vol_before);
      table.add_row({cd.name, io::Table::fmt(std::int64_t{pt.nprocs}),
                     io::Table::fmt(t_adapt, 3), io::Table::fmt(t_part, 3),
                     io::Table::fmt(t_remap, 3)});
      // The anatomy is inherently per-phase: report it as phase records
      // (wall_s = 0, these are modeled SP2 seconds, not measured).
      report.add_run(cd.name, pt.nprocs)
          .metric("adaption_s", t_adapt)
          .metric("partition_s", t_part)
          .metric("remap_s", t_remap)
          .phase("adaption", 0.0, t_adapt)
          .phase("repartition", 0.0, t_part)
          .phase("remap", 0.0, t_remap);
    }
  }
  std::cout << "Fig. 6: execution-time anatomy (remap before subdivision, "
               "TotalV, greedy mapper)\n";
  table.print(std::cout);
  std::cout << "\npaper anchors at P=64 (adapt, part, remap): Real_1 "
               "(0.25,0.57,0.71); Real_2 (0.55,0.58,0.89); Real_3 "
               "(0.81,0.60,1.03)\n";
  return report.write().empty() ? 1 : 0;
}
