// Reproduces Table 1: grid sizes after one refinement step for the three
// edge-marking strategies Real_1/2/3 (5%, 33%, 60% of the initial edges).
//
// Paper reference values (UH-1H rotor mesh):
//              Vertices  Elements   Edges  BdyFaces
//   Initial      13,967    60,968   78,343    6,818
//   Real_1       17,880    82,489  104,209    7,682
//   Real_2       39,332   201,780  247,115   12,008
//   Real_3       61,161   321,841  391,233   16,464
//
// Our initial mesh is a structured-box stand-in of the same scale; the
// reproduction target is the growth pattern, not digit equality.

#include <iostream>

#include "common.hpp"
#include "io/table.hpp"

int main() {
  using namespace plum;
  using bench::kRealCases;

  const auto base = bench::make_workload();

  io::Table table({"case", "frac", "vertices", "elements", "edges",
                   "bdy_faces", "growth_G", "paper_G"});
  const double paper_g[] = {82489.0 / 60968, 201780.0 / 60968,
                            321841.0 / 60968};

  table.add_row({"Initial", "-", io::Table::fmt(std::int64_t{base.mesh.num_vertices()}),
                 io::Table::fmt(std::int64_t{base.mesh.num_active_elements()}),
                 io::Table::fmt(std::int64_t{base.mesh.num_active_edges()}),
                 io::Table::fmt(std::int64_t{base.mesh.num_active_bfaces()}),
                 "1.00", "1.00"});

  int case_idx = 0;
  for (const auto& c : kRealCases) {
    // Fresh copy per case: each strategy refines the *initial* mesh.
    mesh::TetMesh mesh = base.mesh;
    const Index elems0 = mesh.num_active_elements();
    adapt::MeshAdaptor adaptor(&mesh);
    adaptor.mark(adapt::mark_top_fraction(mesh, base.err, c.fraction));
    adaptor.refine();
    mesh.validate();

    const double g =
        static_cast<double>(mesh.num_active_elements()) / elems0;
    table.add_row({c.name, io::Table::fmt(c.fraction, 2),
                   io::Table::fmt(std::int64_t{mesh.num_vertices()}),
                   io::Table::fmt(std::int64_t{mesh.num_active_elements()}),
                   io::Table::fmt(std::int64_t{mesh.num_active_edges()}),
                   io::Table::fmt(std::int64_t{mesh.num_active_bfaces()}),
                   io::Table::fmt(g, 2),
                   io::Table::fmt(paper_g[case_idx], 2)});
    ++case_idx;
  }

  std::cout << "Table 1: grid sizes for the three refinement strategies\n";
  table.print(std::cout);
  std::cout << "\npaper (rotor mesh): Initial 13967/60968/78343/6818; "
               "Real_1 17880/82489/104209/7682;\n"
               "Real_2 39332/201780/247115/12008; Real_3 "
               "61161/321841/391233/16464\n";
  return 0;
}
