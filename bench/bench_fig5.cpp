// Reproduces Fig. 5: remapping time versus processor count when data moves
// after vs before the actual subdivision. Moving before refinement moves
// the pre-growth mesh — the paper's largest case drops from 3.71 s to
// 1.03 s on 64 processors (~3.6x).

#include <iostream>

#include "figures_common.hpp"
#include "io/table.hpp"
#include "json_report.hpp"

int main() {
  using namespace plum;
  const auto w = bench::make_workload();
  const sim::CostModel cm;

  io::Table table({"case", "P", "remap_after_s", "remap_before_s", "ratio"});
  bench::JsonReport report("bench_fig5");
  for (const auto& c : bench::kRealCases) {
    const auto cd = bench::evaluate_case(w, c);
    for (const auto& pt : cd.points) {
      const double ta = cm.remap_seconds(pt.vol_after);
      const double tb = cm.remap_seconds(pt.vol_before);
      table.add_row({cd.name, io::Table::fmt(std::int64_t{pt.nprocs}),
                     io::Table::fmt(ta, 3), io::Table::fmt(tb, 3),
                     io::Table::fmt(tb > 0 ? ta / tb : 0.0, 2)});
      report.add_run(cd.name, pt.nprocs)
          .metric("remap_after_s", ta)
          .metric("remap_before_s", tb)
          .metric("ratio", tb > 0 ? ta / tb : 0.0)
          .metric_int("total_elems_before", pt.vol_before.total_elems)
          .metric_int("total_elems_after", pt.vol_after.total_elems);
    }
  }
  std::cout << "Fig. 5: remapping time, after vs before subdivision\n";
  table.print(std::cout);
  std::cout << "\npaper anchor: Real_3 at P=64 drops 3.71s -> 1.03s "
               "(~3.6x); times fall with P\n";
  return report.write().empty() ? 1 : 0;
}
