// End-to-end distributed adaption cycle at paper scale: the full Fig. 1
// loop on the BSP substrate (parallel solve, threshold marking, parallel
// propagation, host gate, migration with solution transfer, balanced
// parallel subdivision), reporting per-phase work balance and the real
// communication ledger. This is the experiment behind the paper's closing
// claim that "our framework will remain viable on a large number of
// processors": no phase's bottleneck grows with P.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "core/dist_framework.hpp"
#include "io/table.hpp"
#include "json_report.hpp"
#include "obs/chrome_trace.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plum;

  // --threads N: 1 = sequential reference engine, 0 = all cores, N > 1 = a
  // ParallelEngine with N workers. Modeled columns are engine-invariant;
  // only wall_s changes.
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    }
  }

  const char* small = std::getenv("PLUM_BENCH_SMALL");
  const int boxn = (small && small[0] == '1') ? 8 : 16;

  io::Table table({"P", "elems_after", "imb_old", "imb_new", "migrated",
                   "refine_work_imb", "msgs", "MB_sent", "supersteps",
                   "wall_s"});
  bench::JsonReport report("bench_distributed");
  bool trace_written = false;

  for (Rank P : {4, 8, 16, 32}) {
    core::FrameworkOptions opt;
    opt.nranks = P;
    opt.refine_fraction = 0.08;
    opt.imbalance_trigger = 1.05;
    opt.solver_steps_per_cycle = 6;
    opt.threads = threads;

    auto mesh = mesh::make_box_mesh(mesh::small_box(boxn));
    core::DistFramework fw(std::move(mesh), opt);
    solver::BlastSpec blast;
    blast.radius = 0.2;
    for (Rank r = 0; r < P; ++r) {
      solver::init_blast(fw.dist_mesh().local(r).mesh,
                         fw.solver().solution(r), blast);
    }

    Timer wall;
    const auto rep = fw.cycle();
    const double wall_s = wall.seconds();
    fw.dist_mesh().validate();

    std::int64_t msgs = 0;
    for (const auto& step : fw.engine().ledger().steps) {
      for (const auto& c : step) msgs += c.msgs_sent;
    }
    const double work_imb =
        rep.refine_work_per_rank.empty() ? 1.0
                                         : imbalance(rep.refine_work_per_rank);
    table.add_row(
        {io::Table::fmt(std::int64_t{P}),
         io::Table::fmt(std::int64_t{rep.elements_after}),
         io::Table::fmt(rep.imbalance_old, 3),
         io::Table::fmt(rep.accepted ? rep.imbalance_new : rep.imbalance_old,
                        3),
         io::Table::fmt(rep.elements_migrated),
         io::Table::fmt(work_imb, 3), io::Table::fmt(msgs),
         io::Table::fmt(static_cast<double>(
                            fw.engine().ledger().total_bytes()) /
                            1e6,
                        2),
         io::Table::fmt(
             std::int64_t{fw.engine().ledger().num_supersteps()}),
         io::Table::fmt(wall_s, 3)});

    report.add_run("box" + std::to_string(boxn), P)
        .metric("wall_s", wall_s)
        .metric("imbalance_old", rep.imbalance_old)
        .metric("imbalance_new",
                rep.accepted ? rep.imbalance_new : rep.imbalance_old)
        .metric("refine_work_imbalance", work_imb)
        .metric_int("elements_after", rep.elements_after)
        .metric_int("elements_migrated", rep.elements_migrated)
        .metric_int("msgs_sent", msgs)
        .metric_int("bytes_sent", fw.engine().ledger().total_bytes())
        .metric_int("supersteps", fw.engine().ledger().num_supersteps())
        .metric_int("accepted", rep.accepted ? 1 : 0)
        .metrics_from(fw.metrics())
        .comm_matrix_from(fw.engine().ledger().comm_matrix())
        .gate_audit_from(fw.trace())
        .critical_path_from(fw.trace())
        .phases_from(fw.trace());

    // One Chrome trace + one run document + one standalone gate-audit log
    // (take the first P so the artifacts exist even if a later size fails).
    if (!trace_written) {
      const char* dir = std::getenv("PLUM_BENCH_JSON_DIR");
      const std::string base = std::string((dir && dir[0]) ? dir : ".");
      const std::string path = base + "/TRACE_bench_distributed.json";
      trace_written = obs::write_chrome_trace(
          fw.trace(), "bench_distributed P=" + std::to_string(P), path);
      if (!trace_written) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
      }

      // plum-run/1: the trace+metrics document tools/plum-report renders.
      obs::Json run_doc = obs::Json::object();
      run_doc.set("schema", obs::Json::str("plum-run/1"))
          .set("name", obs::Json::str("bench_distributed P=" +
                                      std::to_string(P)))
          .set("trace", fw.trace().to_json())
          .set("metrics", fw.metrics().to_json());
      std::ofstream run_out(base + "/RUN_bench_distributed.json");
      run_out << run_doc.dump(2) << '\n';
      if (!run_out) {
        std::fprintf(stderr, "failed to write RUN_bench_distributed.json\n");
        trace_written = false;
      }

      obs::Json gate_doc = obs::Json::object();
      gate_doc.set("schema", obs::Json::str("plum-gate-audit/1"))
          .set("records", obs::gate_audit_json(fw.trace().gate_records()));
      std::ofstream gate_out(base + "/GATE_bench_distributed.json");
      gate_out << gate_doc.dump(2) << '\n';
      if (!gate_out) {
        std::fprintf(stderr, "failed to write GATE_bench_distributed.json\n");
        trace_written = false;
      }
    }
  }

  std::cout << "Distributed Fig. 1 cycle at " << 6 * boxn * boxn * boxn
            << " initial elements (remap before subdivision, greedy "
               "mapper), engine threads = "
            << threads << "\n";
  table.print(std::cout);
  std::cout << "\nViability check: subdivision-work imbalance stays near 1 "
               "after an accepted remap,\nand ledger traffic grows with P "
               "far slower than the per-rank work shrinks.\n";
  if (report.write().empty() || !trace_written) return 1;
  return 0;
}
