// End-to-end distributed adaption cycle at paper scale: the full Fig. 1
// loop on the BSP substrate (parallel solve, threshold marking, parallel
// propagation, host gate, migration with solution transfer, balanced
// parallel subdivision), reporting per-phase work balance and the real
// communication ledger. This is the experiment behind the paper's closing
// claim that "our framework will remain viable on a large number of
// processors": no phase's bottleneck grows with P.
//
// Two sweeps:
//   strong (default)  P = {4, 8, 16, 32} on a fixed mesh — the per-rank
//                     work shrinks with P while traffic grows slowly.
//   --weak            P = {64, 128, 256} with the mesh grown so work per
//                     rank stays fixed — the paper's Figs. 7/8 axes: remap
//                     volume (TotalV / MaxV), imbalance, and critical-path
//                     wait fractions must stay flat as P grows.
//
// --transport {inproc,pipe} selects the message fabric (see
// runtime/transport.hpp); every modeled column is transport-invariant.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <cmath>

#include "common.hpp"
#include "core/dist_framework.hpp"
#include "io/table.hpp"
#include "json_report.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/calibration.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

struct Sweep {
  plum::Rank P;
  int boxn;
};

struct Cli {
  int threads = 1;
  plum::rt::TransportKind transport = plum::rt::TransportKind::kInProc;
  int transport_procs = 0;
  bool weak = false;
  int leak_check = 0;  ///< > 0: steady-state leak gate over N extra cycles
  std::string scope_stream;  ///< plum-scope/1 NDJSON file ("" = off)
};

bool parse_cli(int argc, char** argv, Cli* cli) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      cli->threads = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      cli->threads = std::atoi(a + 10);
    } else if (std::strcmp(a, "--transport") == 0 && i + 1 < argc) {
      if (!plum::rt::parse_transport_kind(argv[++i], &cli->transport)) {
        std::fprintf(stderr, "unknown --transport %s\n", argv[i]);
        return false;
      }
    } else if (std::strncmp(a, "--transport=", 12) == 0) {
      if (!plum::rt::parse_transport_kind(a + 12, &cli->transport)) {
        std::fprintf(stderr, "unknown --transport %s\n", a + 12);
        return false;
      }
    } else if (std::strcmp(a, "--transport-procs") == 0 && i + 1 < argc) {
      cli->transport_procs = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--transport-procs=", 18) == 0) {
      cli->transport_procs = std::atoi(a + 18);
    } else if (std::strcmp(a, "--scope-stream") == 0 && i + 1 < argc) {
      cli->scope_stream = argv[++i];
    } else if (std::strncmp(a, "--scope-stream=", 15) == 0) {
      cli->scope_stream = a + 15;
    } else if (std::strcmp(a, "--leak-check") == 0 && i + 1 < argc) {
      cli->leak_check = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--leak-check=", 13) == 0) {
      cli->leak_check = std::atoi(a + 13);
    } else if (std::strcmp(a, "--weak") == 0) {
      cli->weak = true;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plum;

  Cli cli;
  if (!parse_cli(argc, argv, &cli)) return 2;

  const char* small_env = std::getenv("PLUM_BENCH_SMALL");
  const bool small = small_env && small_env[0] == '1';

  // --leak-check N: the steady-state memory gate. Run the full adaption
  // cycle repeatedly on one framework; after a warm-up (arena chunks and
  // interned phases settle) the tracked live bytes at every cycle boundary
  // must not grow — scratch dies with the cycle (DESIGN.md's scratch-memory
  // contract). The plum-heap/1 profile is written either way so CI can
  // upload it as the forensics artifact when the gate fails.
  if (cli.leak_check > 0) {
    core::FrameworkOptions opt;
    opt.nranks = 8;
    opt.refine_fraction = 0.08;
    opt.imbalance_trigger = 1.05;
    opt.solver_steps_per_cycle = 4;
    opt.threads = cli.threads;
    opt.transport = cli.transport;
    opt.transport_procs = cli.transport_procs;
    opt.scope_name = "bench_distributed_leak";
    auto mesh = mesh::make_box_mesh(mesh::small_box(small ? 6 : 8));
    core::DistFramework fw(std::move(mesh), opt);
    solver::BlastSpec blast;
    blast.radius = 0.2;
    for (Rank r = 0; r < opt.nranks; ++r) {
      solver::init_blast(fw.dist_mesh().local(r).mesh,
                         fw.solver().solution(r), blast);
    }

    constexpr int kWarmup = 2;
    for (int c = 0; c < kWarmup; ++c) fw.cycle();
    const std::int64_t baseline = fw.memory().total_live_bytes();
    const std::int64_t reserved0 =
        fw.memory().host_arena().reserved_bytes();

    bool ok = true;
    for (int c = 0; c < cli.leak_check; ++c) {
      fw.cycle();
      const std::int64_t live = fw.memory().total_live_bytes();
      std::printf("leak-check cycle %d: live %lld B (baseline %lld B)\n",
                  kWarmup + c, static_cast<long long>(live),
                  static_cast<long long>(baseline));
      if (live > baseline) ok = false;
    }
    fw.dist_mesh().validate();

    const char* dir = std::getenv("PLUM_BENCH_JSON_DIR");
    const std::string heap_path =
        std::string((dir && dir[0]) ? dir : ".") +
        "/HEAP_bench_distributed.json";
    std::ofstream heap_out(heap_path);
    heap_out << fw.memory().to_json().dump(2) << '\n';
    if (!heap_out) {
      std::fprintf(stderr, "failed to write %s\n", heap_path.c_str());
      return 1;
    }
    std::printf("heap profile: %s (host arena reserved %lld -> %lld B)\n",
                heap_path.c_str(), static_cast<long long>(reserved0),
                static_cast<long long>(
                    fw.memory().host_arena().reserved_bytes()));
    if (!ok) {
      std::fprintf(stderr,
                   "leak-check FAILED: tracked live bytes grew across "
                   "steady-state cycles (see %s)\n",
                   heap_path.c_str());
      return 1;
    }
    std::printf("leak-check ok: %d cycles, live bytes flat at %lld B\n",
                cli.leak_check, static_cast<long long>(baseline));
    return 0;
  }

  // Weak scaling holds 6*boxn^3 / P roughly constant (~21-24 elements per
  // rank small, ~47-52 full); strong scaling fixes the mesh.
  std::vector<Sweep> sweeps;
  if (cli.weak) {
    if (small) {
      sweeps = {{64, 6}, {128, 8}, {256, 10}};
    } else {
      sweeps = {{64, 8}, {128, 10}, {256, 13}};
    }
  } else {
    const int boxn = small ? 8 : 16;
    sweeps = {{4, boxn}, {8, boxn}, {16, boxn}, {32, boxn}};
  }

  const std::string bench_name =
      cli.weak ? "bench_distributed_weak" : "bench_distributed";
  io::Table table({"P", "elems_after", "elems_per_rank", "imb_old", "imb_new",
                   "TotalV", "MaxV", "migrated", "refine_work_imb", "msgs",
                   "MB_sent", "supersteps", "wall_s"});
  bench::JsonReport report(bench_name);
  bool trace_written = false;

  // Retrospective calibration across the sweep's accepted remaps: the byte
  // fit consumes deterministic counters only (timing fits off), so the
  // drift columns below are deterministic and baseline-gated like every
  // other modeled metric. The running calibrator accumulates evidence from
  // one P to the next, mirroring how a long-lived run would converge.
  sim::CalibrationOptions copt;
  copt.enabled = true;
  copt.fit_timings = false;
  sim::Calibration calib(core::FrameworkOptions{}.machine, copt);

  for (const Sweep& sw : sweeps) {
    const Rank P = sw.P;
    core::FrameworkOptions opt;
    opt.nranks = P;
    opt.refine_fraction = 0.08;
    opt.imbalance_trigger = 1.05;
    opt.solver_steps_per_cycle = 6;
    opt.threads = cli.threads;
    opt.transport = cli.transport;
    opt.transport_procs = cli.transport_procs;
    // Live monitoring + crash forensics: every sweep size appends its
    // cycle records to the same stream (tools/plum-top tails it), and the
    // postmortem file carries the bench name.
    opt.scope_name = bench_name + "_P" + std::to_string(P);
    opt.scope_stream = cli.scope_stream;

    auto mesh = mesh::make_box_mesh(mesh::small_box(sw.boxn));
    core::DistFramework fw(std::move(mesh), opt);
    solver::BlastSpec blast;
    blast.radius = 0.2;
    for (Rank r = 0; r < P; ++r) {
      solver::init_blast(fw.dist_mesh().local(r).mesh,
                         fw.solver().solution(r), blast);
    }

    Timer wall;
    const auto rep = fw.cycle();
    const double wall_s = wall.seconds();
    fw.dist_mesh().validate();

    std::int64_t msgs = 0;
    for (const auto& step : fw.engine().ledger().steps) {
      for (const auto& c : step) msgs += c.msgs_sent;
    }
    const double work_imb =
        rep.refine_work_per_rank.empty() ? 1.0
                                         : imbalance(rep.refine_work_per_rank);
    const double elems_per_rank =
        static_cast<double>(rep.elements_after) / static_cast<double>(P);
    table.add_row(
        {io::Table::fmt(std::int64_t{P}),
         io::Table::fmt(std::int64_t{rep.elements_after}),
         io::Table::fmt(elems_per_rank, 1),
         io::Table::fmt(rep.imbalance_old, 3),
         io::Table::fmt(rep.accepted ? rep.imbalance_new : rep.imbalance_old,
                        3),
         io::Table::fmt(std::int64_t{rep.volume.total_elems}),
         io::Table::fmt(std::int64_t{rep.volume.max_sent_or_recv}),
         io::Table::fmt(rep.elements_migrated),
         io::Table::fmt(work_imb, 3), io::Table::fmt(msgs),
         io::Table::fmt(static_cast<double>(
                            fw.engine().ledger().total_bytes()) /
                            1e6,
                        2),
         io::Table::fmt(
             std::int64_t{fw.engine().ledger().num_supersteps()}),
         io::Table::fmt(wall_s, 3)});

    // Feed this run's accepted remaps to the calibrator and record the
    // drift the static constants made vs. what the calibrated constants
    // would make on the same moves.
    double drift_static = 0, drift_cal = 0;
    int naccepted = 0;
    for (const auto& grec : fw.trace().gate_records()) {
      if (!grec.evaluated || !grec.accepted) continue;
      sim::CalibrationSample cs;
      cs.cycle = grec.cycle;
      cs.remap_executed = true;
      cs.moved_elems = grec.moved_elems;
      cs.moved_sets = grec.moved_sets;
      cs.predicted_move_bytes = grec.predicted_move_bytes;
      cs.measured_move_bytes = grec.measured_move_bytes;
      calib.observe(cs);
      drift_static += std::abs(grec.drift);
      drift_cal += calib.recalibrated_abs_drift(cs);
      ++naccepted;
    }

    const std::string case_name = (cli.weak ? "weak_box" : "box") +
                                  std::to_string(sw.boxn);
    auto& run = report.add_run(case_name, P);
    run.metric("wall_s", wall_s)
        .metric("imbalance_old", rep.imbalance_old)
        .metric("imbalance_new",
                rep.accepted ? rep.imbalance_new : rep.imbalance_old)
        .metric("refine_work_imbalance", work_imb)
        .metric("elems_per_rank", elems_per_rank)
        .metric_int("elements_after", rep.elements_after)
        .metric_int("elements_migrated", rep.elements_migrated)
        .metric_int("remap_total_elems", rep.volume.total_elems)
        .metric_int("remap_bottleneck_elems", rep.volume.bottleneck_elems)
        .metric_int("remap_max_sent_or_recv", rep.volume.max_sent_or_recv)
        .metric_int("msgs_sent", msgs)
        .metric_int("bytes_sent", fw.engine().ledger().total_bytes())
        .metric_int("supersteps", fw.engine().ledger().num_supersteps())
        // Comm-accounting footprint: the ledger's matrix is row-sparse, so
        // cells is the number of (sender, receiver) pairs that actually
        // communicated — O(P * degree), not P^2 — and resident_bytes is
        // what the accounting keeps in memory. Both are deterministic and
        // transport-invariant, so the weak baseline gates that the
        // accounting itself scales.
        .metric_int("comm_resident_cells",
                    fw.engine().ledger().comm_matrix().resident_cells())
        .metric_int("comm_resident_bytes",
                    fw.engine().ledger().comm_matrix().resident_bytes())
        .metric_int("accepted", rep.accepted ? 1 : 0)
        .metric("gate_drift_mean_abs_static",
                naccepted > 0 ? drift_static / naccepted : 0.0)
        .metric("gate_drift_mean_abs_calibrated",
                naccepted > 0 ? drift_cal / naccepted : 0.0)
        .calibration(calib.to_json())
        .metrics_from(fw.metrics())
        .gate_audit_from(fw.trace())
        .critical_path_from(fw.trace())
        .phases_from(fw.trace());
    // The dense P x P comm matrix is ~P^2 JSON rows — fine at the strong
    // sweep's P<=32, but 65k rows per run at P=256 would bloat the weak
    // baseline; row/col totals are already covered by bytes_sent and the
    // remap_* gauges.
    if (!cli.weak) {
      run.comm_matrix_from(fw.engine().ledger().comm_matrix());
    }

    // One Chrome trace + one run document + one standalone gate-audit log
    // (take the first P so the artifacts exist even if a later size fails).
    if (!trace_written) {
      const char* dir = std::getenv("PLUM_BENCH_JSON_DIR");
      const std::string base = std::string((dir && dir[0]) ? dir : ".");
      const std::string stem = base + "/TRACE_" + bench_name + ".json";
      trace_written = obs::write_chrome_trace(
          fw.trace(), bench_name + " P=" + std::to_string(P), stem);
      if (!trace_written) {
        std::fprintf(stderr, "failed to write %s\n", stem.c_str());
      }

      // plum-run/1: the trace+metrics document tools/plum-report renders.
      obs::Json run_doc = obs::Json::object();
      run_doc.set("schema", obs::Json::str("plum-run/1"))
          .set("name",
               obs::Json::str(bench_name + " P=" + std::to_string(P)))
          .set("trace", fw.trace().to_json())
          .set("metrics", fw.metrics().to_json());
      const std::string run_path = base + "/RUN_" + bench_name + ".json";
      std::ofstream run_out(run_path);
      run_out << run_doc.dump(2) << '\n';
      if (!run_out) {
        std::fprintf(stderr, "failed to write %s\n", run_path.c_str());
        trace_written = false;
      }

      // plum-replay/1: the measured timing book for this run. Feed it back
      // through FrameworkOptions::replay_path to re-run the calibration
      // control loop deterministically (wall-clock content, so it is a
      // side artifact like TRACE_*, never a baseline).
      const std::string replay_path =
          base + "/REPLAY_" + bench_name + ".json";
      if (!fw.replay_log().save(replay_path)) {
        std::fprintf(stderr, "failed to write %s\n", replay_path.c_str());
        trace_written = false;
      }

      obs::Json gate_doc = obs::Json::object();
      gate_doc.set("schema", obs::Json::str("plum-gate-audit/1"))
          .set("records", obs::gate_audit_json(fw.trace().gate_records()));
      const std::string gate_path = base + "/GATE_" + bench_name + ".json";
      std::ofstream gate_out(gate_path);
      gate_out << gate_doc.dump(2) << '\n';
      if (!gate_out) {
        std::fprintf(stderr, "failed to write %s\n", gate_path.c_str());
        trace_written = false;
      }
    }
  }

  std::cout << "Distributed Fig. 1 cycle ("
            << (cli.weak ? "weak scaling: fixed work per rank"
                         : "strong scaling: fixed mesh")
            << ", remap before subdivision, greedy mapper), engine threads = "
            << cli.threads
            << ", transport = " << rt::transport_kind_name(cli.transport)
            << "\n";
  table.print(std::cout);
  if (cli.weak) {
    std::cout << "\nViability check (paper Figs. 7/8): with fixed work per "
                 "rank, TotalV/MaxV, post-remap imbalance, and\ncritical-path "
                 "wait fractions must stay flat from P=64 to P=256.\n";
  } else {
    std::cout << "\nViability check: subdivision-work imbalance stays near 1 "
                 "after an accepted remap,\nand ledger traffic grows with P "
                 "far slower than the per-rank work shrinks.\n";
  }
  if (report.write().empty() || !trace_written) return 1;
  return 0;
}
