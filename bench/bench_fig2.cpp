// Reproduces Fig. 2: a 4-processor similarity matrix before and after
// processor reassignment with (b) the optimal MWBG algorithm and TotalV
// metric, (c) the greedy heuristic and TotalV, and (d) the optimal BMCM
// algorithm and MaxV, reporting Ctotal/Ntotal and Cmax/Nmax for each.
//
// The matrix entries in the scanned paper are partially illegible; the
// matrix below is a reconstruction chosen to reproduce the *published
// derived quantities* as closely as possible: total weight 755, optimal
// objective 305 vs heuristic 280 (the worked example under Theorem 1), and
// the three mappers disagreeing exactly as in the figure: the heuristic
// close to optimal on TotalV, BMCM trading total volume for the smallest
// bottleneck.

#include <iostream>

#include "io/table.hpp"
#include "remap/mapping.hpp"
#include "remap/volume.hpp"

int main() {
  using namespace plum;

  // Reconstruction of Fig. 2(a): 4 processors x 4 new partitions. Found by
  // constrained search against the published derived quantities; it matches
  // the paper exactly on total weight (755), the full optimal-MWBG row
  // (F=305, Ctotal=450, Ntotal=6, Cmax=260, Nmax=3) and the heuristic's
  // F=280 / Ctotal=475 / Ntotal=6 / Nmax=3 (Cmax within 2%). On this matrix
  // several assignments tie at the optimal MaxV bottleneck, so the BMCM row
  // depends on tie-breaking and can coincide with the heuristic's.
  remap::SimilarityMatrix S(4, 4);
  const Weight entries[4][4] = {
      {100, 55, 0, 0},
      {80, 10, 0, 0},
      {0, 95, 105, 70},
      {80, 0, 95, 65},
  };
  for (Rank i = 0; i < 4; ++i) {
    for (Rank j = 0; j < 4; ++j) S.at(i, j) = entries[i][j];
  }
  std::cout << "Fig. 2(a): similarity matrix before reassignment\n";
  io::print_similarity(std::cout, S);
  Weight total = 0;
  for (Rank i = 0; i < 4; ++i) total += S.row_sum(i);
  std::cout << "total weight: " << total << " (paper: 755)\n\n";

  struct Case {
    const char* label;
    remap::Assignment assign;
  };
  const Case cases[] = {
      {"(b) optimal MWBG, TotalV", remap::map_optimal_mwbg(S)},
      {"(c) heuristic MWBG, TotalV", remap::map_heuristic_greedy(S)},
      {"(d) optimal BMCM, MaxV", remap::map_optimal_bmcm(S)},
  };

  io::Table t({"case", "objective_F", "Ctotal", "Ntotal", "Cmax", "Nmax"});
  for (const auto& c : cases) {
    std::cout << c.label << ":\n";
    io::print_similarity(std::cout, S, &c.assign.part_to_proc);
    const auto vol = remap::evaluate_assignment(S, c.assign);
    t.add_row({c.label, io::Table::fmt(std::int64_t{c.assign.objective}),
               io::Table::fmt(std::int64_t{vol.total_elems}),
               io::Table::fmt(std::int64_t{vol.total_sets}),
               io::Table::fmt(std::int64_t{vol.bottleneck_elems}),
               io::Table::fmt(std::int64_t{vol.bottleneck_sets})});
    std::cout << '\n';
  }
  t.print(std::cout);
  std::cout << "\npaper values: (b) Ctotal=450 Ntotal=6 Cmax=260 Nmax=3, "
               "F=305; (c) Ctotal=475 Ntotal=6 Cmax=255 Nmax=3, F=280;\n"
               "(d) Ctotal=545 Ntotal=7 Cmax=245 Nmax=3. Sum F + Ctotal = "
               "755 in every column, as here.\n";
  return 0;
}
