// plum-report: renders plum observability JSON into a human-readable run
// report. Accepts any mix of:
//
//   RUN_*.json    — "plum-run/1" documents ({"trace": ..., "metrics": ...})
//                   written by bench_distributed,
//   BENCH_*.json  — "plum-bench/1" / "plum-bench/2" reports,
//   GATE_*.json   — "plum-gate-audit/1" standalone gate logs,
//   REPLAY_*.json — "plum-replay/1" recorded timing books,
//   SCOPE streams — "plum-scope/1" NDJSON live-run streams (one record
//                   per cycle; rendered as a cycle timeline),
//   POSTMORTEM_*.json — "plum-postmortem/1" crash dumps (reason, last-N
//                   ring events per rank, depot telemetry, child stderr),
//   bare trace documents (obs::TraceRecorder::to_json() output).
//
// For each input it prints the per-phase table, the P x P comm matrix with
// row/column sums, the per-tag-class traffic split, the gauge timelines
// (imbalance / edge cut / remap volumes), the gate history with
// predicted-vs-measured drift, and the calibrated cost-model constants
// ("plum-calibration/1" sections, sim/calibration.hpp).
//
//   plum-report bench-json/RUN_bench_distributed.json
//   plum-report bench-json/BENCH_*.json
//
// Exit status: 0 on success, 1 when any input fails to parse or has none of
// the recognized shapes, 2 on usage/IO errors.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/scope.hpp"

namespace {

using plum::obs::Json;

double num_or(const Json* v, double fallback) {
  if (!v || !v->is_number()) return fallback;
  return v->kind() == Json::Kind::kInt ? static_cast<double>(v->as_int())
                                       : v->as_double();
}

std::int64_t int_or(const Json* v, std::int64_t fallback) {
  return v && v->kind() == Json::Kind::kInt ? v->as_int() : fallback;
}

std::string str_or(const Json* v, const std::string& fallback) {
  return v && v->is_string() ? v->as_string() : fallback;
}

void print_rule(char c = '-', int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

// --- phases ----------------------------------------------------------------

void print_phases(const Json& phases) {
  if (!phases.is_array() || phases.size() == 0) return;
  std::printf("\nPhases:\n");
  std::printf("  %-22s %10s %14s %10s %12s %12s\n", "phase", "steps",
              "compute", "msgs", "bytes", "modeled_s");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Json& ph = phases.at(i);
    if (!ph.is_object()) continue;
    const int depth = static_cast<int>(int_or(ph.find("depth"), 0));
    std::string name(static_cast<std::size_t>(2 * depth), ' ');
    name += str_or(ph.find("name"), "?");
    std::printf("  %-22s %10lld %14lld %10lld %12lld %12.6f",
                name.c_str(),
                static_cast<long long>(int_or(ph.find("supersteps"), 0)),
                static_cast<long long>(int_or(ph.find("compute_units"), 0)),
                static_cast<long long>(int_or(ph.find("msgs_sent"), 0)),
                static_cast<long long>(int_or(ph.find("bytes_sent"), 0)),
                num_or(ph.find("modeled_s"), 0));
    if (const Json* wall = ph.find("wall_s")) {
      std::printf("  wall %.6fs", num_or(wall, 0));
    }
    std::printf("\n");
  }
}

// --- comm matrix -----------------------------------------------------------

void print_comm_matrix(const Json& cm) {
  const std::int64_t nranks = int_or(cm.find("nranks"), 0);
  const Json* bytes = cm.find("bytes");
  if (nranks <= 0 || !bytes || !bytes->is_array()) return;
  std::printf("\nComm matrix (bytes, row = sender, col = receiver), P = %lld:\n",
              static_cast<long long>(nranks));
  std::printf("  %6s", "");
  for (std::int64_t to = 0; to < nranks; ++to) {
    std::printf(" %10lld", static_cast<long long>(to));
  }
  std::printf(" %12s\n", "row_sum");
  std::vector<std::int64_t> col_sums(static_cast<std::size_t>(nranks), 0);
  std::int64_t total = 0;
  for (std::size_t from = 0; from < bytes->size(); ++from) {
    const Json& row = bytes->at(from);
    std::printf("  %6zu", from);
    std::int64_t row_sum = 0;
    for (std::size_t to = 0; to < row.size(); ++to) {
      const std::int64_t v = int_or(&row.at(to), 0);
      row_sum += v;
      col_sums[to] += v;
      std::printf(" %10lld", static_cast<long long>(v));
    }
    total += row_sum;
    std::printf(" %12lld\n", static_cast<long long>(row_sum));
  }
  std::printf("  %6s", "col");
  for (const std::int64_t c : col_sums) {
    std::printf(" %10lld", static_cast<long long>(c));
  }
  std::printf(" %12lld\n", static_cast<long long>(total));
}

void print_comm_by_class(const Json& by_class) {
  if (!by_class.is_object() || by_class.size() == 0) return;
  std::printf("\nTraffic by tag class:\n");
  for (const auto& [cls, t] : by_class.items()) {
    std::printf("  %-12s %10lld msgs %14lld bytes\n", cls.c_str(),
                static_cast<long long>(int_or(t.find("msgs"), 0)),
                static_cast<long long>(int_or(t.find("bytes"), 0)));
  }
}

// --- metrics / gauges ------------------------------------------------------

void print_metrics(const Json& metrics) {
  if (!metrics.is_object() || metrics.size() == 0) return;
  std::printf("\nMetrics:\n");
  for (const auto& [name, v] : metrics.items()) {
    if (v.is_object()) {
      // Fixed-bound histogram (MetricsRegistry::to_json() rendering).
      const Json* wall = v.find("wall");
      const bool is_wall =
          wall && wall->kind() == Json::Kind::kBool && wall->as_bool();
      std::printf("  %-26s hist n=%-6lld p50=%-10.6g p95=%-10.6g max=%-10.6g%s\n",
                  name.c_str(),
                  static_cast<long long>(int_or(v.find("count"), 0)),
                  num_or(v.find("p50"), 0), num_or(v.find("p95"), 0),
                  num_or(v.find("max"), 0), is_wall ? "  (wall)" : "");
      continue;
    }
    if (v.is_array()) {
      std::printf("  %-26s [", name.c_str());
      for (std::size_t i = 0; i < v.size(); ++i) {
        const Json& s = v.at(i);
        if (s.kind() == Json::Kind::kInt) {
          std::printf("%s%lld", i ? ", " : "",
                      static_cast<long long>(s.as_int()));
        } else {
          std::printf("%s%.4f", i ? ", " : "", num_or(&s, 0));
        }
      }
      std::printf("]  (%zu cycles)\n", v.size());
    } else if (v.kind() == Json::Kind::kInt) {
      std::printf("  %-26s %lld\n", name.c_str(),
                  static_cast<long long>(v.as_int()));
    } else if (v.is_number()) {
      std::printf("  %-26s %.6f\n", name.c_str(), v.as_double());
    }
  }
}

// --- critical path (plum-path) ---------------------------------------------

void print_critical_path(const Json& cp) {
  if (!cp.is_object()) return;
  std::printf("\nCritical path (%s):\n",
              str_or(cp.find("source"), "?").c_str());
  std::printf("  critical %.6g  busy %.6g  wait %.6g  (wait fraction %.1f%%)\n",
              num_or(cp.find("critical_total"), 0),
              num_or(cp.find("busy_total"), 0),
              num_or(cp.find("wait_total"), 0),
              100.0 * num_or(cp.find("wait_fraction"), 0));

  const Json* ranks = cp.find("ranks");
  if (ranks && ranks->is_array() && ranks->size() > 0) {
    std::printf("  %6s %14s %14s %8s %10s\n", "rank", "busy", "wait",
                "wait%", "crit_steps");
    for (std::size_t r = 0; r < ranks->size(); ++r) {
      const Json& rk = ranks->at(r);
      if (!rk.is_object()) continue;
      std::printf("  %6lld %14.6g %14.6g %7.1f%% %10lld\n",
                  static_cast<long long>(int_or(rk.find("rank"), 0)),
                  num_or(rk.find("busy"), 0), num_or(rk.find("wait"), 0),
                  100.0 * num_or(rk.find("wait_fraction"), 0),
                  static_cast<long long>(int_or(rk.find("steps_critical"), 0)));
    }
  }

  // Top straggler phases: the phases whose critical rank left the most
  // aggregate wait behind (the paper's per-phase bottleneck view).
  const Json* phases = cp.find("phases");
  if (phases && phases->is_array() && phases->size() > 0) {
    std::vector<std::size_t> order(phases->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double wa = num_or(phases->at(a).find("wait"), 0);
      const double wb = num_or(phases->at(b).find("wait"), 0);
      if (wa != wb) return wa > wb;
      return a < b;
    });
    const std::size_t topk = std::min<std::size_t>(5, order.size());
    std::printf("  top %zu straggler phases (by aggregate wait):\n", topk);
    for (std::size_t i = 0; i < topk; ++i) {
      const Json& ph = phases->at(order[i]);
      if (!ph.is_object()) continue;
      // Supersteps recorded outside any PhaseScope group under "".
      std::string name = str_or(ph.find("name"), "?");
      if (name.empty()) name = "(unphased)";
      std::printf("    %-22s wait %-12.6g (%5.1f%%)  worst rank %lld "
                  "(critical in %lld/%lld steps)\n", name.c_str(),
                  num_or(ph.find("wait"), 0),
                  100.0 * num_or(ph.find("wait_fraction"), 0),
                  static_cast<long long>(int_or(ph.find("worst_rank"), -1)),
                  static_cast<long long>(int_or(ph.find("worst_rank_steps"), 0)),
                  static_cast<long long>(int_or(ph.find("supersteps"), 0)));
    }
  }
}

// Per-rank skew summary over the measured per-superstep rank_seconds: total
// step seconds per rank, reported as min/median/max plus the worst rank.
// Only full trace documents carry "seconds"; deterministic views skip this.
void print_rank_skew(const Json& supersteps) {
  if (!supersteps.is_array() || supersteps.size() == 0) return;
  std::vector<double> totals;
  for (std::size_t i = 0; i < supersteps.size(); ++i) {
    const Json* ranks = supersteps.at(i).find("ranks");
    if (!ranks || !ranks->is_array()) continue;
    if (ranks->size() > totals.size()) totals.resize(ranks->size(), 0.0);
    for (std::size_t r = 0; r < ranks->size(); ++r) {
      const Json* s = ranks->at(r).find("seconds");
      if (s && s->is_number()) totals[r] += s->as_double();
    }
  }
  if (totals.empty()) return;
  bool any = false;
  for (const double t : totals) any = any || t > 0;
  if (!any) return;

  std::size_t worst = 0;
  for (std::size_t r = 1; r < totals.size(); ++r) {
    if (totals[r] > totals[worst]) worst = r;
  }
  std::vector<double> sorted = totals;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::printf("\nPer-rank step seconds (measured): min %.6f  median %.6f  "
              "max %.6f  worst rank %zu\n",
              sorted.front(), median, sorted.back(), worst);
}

// --- gate audit ------------------------------------------------------------

void print_gate_audit(const Json& audit) {
  if (!audit.is_array() || audit.size() == 0) return;
  std::printf("\nGate history:\n");
  std::printf("  %5s %-9s %-7s %8s %8s %12s %12s %12s %8s\n", "cycle",
              "decision", "metric", "imb_old", "imb_new", "gain_s", "cost_s",
              "moved_B", "drift");
  for (std::size_t i = 0; i < audit.size(); ++i) {
    const Json& rec = audit.at(i);
    if (!rec.is_object()) continue;
    const Json* evaluated = rec.find("evaluated");
    const Json* accepted = rec.find("accepted");
    const bool ev = evaluated && evaluated->kind() == Json::Kind::kBool &&
                    evaluated->as_bool();
    const bool acc = accepted && accepted->kind() == Json::Kind::kBool &&
                     accepted->as_bool();
    const char* decision = !ev ? "skipped" : (acc ? "ACCEPT" : "reject");
    std::printf("  %5lld %-9s %-7s %8.4f %8.4f %12.6f %12.6f %12lld %7.1f%%\n",
                static_cast<long long>(int_or(rec.find("cycle"), 0)), decision,
                str_or(rec.find("metric"), "?").c_str(),
                num_or(rec.find("imbalance_old"), 0),
                num_or(rec.find("imbalance_new"), 0),
                num_or(rec.find("gain_s"), 0), num_or(rec.find("cost_s"), 0),
                static_cast<long long>(
                    int_or(rec.find("measured_move_bytes"), 0)),
                100.0 * num_or(rec.find("drift"), 0));
  }
}

// --- calibration -----------------------------------------------------------

void print_calibration(const Json& cal) {
  if (!cal.is_object()) return;
  const Json* en = cal.find("enabled");
  const bool enabled =
      en && en->kind() == Json::Kind::kBool && en->as_bool();
  std::printf("\nCalibration (%s): %lld cycles, %lld remap samples, "
              "mean |drift| %.1f%%\n",
              enabled ? "enabled" : "disabled",
              static_cast<long long>(int_or(cal.find("cycles_observed"), 0)),
              static_cast<long long>(int_or(cal.find("remap_samples"), 0)),
              100.0 * num_or(cal.find("mean_abs_drift"), 0));
  const Json* p = cal.find("params");
  if (p && p->is_object()) {
    std::printf("  t_iter %.3g  t_refine %.3g  t_lat %.3g  t_setup %.3g\n",
                num_or(p->find("t_iter"), 0), num_or(p->find("t_refine"), 0),
                num_or(p->find("t_lat"), 0), num_or(p->find("t_setup"), 0));
    std::printf("  bytes/element %.1f  bytes/set %.1f  gate margin %.2f\n",
                num_or(p->find("bytes_per_element"), 0),
                num_or(p->find("bytes_per_set"), 0),
                num_or(p->find("gate_margin"), 0));
  }
  const Json* ws = cal.find("rank_weight_scale");
  if (ws && ws->is_array() && ws->size() > 0) {
    double lo = num_or(&ws->at(0), 1), hi = lo;
    for (std::size_t r = 1; r < ws->size(); ++r) {
      const double s = num_or(&ws->at(r), 1);
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::printf("  Wcomp blend factors: %zu ranks in [%.3f, %.3f]\n",
                ws->size(), lo, hi);
  }
}

int report_replay_doc(const Json& doc) {
  const Json* cycles = doc.find("cycles");
  if (!cycles || !cycles->is_array()) {
    std::fprintf(stderr, "replay book missing \"cycles\" array\n");
    return 1;
  }
  std::printf("Replay book: %zu cycles\n", cycles->size());
  if (cycles->size() == 0) return 0;
  std::printf("  %5s %12s %12s %12s %6s\n", "cycle", "solve_s", "remap_s",
              "subdiv_s", "ranks");
  for (std::size_t i = 0; i < cycles->size(); ++i) {
    const Json& c = cycles->at(i);
    if (!c.is_object()) continue;
    const Json* rs = c.find("rank_solve_seconds");
    std::printf("  %5lld %12.6f %12.6f %12.6f %6zu\n",
                static_cast<long long>(int_or(c.find("cycle"),
                                              static_cast<std::int64_t>(i))),
                num_or(c.find("solve_seconds"), 0),
                num_or(c.find("remap_seconds"), 0),
                num_or(c.find("subdivide_seconds"), 0),
                rs && rs->is_array() ? rs->size() : std::size_t{0});
  }
  return 0;
}

// --- plum-scope (flight recorder / stream / postmortem) --------------------

void print_depot(const Json& depot) {
  if (!depot.is_array() || depot.size() == 0) return;
  std::printf("\nDepot telemetry (per rank-group child):\n");
  std::printf("  %5s %10s %10s %10s %10s %12s %12s %8s %8s\n", "group",
              "frames_in", "frames_out", "reads", "writes", "peak_buf_B",
              "stall_ms", "rss_MB", "hwm_MB");
  for (std::size_t g = 0; g < depot.size(); ++g) {
    const Json& d = depot.at(g);
    if (!d.is_object()) continue;
    std::printf(
        "  %5lld %10lld %10lld %10lld %10lld %12lld %12.3f %8.1f %8.1f\n",
        static_cast<long long>(int_or(d.find("group"),
                                      static_cast<std::int64_t>(g))),
        static_cast<long long>(int_or(d.find("frames_in"), 0)),
        static_cast<long long>(int_or(d.find("frames_out"), 0)),
        static_cast<long long>(int_or(d.find("read_calls"), 0)),
        static_cast<long long>(int_or(d.find("write_calls"), 0)),
        static_cast<long long>(int_or(d.find("peak_buffer_bytes"), 0)),
        static_cast<double>(int_or(d.find("stall_ns"), 0)) / 1e6,
        static_cast<double>(int_or(d.find("vm_rss_bytes"), 0)) / 1e6,
        static_cast<double>(int_or(d.find("vm_hwm_bytes"), 0)) / 1e6);
  }
}

// --- plum-mem (heap profile) ------------------------------------------------

/// The plum-heap/1 section: per-phase allocation table (rank rows summed),
/// top-churn ranking, and per-row live/RSS gauges when present.
void print_heap(const Json& heap) {
  const Json* phases = heap.find("phases");
  const Json* rows = heap.find("rows");
  if (!phases || !phases->is_array() || !rows || !rows->is_array()) return;

  struct PhaseSum {
    std::string name;
    std::int64_t allocs = 0;
    std::int64_t frees = 0;
    std::int64_t bytes = 0;
    std::int64_t peak = 0;  ///< max over rows — rows peak independently
  };
  std::vector<PhaseSum> sums(phases->size() + 1);
  for (std::size_t p = 0; p < phases->size(); ++p) {
    sums[p].name = str_or(&phases->at(p), "?");
  }
  sums.back().name = "(unphased)";

  auto fold = [](PhaseSum& dst, const Json& cell) {
    dst.allocs += int_or(cell.find("allocs"), 0);
    dst.frees += int_or(cell.find("frees"), 0);
    dst.bytes += int_or(cell.find("bytes"), 0);
    dst.peak = std::max(dst.peak, int_or(cell.find("peak_live"), 0));
  };
  for (std::size_t r = 0; r < rows->size(); ++r) {
    const Json& row = rows->at(r);
    const Json* by_phase = row.find("phases");
    for (std::size_t p = 0; by_phase && by_phase->is_array() &&
                            p < by_phase->size() && p < phases->size();
         ++p) {
      fold(sums[p], by_phase->at(p));
    }
    if (const Json* up = row.find("unphased")) fold(sums.back(), *up);
  }

  std::printf("\nHeap profile (plum-heap/1, %lld ranks + host):\n",
              static_cast<long long>(int_or(heap.find("nranks"), 0)));
  std::printf("  %-14s %10s %10s %14s %14s\n", "phase", "allocs", "frees",
              "bytes_req", "peak_live_B");
  for (const PhaseSum& s : sums) {
    if (s.allocs == 0 && s.frees == 0 && s.bytes == 0) continue;
    std::printf("  %-14s %10lld %10lld %14lld %14lld\n", s.name.c_str(),
                static_cast<long long>(s.allocs),
                static_cast<long long>(s.frees),
                static_cast<long long>(s.bytes),
                static_cast<long long>(s.peak));
  }

  // Top churn: the phases paying the most allocation traffic (by bytes,
  // allocs as tiebreak) — the first places to point an arena at.
  std::vector<const PhaseSum*> rank;
  for (const PhaseSum& s : sums) {
    if (s.allocs > 0) rank.push_back(&s);
  }
  std::sort(rank.begin(), rank.end(),
            [](const PhaseSum* a, const PhaseSum* b) {
              if (a->bytes != b->bytes) return a->bytes > b->bytes;
              if (a->allocs != b->allocs) return a->allocs > b->allocs;
              return a->name < b->name;
            });
  if (!rank.empty()) {
    std::printf("  top churn:");
    for (std::size_t i = 0; i < rank.size() && i < 3; ++i) {
      std::printf("%s %zu. %s (%lld B / %lld allocs)", i ? " " : "", i + 1,
                  rank[i]->name.c_str(),
                  static_cast<long long>(rank[i]->bytes),
                  static_cast<long long>(rank[i]->allocs));
    }
    std::printf("\n");
  }

  std::int64_t live_total = 0;
  for (std::size_t r = 0; r < rows->size(); ++r) {
    live_total += int_or(rows->at(r).find("live_bytes"), 0);
  }
  if (live_total != 0) {
    std::printf("  live tracked bytes: %lld\n",
                static_cast<long long>(live_total));
  }
  if (const Json* rss = heap.find("rss")) {
    std::printf("  rss %.1f MB  hwm %.1f MB  (wall)\n",
                static_cast<double>(int_or(rss->find("vm_rss_bytes"), 0)) /
                    1e6,
                static_cast<double>(int_or(rss->find("vm_hwm_bytes"), 0)) /
                    1e6);
  }
}

/// One plum-scope/1 record as one timeline row.
void print_scope_record(const Json& rec) {
  const Json* gate = rec.find("gate");
  const Json* ev = gate ? gate->find("evaluated") : nullptr;
  const Json* acc = gate ? gate->find("accepted") : nullptr;
  const bool evaluated =
      ev && ev->kind() == Json::Kind::kBool && ev->as_bool();
  const bool accepted =
      acc && acc->kind() == Json::Kind::kBool && acc->as_bool();
  const char* decision =
      !evaluated ? "skipped" : (accepted ? "ACCEPT" : "reject");

  // Straggler summary from the per-rank busy/wait pairs.
  std::int64_t busy_total = 0, wait_total = 0, worst_wait = -1;
  std::int64_t worst_rank = -1;
  const Json* ranks = rec.find("ranks");
  const std::size_t nranks = ranks && ranks->is_array() ? ranks->size() : 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    const Json& rk = ranks->at(r);
    const std::int64_t busy = int_or(rk.find("busy"), 0);
    const std::int64_t wait = int_or(rk.find("wait"), 0);
    busy_total += busy;
    wait_total += wait;
    if (wait > worst_wait) {
      worst_wait = wait;
      worst_rank = int_or(rk.find("rank"), static_cast<std::int64_t>(r));
    }
  }
  const double denom = static_cast<double>(busy_total + wait_total);
  std::printf("  %5lld %6lld %9lld %9.4f %-8s %10.6f %6.1f%% %10lld\n",
              static_cast<long long>(int_or(rec.find("cycle"), 0)),
              static_cast<long long>(int_or(rec.find("supersteps"), 0)),
              static_cast<long long>(int_or(rec.find("elements"), 0)),
              num_or(rec.find("imbalance"), 0), decision,
              num_or(rec.find("wall_s"), 0),
              denom > 0 ? 100.0 * static_cast<double>(wait_total) / denom : 0.0,
              static_cast<long long>(worst_rank));
}

void print_scope_header() {
  std::printf("  %5s %6s %9s %9s %-8s %10s %6s %10s\n", "cycle", "steps",
              "elems", "imb", "gate", "wall_s", "wait%", "worst_rank");
}

int report_scope_stream(const std::string& text, const std::string& path) {
  std::printf("Scope stream (plum-scope/1 cycle timeline):\n");
  print_scope_header();
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  int failures = 0;
  const Json* last_depot = nullptr;
  Json last_record;
  bool have_record = false;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json rec;
    std::string err;
    if (!Json::parse(line, &rec, &err)) {
      std::fprintf(stderr, "%s:%zu: parse error: %s\n", path.c_str(), lineno,
                   err.c_str());
      ++failures;
      continue;
    }
    err = plum::obs::validate_scope_record(rec);
    if (!err.empty()) {
      std::fprintf(stderr, "%s:%zu: invalid record: %s\n", path.c_str(),
                   lineno, err.c_str());
      ++failures;
      continue;
    }
    print_scope_record(rec);
    last_record = std::move(rec);
    have_record = true;
  }
  if (have_record) {
    last_depot = last_record.find("depot");
    if (last_depot) print_depot(*last_depot);
    std::printf("\nRun: %s\n",
                str_or(last_record.find("name"), "(unnamed)").c_str());
  }
  return failures == 0 && have_record ? 0 : 1;
}

int report_postmortem_doc(const Json& doc) {
  const std::string err = plum::obs::validate_postmortem(doc);
  if (!err.empty()) {
    std::fprintf(stderr, "invalid postmortem: %s\n", err.c_str());
    return 1;
  }
  std::printf("Postmortem: %s\n", str_or(doc.find("name"), "?").c_str());
  const Json* reason = doc.find("reason");
  std::printf("  assertion: %s\n", str_or(reason->find("expr"), "?").c_str());
  std::printf("  at:        %s:%lld\n", str_or(reason->find("file"), "?").c_str(),
              static_cast<long long>(int_or(reason->find("line"), 0)));
  const std::string msg = str_or(reason->find("msg"), "");
  if (!msg.empty()) std::printf("  message:   %s\n", msg.c_str());

  if (const Json* scope = doc.find("scope")) {
    const Json* phases = scope->find("phases");
    const Json* ranks = scope->find("ranks");
    std::printf("\nFlight recorder (last events per rank, oldest first; "
                "ring capacity %lld):\n",
                static_cast<long long>(int_or(scope->find("capacity"), 0)));
    for (std::size_t r = 0; ranks && r < ranks->size(); ++r) {
      const Json& rk = ranks->at(r);
      const Json* events = rk.find("events");
      std::printf("  rank %lld: %lld events recorded, %zu surviving\n",
                  static_cast<long long>(int_or(rk.find("rank"), 0)),
                  static_cast<long long>(int_or(rk.find("written"), 0)),
                  events && events->is_array() ? events->size() : 0);
      if (!events || !events->is_array()) continue;
      // Last 8 events per rank keep the dump readable; the JSON has all.
      const std::size_t n = events->size();
      const std::size_t first = n > 8 ? n - 8 : 0;
      for (std::size_t k = first; k < n; ++k) {
        const Json& e = events->at(k);
        const std::int64_t phase_id = int_or(e.find("phase"), -1);
        std::string phase = "(none)";
        if (phases && phases->is_array() && phase_id >= 0 &&
            static_cast<std::size_t>(phase_id) < phases->size()) {
          phase = str_or(&phases->at(static_cast<std::size_t>(phase_id)),
                         "(none)");
        }
        std::printf("    step %-6lld %-12s ticks %-10lld",
                    static_cast<long long>(int_or(e.find("step"), 0)),
                    phase.c_str(),
                    static_cast<long long>(int_or(e.find("ticks"), 0)));
        if (const Json* wall_ns = e.find("wall_ns")) {
          std::printf(" wall %.3fms",
                      static_cast<double>(int_or(wall_ns, 0)) / 1e6);
        }
        std::printf("\n");
      }
    }
  }
  if (const Json* depot = doc.find("depot")) print_depot(*depot);
  const std::string child_stderr = str_or(doc.find("child_stderr"), "");
  if (!child_stderr.empty()) {
    std::printf("\nCaptured child stderr:\n");
    std::istringstream lines(child_stderr);
    std::string line;
    while (std::getline(lines, line)) {
      std::printf("  | %s\n", line.c_str());
    }
  }
  if (const Json* notes = doc.find("notes")) {
    if (notes->is_object() && notes->size() > 0) {
      std::printf("\nCrash notes:\n");
      for (const auto& [key, text] : notes->items()) {
        std::printf("  %-16s %s\n", key.c_str(),
                    str_or(&text, "?").c_str());
      }
    }
  }
  return 0;
}

// --- document shapes -------------------------------------------------------

void print_trace_doc(const Json& trace) {
  if (const Json* phases = trace.find("phases")) print_phases(*phases);
  if (const Json* ss = trace.find("supersteps")) {
    if (ss->is_array()) {
      std::printf("\nSupersteps: %zu\n", ss->size());
      print_rank_skew(*ss);
    }
  }
  if (const Json* cp = trace.find("critical_path")) print_critical_path(*cp);
  if (const Json* cpw = trace.find("critical_path_wall")) {
    print_critical_path(*cpw);
  }
  if (const Json* cm = trace.find("comm_matrix")) print_comm_matrix(*cm);
  if (const Json* heap = trace.find("heap")) print_heap(*heap);
  if (const Json* depot = trace.find("depot")) print_depot(*depot);
  if (const Json* bc = trace.find("comm_by_class")) print_comm_by_class(*bc);
  if (const Json* ga = trace.find("gate_audit")) print_gate_audit(*ga);
  if (const Json* cal = trace.find("calibration")) print_calibration(*cal);
}

int report_run_doc(const Json& doc) {
  std::printf("Run: %s\n", str_or(doc.find("name"), "(unnamed)").c_str());
  if (const Json* trace = doc.find("trace")) print_trace_doc(*trace);
  if (const Json* metrics = doc.find("metrics")) print_metrics(*metrics);
  return 0;
}

int report_bench_doc(const Json& doc) {
  const std::string err = plum::obs::validate_bench_report(doc);
  if (!err.empty()) {
    std::fprintf(stderr, "invalid bench report: %s\n", err.c_str());
    return 1;
  }
  std::printf("Bench: %s\n", str_or(doc.find("bench"), "?").c_str());
  const Json* runs = doc.find("runs");
  for (std::size_t i = 0; i < runs->size(); ++i) {
    const Json& run = runs->at(i);
    std::printf("\nRun %zu: case %s, P = %lld\n", i,
                str_or(run.find("case"), "?").c_str(),
                static_cast<long long>(int_or(run.find("P"), 0)));
    if (const Json* metrics = run.find("metrics")) print_metrics(*metrics);
    if (const Json* phases = run.find("phases")) print_phases(*phases);
    if (const Json* cp = run.find("critical_path")) print_critical_path(*cp);
    if (const Json* cm = run.find("comm_matrix")) print_comm_matrix(*cm);
    if (const Json* ga = run.find("gate_audit")) print_gate_audit(*ga);
    if (const Json* cal = run.find("calibration")) print_calibration(*cal);
  }
  return 0;
}

int report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Json doc;
  std::string err;
  if (!Json::parse(buf.str(), &doc, &err)) {
    // Multi-record plum-scope/1 streams are NDJSON: retry line by line
    // before reporting the whole-document parse error.
    const std::string text = buf.str();
    Json first;
    std::string line_err;
    const std::size_t eol = text.find('\n');
    if (eol != std::string::npos &&
        Json::parse(text.substr(0, eol), &first, &line_err) &&
        first.is_object() &&
        str_or(first.find("schema"), "") == "plum-scope/1") {
      print_rule('=');
      std::printf("%s\n", path.c_str());
      print_rule('=');
      return report_scope_stream(text, path);
    }
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (!doc.is_object()) {
    std::fprintf(stderr, "%s: top-level value is not an object\n",
                 path.c_str());
    return 1;
  }

  print_rule('=');
  std::printf("%s\n", path.c_str());
  print_rule('=');

  const std::string schema = str_or(doc.find("schema"), "");
  if (schema == "plum-run/1") return report_run_doc(doc);
  if (schema == "plum-postmortem/1") return report_postmortem_doc(doc);
  if (schema == "plum-scope/1") {
    // Single-record stream that parsed as one document.
    return report_scope_stream(buf.str(), path);
  }
  if (schema.rfind("plum-bench/", 0) == 0) return report_bench_doc(doc);
  if (schema == "plum-replay/1") return report_replay_doc(doc);
  if (schema == "plum-calibration/1") {
    print_calibration(doc);
    return 0;
  }
  if (schema == "plum-gate-audit/1") {
    if (const Json* records = doc.find("records")) {
      print_gate_audit(*records);
      return 0;
    }
    std::fprintf(stderr, "%s: missing \"records\"\n", path.c_str());
    return 1;
  }
  if (doc.find("phases") && doc.find("supersteps")) {
    // Bare TraceRecorder::to_json() document.
    print_trace_doc(doc);
    return 0;
  }
  std::fprintf(stderr, "%s: unrecognized document shape\n", path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: plum-report <run-or-bench-or-trace.json> [...]\n");
    return 2;
  }
  int status = 0;
  for (int i = 1; i < argc; ++i) {
    const int rc = report_file(argv[i]);
    if (rc > status) status = rc;
    if (i + 1 < argc) std::printf("\n");
  }
  return status;
}
