#!/usr/bin/env sh
# Runs both static-analysis passes — plum-lint (rank-safety & determinism,
# token-stream checks) and plum-scale (replicated-state & scalability,
# project-wide index) — and merges their reports into one JSON artifact.
#
# Usage: tools/lint_all.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build tree holding the tools (default: build)
#   OUT_JSON   merged report path (default: plum_static_analysis.json)
#
# Exit status: 0 when both passes are clean, 1 when either found
# unsuppressed/unannotated diagnostics, 2 on usage/build errors.
set -u

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-plum_static_analysis.json}"
LINT="$BUILD_DIR/tools/plum-lint/plum-lint"
SCALE="$BUILD_DIR/tools/plum-lint/plum-scale"

for tool in "$LINT" "$SCALE"; do
  if [ ! -x "$tool" ]; then
    echo "lint_all: missing $tool (build the plum-lint and plum-scale targets first)" >&2
    exit 2
  fi
done

TMPDIR_ALL="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_ALL"' EXIT

# plum-lint additionally covers the report tools; plum-scale's scaling
# contract applies to the library sources under src/.
"$LINT" --json "$TMPDIR_ALL/lint.json" src tools/plum-report tools/plum-diff
lint_status=$?
"$SCALE" --json "$TMPDIR_ALL/scale.json" src
scale_status=$?

# Merge without jq: both reports are self-contained JSON objects, so the
# combined artifact just nests them under their pass names.
{
  printf '{\n"schema": "plum-static-analysis/1",\n"plum_lint": '
  cat "$TMPDIR_ALL/lint.json"
  printf ',\n"plum_scale": '
  cat "$TMPDIR_ALL/scale.json"
  printf '\n}\n'
} > "$OUT_JSON"

echo "lint_all: merged report at $OUT_JSON (plum-lint exit $lint_status, plum-scale exit $scale_status)"
if [ "$lint_status" -ne 0 ] || [ "$scale_status" -ne 0 ]; then
  exit 1
fi
exit 0
