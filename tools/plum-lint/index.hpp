#pragma once
// plum-scale phase 1: a lightweight project-wide symbol index. One pass
// over every file collects
//
//   * struct/class definitions with their fields (name + type token text),
//   * free-function definitions with one-level mutation summaries: which
//     parameters the body writes through (non-const references it assigns,
//     increments, or calls a mutating method on),
//   * rank-count names: identifiers that hold "number of ranks" values —
//     declared with type Rank, initialized from an `nranks()` call, or one
//     of the conventional spellings (nranks, P, num_ranks, ...),
//   * replication sites: `std::vector<S>` uses where S is an indexed
//     struct — the struct's state then exists once per element, so any
//     global-mesh-sized field inside S is replicated state.
//
// The index is deliberately token-level (no preprocessing, no template
// instantiation). It exists so phase 2 (scale.cpp) can reason across
// translation units: a helper defined in one file and called from a
// superstep lambda in another still gets its mutation summary applied.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "linter.hpp"
#include "token_util.hpp"

namespace plumlint {

struct FieldInfo {
  std::string name;
  std::string type_text;  ///< type tokens joined with single spaces
  int line = 0;
};

struct StructInfo {
  std::string name;
  std::string file;  ///< file of the defining `{`, not a forward decl
  int line = 0;
  std::vector<FieldInfo> fields;
};

struct FuncInfo {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<std::string> param_names;   ///< in declaration order
  std::vector<std::size_t> mutated_params;  ///< indices into param_names
};

struct ReplicationSite {
  std::string struct_name;  ///< the element type S in vector<S>
  std::string file;
  int line = 0;
};

struct SymbolIndex {
  /// Keyed "Struct" or, for same-name structs in different files,
  /// the first definition wins and later ones append "@<file>".
  std::map<std::string, StructInfo> structs;
  /// All definitions sharing a name (overloads, per-TU statics).
  std::map<std::string, std::vector<FuncInfo>> functions;
  /// Per file: names that hold rank counts in that file. Scoped per file
  /// because short names (`n`, `p`) declared Rank in one TU must not
  /// taint size expressions everywhere else. Conventional spellings
  /// (nranks, num_ranks, ...) count in every file.
  std::map<std::string, std::set<std::string>> rank_count_names;
  std::vector<ReplicationSite> replications;

  [[nodiscard]] bool is_replicated(const std::string& struct_name) const;
  [[nodiscard]] const StructInfo* find_struct(const std::string& name) const;
  /// True if `name` is a rank count within `file` (or conventionally).
  [[nodiscard]] bool is_rank_count(const std::string& file,
                                   const std::string& name) const;
};

/// Builds the index over all files at once. Order-independent: the result
/// is identical however `files` is permuted (tests pin this), so include
/// order across the tree can never change what phase 2 reports.
SymbolIndex build_index(const std::vector<FileInput>& files);

}  // namespace plumlint
