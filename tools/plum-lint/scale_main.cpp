// plum-scale CLI: project-wide replicated-state & scalability analysis.
// Indexes ALL given files together (symbol table first, checks second) and
// exits 0 only when no unannotated diagnostics remain. See scale.hpp.
//
//   plum-scale [--json report.json] [--quiet] [--list-checks] <path>...
//
// Directories are scanned recursively for C++ sources/headers. Exit codes:
// 0 clean, 1 diagnostics found, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scale.hpp"

namespace fs = std::filesystem;

namespace {

bool is_cpp_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: plum-scale [--json FILE] [--quiet] [--list-checks] "
               "<path>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quiet = false;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) return usage();
      json_path = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-checks") {
      for (const auto& c : plumlint::scale_checks()) {
        std::printf("%-36s %s\n", c.name, c.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<plumlint::FileInput> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(root, ec)) {
        if (e.is_regular_file() && is_cpp_file(e.path())) {
          files.push_back({e.path().generic_string(), {}});
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back({root.generic_string(), {}});
    } else {
      std::fprintf(stderr, "plum-scale: no such file or directory: %s\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });
  for (auto& f : files) {
    if (!read_file(f.path, f.content)) {
      std::fprintf(stderr, "plum-scale: cannot read %s\n", f.path.c_str());
      return 2;
    }
  }

  const plumlint::LintResult result = plumlint::scale_files(files);

  if (!quiet) {
    for (const auto& d : result.diagnostics) {
      if (d.suppressed) continue;
      std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.check.c_str(),
                  d.message.c_str());
    }
    std::printf(
        "plum-scale: %d file(s), %d unannotated diagnostic(s), %d "
        "annotated\n",
        result.files_scanned, result.unsuppressed_count(),
        result.suppressed_count());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "plum-scale: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << plumlint::scale_to_json(result);
  }

  return result.unsuppressed_count() == 0 ? 0 : 1;
}
