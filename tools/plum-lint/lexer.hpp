#pragma once
// Minimal C++ lexer for plum-lint. It is not a conforming C++ tokenizer —
// it produces exactly the token stream the determinism checks need:
// identifiers, numbers, string/char literals (content discarded), and
// punctuation, with line numbers. Comments are collected separately so the
// suppression parser can see them. Preprocessor lines (including `\`
// continuations) are tokenized but flagged, so checks can skip e.g.
// `#include <unordered_map>`.
//
// One deliberate deviation: `>>` is emitted as two `>` tokens so template
// argument lists nest with simple depth counting (`std::vector<
// std::unordered_map<K, V>>`). The checks never need right-shift.

#include <string>
#include <string_view>
#include <vector>

namespace plumlint {

enum class Tok {
  Ident,   ///< identifier or keyword
  Number,  ///< numeric literal (integer or floating)
  String,  ///< string or char literal (text not preserved)
  Punct,   ///< operator / punctuation, possibly multi-char
  End,     ///< sentinel appended at end of stream
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  int line = 0;
  bool preproc = false;  ///< token belongs to a preprocessor directive
};

struct Comment {
  std::string text;  ///< without the // or /* */ markers
  int line = 0;      ///< line the comment starts on
};

struct LexResult {
  std::vector<Token> tokens;  ///< ends with a Tok::End sentinel
  std::vector<Comment> comments;
};

LexResult lex(std::string_view src);

}  // namespace plumlint
