#pragma once
// plum-scale: project-wide replicated-state & scalability analyzer. Where
// plum-lint judges one superstep lambda at a time, plum-scale runs over
// the SymbolIndex (index.hpp) so it can reason across files. Three checks:
//
//   dense-rank-container   a container sized by a rank count — `resize(
//                          nranks)`, `assign(P * P, ..)`, `vector<T> x(
//                          world_size)` — allocates O(P) (or O(P^2) for
//                          rank-count products) resident state. Every such
//                          site must carry a scaling annotation: either it
//                          is deliberate distributed state (`dist(P)`) or
//                          it lives on the host side of the barrier only
//                          (`host-only`).
//   replicated-global-state
//                          a struct held once per rank (it appears as the
//                          element of some vector<S> anywhere in the
//                          project) with a field keyed by global mesh
//                          Index (std::map<Index,..> / SplMap / ...):
//                          aggregate memory is P × global mesh — the
//                          classic replicated-state scaling bug the PLUM
//                          paper's partitioning exists to avoid.
//   interprocedural-superstep-mutation
//                          a helper function whose one-level summary says
//                          it writes through a non-const-ref parameter,
//                          called from a superstep lambda with a captured,
//                          non-rank-indexed argument in that position —
//                          the same shared-accumulator bug plum-lint
//                          catches for direct writes, but hidden behind a
//                          call (possibly into another file).
//
// Annotations (the scaling contract, see DESIGN.md):
//   // plum-scale: dist(P) -- <why this state is deliberately per-rank>
//   // plum-scale: host-only -- <why this runs outside superstep ranks>
//   // plum-scale: scratch -- <why this is phase-local arena scratch>
//   // plum-scale: allow(<check>) -- <justification>
// on the same line or the line directly above the diagnostic. dist(P),
// host-only, and scratch acknowledge dense-rank-container /
// replicated-global-state hits; allow() suppresses the named check.
// scratch additionally marks plum-mem arena-backed containers (reclaimed
// wholesale at cycle reset) and is declarative: unlike the suppression
// kinds it is never reported unused, so it can document scratch
// containers the checks have nothing to say about. A missing
// justification or an unknown check is a bad-annotation diagnostic; a
// dist/host-only/allow annotation matching nothing is flagged
// unused-annotation. Meta diagnostics are unsuppressable.

#include <string>
#include <vector>

#include "index.hpp"
#include "linter.hpp"

namespace plumlint {

/// The three scaling checks plus the two meta checks, in report order.
const std::vector<CheckInfo>& scale_checks();

/// Analyzes the files as one project: builds the symbol index, then runs
/// the three checks and applies annotations. Diagnostics are sorted.
LintResult scale_files(const std::vector<FileInput>& files);

/// As above but over a prebuilt index (tests that probe index/check
/// interaction separately).
LintResult scale_files(const std::vector<FileInput>& files,
                       const SymbolIndex& index);

/// Convenience wrapper for one in-memory source.
LintResult scale_source(const std::string& path, const std::string& content);

/// JSON report in the same shape as plum-lint's, with scale check counts.
std::string scale_to_json(const LintResult& result);

}  // namespace plumlint
