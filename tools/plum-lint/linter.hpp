#pragma once
// plum-lint: rank-safety & determinism static checker for BSP superstep
// code. Enforces the determinism contract of src/runtime/engine.hpp over
// the source tree with six checks (see kChecks for the registry):
//
//   rank-guard-mutation    writes to captured state guarded by a
//                          `rank == 0` style condition inside a superstep
//                          lambda (the PR-1 `if (r == 0) ++phase` bug
//                          class: only worked because the sequential
//                          engine ran ranks in order).
//   unordered-iteration    std::unordered_map / std::unordered_set in a
//                          deterministic path, where iteration order can
//                          feed Outbox::send, ledger counters, or
//                          floating-point accumulation. Both declarations
//                          and range-for loops over such containers are
//                          flagged.
//   shared-accumulator     captured scalars/containers mutated from a
//                          superstep lambda without per-rank `[rank]`
//                          indexing (a data race under ParallelEngine and
//                          order-dependent under the sequential engine).
//   nondeterminism-source  rand()/srand()/time()/clock()/
//                          std::random_device and address-based hashing
//                          (std::hash<T*>) — results vary run to run.
//   wall-clock-in-superstep
//                          util::Timer / PhaseTimer instances and
//                          std::chrono `::now()` calls inside superstep
//                          lambdas: rank programs must not read wall
//                          clocks — the engine measures per-rank step
//                          seconds at the barrier, and plum-path's
//                          deterministic view relies on counters only.
//   raw-fd-in-superstep    bare POSIX fd calls (read/write/send/recv/
//                          open/close/...) inside superstep lambdas: all
//                          process-boundary IO belongs to the Transport
//                          at the barrier (runtime/frame.hpp), never to a
//                          rank program — fd traffic bypasses the ledger
//                          and the delivery-order contract. Member calls
//                          like `out.send(...)` are not flagged.
//
// Suppressions: `// plum-lint: allow(<check>) -- <justification>` on the
// same line or the line directly above the diagnostic. The justification
// is mandatory; a suppression without one is itself a diagnostic
// (bad-suppression), and a suppression that matches nothing is flagged
// stale (unused-suppression). Meta diagnostics cannot be suppressed.

#include <string>
#include <vector>

namespace plumlint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
  bool suppressed = false;
  std::string justification;  ///< set when suppressed

  /// Sort key: file, then line, then check.
  friend bool operator<(const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  }
};

struct FileInput {
  std::string path;     ///< name used in diagnostics
  std::string content;  ///< full source text
};

struct CheckInfo {
  const char* name;
  const char* summary;
};

/// The five contract checks plus the two meta checks, in report order.
const std::vector<CheckInfo>& checks();

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< sorted, suppressed included
  int files_scanned = 0;

  [[nodiscard]] int unsuppressed_count() const;
  [[nodiscard]] int suppressed_count() const;
  [[nodiscard]] int count_of(const std::string& check,
                             bool include_suppressed = false) const;
};

/// Lints a set of files together. Unordered-container names are collected
/// across the whole set first, so a range-for in one file over a member
/// declared unordered in another is still caught.
LintResult lint_files(const std::vector<FileInput>& files);

/// Convenience wrapper for one in-memory source (tests, fixtures).
LintResult lint_source(const std::string& path, const std::string& content);

/// Serializes a result to a JSON document (machine-readable report).
std::string to_json(const LintResult& result);

}  // namespace plumlint
