#include "scale.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "lexer.hpp"
#include "token_util.hpp"

namespace plumlint {

namespace {

constexpr const char* kDense = "dense-rank-container";
constexpr const char* kReplicated = "replicated-global-state";
constexpr const char* kInterproc = "interprocedural-superstep-mutation";
constexpr const char* kBadAnnot = "bad-annotation";
constexpr const char* kUnusedAnnot = "unused-annotation";

bool is_meta(const std::string& c) {
  return c == kBadAnnot || c == kUnusedAnnot;
}

// --- check: dense-rank-container ---------------------------------------------

/// True if the size expression [begin, end) mentions a rank-count name;
/// `product` is set when two rank-count mentions are joined by '*'
/// (`P * P`, `nranks * nranks`) — the O(P^2) variant.
bool size_expr_uses_rank_count(const SymbolIndex& index,
                               const std::string& file, const Tokens& t,
                               std::size_t begin, std::size_t end,
                               std::string& name, bool& product) {
  bool found = false;
  bool pending_product = false;  // saw rank-count then '*'
  int sq_depth = 0;  // inside a [...] subscript span
  product = false;
  for (std::size_t j = begin; j < end; ++j) {
    if (is(t[j], "[")) ++sq_depth;
    if (is(t[j], "]") && sq_depth > 0) --sq_depth;
    if (t[j].kind == Tok::Ident && index.is_rank_count(file, t[j].text)) {
      // A rank id inside a subscript (`u[r].size()`,
      // `u[static_cast<size_t>(r)].size()`) selects per-rank data; the
      // size is whatever comes back, not P.
      if (sq_depth > 0) continue;
      // A rank id handed to a *function* (`count_of(r)`,
      // `dm.local(r).num_edges()`) is an argument, not a size. Casts
      // (`size_t(n)`, `static_cast<size_t>(n)`) are still sizes.
      if (j >= 2 && is(t[j - 1], "(") && is(t[j + 1], ")") &&
          t[j - 2].kind == Tok::Ident && t[j - 2].text != "Rank" &&
          !type_keywords().count(t[j - 2].text)) {
        continue;
      }
      if (pending_product) product = true;
      if (!found) name = t[j].text;
      found = true;
      continue;
    }
    if (is(t[j], "*") && found) pending_product = true;
  }
  return found;
}

/// End of the first call argument: the first depth-0 comma, or pclose.
std::size_t first_arg_end(const Tokens& t, std::size_t popen,
                          std::size_t pclose) {
  int depth = 0;
  for (std::size_t j = popen + 1; j < pclose; ++j) {
    const std::string& x = t[j].text;
    if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
    if (x == ")" || x == "]" || x == "}" || x == ">") --depth;
    if (x == "," && depth == 0) return j;
  }
  return pclose;
}

void check_dense_rank_container(const SymbolIndex& index,
                                const std::string& file, const Tokens& t,
                                std::vector<Diagnostic>& out) {
  auto emit = [&](int line, const std::string& site, const std::string& name,
                  bool product) {
    const std::string scale = product ? "P * P" : "P";
    out.push_back(
        {file, line, kDense,
         site + " sized by rank count '" + name + "': resident memory scales "
         "O(" + scale + ") with the number of ranks" +
             (product ? " SQUARED — a dense all-pairs structure that defeats "
                        "weak scaling outright"
                      : "") +
             "; annotate `plum-scale: dist(P)` if this is deliberate "
             "per-rank state, `plum-scale: host-only` if it never lives on "
             "a rank, or make it sparse",
         false,
         ""});
  };

  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || t[i].preproc) continue;

    // member sizing calls: x.resize(E) / x.assign(E, ..) / x.reserve(E)
    if ((is(t[i], "resize") || is(t[i], "assign") || is(t[i], "reserve")) &&
        (is(t[i - 1], ".") || is(t[i - 1], "->")) && is(t[i + 1], "(")) {
      const std::size_t popen = i + 1;
      const std::size_t pclose = match_forward(t, popen, "(", ")");
      const std::size_t arg_end = first_arg_end(t, popen, pclose);
      std::string name;
      bool product = false;
      if (size_expr_uses_rank_count(index, file, t, popen + 1, arg_end, name,
                                    product)) {
        emit(t[i].line, "'" + t[i].text + "(...)'", name, product);
      }
      continue;
    }

    // constructor sizing: vector<T> x(E) / vector<T> x(E, init)
    if (is(t[i], "vector") && is(t[i + 1], "<")) {
      std::size_t j = skip_template(t, i + 1);
      if (t[j].kind != Tok::Ident || !is(t[j + 1], "(")) continue;
      const std::size_t popen = j + 1;
      const std::size_t pclose = match_forward(t, popen, "(", ")");
      // A function DECLARATION returning vector<T> looks identical up to
      // here (`std::vector<W> build_row(Rank proc, ...)`). Size
      // expressions never have two adjacent identifiers at nesting depth
      // 0 — parameter declarations (`Rank proc`) always do.
      bool is_declaration = false;
      int depth = 0;
      for (std::size_t k = popen + 1; k < pclose; ++k) {
        const std::string& x = t[k].text;
        if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
        if (x == ")" || x == "]" || x == "}" || x == ">") --depth;
        if (depth == 0 && t[k].kind == Tok::Ident &&
            t[k + 1].kind == Tok::Ident) {
          is_declaration = true;
          break;
        }
      }
      if (is_declaration) continue;
      const std::size_t arg_end = first_arg_end(t, popen, pclose);
      std::string name;
      bool product = false;
      if (size_expr_uses_rank_count(index, file, t, popen + 1, arg_end, name,
                                    product)) {
        emit(t[j].line, "'" + t[j].text + "' constructed", name, product);
      }
    }
  }
}

// --- check: replicated-global-state ------------------------------------------

/// Field types that hold global-mesh-sized state: anything keyed by the
/// global Index type, or the dist-mesh SplMap alias. type_text is
/// space-joined tokens, so "map < Index" matches std::map and
/// std::unordered_map alike.
bool holds_global_index_state(const std::string& type_text) {
  return type_text.find("map < Index") != std::string::npos ||
         type_text.find("SplMap") != std::string::npos ||
         type_text.find("set < Index") != std::string::npos;
}

void check_replicated_global_state(
    const SymbolIndex& index,
    std::map<std::string, std::vector<Diagnostic>>& by_file) {
  for (const auto& [key, s] : index.structs) {
    if (!index.is_replicated(s.name)) continue;
    const ReplicationSite* site = nullptr;
    for (const auto& r : index.replications) {
      if (r.struct_name == s.name) {
        site = &r;
        break;
      }
    }
    for (const auto& f : s.fields) {
      if (!holds_global_index_state(f.type_text)) continue;
      std::string where;
      if (site != nullptr) {
        where = " (vector<" + s.name + "> at " + site->file + ":" +
                std::to_string(site->line) + ")";
      }
      by_file[s.file].push_back(
          {s.file, f.line, kReplicated,
           "field '" + f.name + "' of '" + s.name + "' is keyed by global "
           "Index while '" + s.name + "' is held once per rank" + where +
               ": aggregate memory scales as P x global mesh — the "
               "replicated-state pattern PLUM's partitioned remapping "
               "exists to avoid; key it by local index, shard it, or "
               "annotate `plum-scale: dist(P)` / `host-only` with a reason",
           false,
           ""});
    }
  }
}

// --- check: interprocedural-superstep-mutation -------------------------------

/// Picks the summary for `name` matching the call's argument count, or
/// the first definition if no arity matches (best-effort for overloads).
const FuncInfo* summary_for(const SymbolIndex& index, const std::string& name,
                            std::size_t nargs) {
  const auto it = index.functions.find(name);
  if (it == index.functions.end() || it->second.empty()) return nullptr;
  for (const auto& def : it->second) {
    if (def.param_names.size() == nargs) return &def;
  }
  return &it->second.front();
}

/// Splits a call's arguments at depth-0 commas into [begin, end) spans.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const Tokens& t, std::size_t popen, std::size_t pclose) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (pclose == popen + 1) return out;
  std::size_t start = popen + 1;
  int depth = 0;
  for (std::size_t j = popen + 1; j <= pclose; ++j) {
    const std::string& x = t[j].text;
    if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
    if (x == "]" || x == "}" || x == ">") --depth;
    if ((x == "," && depth == 0) || j == pclose) {
      out.emplace_back(start, j);
      start = j + 1;
    }
    if (x == ")" && j != pclose) --depth;
  }
  return out;
}

/// Names declared anywhere in the lambda body (a deliberate superset of
/// exact scoping: a miss here would be a false positive, so we err local).
std::set<std::string> body_local_names(const Tokens& t,
                                       const SuperstepLambda& lam) {
  std::set<std::string> locals(lam.param_names.begin(),
                               lam.param_names.end());
  for (std::size_t i = lam.body_begin + 1; i < lam.body_end; ++i) {
    const bool stmt_start =
        is(t[i - 1], ";") || is(t[i - 1], "{") || is(t[i - 1], "}");
    if (stmt_start) {
      DeclNames d = try_parse_decl(t, i);
      for (auto& n : d.names) locals.insert(std::move(n));
    }
    if (is(t[i], "for") && is(t[i + 1], "(")) {
      DeclNames d = try_parse_decl(t, i + 2);
      for (auto& n : d.names) locals.insert(std::move(n));
    }
    if (is(t[i], "[") && lambda_position(t[i - 1])) {
      const std::size_t cap_end = match_forward(t, i, "[", "]");
      for (auto& n : nested_lambda_own_names(t, i, cap_end)) {
        locals.insert(std::move(n));
      }
    }
  }
  return locals;
}

void check_interprocedural(const SymbolIndex& index, const std::string& file,
                           const Tokens& t, std::vector<Diagnostic>& out) {
  const auto lambdas = find_superstep_lambdas(t);
  for (const auto& lam : lambdas) {
    const SkipSpans skip = nested_superstep_spans(lambdas, lam);
    const std::set<std::string> locals = body_local_names(t, lam);
    for (std::size_t i = lam.body_begin + 1; i < lam.body_end; ++i) {
      const std::size_t jump = skip_to(skip, i);
      if (jump != i) {
        i = jump;
        continue;
      }
      const Token& tk = t[i];
      if (tk.kind != Tok::Ident || tk.preproc) continue;
      if (!is(t[i + 1], "(")) continue;
      // Member calls dispatch on their receiver; the free-function index
      // has nothing to say about them.
      if (is(t[i - 1], ".") || is(t[i - 1], "->")) continue;
      if (stmt_keywords().count(tk.text)) continue;
      const std::size_t popen = i + 1;
      const std::size_t pclose = match_forward(t, popen, "(", ")");
      const auto args = split_args(t, popen, pclose);
      const FuncInfo* fn = summary_for(index, tk.text, args.size());
      if (fn == nullptr || fn->mutated_params.empty()) continue;
      for (const std::size_t p : fn->mutated_params) {
        if (p >= args.size()) continue;
        const auto [abegin, aend] = args[p];
        // The argument's base identifier; rank-indexed if the lambda's
        // rank variable appears inside a subscript within the argument.
        std::string base;
        bool rank_indexed = false;
        int sub_depth = 0;
        for (std::size_t j = abegin; j < aend; ++j) {
          if (is(t[j], "[")) ++sub_depth;
          if (is(t[j], "]")) --sub_depth;
          if (t[j].kind != Tok::Ident) continue;
          if (base.empty() && !is(t[j + 1], "(") && !is(t[j - 1], "::")) {
            base = t[j].text;
          }
          if (sub_depth > 0 && !lam.rank_var.empty() &&
              t[j].text == lam.rank_var) {
            rank_indexed = true;
          }
        }
        if (base.empty() || rank_indexed) continue;
        if (locals.count(base)) continue;
        if (!lam.rank_var.empty() && base == lam.rank_var) continue;
        out.push_back(
            {file, tk.line, kInterproc,
             "'" + tk.text + "(...)' mutates its parameter '" +
                 fn->param_names[p] + "' (summary from " + fn->file + ":" +
                 std::to_string(fn->line) + ") and is called with captured '" +
                 base + "' from a superstep lambda without per-rank "
                 "indexing: a shared-accumulator race hidden behind a call; "
                 "pass rank-owned state (e.g. " + base + "[r]) instead",
             false,
             ""});
      }
    }
  }
}

// --- annotations --------------------------------------------------------------

struct Annotation {
  int line = 0;
  /// "dist", "host-only", "scratch", or a check name (allow).
  std::string kind;
  std::string justification;
  bool used = false;
};

bool annotation_matches(const Annotation& a, const Diagnostic& d) {
  if (a.line != d.line && a.line != d.line - 1) return false;
  if (a.kind == "dist" || a.kind == "host-only" || a.kind == "scratch") {
    return d.check == kDense || d.check == kReplicated;
  }
  return a.kind == d.check;
}

void parse_annotations(const std::string& file,
                       const std::vector<Comment>& comments,
                       std::vector<Annotation>& annots,
                       std::vector<Diagnostic>& out) {
  for (std::size_t ci = 0; ci < comments.size(); ++ci) {
    const Comment& c = comments[ci];
    const std::size_t tag = c.text.find("plum-scale:");
    if (tag == std::string::npos) continue;
    const std::string rest = trim(c.text.substr(tag + 11));

    std::string kind;
    std::size_t body_at = std::string::npos;
    if (rest.rfind("dist(P)", 0) == 0) {
      kind = "dist";
      body_at = 7;
    } else if (rest.rfind("host-only", 0) == 0) {
      kind = "host-only";
      body_at = 9;
    } else if (rest.rfind("scratch", 0) == 0) {
      // Declarative marker: this container is phase-local arena scratch
      // (plum-mem), reclaimed wholesale at cycle reset. It acknowledges a
      // dense-rank/replicated hit when one anchors here, and is otherwise
      // informational — never reported unused.
      kind = "scratch";
      body_at = 7;
    } else if (rest.rfind("allow(", 0) == 0) {
      const std::size_t close = rest.find(')');
      if (close != std::string::npos && close > 6) {
        const std::string check = trim(rest.substr(6, close - 6));
        bool known = false;
        for (const auto& info : scale_checks()) known |= (check == info.name);
        if (!known || is_meta(check)) {
          out.push_back({file, c.line, kBadAnnot,
                         "unknown or unsuppressable check '" + check +
                             "' in plum-scale annotation",
                         false,
                         ""});
          continue;
        }
        kind = check;
        body_at = close + 1;
      }
    }
    if (kind.empty()) {
      out.push_back({file, c.line, kBadAnnot,
                     "malformed plum-scale comment; expected `plum-scale: "
                     "dist(P) -- <why>`, `plum-scale: host-only -- <why>`, "
                     "`plum-scale: scratch -- <why>`, "
                     "or `plum-scale: allow(<check>) -- <why>`",
                     false,
                     ""});
      continue;
    }
    std::string just;
    const std::size_t dash = rest.find("--", body_at);
    if (dash != std::string::npos) just = trim(rest.substr(dash + 2));
    // Wrapped justifications continue on directly following comment lines;
    // the annotation then anchors at the end of the block.
    int anchor = c.line;
    for (std::size_t k = ci + 1; k < comments.size(); ++k) {
      if (comments[k].line != anchor + 1 ||
          comments[k].text.find("plum-scale:") != std::string::npos) {
        break;
      }
      anchor = comments[k].line;
      if (!just.empty()) just += " " + trim(comments[k].text);
    }
    if (just.empty()) {
      out.push_back({file, c.line, kBadAnnot,
                     "plum-scale annotation '" + kind +
                         "' lacks a justification; every entry in the "
                         "scaling contract says *why* (see DESIGN.md)",
                     false,
                     ""});
      continue;
    }
    annots.push_back({anchor, kind, just, false});
  }
}

}  // namespace

const std::vector<CheckInfo>& scale_checks() {
  static const std::vector<CheckInfo> kChecks = {
      {kDense,
       "containers sized by a rank count (resize(nranks), P*P allocations) "
       "without a dist(P)/host-only annotation"},
      {kReplicated,
       "global-Index-keyed fields inside structs replicated once per rank "
       "(vector<S> somewhere in the project)"},
      {kInterproc,
       "helpers that mutate non-const-ref params, called from superstep "
       "lambdas with captured non-rank-indexed arguments"},
      {kBadAnnot, "malformed or unjustified plum-scale annotations"},
      {kUnusedAnnot, "annotations that no longer match any diagnostic"},
  };
  return kChecks;
}

LintResult scale_files(const std::vector<FileInput>& files,
                       const SymbolIndex& index) {
  LintResult result;
  result.files_scanned = static_cast<int>(files.size());

  std::map<std::string, std::vector<Diagnostic>> by_file;
  std::map<std::string, std::vector<Comment>> comments_by_file;
  for (const auto& f : files) {
    const LexResult lexed = lex(f.content);
    comments_by_file[f.path] = lexed.comments;
    auto& diags = by_file[f.path];
    check_dense_rank_container(index, f.path, lexed.tokens, diags);
    check_interprocedural(index, f.path, lexed.tokens, diags);
  }
  check_replicated_global_state(index, by_file);

  for (auto& [path, diags] : by_file) {
    std::vector<Annotation> annots;
    parse_annotations(path, comments_by_file[path], annots, diags);
    for (auto& d : diags) {
      if (is_meta(d.check)) continue;
      for (auto& a : annots) {
        if (annotation_matches(a, d)) {
          d.suppressed = true;
          d.justification = (a.kind == "dist" ? std::string("dist(P)")
                                              : a.kind) +
                            ": " + a.justification;
          a.used = true;
          break;
        }
      }
    }
    for (const auto& a : annots) {
      // scratch is declarative (it documents arena-backed phase scratch
      // wherever it appears); only suppression kinds can go stale.
      if (!a.used && a.kind != "scratch") {
        diags.push_back({path, a.line, kUnusedAnnot,
                         "plum-scale annotation '" +
                             (a.kind == "dist" ? std::string("dist(P)")
                                               : a.kind) +
                             "' matches no diagnostic on this or the next "
                             "line; remove it so the scaling contract stays "
                             "honest",
                         false,
                         ""});
      }
    }
    result.diagnostics.insert(result.diagnostics.end(), diags.begin(),
                              diags.end());
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end());
  return result;
}

LintResult scale_files(const std::vector<FileInput>& files) {
  return scale_files(files, build_index(files));
}

LintResult scale_source(const std::string& path, const std::string& content) {
  return scale_files({{path, content}});
}

std::string scale_to_json(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"unsuppressed\": " << result.unsuppressed_count()
     << ",\n  \"suppressed\": " << result.suppressed_count()
     << ",\n  \"counts\": {";
  bool first = true;
  for (const auto& c : scale_checks()) {
    if (!first) os << ", ";
    first = false;
    json_escape(os, c.name);
    os << ": " << result.count_of(c.name, /*include_suppressed=*/true);
  }
  os << "},\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const auto& d = result.diagnostics[i];
    os << (i ? ",\n    {" : "\n    {") << "\"file\": ";
    json_escape(os, d.file);
    os << ", \"line\": " << d.line << ", \"check\": ";
    json_escape(os, d.check);
    os << ", \"suppressed\": " << (d.suppressed ? "true" : "false");
    if (d.suppressed) {
      os << ", \"justification\": ";
      json_escape(os, d.justification);
    }
    os << ", \"message\": ";
    json_escape(os, d.message);
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace plumlint
