#include "lexer.hpp"

#include <cctype>

namespace plumlint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char punctuation, longest first. `>>`/`>>=` are intentionally
/// absent (see header); `>=` is kept because it cannot open a template list.
constexpr std::string_view kPuncts[] = {
    "<<=", "...", "::", "->", "++", "--", "==", "!=", "<=", ">=",
    "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||",
    "<<",
};

/// Raw-string introducers: the encoding prefixes the grammar allows before
/// `R"`. A prefixed raw string (`u8R"(...)"`) lexed as identifier + ordinary
/// string leaks the content between embedded quotes as tokens — stray braces
/// then desync every brace-matching check downstream.
bool is_raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

/// Ordinary-literal encoding prefixes (`L"..."`, `u8'x'`): the literal that
/// follows must be lexed as a string/char, not as identifier + literal, so
/// escape handling applies to the right span.
bool is_literal_prefix(std::string_view ident) {
  return ident == "L" || ident == "u" || ident == "U" || ident == "u8";
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  int line = 1;
  bool line_has_token = false;  // any non-ws content so far on this line
  bool in_preproc = false;

  auto newline = [&](bool continued) {
    ++line;
    line_has_token = false;
    if (!continued) in_preproc = false;
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n') {
      // A preprocessor directive extends across `\`-continued lines; the
      // backslash case is consumed where the backslash is seen below.
      newline(false);
      ++i;
      continue;
    }
    if (c == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
      newline(in_preproc);
      i += 2;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < src.size() && src[j] != '\n') ++j;
      out.comments.push_back(
          {std::string(src.substr(i + 2, j - i - 2)), line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < src.size() && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        text.push_back(src[j]);
        ++j;
      }
      out.comments.push_back({std::move(text), start_line});
      i = (j + 1 < src.size()) ? j + 2 : src.size();
      continue;
    }

    // Preprocessor directive start: `#` as first non-ws char on the line.
    if (c == '#' && !line_has_token) {
      in_preproc = true;
      out.tokens.push_back({Tok::Punct, "#", line, true});
      line_has_token = true;
      ++i;
      continue;
    }

    line_has_token = true;

    // Raw strings: [prefix]R"delim( ... )delim" — no escape processing.
    auto lex_raw_string = [&](std::size_t quote_pos) {
      std::size_t j = quote_pos + 1;
      std::string delim;
      while (j < src.size() && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, j);
      const int start_line = line;
      if (end == std::string_view::npos) {
        end = src.size();
      } else {
        end += closer.size();
      }
      for (std::size_t k = i; k < end && k < src.size(); ++k) {
        if (src[k] == '\n') ++line;
      }
      out.tokens.push_back({Tok::String, "\"\"", start_line, in_preproc});
      i = end;
    };

    // Ordinary string / char literals (escapes honored, content discarded).
    auto lex_quoted = [&](std::size_t quote_pos) {
      const char quote = src[quote_pos];
      std::size_t j = quote_pos + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < src.size()) ++j;
        if (src[j] == '\n') ++line;  // unterminated; stay resilient
        ++j;
      }
      out.tokens.push_back({Tok::String, quote == '"' ? "\"\"" : "''", line,
                            in_preproc});
      i = (j < src.size()) ? j + 1 : src.size();
    };

    if (c == '"' || c == '\'') {
      lex_quoted(i);
      continue;
    }

    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < src.size() && is_ident_char(src[j])) ++j;
      const std::string_view ident = src.substr(i, j - i);
      if (j < src.size() && src[j] == '"' && is_raw_string_prefix(ident)) {
        lex_raw_string(j);
        continue;
      }
      if (j < src.size() && (src[j] == '"' || src[j] == '\'') &&
          is_literal_prefix(ident)) {
        lex_quoted(j);
        continue;
      }
      out.tokens.push_back(
          {Tok::Ident, std::string(ident), line, in_preproc});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + 1;
      while (j < src.size() &&
             (is_ident_char(src[j]) || src[j] == '.' ||
              ((src[j] == '+' || src[j] == '-') &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(
          {Tok::Number, std::string(src.substr(i, j - i)), line, in_preproc});
      i = j;
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        out.tokens.push_back({Tok::Punct, std::string(p), line, in_preproc});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Tok::Punct, std::string(1, c), line, in_preproc});
      ++i;
    }
  }

  out.tokens.push_back({Tok::End, "", line, false});
  return out;
}

}  // namespace plumlint
