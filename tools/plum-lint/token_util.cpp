#include "token_util.hpp"

namespace plumlint {

const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kw = {
      "auto",   "bool",   "char",   "double",   "float",  "int",
      "long",   "short",  "signed", "unsigned", "void",   "size_t",
      "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t"};
  return kw;
}

const std::set<std::string>& stmt_keywords() {
  static const std::set<std::string> kw = {
      "return",   "if",     "for",    "while",  "switch", "case",
      "break",    "continue", "else", "do",     "delete", "new",
      "throw",    "goto",   "using",  "typedef", "template", "public",
      "private",  "protected", "namespace", "struct", "class", "enum",
      "sizeof",   "static_assert"};
  return kw;
}

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> m = {
      "add",         "add_gate_record", "add_sample", "add_sample_int",
      "append",      "assign",          "clear",      "emplace",
      "emplace_back", "erase",          "insert",     "merge_from",
      "push_back",   "record",          "record_event", "resize",
      "set",         "set_int"};
  return m;
}

std::size_t skip_template(const Tokens& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size() && t[j].kind != Tok::End; ++j) {
    const std::string& x = t[j].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return j + 1;
    } else if (x == ";" || x == "{") {
      break;
    }
  }
  return i + 1;
}

std::size_t match_forward(const Tokens& t, std::size_t i, const char* open,
                          const char* close) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size() && t[j].kind != Tok::End; ++j) {
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size() - 1;
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

DeclNames try_parse_decl(const Tokens& t, std::size_t i) {
  DeclNames out;
  std::size_t j = i;
  while (is(t[j], "const") || is(t[j], "constexpr") || is(t[j], "static") ||
         is(t[j], "mutable")) {
    ++j;
  }
  if (t[j].kind != Tok::Ident) return out;
  const std::string& first = t[j].text;
  if (stmt_keywords().count(first)) return out;
  ++j;
  if (first == "unsigned" || first == "signed" || first == "long" ||
      first == "short") {
    while (t[j].kind == Tok::Ident && type_keywords().count(t[j].text)) ++j;
  }
  while (true) {
    if (is(t[j], "::") && t[j + 1].kind == Tok::Ident) {
      j += 2;
    } else if (is(t[j], "<")) {
      const std::size_t k = skip_template(t, j);
      if (k == j + 1) return out;  // comparison, not a template list
      j = k;
    } else {
      break;
    }
  }
  while (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")) ++j;
  if (is(t[j], "[")) {  // structured binding
    std::size_t k = j + 1;
    std::vector<std::string> names;
    while (!is(t[k], "]") && t[k].kind != Tok::End) {
      if (t[k].kind == Tok::Ident) names.push_back(t[k].text);
      ++k;
    }
    if (is(t[k + 1], "=") || is(t[k + 1], ":")) {
      out.names = std::move(names);
      out.matched = true;
    }
    return out;
  }
  if (t[j].kind != Tok::Ident) return out;
  const std::string& nx = t[j + 1].text;
  if (nx == "=" || nx == "(" || nx == "{" || nx == ";" || nx == ":" ||
      nx == ",") {
    out.names.push_back(t[j].text);
    out.matched = true;
  }
  return out;
}

LhsInfo parse_lhs_backward(const Tokens& t, std::size_t j, std::size_t begin,
                           const std::string& rank_var) {
  LhsInfo out;
  while (j > begin) {
    if (is(t[j], "]")) {
      std::size_t depth = 1;
      std::size_t k = j;
      while (k > begin && depth > 0) {
        --k;
        if (is(t[k], "]")) ++depth;
        if (is(t[k], "[")) --depth;
        if (depth > 0 && t[k].kind == Tok::Ident && !rank_var.empty() &&
            t[k].text == rank_var) {
          out.rank_indexed = true;
        }
      }
      if (depth != 0 || k == begin) return out;
      j = k - 1;
      continue;
    }
    if (t[j].kind == Tok::Ident) {
      const Token& prev = t[j - 1];
      if (is(prev, ".") || is(prev, "->") || is(prev, "::")) {
        j -= 2;
        continue;
      }
      out.base = t[j].text;
      out.ok = true;
      return out;
    }
    return out;  // ")" etc: call results and casts are not analyzable
  }
  return out;
}

LhsInfo parse_lhs_forward(const Tokens& t, std::size_t j,
                          const std::string& rank_var) {
  LhsInfo out;
  if (t[j].kind != Tok::Ident) return out;
  out.base = t[j].text;
  out.ok = true;
  std::size_t k = j + 1;
  while (true) {
    if ((is(t[k], ".") || is(t[k], "->") || is(t[k], "::")) &&
        t[k + 1].kind == Tok::Ident) {
      k += 2;
    } else if (is(t[k], "[")) {
      const std::size_t close = match_forward(t, k, "[", "]");
      for (std::size_t m = k + 1; m < close; ++m) {
        if (t[m].kind == Tok::Ident && !rank_var.empty() &&
            t[m].text == rank_var) {
          out.rank_indexed = true;
        }
      }
      k = close + 1;
    } else {
      break;
    }
  }
  return out;
}

bool is_assign_op(const Token& t) {
  static const std::set<std::string> ops = {"=",  "+=", "-=",  "*=", "/=",
                                            "%=", "&=", "|=",  "^=", "<<="};
  return t.kind == Tok::Punct && ops.count(t.text) > 0;
}

bool lambda_position(const Token& prev) {
  return is(prev, "(") || is(prev, ",") || is(prev, "{") || is(prev, ";") ||
         is(prev, "=") || is(prev, "return") || is(prev, "&&") ||
         is(prev, "||") || is(prev, ":");
}

std::vector<std::string> nested_lambda_own_names(const Tokens& t,
                                                 std::size_t cap_open,
                                                 std::size_t cap_end) {
  std::vector<std::string> names;
  int depth = 0;
  for (std::size_t j = cap_open + 1; j < cap_end; ++j) {
    const std::string& x = t[j].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (depth != 0 || t[j].kind != Tok::Ident) continue;
    if (is(t[j - 1], "&")) continue;  // by-reference capture
    if (is(t[j - 1], "[") || is(t[j - 1], ",")) names.push_back(t[j].text);
  }
  if (is(t[cap_end + 1], "(")) {
    const std::size_t popen = cap_end + 1;
    const std::size_t pclose = match_forward(t, popen, "(", ")");
    std::string last_ident;
    int pdepth = 0;
    for (std::size_t j = popen + 1; j <= pclose; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++pdepth;
      if (x == "]" || x == "}") --pdepth;
      if ((x == "," && pdepth == 0) || j == pclose) {
        if (!last_ident.empty()) names.push_back(last_ident);
        last_ident.clear();
      } else if (t[j].kind == Tok::Ident) {
        last_ident = t[j].text;
      }
      if (x == ")" && j != pclose) --pdepth;
    }
  }
  return names;
}

std::vector<SuperstepLambda> find_superstep_lambdas(const Tokens& t) {
  std::vector<SuperstepLambda> out;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!is(t[i], "[") || t[i].preproc) continue;
    if (!lambda_position(t[i - 1])) continue;
    const std::size_t cap_end = match_forward(t, i, "[", "]");
    if (!is(t[cap_end + 1], "(")) continue;
    const std::size_t popen = cap_end + 1;
    const std::size_t pclose = match_forward(t, popen, "(", ")");

    SuperstepLambda lam;
    bool has_rank = false, has_outbox = false;
    // Split parameters at depth-0 commas.
    std::size_t start = popen + 1;
    int depth = 0;
    for (std::size_t j = popen + 1; j <= pclose; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == "]" || x == "}") --depth;
      if ((x == "," && depth == 0) || j == pclose) {
        bool p_rank = false, p_outbox = false;
        std::string last_ident;
        for (std::size_t k = start; k < j; ++k) {
          if (t[k].kind != Tok::Ident) continue;
          if (t[k].text == "Rank") p_rank = true;
          if (t[k].text == "Outbox") p_outbox = true;
          last_ident = t[k].text;
        }
        has_rank |= p_rank;
        has_outbox |= p_outbox;
        if (!last_ident.empty() && last_ident != "Rank" &&
            last_ident != "Inbox" && last_ident != "Outbox") {
          lam.param_names.push_back(last_ident);
          if (p_rank) lam.rank_var = last_ident;
        }
        start = j + 1;
      }
      if (x == ")" && j != pclose) --depth;
    }
    if (!has_rank || !has_outbox) continue;

    // Skip mutable / noexcept / -> trailing-return to the body.
    std::size_t b = pclose + 1;
    while (t[b].kind != Tok::End && !is(t[b], "{") && !is(t[b], ";") &&
           !is(t[b], ")")) {
      ++b;
    }
    if (!is(t[b], "{")) continue;
    lam.body_begin = b;
    lam.body_end = match_forward(t, b, "{", "}");
    out.push_back(std::move(lam));
  }
  return out;
}

SkipSpans nested_superstep_spans(const std::vector<SuperstepLambda>& all,
                                 const SuperstepLambda& lam) {
  SkipSpans skip;
  for (const auto& other : all) {
    if (other.body_begin > lam.body_begin && other.body_end < lam.body_end) {
      skip.emplace_back(other.body_begin, other.body_end);
    }
  }
  return skip;
}

std::size_t skip_to(const SkipSpans& skip, std::size_t i) {
  for (const auto& s : skip) {
    if (s.first == i) return s.second;
  }
  return i;
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace plumlint
