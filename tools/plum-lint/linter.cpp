#include "linter.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "lexer.hpp"
#include "token_util.hpp"

namespace plumlint {

namespace {

constexpr const char* kRankGuard = "rank-guard-mutation";
constexpr const char* kUnordered = "unordered-iteration";
constexpr const char* kSharedAcc = "shared-accumulator";
constexpr const char* kNondet = "nondeterminism-source";
constexpr const char* kWallClock = "wall-clock-in-superstep";
constexpr const char* kRawFd = "raw-fd-in-superstep";
constexpr const char* kBadSuppress = "bad-suppression";
constexpr const char* kUnusedSuppress = "unused-suppression";

bool is_meta_check(const std::string& c) {
  return c == kBadSuppress || c == kUnusedSuppress;
}

/// Names declared with an unordered container type anywhere in `t`
/// (locals, members, parameters): `std::unordered_map<...> name`,
/// including when nested inside another template.
void collect_unordered_names(const Tokens& t, std::set<std::string>& names) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || t[i].preproc) continue;
    if (!is(t[i], "unordered_map") && !is(t[i], "unordered_set")) continue;
    std::size_t j = i + 1;
    if (!is(t[j], "<")) continue;
    j = skip_template(t, j);
    while (is(t[j], ">") || is(t[j], "&") || is(t[j], "*") ||
           is(t[j], "const")) {
      ++j;
    }
    if (t[j].kind != Tok::Ident) continue;
    const std::string& nx = t[j + 1].text;
    if (nx == "=" || nx == "(" || nx == "{" || nx == ";" || nx == "," ||
        nx == ")" || nx == ":") {
      names.insert(t[j].text);
    }
  }
}

// --- check: unordered-iteration ---------------------------------------------

void check_unordered(const std::string& file, const Tokens& t,
                     const std::set<std::string>& local_names,
                     const std::set<std::string>& member_names,
                     std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || t[i].preproc) continue;
    if (is(t[i], "unordered_map") || is(t[i], "unordered_set")) {
      out.push_back(
          {file, t[i].line, kUnordered,
           "std::" + t[i].text +
               " in a deterministic path: its iteration order is "
               "unspecified and can feed Outbox::send, ledger counters, or "
               "floating-point accumulation; use std::map / a sorted vector, "
               "or suppress with a justification if it is never iterated",
           false,
           ""});
      continue;
    }
    if (!is(t[i], "for") || !is(t[i + 1], "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    // Locate the range-for ':' at nesting depth 0 inside the parens.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (x == ";") break;  // classic for loop
      if (x == ":" && depth == 0) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind != Tok::Ident) continue;
      // Bare identifiers must be declared unordered in this file; names
      // collected from *other* files (e.g. LocalMesh::shared_verts) only
      // match member accesses, so an unrelated local that happens to reuse
      // the name elsewhere is not flagged.
      const bool member_access = is(t[j - 1], ".") || is(t[j - 1], "->");
      if (local_names.count(t[j].text) ||
          (member_access && member_names.count(t[j].text))) {
        out.push_back(
            {file, t[i].line, kUnordered,
             "range-for over unordered container '" + t[j].text +
                 "': visit order differs across standard-library "
                 "implementations and runs; iterate sorted keys instead",
             false,
             ""});
        break;
      }
    }
  }
}

// --- check: nondeterminism-source --------------------------------------------

void check_nondeterminism(const std::string& file, const Tokens& t,
                          std::vector<Diagnostic>& out) {
  static const std::set<std::string> banned_calls = {
      "rand",    "srand",   "rand_r", "drand48",      "lrand48",
      "mrand48", "random",  "time",   "gettimeofday", "clock"};
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || t[i].preproc) continue;
    const Token& prev = t[i - 1];
    if (is(t[i], "random_device")) {
      out.push_back({file, t[i].line, kNondet,
                     "std::random_device: draws from the OS entropy pool; "
                     "use the seeded plum::Rng so runs are reproducible",
                     false,
                     ""});
      continue;
    }
    if (is(t[i], "hash") && is(prev, "::") && i >= 2 && is(t[i - 2], "std") &&
        is(t[i + 1], "<")) {
      const std::size_t end = skip_template(t, i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (is(t[j], "*")) {
          out.push_back({file, t[i].line, kNondet,
                         "std::hash over a pointer type: hashes the address, "
                         "which differs between runs (ASLR); key on a stable "
                         "id instead",
                         false,
                         ""});
          break;
        }
      }
      continue;
    }
    if (!banned_calls.count(t[i].text)) continue;
    if (!is(t[i + 1], "(")) continue;
    // Member calls (timer.time()) and declarations (Timer time(...)) are
    // other people's names, not the libc functions.
    if (is(prev, ".") || is(prev, "->") || prev.kind == Tok::Ident) continue;
    if (is(prev, "::") && i >= 2 && !is(t[i - 2], "std")) continue;
    out.push_back({file, t[i].line, kNondet,
                   "'" + t[i].text +
                       "()' is a nondeterminism source (varies run to run); "
                       "use the seeded plum::Rng / logical superstep time",
                   false,
                   ""});
  }
}

// --- checks: rank-guard-mutation & shared-accumulator ------------------------


void check_superstep_body(const std::string& file, const Tokens& t,
                          const SuperstepLambda& lam, const SkipSpans& skip,
                          std::vector<Diagnostic>& out) {
  // Locals: (name, brace depth at declaration). Params live at depth 0.
  std::vector<std::pair<std::string, int>> locals;
  for (const auto& p : lam.param_names) locals.emplace_back(p, 0);
  auto is_local = [&](const std::string& n) {
    return std::any_of(locals.begin(), locals.end(),
                       [&](const auto& l) { return l.first == n; });
  };

  // Active `if (r == 0)` style guards, as end-token indices (innermost last).
  std::vector<std::size_t> guard_ends;

  int depth = 0;
  for (std::size_t i = lam.body_begin; i <= lam.body_end; ++i) {
    while (!guard_ends.empty() && i > guard_ends.back()) guard_ends.pop_back();
    const std::size_t jump = skip_to(skip, i);
    if (jump != i) {
      i = jump;  // nested superstep body: checked on its own pass
      continue;
    }
    const Token& tk = t[i];

    if (is(tk, "{")) {
      ++depth;
      continue;
    }
    if (is(tk, "}")) {
      std::erase_if(locals, [&](const auto& l) { return l.second == depth; });
      --depth;
      continue;
    }

    // A nested plain lambda: its parameters, init-captures, and by-value
    // copies are closure-local — writes to them are not mutations of this
    // superstep's captured state. They scope to the nested body, which
    // opens one brace deeper than here.
    if (is(tk, "[") && i > lam.body_begin && lambda_position(t[i - 1])) {
      const std::size_t cap_end = match_forward(t, i, "[", "]");
      for (auto& n : nested_lambda_own_names(t, i, cap_end)) {
        locals.emplace_back(std::move(n), depth + 1);
      }
      i = cap_end;  // capture list is binding syntax, not assignments
      continue;
    }

    // Declarations at statement starts (and in for-loop headers).
    const bool stmt_start =
        i > lam.body_begin &&
        (is(t[i - 1], ";") || is(t[i - 1], "{") || is(t[i - 1], "}"));
    if (stmt_start) {
      DeclNames d = try_parse_decl(t, i);
      for (auto& n : d.names) locals.emplace_back(std::move(n), depth);
    }
    if (is(tk, "for") && is(t[i + 1], "(")) {
      DeclNames d = try_parse_decl(t, i + 2);
      for (auto& n : d.names) locals.emplace_back(std::move(n), depth);
      continue;
    }

    // Rank guards: if (<rank> == <literal>) — including `r == 0 && ...`.
    if (is(tk, "if") && is(t[i + 1], "(") && !lam.rank_var.empty()) {
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      bool guarded = false;
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (!is(t[j], "==")) continue;
        const Token& a = t[j - 1];
        const Token& b = t[j + 1];
        const bool a_rank = a.kind == Tok::Ident && a.text == lam.rank_var &&
                            !is(t[j - 2], ".") && !is(t[j - 2], "->");
        const bool b_rank = b.kind == Tok::Ident && b.text == lam.rank_var;
        if ((a_rank && b.kind == Tok::Number) ||
            (b_rank && a.kind == Tok::Number)) {
          guarded = true;
          break;
        }
      }
      if (guarded) {
        std::size_t end;
        if (is(t[close + 1], "{")) {
          end = match_forward(t, close + 1, "{", "}");
        } else {
          end = close + 1;
          while (t[end].kind != Tok::End && !is(t[end], ";")) ++end;
        }
        guard_ends.push_back(end);
      }
      continue;
    }

    // Mutations: assignments, ++/--, and mutating method calls
    // (`registry.add_sample(...)`, `log.push_back(...)`).
    LhsInfo lhs;
    std::string via;  // non-empty: mutation through a method call
    int op_line = tk.line;
    if (is_assign_op(tk) && i > lam.body_begin) {
      lhs = parse_lhs_backward(t, i - 1, lam.body_begin, lam.rank_var);
    } else if ((is(tk, "++") || is(tk, "--"))) {
      if (t[i + 1].kind == Tok::Ident) {
        lhs = parse_lhs_forward(t, i + 1, lam.rank_var);
      } else if (i > lam.body_begin &&
                 (t[i - 1].kind == Tok::Ident || is(t[i - 1], "]"))) {
        lhs = parse_lhs_backward(t, i - 1, lam.body_begin, lam.rank_var);
      }
    } else if (tk.kind == Tok::Ident && is(t[i + 1], "(") &&
               i > lam.body_begin + 1 &&
               (is(t[i - 1], ".") || is(t[i - 1], "->")) &&
               mutating_methods().count(tk.text)) {
      // parse_lhs_backward starts at the method name itself: the first
      // step walks the `.`/`->` back to the receiver's access path, so
      // `acc[r].push_back(x)` resolves base=acc with rank_indexed=true.
      lhs = parse_lhs_backward(t, i, lam.body_begin, lam.rank_var);
      via = tk.text;
    } else {
      continue;
    }
    if (!lhs.ok || lhs.base.empty()) continue;
    if (lhs.rank_indexed) continue;
    if (is_local(lhs.base)) continue;
    if (!lam.rank_var.empty() && lhs.base == lam.rank_var) continue;

    const std::string how =
        via.empty() ? "is written from a superstep"
                    : "is mutated via '" + via + "(...)' from a superstep";
    if (!guard_ends.empty()) {
      out.push_back(
          {file, op_line, kRankGuard,
           "captured '" + lhs.base + "' " + how +
               " under a rank==constant guard: this relies on sequential "
               "rank order and races under ParallelEngine (the `if (r == 0) "
               "++phase` bug class); use Outbox::step() or a per-rank slot",
           false,
           ""});
    } else {
      out.push_back(
          {file, op_line, kSharedAcc,
           "captured '" + lhs.base + "' " + how +
               " without per-rank indexing: rank r may only mutate "
               "rank-r-owned state; index the write with the rank (e.g. "
               "acc[r]) and reduce — or record metrics — after the run",
           false,
           ""});
    }
  }
}

// --- check: wall-clock-in-superstep -------------------------------------------

/// Wall-clock reads inside a superstep lambda: `util::Timer` / `PhaseTimer`
/// instances and `std::chrono::*_clock::now()` calls. Rank programs must be
/// pure functions of their inbox; timing belongs to the engine (which
/// already measures per-rank step seconds into the trace) — a timer inside
/// the lambda measures scheduler noise and, if it steers control flow,
/// breaks the determinism contract outright. plum-path's counter view
/// depends on superstep bodies staying wall-clock free.
void check_wallclock_in_body(const std::string& file, const Tokens& t,
                             const SuperstepLambda& lam, const SkipSpans& skip,
                             std::vector<Diagnostic>& out) {
  for (std::size_t i = lam.body_begin; i <= lam.body_end; ++i) {
    const std::size_t jump = skip_to(skip, i);
    if (jump != i) {
      i = jump;
      continue;
    }
    const Token& tk = t[i];
    if (tk.kind != Tok::Ident || tk.preproc) continue;
    if (is(tk, "Timer") || is(tk, "PhaseTimer")) {
      // `x.Timer`/`x->Timer` would be someone else's member, not the
      // plum::Timer type; a type name appears bare or after `::`.
      if (is(t[i - 1], ".") || is(t[i - 1], "->")) continue;
      out.push_back(
          {file, tk.line, kWallClock,
           "'" + tk.text +
               "' inside a superstep lambda: rank programs must not read "
               "wall clocks (the engine already measures per-rank step "
               "seconds into the trace); time outside the superstep or use "
               "StepCounters::compute_units as the deterministic work proxy",
           false,
           ""});
      continue;
    }
    if (is(tk, "now") && i + 1 < t.size() && is(t[i + 1], "(") &&
        i > lam.body_begin && is(t[i - 1], "::")) {
      out.push_back(
          {file, tk.line, kWallClock,
           "'::now()' inside a superstep lambda reads a wall clock; results "
           "vary run to run and poison the deterministic counter view "
           "(plum-path); move timing to the host side of the barrier",
           false,
           ""});
    }
  }
}

// --- check: raw-fd-in-superstep -----------------------------------------------

/// POSIX fd calls whose presence in a rank program means it is doing its
/// own IO. All process-boundary IO belongs to the Transport behind the
/// barrier (rt::frame's write_all / read_some are the only sanctioned fd
/// touchpoints); a send() or read() inside a superstep lambda bypasses the
/// ledger, the conservation check, and the delivery-order contract.
const std::set<std::string>& raw_fd_functions() {
  static const std::set<std::string> f = {
      "accept", "bind",     "close",   "connect", "creat",   "dup",
      "dup2",   "dup3",     "fcntl",   "ioctl",   "listen",  "open",
      "openat", "pipe",     "pipe2",   "poll",    "ppoll",   "pread",
      "pselect", "pwrite",  "read",    "readv",   "recv",    "recvfrom",
      "recvmsg", "select",  "send",    "sendmsg", "sendto",  "socket",
      "socketpair", "write", "writev"};
  return f;
}

/// Bare POSIX fd calls inside a superstep lambda. Member calls
/// (`out.send(...)` — the Outbox API) and namespace-qualified names
/// (`rt::read_some`, which is not on the list anyway) are skipped; bare
/// and global-scope (`::write(...)`) calls are flagged.
void check_raw_fd_in_body(const std::string& file, const Tokens& t,
                          const SuperstepLambda& lam, const SkipSpans& skip,
                          std::vector<Diagnostic>& out) {
  for (std::size_t i = lam.body_begin; i <= lam.body_end; ++i) {
    const std::size_t jump = skip_to(skip, i);
    if (jump != i) {
      i = jump;
      continue;
    }
    const Token& tk = t[i];
    if (tk.kind != Tok::Ident || tk.preproc) continue;
    if (raw_fd_functions().find(tk.text) == raw_fd_functions().end()) continue;
    if (i + 1 >= t.size() || !is(t[i + 1], "(")) continue;
    if (i > 0 && (is(t[i - 1], ".") || is(t[i - 1], "->"))) continue;
    if (i > 1 && is(t[i - 1], "::") && t[i - 2].kind == Tok::Ident) continue;
    out.push_back(
        {file, tk.line, kRawFd,
         "'" + tk.text +
             "(...)' inside a superstep lambda: rank programs must not "
             "touch file descriptors — IO crosses the barrier outside the "
             "ledger and the transport's delivery-order contract; post "
             "bytes via Outbox::send and let the Transport move them",
         false,
         ""});
  }
}

// --- suppressions -------------------------------------------------------------

struct Suppression {
  int line = 0;
  std::string check;
  std::string justification;
  bool used = false;
};

void parse_suppressions(const std::string& file,
                        const std::vector<Comment>& comments,
                        std::vector<Suppression>& sups,
                        std::vector<Diagnostic>& out) {
  for (std::size_t ci = 0; ci < comments.size(); ++ci) {
    const Comment& c = comments[ci];
    const std::size_t tag = c.text.find("plum-lint:");
    if (tag == std::string::npos) continue;
    const std::string rest = trim(c.text.substr(tag + 10));
    const std::size_t open = rest.find("allow(");
    const std::size_t close = rest.find(')');
    if (open != 0 || close == std::string::npos || close < 6) {
      out.push_back({file, c.line, kBadSuppress,
                     "malformed plum-lint comment; expected "
                     "`plum-lint: allow(<check>) -- <justification>`",
                     false,
                     ""});
      continue;
    }
    const std::string check = trim(rest.substr(6, close - 6));
    bool known = false;
    for (const auto& ci : checks()) known |= (check == ci.name);
    if (!known || is_meta_check(check)) {
      out.push_back({file, c.line, kBadSuppress,
                     "unknown or unsuppressable check '" + check +
                         "' in plum-lint suppression",
                     false,
                     ""});
      continue;
    }
    std::string just;
    const std::size_t dash = rest.find("--", close);
    if (dash != std::string::npos) just = trim(rest.substr(dash + 2));
    // A justification may wrap onto directly following comment lines; the
    // suppression then anchors at the end of the comment block.
    int anchor = c.line;
    for (std::size_t k = ci + 1; k < comments.size(); ++k) {
      if (comments[k].line != anchor + 1 ||
          comments[k].text.find("plum-lint:") != std::string::npos) {
        break;
      }
      anchor = comments[k].line;
      if (!just.empty()) just += " " + trim(comments[k].text);
    }
    if (just.empty()) {
      out.push_back({file, c.line, kBadSuppress,
                     "plum-lint suppression for '" + check +
                         "' lacks a justification; write "
                         "`allow(" + check + ") -- <why this is safe>`",
                     false,
                     ""});
      continue;
    }
    sups.push_back({anchor, check, just, false});
  }
}

}  // namespace

const std::vector<CheckInfo>& checks() {
  static const std::vector<CheckInfo> kChecks = {
      {kRankGuard,
       "rank==0-guarded writes to captured state inside superstep lambdas"},
      {kUnordered,
       "unordered_map/set declarations and range-for loops in deterministic "
       "paths"},
      {kSharedAcc,
       "captured state written from superstep lambdas without per-rank "
       "indexing"},
      {kNondet,
       "rand()/time()/std::random_device/pointer-hash and friends"},
      {kWallClock,
       "util::Timer / std::chrono ::now() reads inside superstep lambdas"},
      {kRawFd,
       "bare POSIX fd calls (read/write/send/recv/...) inside superstep "
       "lambdas"},
      {kBadSuppress, "malformed or unjustified plum-lint suppressions"},
      {kUnusedSuppress, "suppressions that no longer match any diagnostic"},
  };
  return kChecks;
}

int LintResult::unsuppressed_count() const {
  return static_cast<int>(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& d) { return !d.suppressed; }));
}

int LintResult::suppressed_count() const {
  return static_cast<int>(diagnostics.size()) - unsuppressed_count();
}

int LintResult::count_of(const std::string& check,
                         bool include_suppressed) const {
  return static_cast<int>(std::count_if(
      diagnostics.begin(), diagnostics.end(), [&](const Diagnostic& d) {
        return d.check == check && (include_suppressed || !d.suppressed);
      }));
}

LintResult lint_files(const std::vector<FileInput>& files) {
  LintResult result;
  result.files_scanned = static_cast<int>(files.size());

  std::vector<LexResult> lexed;
  lexed.reserve(files.size());
  std::vector<std::set<std::string>> per_file_names(files.size());
  std::set<std::string> all_names;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    lexed.push_back(lex(files[fi].content));
    collect_unordered_names(lexed.back().tokens, per_file_names[fi]);
    all_names.insert(per_file_names[fi].begin(), per_file_names[fi].end());
  }

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& path = files[fi].path;
    const Tokens& t = lexed[fi].tokens;
    std::vector<Diagnostic> diags;

    check_unordered(path, t, per_file_names[fi], all_names, diags);
    check_nondeterminism(path, t, diags);
    const auto lambdas = find_superstep_lambdas(t);
    for (const auto& lam : lambdas) {
      const SkipSpans skip = nested_superstep_spans(lambdas, lam);
      check_superstep_body(path, t, lam, skip, diags);
      check_wallclock_in_body(path, t, lam, skip, diags);
      check_raw_fd_in_body(path, t, lam, skip, diags);
    }

    std::vector<Suppression> sups;
    parse_suppressions(path, lexed[fi].comments, sups, diags);
    for (auto& d : diags) {
      if (is_meta_check(d.check)) continue;
      for (auto& s : sups) {
        if (s.check == d.check && (s.line == d.line || s.line == d.line - 1)) {
          d.suppressed = true;
          d.justification = s.justification;
          s.used = true;
          break;
        }
      }
    }
    for (const auto& s : sups) {
      if (!s.used) {
        diags.push_back({path, s.line, kUnusedSuppress,
                         "suppression for '" + s.check +
                             "' matches no diagnostic on this or the next "
                             "line; remove it so suppressions stay honest",
                         false,
                         ""});
      }
    }
    result.diagnostics.insert(result.diagnostics.end(), diags.begin(),
                              diags.end());
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end());
  return result;
}

LintResult lint_source(const std::string& path, const std::string& content) {
  return lint_files({{path, content}});
}

std::string to_json(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"unsuppressed\": " << result.unsuppressed_count()
     << ",\n  \"suppressed\": " << result.suppressed_count()
     << ",\n  \"counts\": {";
  bool first = true;
  for (const auto& c : checks()) {
    if (!first) os << ", ";
    first = false;
    json_escape(os, c.name);
    os << ": " << result.count_of(c.name, /*include_suppressed=*/true);
  }
  os << "},\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const auto& d = result.diagnostics[i];
    os << (i ? ",\n    {" : "\n    {") << "\"file\": ";
    json_escape(os, d.file);
    os << ", \"line\": " << d.line << ", \"check\": ";
    json_escape(os, d.check);
    os << ", \"suppressed\": " << (d.suppressed ? "true" : "false");
    if (d.suppressed) {
      os << ", \"justification\": ";
      json_escape(os, d.justification);
    }
    os << ", \"message\": ";
    json_escape(os, d.message);
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace plumlint
