#pragma once
// Shared token-stream machinery for the plum-lint and plum-scale passes.
// Everything here used to live in linter.cpp's anonymous namespace; the
// project-wide scalability analyzer (scale.cpp) and its symbol indexer
// (index.cpp) need the same declaration parsing, lvalue walking, and
// superstep-lambda discovery, so the helpers are promoted to a small
// shared library. Semantics are token-level and deliberately approximate:
// misses make checks stricter, never looser.

#include <cstddef>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.hpp"

namespace plumlint {

using Tokens = std::vector<Token>;

inline bool is(const Token& t, const char* text) { return t.text == text; }

/// Fundamental / fixed-width type keywords recognized at declaration heads.
const std::set<std::string>& type_keywords();

/// Statement keywords that can never start a declaration.
const std::set<std::string>& stmt_keywords();

/// Method names that mutate their receiver (container mutators plus the
/// obs recording API). Read-only lookups are deliberately absent.
const std::set<std::string>& mutating_methods();

/// i at "<": index just past the matching ">", or i + 1 if this `<` does
/// not look like a template list (no match before ; { }).
std::size_t skip_template(const Tokens& t, std::size_t i);

/// i at an opening bracket: index of the matching closer (or end).
std::size_t match_forward(const Tokens& t, std::size_t i, const char* open,
                          const char* close);

std::string trim(const std::string& s);

struct DeclNames {
  std::vector<std::string> names;
  bool matched = false;
};

/// Tries to parse a declaration starting at `i` (statement start). Handles
/// `const T& x = ...`, `std::vector<T> x(...)`, `auto it = ...`,
/// structured bindings `const auto& [a, b] : ...`, and multi-keyword
/// fundamentals. Does not need to be complete — misses only make the
/// mutation checks slightly stricter, never looser.
DeclNames try_parse_decl(const Tokens& t, std::size_t i);

struct LhsInfo {
  std::string base;
  bool rank_indexed = false;
  bool ok = false;
};

/// Walks an lvalue access path backward from `j` (inclusive) to its base
/// identifier, noting whether any subscript on the path mentions the rank
/// variable: `counts[size_t(r)] += ..` is per-rank state, `counts[i] += ..`
/// is not.
LhsInfo parse_lhs_backward(const Tokens& t, std::size_t j, std::size_t begin,
                           const std::string& rank_var);

/// Forward variant for prefix ++/--: ++x, ++x.y[r].
LhsInfo parse_lhs_forward(const Tokens& t, std::size_t j,
                          const std::string& rank_var);

bool is_assign_op(const Token& t);

struct SuperstepLambda {
  std::size_t body_begin = 0;  ///< index of the opening '{'
  std::size_t body_end = 0;    ///< index of the matching '}'
  std::string rank_var;        ///< may be empty (unnamed Rank param)
  std::vector<std::string> param_names;
};

/// Token positions a lambda-introducer `[` can legally follow. Shared by
/// the superstep finder and the nested-lambda scope tracker so both agree
/// on what is a lambda versus a subscript.
bool lambda_position(const Token& prev);

/// Names a nested lambda owns: its parameters, init-captures, and by-value
/// copies. Writes to these are closure-local, not mutations of the
/// enclosing superstep's captured state. By-reference captures are
/// deliberately excluded — writing through them still aliases outer state.
std::vector<std::string> nested_lambda_own_names(const Tokens& t,
                                                 std::size_t cap_open,
                                                 std::size_t cap_end);

/// Finds lambdas whose parameter list mentions both Rank and Outbox — the
/// rt::Engine::StepFn shape all superstep programs use.
std::vector<SuperstepLambda> find_superstep_lambdas(const Tokens& t);

/// Body spans of *other* superstep lambdas nested inside `lam`. Those are
/// analyzed separately with their own rank variable; scanning them with the
/// outer lambda's rank would both double-report and mis-judge rank indexing.
using SkipSpans = std::vector<std::pair<std::size_t, std::size_t>>;

SkipSpans nested_superstep_spans(const std::vector<SuperstepLambda>& all,
                                 const SuperstepLambda& lam);

/// If `i` opens a nested superstep body, the index of its closing brace
/// (caller jumps there); otherwise `i` unchanged.
std::size_t skip_to(const SkipSpans& skip, std::size_t i);

void json_escape(std::ostream& os, const std::string& s);

}  // namespace plumlint
