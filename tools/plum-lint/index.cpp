#include "index.hpp"

#include <algorithm>

#include "lexer.hpp"

namespace plumlint {

namespace {

/// Conventional spellings for "number of ranks". Containers sized by one
/// of these are per-rank state even when the declaration site is in a
/// file the index never saw (e.g. a CLI variable).
const std::set<std::string>& builtin_rank_count_names() {
  static const std::set<std::string> n = {"nranks", "n_ranks", "num_ranks",
                                          "nprocs", "world_size"};
  return n;
}

/// Joins token texts with single spaces: good enough for diagnostics and
/// for phase 2's substring probes ("map < Index", "SplMap", ...).
std::string join_tokens(const Tokens& t, std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t j = begin; j < end; ++j) {
    if (!out.empty()) out += ' ';
    out += t[j].text;
  }
  return out;
}

/// Parses one member declaration at statement start `i` inside a struct
/// body. Returns the index to resume from; appends to `fields` on success.
/// Member functions (name followed by '(') are skipped — only data members
/// carry replicated state.
std::size_t parse_field(const Tokens& t, std::size_t i,
                        std::vector<FieldInfo>& fields) {
  std::size_t j = i;
  while (is(t[j], "const") || is(t[j], "constexpr") || is(t[j], "static") ||
         is(t[j], "mutable") || is(t[j], "inline")) {
    ++j;
  }
  if (t[j].kind != Tok::Ident) return i;
  if (stmt_keywords().count(t[j].text)) return i;
  const std::size_t type_begin = j;
  const std::string& first = t[j].text;
  ++j;
  if (first == "unsigned" || first == "signed" || first == "long" ||
      first == "short") {
    while (t[j].kind == Tok::Ident && type_keywords().count(t[j].text)) ++j;
  }
  while (true) {
    if (is(t[j], "::") && t[j + 1].kind == Tok::Ident) {
      j += 2;
    } else if (is(t[j], "<")) {
      const std::size_t k = skip_template(t, j);
      if (k == j + 1) return i;
      j = k;
    } else {
      break;
    }
  }
  while (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")) ++j;
  if (t[j].kind != Tok::Ident) return i;
  const std::string& nx = t[j + 1].text;
  if (nx == "(") return i;  // member function
  if (nx == ";" || nx == "=" || nx == "{" || nx == ",") {
    fields.push_back({t[j].text, join_tokens(t, type_begin, j), t[j].line});
    return j;
  }
  return i;
}

/// Scans a `struct Name { ... }` body for data members at depth 1.
void collect_struct(const Tokens& t, std::size_t body_open,
                    std::size_t body_close, StructInfo& info) {
  int depth = 0;
  for (std::size_t i = body_open; i < body_close; ++i) {
    const Token& tk = t[i];
    if (is(tk, "{")) {
      ++depth;
      continue;
    }
    if (is(tk, "}")) {
      --depth;
      continue;
    }
    if (depth != 1) continue;
    const Token& prev = t[i - 1];
    const bool stmt_start = is(prev, "{") || is(prev, ";") || is(prev, "}") ||
                            (is(prev, ":") && i >= 2 &&
                             (is(t[i - 2], "public") || is(t[i - 2], "private") ||
                              is(t[i - 2], "protected")));
    if (!stmt_start || tk.kind != Tok::Ident) continue;
    const std::size_t resumed = parse_field(t, i, info.fields);
    if (resumed != i) i = resumed;
  }
}

struct ParamGroup {
  std::string name;
  bool mutable_ref = false;
};

/// Splits a function parameter list at depth-0 commas: each group yields
/// its last identifier as the name and `T& x` (without const) marks it a
/// mutable reference — the only kind a one-level summary tracks writes to.
std::vector<ParamGroup> parse_params(const Tokens& t, std::size_t popen,
                                     std::size_t pclose) {
  std::vector<ParamGroup> out;
  if (pclose == popen + 1) return out;
  std::size_t start = popen + 1;
  int depth = 0;
  for (std::size_t j = popen + 1; j <= pclose; ++j) {
    const std::string& x = t[j].text;
    if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
    if (x == "]" || x == "}" || x == ">") --depth;
    if ((x == "," && depth == 0) || j == pclose) {
      ParamGroup g;
      bool has_const = false, has_ref = false;
      for (std::size_t k = start; k < j; ++k) {
        if (is(t[k], "const")) has_const = true;
        if (is(t[k], "&")) has_ref = true;
        if (t[k].kind == Tok::Ident) g.name = t[k].text;
      }
      g.mutable_ref = has_ref && !has_const;
      if (!g.name.empty()) out.push_back(std::move(g));
      start = j + 1;
    }
    if (x == ")" && j != pclose) --depth;
  }
  return out;
}

/// One-level mutation summary: which mutable-ref params does the body
/// write through (assignment, ++/--, or a mutating method call)?
void summarize_mutations(const Tokens& t, std::size_t body_open,
                         std::size_t body_close,
                         const std::vector<ParamGroup>& params,
                         FuncInfo& info) {
  auto param_index = [&](const std::string& base) -> std::ptrdiff_t {
    for (std::size_t p = 0; p < params.size(); ++p) {
      if (params[p].mutable_ref && params[p].name == base) {
        return static_cast<std::ptrdiff_t>(p);
      }
    }
    return -1;
  };
  std::set<std::size_t> mutated;
  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const Token& tk = t[i];
    LhsInfo lhs;
    if (is_assign_op(tk)) {
      lhs = parse_lhs_backward(t, i - 1, body_open, "");
    } else if (is(tk, "++") || is(tk, "--")) {
      if (t[i + 1].kind == Tok::Ident) {
        lhs = parse_lhs_forward(t, i + 1, "");
      } else if (t[i - 1].kind == Tok::Ident || is(t[i - 1], "]")) {
        lhs = parse_lhs_backward(t, i - 1, body_open, "");
      }
    } else if (tk.kind == Tok::Ident && is(t[i + 1], "(") &&
               (is(t[i - 1], ".") || is(t[i - 1], "->")) &&
               mutating_methods().count(tk.text)) {
      lhs = parse_lhs_backward(t, i, body_open, "");
    } else {
      continue;
    }
    if (!lhs.ok || lhs.base.empty()) continue;
    const std::ptrdiff_t p = param_index(lhs.base);
    if (p >= 0) mutated.insert(static_cast<std::size_t>(p));
  }
  info.mutated_params.assign(mutated.begin(), mutated.end());
}

/// Free-function definitions: `name ( params ) [const noexcept ...] {`.
/// Qualified definitions (`Foo::bar`) index under the last component.
/// Control-flow keywords and member-call receivers are excluded.
void collect_functions(const std::string& file, const Tokens& t,
                       std::map<std::string, std::vector<FuncInfo>>& funcs) {
  for (std::size_t i = 1; i + 2 < t.size(); ++i) {
    const Token& tk = t[i];
    if (tk.kind != Tok::Ident || tk.preproc) continue;
    if (stmt_keywords().count(tk.text)) continue;
    if (!is(t[i + 1], "(")) continue;
    if (is(t[i - 1], ".") || is(t[i - 1], "->")) continue;
    const std::size_t popen = i + 1;
    const std::size_t pclose = match_forward(t, popen, "(", ")");
    std::size_t b = pclose + 1;
    while (is(t[b], "const") || is(t[b], "noexcept") || is(t[b], "override") ||
           is(t[b], "final")) {
      ++b;
    }
    if (is(t[b], "->")) {  // trailing return type
      while (t[b].kind != Tok::End && !is(t[b], "{") && !is(t[b], ";")) ++b;
    }
    if (!is(t[b], "{")) continue;
    const std::size_t body_close = match_forward(t, b, "{", "}");

    FuncInfo info;
    info.name = tk.text;
    info.file = file;
    info.line = tk.line;
    const auto params = parse_params(t, popen, pclose);
    for (const auto& p : params) info.param_names.push_back(p.name);
    summarize_mutations(t, b, body_close, params, info);
    funcs[info.name].push_back(std::move(info));
    i = b;  // resume at the body; nested definitions (lambdas) are not free
  }
}

/// Rank-count names in one file: `Rank x` declarations and initializers
/// that call `nranks()` (`const auto P = fw.nranks();`).
void collect_rank_counts(const Tokens& t, std::set<std::string>& names) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || t[i].preproc) continue;
    if (is(t[i], "Rank") && t[i + 1].kind == Tok::Ident) {
      const std::string& nx = t[i + 2].text;
      if (nx == "=" || nx == ";" || nx == "," || nx == ")" || nx == "{" ||
          nx == ":") {
        names.insert(t[i + 1].text);
      }
      continue;
    }
    if (is(t[i + 1], "=") && t[i].kind == Tok::Ident) {
      for (std::size_t j = i + 2; j < t.size() && !is(t[j], ";"); ++j) {
        if (is(t[j], "nranks") && is(t[j + 1], "(")) {
          names.insert(t[i].text);
          break;
        }
      }
    }
  }
}

/// `std::vector<S ...>` uses: records the (last component of the) element
/// type name. Phase 2 cross-references these against indexed structs.
void collect_replications(const std::string& file, const Tokens& t,
                          std::vector<ReplicationSite>& out) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || t[i].preproc) continue;
    if (!is(t[i], "vector") || !is(t[i + 1], "<")) continue;
    std::size_t j = i + 2;
    while (is(t[j], "const")) ++j;
    if (t[j].kind != Tok::Ident) continue;
    std::string elem = t[j].text;
    while (is(t[j + 1], "::") && t[j + 2].kind == Tok::Ident) {
      elem = t[j + 2].text;
      j += 2;
    }
    out.push_back({elem, file, t[i].line});
  }
}

}  // namespace

bool SymbolIndex::is_replicated(const std::string& struct_name) const {
  return std::any_of(
      replications.begin(), replications.end(),
      [&](const ReplicationSite& r) { return r.struct_name == struct_name; });
}

const StructInfo* SymbolIndex::find_struct(const std::string& name) const {
  const auto it = structs.find(name);
  return it == structs.end() ? nullptr : &it->second;
}

SymbolIndex build_index(const std::vector<FileInput>& files) {
  SymbolIndex index;
  std::vector<StructInfo> all_structs;

  for (const auto& f : files) {
    const LexResult lexed = lex(f.content);
    const Tokens& t = lexed.tokens;

    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != Tok::Ident || t[i].preproc) continue;
      if (!is(t[i], "struct") && !is(t[i], "class")) continue;
      if (t[i + 1].kind != Tok::Ident) continue;
      // `struct Name;` is a forward declaration — no definition, no
      // fields; it must never shadow (or duplicate) the real one.
      std::size_t b = i + 2;
      if (is(t[b], ";")) continue;
      if (is(t[b], ":")) {  // base clause
        while (t[b].kind != Tok::End && !is(t[b], "{") && !is(t[b], ";")) ++b;
      }
      if (!is(t[b], "{")) continue;
      StructInfo info;
      info.name = t[i + 1].text;
      info.file = f.path;
      info.line = t[i].line;
      collect_struct(t, b, match_forward(t, b, "{", "}"), info);
      all_structs.push_back(std::move(info));
    }

    collect_functions(f.path, t, index.functions);
    collect_rank_counts(t, index.rank_count_names[f.path]);
    collect_replications(f.path, t, index.replications);
  }

  // Deterministic regardless of input order: sort every per-name list by
  // (file, line); same-name structs from different files keep distinct
  // keys ("Name@file") with the lexicographically first file primary.
  std::sort(all_structs.begin(), all_structs.end(),
            [](const StructInfo& a, const StructInfo& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  for (auto& s : all_structs) {
    if (index.structs.count(s.name) == 0) {
      index.structs.emplace(s.name, std::move(s));
    } else {
      const std::string key = s.name + "@" + s.file;
      index.structs.emplace(key, std::move(s));
    }
  }
  for (auto& [name, defs] : index.functions) {
    std::sort(defs.begin(), defs.end(),
              [](const FuncInfo& a, const FuncInfo& b) {
                if (a.file != b.file) return a.file < b.file;
                return a.line < b.line;
              });
  }
  std::sort(index.replications.begin(), index.replications.end(),
            [](const ReplicationSite& a, const ReplicationSite& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.struct_name < b.struct_name;
            });

  return index;
}

bool SymbolIndex::is_rank_count(const std::string& file,
                                const std::string& name) const {
  if (builtin_rank_count_names().count(name)) return true;
  const auto it = rank_count_names.find(file);
  return it != rank_count_names.end() && it->second.count(name) > 0;
}

}  // namespace plumlint
