// check_bench_json: CI gate for the machine-readable bench reports.
//
//   check_bench_json BENCH_fig4.json [BENCH_fig5.json ...]
//
// Each file must parse as strict JSON and validate against the
// "plum-bench/1" / "plum-bench/2" schemas (obs::validate_bench_report —
// the same validator the unit tests exercise, so the gate and the tests
// cannot drift). v2 adds gauge series, the per-run comm matrix, and the
// gate-audit log; see src/obs/bench_schema.hpp.
// Exit code 0 iff every file is valid; each failure is reported on stderr.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json>...\n", argv[0]);
    return 2;
  }

  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    plum::obs::Json doc;
    std::string err;
    if (!plum::obs::Json::parse(buf.str(), &doc, &err)) {
      std::fprintf(stderr, "%s: parse error: %s\n", path, err.c_str());
      ++failures;
      continue;
    }
    err = plum::obs::validate_bench_report(doc);
    if (!err.empty()) {
      std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
      ++failures;
      continue;
    }
    const std::size_t runs = doc.find("runs")->size();
    std::printf("%s: ok (%zu runs, bench \"%s\")\n", path, runs,
                doc.find("bench")->as_string().c_str());
  }
  return failures == 0 ? 0 : 1;
}
