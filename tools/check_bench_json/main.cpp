// check_bench_json: CI gate for the machine-readable bench reports.
//
//   check_bench_json BENCH_fig4.json [RUN_bench_distributed.json ...]
//
// Each file must parse as strict JSON and validate against its schema:
//   plum-bench/1|2 — obs::validate_bench_report (the same validator the
//                    unit tests exercise, so the gate and the tests cannot
//                    drift). v2 adds gauge series, the per-run comm matrix,
//                    and the gate-audit log; see src/obs/bench_schema.hpp.
//   plum-run/1     — the trace+metrics document plum-report renders: a
//                    string "name", a "trace" object holding "phases" and
//                    "supersteps" arrays, and a "metrics" object.
//   plum-replay/1  — the recorded timing book deterministic calibration
//                    replays (sim::ReplayBook, the strict parser the
//                    frameworks load through FrameworkOptions::replay_path).
//   plum-postmortem/1 — crash dumps written by the plum-scope abort hook
//                    (obs::validate_postmortem).
//   plum-scope/1   — live run streams: NDJSON, one record per cycle. A
//                    file that fails whole-document parsing is retried
//                    line by line; every line must validate
//                    (obs::validate_scope_record).
// Exit code 0 iff every file is valid; each failure is reported on stderr.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/scope.hpp"
#include "sim/calibration.hpp"

namespace {

using plum::obs::Json;

/// Structural validation of a "plum-run/1" document. Returns "" when valid.
std::string validate_run_doc(const Json& doc) {
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string()) {
    return "missing or non-string \"name\"";
  }
  const Json* trace = doc.find("trace");
  if (trace == nullptr || !trace->is_object()) {
    return "missing or non-object \"trace\"";
  }
  for (const char* key : {"phases", "supersteps"}) {
    const Json* arr = trace->find(key);
    if (arr == nullptr || !arr->is_array()) {
      return std::string("trace missing array \"") + key + "\"";
    }
  }
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return "missing or non-object \"metrics\"";
  }
  // A trace written with a MemoryTracker attached carries the plum-heap/1
  // section; when present it must validate (same checker as the tests).
  const Json* heap = trace->find("heap");
  if (heap != nullptr) {
    const std::string herr = plum::obs::validate_heap_section(*heap);
    if (!herr.empty()) return "heap section: " + herr;
  }
  return "";
}

/// NDJSON validation of a plum-scope/1 stream: every non-empty line must
/// parse and validate as one record. Returns the record count via *records;
/// "" when valid.
std::string validate_scope_stream(const std::string& text,
                                  std::size_t* records) {
  *records = 0;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json rec;
    std::string err;
    if (!Json::parse(line, &rec, &err)) {
      return "line " + std::to_string(lineno) + ": parse error: " + err;
    }
    err = plum::obs::validate_scope_record(rec);
    if (!err.empty()) {
      return "line " + std::to_string(lineno) + ": " + err;
    }
    ++*records;
  }
  if (*records == 0) return "no records";
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json|RUN_*.json>...\n", argv[0]);
    return 2;
  }

  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Json doc;
    std::string err;
    if (!Json::parse(buf.str(), &doc, &err)) {
      // A multi-line plum-scope/1 stream is NDJSON, not one document: fall
      // back to per-line validation before giving up.
      std::size_t records = 0;
      const std::string stream_err =
          validate_scope_stream(buf.str(), &records);
      if (stream_err.empty()) {
        std::printf("%s: ok (plum-scope/1 stream, %zu records)\n", path,
                    records);
        continue;
      }
      std::fprintf(stderr, "%s: parse error: %s (scope-stream retry: %s)\n",
                   path, err.c_str(), stream_err.c_str());
      ++failures;
      continue;
    }

    const Json* schema = doc.is_object() ? doc.find("schema") : nullptr;
    if (schema != nullptr && schema->is_string() &&
        schema->as_string() == "plum-run/1") {
      err = validate_run_doc(doc);
      if (!err.empty()) {
        std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
        ++failures;
        continue;
      }
      std::printf("%s: ok (plum-run/1, run \"%s\")\n", path,
                  doc.find("name")->as_string().c_str());
      continue;
    }

    if (schema != nullptr && schema->is_string() &&
        schema->as_string() == "plum-replay/1") {
      plum::sim::ReplayBook book;
      if (!plum::sim::ReplayBook::parse(doc, &book, &err)) {
        std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
        ++failures;
        continue;
      }
      std::printf("%s: ok (plum-replay/1, %zu cycles)\n", path,
                  book.cycles.size());
      continue;
    }

    if (schema != nullptr && schema->is_string() &&
        schema->as_string() == "plum-postmortem/1") {
      err = plum::obs::validate_postmortem(doc);
      if (!err.empty()) {
        std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
        ++failures;
        continue;
      }
      std::printf("%s: ok (plum-postmortem/1, run \"%s\")\n", path,
                  doc.find("name")->as_string().c_str());
      continue;
    }

    if (schema != nullptr && schema->is_string() &&
        schema->as_string() == "plum-scope/1") {
      // Single-record stream that happened to parse as one document.
      err = plum::obs::validate_scope_record(doc);
      if (!err.empty()) {
        std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
        ++failures;
        continue;
      }
      std::printf("%s: ok (plum-scope/1 stream, 1 record)\n", path);
      continue;
    }

    err = plum::obs::validate_bench_report(doc);
    if (!err.empty()) {
      std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
      ++failures;
      continue;
    }
    const std::size_t runs = doc.find("runs")->size();
    std::printf("%s: ok (%zu runs, bench \"%s\")\n", path, runs,
                doc.find("bench")->as_string().c_str());
  }
  return failures == 0 ? 0 : 1;
}
