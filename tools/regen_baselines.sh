#!/usr/bin/env bash
# Regenerates the committed plum-diff baselines under bench/baselines/.
#
# Run this (and commit the result) whenever a deliberate change shifts a
# deterministic bench metric and CI's plum-diff regression gate reports a
# breach. The invocation mirrors the bench-smoke CI job exactly: small
# problem sizes, two engine threads, reports written via
# PLUM_BENCH_JSON_DIR. Wall-clock fields in the reports differ machine to
# machine by construction; plum-diff treats them as report-only, so the
# committed values are only illustrative.
#
# Usage: tools/regen_baselines.sh [build-dir]   (default: build-baselines)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-baselines}"
out_dir="${repo_root}/bench/baselines"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target \
  bench_micro bench_fig4 bench_fig5 bench_fig6 bench_table2 bench_distributed

mkdir -p "${out_dir}"
rm -f "${out_dir}"/BENCH_*.json

# Same flags as .github/workflows/ci.yml bench-smoke.
export PLUM_BENCH_SMALL=1
export PLUM_BENCH_JSON_DIR="${out_dir}"
# bench_micro writes BENCH_bench_micro_scope.json (flight-recorder ring
# survival counts are deterministic and gated; ns/event is wall, report-only)
# and BENCH_bench_micro_mem.json (per-phase allocation churn for HEM match,
# KL-FM refine, and remap pack; arena overhead is wall, report-only).
"${build_dir}/bench/bench_micro" --threads 2 \
  --benchmark_filter='ScopeRecorder|Arena' --benchmark_min_time=0.05
"${build_dir}/bench/bench_fig4"
"${build_dir}/bench/bench_fig5"
"${build_dir}/bench/bench_fig6"
"${build_dir}/bench/bench_table2"
"${build_dir}/bench/bench_distributed" --threads 2
# Weak scaling at P=64/128/256; modeled metrics are transport-invariant
# (the transport-smoke CI job diffs its pipe run against this baseline).
"${build_dir}/bench/bench_distributed" --weak --threads 2

# The benches also drop trace / run / gate / replay side files next to the
# reports; only the BENCH_*.json reports are baselines.
rm -f "${out_dir}"/TRACE_*.json "${out_dir}"/RUN_*.json \
  "${out_dir}"/GATE_*.json "${out_dir}"/REPLAY_*.json

echo "baselines:"
ls -l "${out_dir}"
