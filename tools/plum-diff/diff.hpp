#pragma once
// plum-diff core: metric-by-metric comparison of two plum-bench/1|2
// reports, built as a static library so tests/test_plum_diff.cpp can drive
// the comparison (and the exit-status mapping) in-process.
//
// Comparison contract:
//   - Runs are matched by (case, P). A run present in the baseline but not
//     the current report (or vice versa) is a breach.
//   - Deterministic integer metrics (msgs_sent, supersteps, comm-matrix
//     cells, gate decisions, ...) must match exactly.
//   - Deterministic doubles (modeled seconds, imbalance, critical-path
//     busy/wait, ...) must agree within a relative tolerance — 1e-9 by
//     default, overridable per metric name via Options::metric_tol (for
//     metrics that are deterministic but environment-sensitive).
//   - Wall-clock values (metric name "wall_s" / "*_seconds", phase
//     "wall_s" fields, histograms rendered with "wall": true) are
//     REPORT-ONLY: their deltas appear in the table but never breach.
//   - Gauge series must have identical lengths; samples are compared
//     element-wise under the same rules as scalars.
//
// Exit-status mapping (exit_status): 0 = no breach, 1 = any breach,
// 2 = usage / IO / parse / shape error.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace plum::diff {

struct Options {
  /// Default relative tolerance for deterministic floating-point metrics.
  double rel_tol = 1e-9;
  /// Per-metric overrides, keyed by the leaf metric name (e.g.
  /// "refine_work_imbalance" -> 0.05 allows 5% drift on that metric only).
  std::map<std::string, double> metric_tol;
};

/// One compared entry whose values differ (equal entries are counted but
/// not recorded, so the table stays readable).
struct Delta {
  std::string where;     ///< e.g. "run[box8,P=4].metrics.msgs_sent"
  std::string baseline;  ///< rendered baseline value
  std::string current;   ///< rendered current value
  double rel = 0;        ///< relative delta (0 when not meaningful)
  double tol = 0;        ///< tolerance applied (ignored for wall entries)
  bool wall = false;     ///< report-only wall-clock entry
  bool breach = false;
};

struct DiffResult {
  std::vector<Delta> deltas;  ///< changed entries only, in document order
  int compared = 0;           ///< leaf values compared
  int breaches = 0;
  std::string error;  ///< non-empty on IO/parse/shape failure (status 2)
};

/// Compares two parsed plum-bench reports. Both documents must pass
/// obs::validate_bench_report; a validation failure is reported via
/// DiffResult::error.
DiffResult diff_reports(const obs::Json& baseline, const obs::Json& current,
                        const Options& opt);

/// Loads and compares two report files.
DiffResult diff_files(const std::string& baseline_path,
                      const std::string& current_path, const Options& opt);

/// Compares every BENCH_*.json in `baseline_dir` against the same filename
/// in `current_dir` (CI mode). A BENCH_*.json present on one side only is
/// a breach; other files (TRACE_/RUN_/GATE_) are ignored.
DiffResult diff_dirs(const std::string& baseline_dir,
                     const std::string& current_dir, const Options& opt);

/// Renders the delta table (changed entries + summary line) to `out`.
void print_delta_table(const DiffResult& result, std::FILE* out);

/// 0 = clean, 1 = breaches, 2 = error.
int exit_status(const DiffResult& result);

}  // namespace plum::diff
