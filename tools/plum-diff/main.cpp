// plum-diff: the bench regression gate. Compares two plum-bench/1|2
// reports (or two directories of BENCH_*.json files) metric by metric,
// prints a delta table, and exits nonzero when a deterministic metric
// drifts past its threshold.
//
//   plum-diff bench/baselines bench-json            # CI gate (dir mode)
//   plum-diff old/BENCH_fig4.json new/BENCH_fig4.json
//   plum-diff --tol refine_work_imbalance=0.05 base.json cur.json
//
// Deterministic integers must match exactly; deterministic doubles get a
// relative tolerance (--rel-tol, default 1e-9, per-metric --tol name=X).
// Wall-clock values (wall_s, *_seconds, histograms with "wall": true) are
// shown in the table but never gate — see diff.hpp for the full contract.
//
// Exit status: 0 = no breach, 1 = breach, 2 = usage/IO/parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "diff.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: plum-diff [--rel-tol X] [--tol metric=X ...] "
      "<baseline.json|dir> <current.json|dir>\n");
  return 2;
}

bool parse_tol(const char* arg, std::string* name, double* value) {
  const char* eq = std::strchr(arg, '=');
  if (!eq || eq == arg) return false;
  name->assign(arg, static_cast<std::size_t>(eq - arg));
  char* end = nullptr;
  *value = std::strtod(eq + 1, &end);
  return end && *end == '\0' && *value >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  plum::diff::Options opt;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--rel-tol") == 0 && i + 1 < argc) {
      char* end = nullptr;
      opt.rel_tol = std::strtod(argv[++i], &end);
      if (!end || *end != '\0' || opt.rel_tol < 0) return usage();
    } else if (std::strcmp(arg, "--tol") == 0 && i + 1 < argc) {
      std::string name;
      double value = 0;
      if (!parse_tol(argv[++i], &name, &value)) return usage();
      opt.metric_tol[name] = value;
    } else if (arg[0] == '-') {
      return usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) return usage();

  std::error_code ec;
  const bool dir_mode = std::filesystem::is_directory(paths[0], ec);
  const plum::diff::DiffResult result =
      dir_mode ? plum::diff::diff_dirs(paths[0], paths[1], opt)
               : plum::diff::diff_files(paths[0], paths[1], opt);

  plum::diff::print_delta_table(result, stdout);
  const int status = plum::diff::exit_status(result);
  if (status == 1) {
    std::fprintf(stderr,
                 "plum-diff: FAIL: %d metric breach(es) vs %s\n"
                 "  (intentional change? regenerate baselines with "
                 "tools/regen_baselines.sh and commit them)\n",
                 result.breaches, paths[0].c_str());
  }
  return status;
}
