#include "diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/bench_schema.hpp"

namespace plum::diff {

namespace {

using obs::Json;

/// Wall-clock metric names are report-only: they vary run to run by
/// construction, so gating on them would make the gate flaky. Histograms
/// carry an explicit "wall" flag instead of relying on the name.
bool is_wall_name(const std::string& name) {
  if (name == "wall_s") return true;
  const std::string suffix = "_seconds";
  if (name.size() >= suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    // Deterministic modeled times are always called *modeled*; every other
    // *_seconds metric is measured wall clock (gain_seconds/cost_seconds
    // from the gate are modeled and spelled gain_s/cost_s in reports).
    return name.find("modeled") == std::string::npos;
  }
  return name.find("wall") != std::string::npos;
}

std::string render(const Json& v) {
  return v.dump();  // compact, deterministic
}

class Differ {
 public:
  Differ(const Options& opt, DiffResult* out) : opt_(opt), out_(out) {}

  void compare_reports(const Json& base, const Json& cur) {
    compare_string(base.find("schema"), cur.find("schema"), "schema");
    compare_string(base.find("bench"), cur.find("bench"), "bench");

    const Json* bruns = base.find("runs");
    const Json* cruns = cur.find("runs");
    if (!bruns || !cruns) return;  // validation already guaranteed these

    // Match runs by (case, P), preserving baseline order.
    for (std::size_t i = 0; i < bruns->size(); ++i) {
      const Json& br = bruns->at(i);
      const std::string key = run_key(br);
      const Json* cr = find_run(*cruns, br);
      if (!cr) {
        breach_entry("run[" + key + "]", "present", "MISSING");
        continue;
      }
      compare_run(br, *cr, "run[" + key + "]");
    }
    for (std::size_t i = 0; i < cruns->size(); ++i) {
      const Json& cr = cruns->at(i);
      if (!find_run(*bruns, cr)) {
        breach_entry("run[" + run_key(cr) + "]", "MISSING", "present");
      }
    }
  }

 private:
  static std::string run_key(const Json& run) {
    const Json* c = run.find("case");
    const Json* p = run.find("P");
    std::string key = c && c->is_string() ? c->as_string() : "?";
    key += ",P=";
    key += p && p->kind() == Json::Kind::kInt ? std::to_string(p->as_int())
                                              : "?";
    return key;
  }

  static const Json* find_run(const Json& runs, const Json& want) {
    const std::string key = run_key(want);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (run_key(runs.at(i)) == key) return &runs.at(i);
    }
    return nullptr;
  }

  double tol_for(const std::string& leaf_name) const {
    const auto it = opt_.metric_tol.find(leaf_name);
    return it != opt_.metric_tol.end() ? it->second : opt_.rel_tol;
  }

  void record(Delta d) {
    if (d.breach) ++out_->breaches;
    out_->deltas.push_back(std::move(d));
  }

  void breach_entry(const std::string& where, std::string base,
                    std::string cur) {
    Delta d;
    d.where = where;
    d.baseline = std::move(base);
    d.current = std::move(cur);
    d.breach = true;
    record(std::move(d));
  }

  /// Report-only surfacing of a wall-sourced drift (e.g. a depot gauge
  /// present in a pipe-transport run but absent from the inproc baseline).
  void wall_entry(const std::string& where, std::string base,
                  std::string cur) {
    Delta d;
    d.where = where;
    d.baseline = std::move(base);
    d.current = std::move(cur);
    d.wall = true;
    record(std::move(d));
  }

  /// Wall-sourced metric entries are report-only even when one side lacks
  /// them entirely: wall-named scalars/series, and the registry's
  /// wall-flagged histogram/series objects. The pipe transport's depot_*
  /// gauges only exist under pipe runs, so presence asymmetry vs an
  /// inproc-generated baseline must not breach.
  static bool is_wall_entry(const std::string& name, const Json* v) {
    if (is_wall_name(name)) return true;
    if (v != nullptr && v->is_object()) {
      const Json* w = v->find("wall");
      return w != nullptr && w->kind() == Json::Kind::kBool && w->as_bool();
    }
    return false;
  }

  /// Numeric leaf. `leaf` is the bare metric name used for tolerance
  /// lookup; `wall` marks the value report-only.
  void compare_number(const Json* b, const Json* c, const std::string& where,
                      const std::string& leaf, bool wall) {
    ++out_->compared;
    if (!b || !c || !b->is_number() || !c->is_number()) {
      breach_entry(where, b ? render(*b) : "MISSING",
                   c ? render(*c) : "MISSING");
      return;
    }
    const double bv = b->as_double();
    const double cv = c->as_double();
    const bool both_int = b->kind() == Json::Kind::kInt &&
                          c->kind() == Json::Kind::kInt;
    if (both_int && b->as_int() == c->as_int()) return;
    if (!both_int && bv == cv) return;

    Delta d;
    d.where = where;
    d.baseline = render(*b);
    d.current = render(*c);
    const double denom = std::max(std::abs(bv), std::abs(cv));
    d.rel = denom > 0 ? std::abs(cv - bv) / denom : 0.0;
    d.wall = wall;
    if (wall) {
      record(std::move(d));  // report-only
      return;
    }
    d.tol = tol_for(leaf);
    // Integers are deterministic counters: exact match required unless an
    // explicit per-metric tolerance loosens them.
    if (both_int && opt_.metric_tol.count(leaf) == 0) {
      d.breach = true;
    } else {
      d.breach = d.rel > d.tol;
    }
    record(std::move(d));
  }

  void compare_string(const Json* b, const Json* c, const std::string& where) {
    ++out_->compared;
    const std::string bs = b && b->is_string() ? b->as_string() : "MISSING";
    const std::string cs = c && c->is_string() ? c->as_string() : "MISSING";
    if (bs != cs) breach_entry(where, bs, cs);
  }

  void compare_exact(const Json* b, const Json* c, const std::string& where) {
    ++out_->compared;
    const std::string bs = b ? render(*b) : "MISSING";
    const std::string cs = c ? render(*c) : "MISSING";
    if (bs != cs) breach_entry(where, bs, cs);
  }

  void compare_series(const Json& b, const Json& c, const std::string& where,
                      const std::string& leaf, bool wall) {
    if (b.size() != c.size()) {
      breach_entry(where + ".len", std::to_string(b.size()),
                   std::to_string(c.size()));
      return;
    }
    for (std::size_t k = 0; k < b.size(); ++k) {
      compare_number(&b.at(k), &c.at(k),
                     where + "[" + std::to_string(k) + "]", leaf, wall);
    }
  }

  void compare_histogram(const Json& b, const Json& c,
                         const std::string& where, const std::string& leaf) {
    const Json* bw = b.find("wall");
    const bool wall = bw && bw->kind() == Json::Kind::kBool && bw->as_bool();
    // Tagged series object ({"series":true,...}, obs::MetricsRegistry's
    // wall-marked series): compare the samples arrays, honoring the flag.
    if (const Json* bs = b.find("series");
        bs && bs->kind() == Json::Kind::kBool && bs->as_bool()) {
      const Json* bsamp = b.find("samples");
      const Json* csamp = c.find("samples");
      if (!bsamp || !csamp || !bsamp->is_array() || !csamp->is_array()) {
        if (wall) {
          wall_entry(where + ".samples", bsamp ? "present" : "MISSING",
                     csamp ? "present" : "MISSING");
        } else {
          breach_entry(where + ".samples", bsamp ? "present" : "MISSING",
                       csamp ? "present" : "MISSING");
        }
        return;
      }
      if (wall && bsamp->size() != csamp->size()) {
        // Report-only series may legitimately differ in length (e.g. depot
        // gauges sampled once per cycle across different cycle counts).
        wall_entry(where + ".len", std::to_string(bsamp->size()),
                   std::to_string(csamp->size()));
        return;
      }
      compare_series(*bsamp, *csamp, where, leaf, wall);
      return;
    }
    if (wall) {
      // Report-only: surface a count/max drift line, never breach.
      compare_number(b.find("count"), c.find("count"), where + ".count",
                     leaf, /*wall=*/true);
      compare_number(b.find("max"), c.find("max"), where + ".max", leaf,
                     /*wall=*/true);
      return;
    }
    compare_exact(b.find("count"), c.find("count"), where + ".count");
    compare_exact(b.find("counts"), c.find("counts"), where + ".counts");
    compare_exact(b.find("bounds"), c.find("bounds"), where + ".bounds");
    for (const char* q : {"p50", "p95", "max"}) {
      compare_number(b.find(q), c.find(q), where + "." + q, leaf,
                     /*wall=*/false);
    }
  }

  void compare_metrics(const Json& b, const Json& c,
                       const std::string& where) {
    for (const auto& [name, bv] : b.items()) {
      const Json* cv = c.find(name);
      const std::string w = where + "." + name;
      if (!cv) {
        if (is_wall_entry(name, &bv)) {
          wall_entry(w, "present", "MISSING");
        } else {
          breach_entry(w, render(bv), "MISSING");
        }
        continue;
      }
      const bool wall = is_wall_name(name);
      if (bv.is_number() && cv->is_number()) {
        compare_number(&bv, cv, w, name, wall);
      } else if (bv.is_array() && cv->is_array()) {
        compare_series(bv, *cv, w, name, wall);
      } else if (bv.is_object() && cv->is_object()) {
        compare_histogram(bv, *cv, w, name);
      } else {
        breach_entry(w, render(bv), render(*cv));  // shape changed
      }
    }
    for (const auto& [name, cv] : c.items()) {
      if (!b.find(name)) {
        if (is_wall_entry(name, &cv)) {
          wall_entry(where + "." + name, "MISSING", "present");
        } else {
          breach_entry(where + "." + name, "MISSING", render(cv));
        }
      }
    }
  }

  void compare_phases(const Json& b, const Json& c, const std::string& where) {
    if (b.size() != c.size()) {
      breach_entry(where + ".len", std::to_string(b.size()),
                   std::to_string(c.size()));
      return;
    }
    for (std::size_t k = 0; k < b.size(); ++k) {
      const Json& bp = b.at(k);
      const Json& cp = c.at(k);
      const std::string w = where + "[" + std::to_string(k) + "]";
      compare_string(bp.find("name"), cp.find("name"), w + ".name");
      for (const char* field :
           {"supersteps", "depth", "compute_units", "msgs_sent",
            "bytes_sent"}) {
        if (bp.find(field) || cp.find(field)) {
          compare_exact(bp.find(field), cp.find(field),
                        w + "." + field);
        }
      }
      compare_number(bp.find("modeled_s"), cp.find("modeled_s"),
                     w + ".modeled_s", "modeled_s", /*wall=*/false);
      if (bp.find("wall_s") || cp.find("wall_s")) {
        compare_number(bp.find("wall_s"), cp.find("wall_s"), w + ".wall_s",
                       "wall_s", /*wall=*/true);
      }
    }
  }

  void compare_comm_matrix(const Json& b, const Json& c,
                           const std::string& where) {
    compare_exact(b.find("nranks"), c.find("nranks"), where + ".nranks");
    for (const char* field : {"msgs", "bytes"}) {
      const Json* bm = b.find(field);
      const Json* cm = c.find(field);
      ++out_->compared;
      const std::string bs = bm ? bm->dump() : "MISSING";
      const std::string cs = cm ? cm->dump() : "MISSING";
      if (bs != cs) {
        // One summary line per matrix (totals), not one per cell.
        breach_entry(where + "." + field,
                     "total=" + std::to_string(matrix_total(bm)),
                     "total=" + std::to_string(matrix_total(cm)));
      }
    }
  }

  static std::int64_t matrix_total(const Json* m) {
    if (!m || !m->is_array()) return -1;
    std::int64_t total = 0;
    for (std::size_t r = 0; r < m->size(); ++r) {
      const Json& row = m->at(r);
      for (std::size_t cidx = 0; cidx < row.size(); ++cidx) {
        if (row.at(cidx).kind() == Json::Kind::kInt) {
          total += row.at(cidx).as_int();
        }
      }
    }
    return total;
  }

  void compare_gate_audit(const Json& b, const Json& c,
                          const std::string& where) {
    if (b.size() != c.size()) {
      breach_entry(where + ".len", std::to_string(b.size()),
                   std::to_string(c.size()));
      return;
    }
    for (std::size_t k = 0; k < b.size(); ++k) {
      const Json& br = b.at(k);
      const Json& cr = c.at(k);
      const std::string w = where + "[" + std::to_string(k) + "]";
      for (const char* field :
           {"cycle", "evaluated", "accepted", "predicted_move_bytes",
            "measured_move_bytes"}) {
        compare_exact(br.find(field), cr.find(field), w + "." + field);
      }
      compare_string(br.find("metric"), cr.find("metric"), w + ".metric");
      for (const char* field :
           {"imbalance_old", "imbalance_new", "gain_s", "cost_s", "drift"}) {
        compare_number(br.find(field), cr.find(field), w + "." + field,
                       field, /*wall=*/false);
      }
    }
  }

  void compare_critical_path(const Json& b, const Json& c,
                             const std::string& where) {
    compare_string(b.find("source"), c.find("source"), where + ".source");
    for (const char* field :
         {"critical_total", "busy_total", "wait_total", "wait_fraction"}) {
      compare_number(b.find(field), c.find(field), where + "." + field,
                     field, /*wall=*/false);
    }
    for (const char* section : {"ranks", "phases", "steps"}) {
      const Json* bs = b.find(section);
      const Json* cs = c.find(section);
      const std::string w = where + "." + section;
      if (!bs || !cs) {
        compare_exact(bs, cs, w);
        continue;
      }
      if (bs->size() != cs->size()) {
        breach_entry(w + ".len", std::to_string(bs->size()),
                     std::to_string(cs->size()));
        continue;
      }
      for (std::size_t k = 0; k < bs->size(); ++k) {
        const Json& be = bs->at(k);
        const Json& ce = cs->at(k);
        const std::string we = w + "[" + std::to_string(k) + "]";
        for (const auto& [name, bv] : be.items()) {
          const Json* cv = ce.find(name);
          if (bv.is_number() && bv.kind() == Json::Kind::kDouble) {
            compare_number(&bv, cv, we + "." + name, name, /*wall=*/false);
          } else {
            compare_exact(&bv, cv, we + "." + name);
          }
        }
      }
    }
  }

  void compare_run(const Json& b, const Json& c, const std::string& where) {
    if (const Json* bm = b.find("metrics")) {
      const Json* cm = c.find("metrics");
      if (cm) compare_metrics(*bm, *cm, where + ".metrics");
    }
    if (const Json* bp = b.find("phases")) {
      const Json* cp = c.find("phases");
      if (cp && bp->is_array() && cp->is_array()) {
        compare_phases(*bp, *cp, where + ".phases");
      }
    }
    for (const char* section : {"comm_matrix", "gate_audit", "critical_path"}) {
      const Json* bsec = b.find(section);
      const Json* csec = c.find(section);
      if (!bsec && !csec) continue;
      if (!bsec || !csec) {
        breach_entry(where + "." + section, bsec ? "present" : "MISSING",
                     csec ? "present" : "MISSING");
        continue;
      }
      const std::string w = where + "." + section;
      if (std::string(section) == "comm_matrix") {
        compare_comm_matrix(*bsec, *csec, w);
      } else if (std::string(section) == "gate_audit") {
        compare_gate_audit(*bsec, *csec, w);
      } else {
        compare_critical_path(*bsec, *csec, w);
      }
    }
  }

  const Options& opt_;
  DiffResult* out_;
};

bool load_json(const std::string& path, Json* out, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string perr;
  if (!Json::parse(buf.str(), out, &perr)) {
    *err = path + ": parse error: " + perr;
    return false;
  }
  return true;
}

}  // namespace

DiffResult diff_reports(const Json& baseline, const Json& current,
                        const Options& opt) {
  DiffResult result;
  if (std::string err = obs::validate_bench_report(baseline); !err.empty()) {
    result.error = "baseline: " + err;
    return result;
  }
  if (std::string err = obs::validate_bench_report(current); !err.empty()) {
    result.error = "current: " + err;
    return result;
  }
  Differ d(opt, &result);
  d.compare_reports(baseline, current);
  return result;
}

DiffResult diff_files(const std::string& baseline_path,
                      const std::string& current_path, const Options& opt) {
  DiffResult result;
  Json base, cur;
  if (!load_json(baseline_path, &base, &result.error)) return result;
  if (!load_json(current_path, &cur, &result.error)) return result;
  result = diff_reports(base, cur, opt);
  if (!result.error.empty()) {
    result.error = baseline_path + " vs " + current_path + ": " + result.error;
  }
  return result;
}

DiffResult diff_dirs(const std::string& baseline_dir,
                     const std::string& current_dir, const Options& opt) {
  namespace fs = std::filesystem;
  DiffResult result;

  const auto bench_files = [&result](const std::string& dir) {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        names.push_back(name);
      }
    }
    if (ec) result.error = dir + ": " + ec.message();
    std::sort(names.begin(), names.end());
    return names;
  };

  const std::vector<std::string> base_names = bench_files(baseline_dir);
  if (!result.error.empty()) return result;
  const std::vector<std::string> cur_names = bench_files(current_dir);
  if (!result.error.empty()) return result;
  if (base_names.empty()) {
    result.error = baseline_dir + ": no BENCH_*.json files";
    return result;
  }

  for (const std::string& name : base_names) {
    if (!std::binary_search(cur_names.begin(), cur_names.end(), name)) {
      Delta d;
      d.where = name;
      d.baseline = "present";
      d.current = "MISSING";
      d.breach = true;
      result.deltas.push_back(std::move(d));
      ++result.breaches;
      continue;
    }
    DiffResult one =
        diff_files(baseline_dir + "/" + name, current_dir + "/" + name, opt);
    if (!one.error.empty()) {
      result.error = one.error;
      return result;
    }
    for (Delta& d : one.deltas) {
      d.where = name + ":" + d.where;
      result.deltas.push_back(std::move(d));
    }
    result.compared += one.compared;
    result.breaches += one.breaches;
  }
  for (const std::string& name : cur_names) {
    if (!std::binary_search(base_names.begin(), base_names.end(), name)) {
      Delta d;
      d.where = name;
      d.baseline = "MISSING (commit a baseline: tools/regen_baselines.sh)";
      d.current = "present";
      d.breach = true;
      result.deltas.push_back(std::move(d));
      ++result.breaches;
    }
  }
  return result;
}

void print_delta_table(const DiffResult& result, std::FILE* out) {
  if (!result.error.empty()) {
    std::fprintf(out, "plum-diff: error: %s\n", result.error.c_str());
    return;
  }
  if (!result.deltas.empty()) {
    std::fprintf(out, "%-8s %-58s %16s %16s %10s\n", "status", "metric",
                 "baseline", "current", "delta");
    for (const Delta& d : result.deltas) {
      const char* status = d.breach ? "BREACH" : (d.wall ? "wall" : "ok");
      std::fprintf(out, "%-8s %-58s %16s %16s %+9.3f%%\n", status,
                   d.where.c_str(), d.baseline.c_str(), d.current.c_str(),
                   100.0 * d.rel);
    }
  }
  std::fprintf(out,
               "plum-diff: %d values compared, %zu changed, %d breaches\n",
               result.compared, result.deltas.size(), result.breaches);
}

int exit_status(const DiffResult& result) {
  if (!result.error.empty()) return 2;
  return result.breaches > 0 ? 1 : 0;
}

}  // namespace plum::diff
