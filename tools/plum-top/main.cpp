// plum-top: top(1) for a PLUM run in progress.
//
//   plum-top scope.ndjson            # refresh until interrupted
//   plum-top --once scope.ndjson     # render the latest record and exit
//   plum-top --interval-ms 500 scope.ndjson
//
// Tails a "plum-scope/1" NDJSON stream (one record per adaption cycle,
// written by FrameworkOptions::scope_stream or
// `bench_distributed --scope-stream FILE`) and redraws a per-rank table:
// counter-sourced busy/wait per rank with a utilization bar, the cycle's
// gate verdict, imbalance, element count, and — under the pipe transport —
// the depot children's buffered bytes and stall time. Only complete lines
// are consumed, and the writer appends whole lines (O_APPEND +
// EINTR-safe), so a mid-write read never renders a torn record.
//
// Exit status: 0 on a clean render, 1 when the stream never produced a
// valid record, 2 on usage errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "obs/json.hpp"
#include "obs/scope.hpp"

namespace {

using plum::obs::Json;

struct Cli {
  std::string path;
  bool once = false;
  int interval_ms = 1000;
};

bool parse_cli(int argc, char** argv, Cli* cli) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--once") == 0) {
      cli->once = true;
    } else if (std::strcmp(a, "--interval-ms") == 0 && i + 1 < argc) {
      cli->interval_ms = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--interval-ms=", 14) == 0) {
      cli->interval_ms = std::atoi(a + 14);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return false;
    } else if (cli->path.empty()) {
      cli->path = a;
    } else {
      std::fprintf(stderr, "multiple stream files given\n");
      return false;
    }
  }
  if (cli->path.empty()) {
    std::fprintf(stderr,
                 "usage: plum-top [--once] [--interval-ms N] <scope.ndjson>\n");
    return false;
  }
  if (cli->interval_ms < 50) cli->interval_ms = 50;
  return true;
}

std::int64_t int_or(const Json* v, std::int64_t fallback) {
  return v && v->kind() == Json::Kind::kInt ? v->as_int() : fallback;
}

double num_or(const Json* v, double fallback) {
  if (!v || !v->is_number()) return fallback;
  return v->kind() == Json::Kind::kInt ? static_cast<double>(v->as_int())
                                       : v->as_double();
}

std::string str_or(const Json* v, const std::string& fallback) {
  return v && v->is_string() ? v->as_string() : fallback;
}

/// Latest complete record in the stream file, through the shared tail
/// parser (obs::latest_stream_record): kRecord fills *out; kPartial means
/// the only content is a torn/mid-write tail — skip this poll and retry;
/// kNone means no record bytes at all yet.
plum::obs::TailStatus latest_record(const std::string& path, Json* out) {
  std::ifstream in(path);
  if (!in) return plum::obs::TailStatus::kNone;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return plum::obs::latest_stream_record(text, out);
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int fill = static_cast<int>(fraction * width + 0.5);
  std::string s;
  for (int i = 0; i < width; ++i) s += i < fill ? '#' : '.';
  return s;
}

void render(const Json& rec, bool ansi) {
  if (ansi) std::printf("\x1b[H\x1b[2J");  // home + clear

  const Json* gate = rec.find("gate");
  const Json* ev = gate ? gate->find("evaluated") : nullptr;
  const Json* acc = gate ? gate->find("accepted") : nullptr;
  const bool evaluated =
      ev && ev->kind() == Json::Kind::kBool && ev->as_bool();
  const bool accepted =
      acc && acc->kind() == Json::Kind::kBool && acc->as_bool();

  std::printf("plum-top — %s   cycle %lld   %lld supersteps   %lld elements\n",
              str_or(rec.find("name"), "(unnamed)").c_str(),
              static_cast<long long>(int_or(rec.find("cycle"), 0)),
              static_cast<long long>(int_or(rec.find("supersteps"), 0)),
              static_cast<long long>(int_or(rec.find("elements"), 0)));
  std::printf("imbalance %.4f   gate %s   cycle wall %.3fs",
              num_or(rec.find("imbalance"), 0),
              !evaluated ? "skipped" : (accepted ? "ACCEPT" : "reject"),
              num_or(rec.find("wall_s"), 0));
  if (const Json* rss = rec.find("rss")) {
    std::printf("   rss %.1f MB (hwm %.1f MB)",
                static_cast<double>(int_or(rss->find("vm_rss_bytes"), 0)) /
                    1e6,
                static_cast<double>(int_or(rss->find("vm_hwm_bytes"), 0)) /
                    1e6);
  }
  std::printf("\n\n");

  const Json* ranks = rec.find("ranks");
  if (ranks && ranks->is_array() && ranks->size() > 0) {
    // live_B is the rank's tracked scratch bytes (plum-mem); absent in
    // streams written before the tracker existed.
    const bool have_live = ranks->at(0).find("live_bytes") != nullptr;
    std::printf("%6s %12s %12s %6s%s  %s\n", "rank", "busy", "wait", "util",
                have_live ? "       live_B" : "", "utilization");
    for (std::size_t r = 0; r < ranks->size(); ++r) {
      const Json& rk = ranks->at(r);
      const std::int64_t busy = int_or(rk.find("busy"), 0);
      const std::int64_t wait = int_or(rk.find("wait"), 0);
      const double util =
          busy + wait > 0
              ? static_cast<double>(busy) / static_cast<double>(busy + wait)
              : 1.0;
      std::printf("%6lld %12lld %12lld %5.1f%%",
                  static_cast<long long>(int_or(rk.find("rank"),
                                                static_cast<std::int64_t>(r))),
                  static_cast<long long>(busy), static_cast<long long>(wait),
                  100.0 * util);
      if (have_live) {
        std::printf(" %12lld",
                    static_cast<long long>(int_or(rk.find("live_bytes"), 0)));
      }
      std::printf("  [%s]\n", bar(util, 30).c_str());
    }
  }

  const Json* depot = rec.find("depot");
  if (depot && depot->is_array() && depot->size() > 0) {
    std::printf("\n%6s %12s %12s %12s %12s\n", "depot", "frames_in",
                "frames_out", "buffered_B", "stall_ms");
    for (std::size_t g = 0; g < depot->size(); ++g) {
      const Json& d = depot->at(g);
      std::printf("%6lld %12lld %12lld %12lld %12.3f\n",
                  static_cast<long long>(int_or(d.find("group"),
                                                static_cast<std::int64_t>(g))),
                  static_cast<long long>(int_or(d.find("frames_in"), 0)),
                  static_cast<long long>(int_or(d.find("frames_out"), 0)),
                  static_cast<long long>(int_or(d.find("buffered_bytes"), 0)),
                  static_cast<double>(int_or(d.find("stall_ns"), 0)) / 1e6);
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_cli(argc, argv, &cli)) return 2;

  bool rendered = false;
  std::int64_t last_cycle = -1;
  // --once tolerates a torn tail (the writer is mid-append) by retrying a
  // few polls before concluding the stream has no record.
  int once_retries = 10;
  for (;;) {
    Json rec;
    const plum::obs::TailStatus st = latest_record(cli.path, &rec);
    if (st == plum::obs::TailStatus::kRecord) {
      const std::int64_t cycle = int_or(rec.find("cycle"), 0);
      if (!rendered || cycle != last_cycle) {
        render(rec, /*ansi=*/!cli.once && rendered);
        last_cycle = cycle;
        rendered = true;
      }
    } else if (cli.once) {
      if (st == plum::obs::TailStatus::kPartial && once_retries-- > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      std::fprintf(stderr, "%s: %s\n", cli.path.c_str(),
                   st == plum::obs::TailStatus::kPartial
                       ? "only a torn/partial trailing record"
                       : "no valid plum-scope/1 record");
      return 1;
    }
    // While tailing, kPartial/kNone just mean "not yet": skip and retry.
    if (cli.once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(cli.interval_ms));
  }
  return rendered ? 0 : 1;
}
