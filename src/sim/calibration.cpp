#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/gate_audit.hpp"
#include "util/assert.hpp"

namespace plum::sim {

namespace {

[[nodiscard]] bool finite_positive(double v) {
  return std::isfinite(v) && v > 0;
}

[[nodiscard]] double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

/// Reads a non-negative finite number field; returns fallback when absent.
bool read_seconds(const obs::Json& obj, const char* key, double* out,
                  std::string* error) {
  const obs::Json* f = obj.find(key);
  if (!f) {
    *out = 0;
    return true;
  }
  if (!f->is_number() || !std::isfinite(f->as_double()) ||
      f->as_double() < 0) {
    if (error) *error = std::string(key) + " must be a non-negative number";
    return false;
  }
  *out = f->as_double();
  return true;
}

}  // namespace

// --- ReplayBook -------------------------------------------------------------

obs::Json ReplayBook::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::Json::str("plum-replay/1"));
  obs::Json arr = obs::Json::array();
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const ReplayCycle& c = cycles[i];
    obs::Json jc = obs::Json::object();
    jc.set("cycle", obs::Json::integer(static_cast<std::int64_t>(i)))
        .set("solve_seconds", obs::Json::number(c.solve_seconds))
        .set("remap_seconds", obs::Json::number(c.remap_seconds))
        .set("subdivide_seconds", obs::Json::number(c.subdivide_seconds));
    if (!c.rank_solve_seconds.empty()) {
      obs::Json rs = obs::Json::array();
      for (double s : c.rank_solve_seconds) rs.push(obs::Json::number(s));
      jc.set("rank_solve_seconds", std::move(rs));
    }
    arr.push(std::move(jc));
  }
  doc.set("cycles", std::move(arr));
  return doc;
}

bool ReplayBook::parse(const obs::Json& doc, ReplayBook* out,
                       std::string* error) {
  out->cycles.clear();
  if (!doc.is_object()) {
    if (error) *error = "replay book must be an object";
    return false;
  }
  const obs::Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "plum-replay/1") {
    if (error) *error = "schema must be \"plum-replay/1\"";
    return false;
  }
  const obs::Json* cyc = doc.find("cycles");
  if (!cyc || !cyc->is_array()) {
    if (error) *error = "cycles must be an array";
    return false;
  }
  for (std::size_t i = 0; i < cyc->size(); ++i) {
    const obs::Json& jc = cyc->at(i);
    if (!jc.is_object()) {
      if (error) *error = "cycles entries must be objects";
      return false;
    }
    ReplayCycle c;
    if (!read_seconds(jc, "solve_seconds", &c.solve_seconds, error) ||
        !read_seconds(jc, "remap_seconds", &c.remap_seconds, error) ||
        !read_seconds(jc, "subdivide_seconds", &c.subdivide_seconds, error)) {
      return false;
    }
    if (const obs::Json* rs = jc.find("rank_solve_seconds")) {
      if (!rs->is_array()) {
        if (error) *error = "rank_solve_seconds must be an array";
        return false;
      }
      for (std::size_t r = 0; r < rs->size(); ++r) {
        const obs::Json& v = rs->at(r);
        if (!v.is_number() || !std::isfinite(v.as_double()) ||
            v.as_double() < 0) {
          if (error) {
            *error = "rank_solve_seconds entries must be non-negative";
          }
          return false;
        }
        c.rank_solve_seconds.push_back(v.as_double());
      }
    }
    out->cycles.push_back(std::move(c));
  }
  return true;
}

bool ReplayBook::load(const std::string& path, ReplayBook* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  obs::Json doc;
  std::string perr;
  if (!obs::Json::parse(ss.str(), &doc, &perr)) {
    if (error) *error = path + ": " + perr;
    return false;
  }
  return parse(doc, out, error);
}

bool ReplayBook::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().dump(2) << '\n';
  return static_cast<bool>(out);
}

// --- Calibration ------------------------------------------------------------

Calibration::Calibration(MachineParams initial, CalibrationOptions opt)
    : opt_(opt), p_(initial) {
  PLUM_ASSERT(opt_.damping > 0 && opt_.damping <= 1.0);
  PLUM_ASSERT(opt_.max_weight_scale >= 1.0);
}

double Calibration::mix(double current, double estimate) const {
  return (1.0 - opt_.damping) * current + opt_.damping * estimate;
}

void Calibration::Lsq2::add(double x1, double x2, double y, double decay) {
  a11 = decay * a11 + x1 * x1;
  a12 = decay * a12 + x1 * x2;
  a22 = decay * a22 + x2 * x2;
  b1 = decay * b1 + x1 * y;
  b2 = decay * b2 + x2 * y;
  ++n;
}

bool Calibration::Lsq2::solve(double* k1, double* k2) const {
  if (n < 2) return false;
  const double det = a11 * a22 - a12 * a12;
  // Relative conditioning test: collinear regressors (e.g. sets always
  // proportional to elements) make the normal equations numerically
  // singular even when det != 0 exactly.
  if (!(det > 1e-9 * a11 * a22)) return false;
  const double s1 = (b1 * a22 - b2 * a12) / det;
  const double s2 = (b2 * a11 - b1 * a12) / det;
  if (!finite_positive(s1) || !finite_positive(s2)) return false;
  *k1 = s1;
  *k2 = s2;
  return true;
}

std::int64_t Calibration::predicted_bytes(std::int64_t elems,
                                          std::int64_t sets) const {
  const CostModel cm(p_);
  return std::llround(cm.move_bytes_per_element() *
                          static_cast<double>(elems) +
                      p_.bytes_per_set * static_cast<double>(sets));
}

double Calibration::recalibrated_abs_drift(const CalibrationSample& s) const {
  return std::fabs(obs::gate_drift(
      predicted_bytes(s.moved_elems, s.moved_sets), s.measured_move_bytes));
}

void Calibration::observe(const CalibrationSample& s) {
  if (!opt_.enabled) return;
  ++cycles_;
  const double decay = 1.0 - opt_.damping;

  // --- timing fits ----------------------------------------------------------
  if (opt_.fit_timings) {
    if (s.solve_work > 0 && finite_positive(s.solve_seconds)) {
      p_.t_iter = mix(p_.t_iter,
                      s.solve_seconds / static_cast<double>(s.solve_work));
    }
    if (s.refine_children > 0 && finite_positive(s.subdivide_seconds)) {
      p_.t_refine =
          mix(p_.t_refine,
              s.subdivide_seconds / static_cast<double>(s.refine_children));
    }
    if (s.remap_executed && finite_positive(s.remap_seconds) &&
        s.moved_elems > 0) {
      // Regressors of the §4.5 cost kernel M*C*t_lat + N*t_setup.
      const double words = static_cast<double>(p_.words_per_element) *
                           static_cast<double>(s.moved_elems);
      const double sets = static_cast<double>(s.moved_sets);
      remap_fit_.add(words, sets, s.remap_seconds, decay);
      double t_lat = 0, t_setup = 0;
      if (remap_fit_.solve(&t_lat, &t_setup)) {
        p_.t_lat = mix(p_.t_lat, t_lat);
        p_.t_setup = mix(p_.t_setup, t_setup);
      } else {
        // Degenerate regressors: rescale both constants toward the
        // realized ratio so the total cost still converges.
        const double modeled = words * p_.t_lat + sets * p_.t_setup;
        if (finite_positive(modeled)) {
          const double blend = mix(1.0, s.remap_seconds / modeled);
          p_.t_lat *= blend;
          p_.t_setup *= blend;
        }
      }
    }
  }

  // --- byte fit (drives gate_drift toward 0) --------------------------------
  if (s.remap_executed) {
    ++remaps_;
    abs_drift_sum_ += std::fabs(
        obs::gate_drift(s.predicted_move_bytes, s.measured_move_bytes));
    if (opt_.fit_bytes && s.moved_elems > 0 && s.measured_move_bytes > 0) {
      const double elems = static_cast<double>(s.moved_elems);
      const double sets = static_cast<double>(s.moved_sets);
      const double measured = static_cast<double>(s.measured_move_bytes);
      bytes_fit_.add(elems, sets, measured, decay);
      const CostModel cm(p_);
      double per_elem = 0, per_set = 0;
      if (bytes_fit_.solve(&per_elem, &per_set)) {
        p_.bytes_per_element = mix(cm.move_bytes_per_element(), per_elem);
        p_.bytes_per_set = mix(p_.bytes_per_set, per_set);
      } else {
        const double modeled = cm.move_bytes_per_element() * elems +
                               p_.bytes_per_set * sets;
        if (finite_positive(modeled)) {
          const double blend = mix(1.0, measured / modeled);
          p_.bytes_per_element = cm.move_bytes_per_element() * blend;
          p_.bytes_per_set *= blend;
        }
      }
    }
    if (opt_.tune_gate_margin && s.predicted_move_bytes > 0 &&
        s.measured_move_bytes > 0) {
      const double realized = static_cast<double>(s.measured_move_bytes) /
                              static_cast<double>(s.predicted_move_bytes);
      p_.gate_margin = clamp(mix(p_.gate_margin, realized),
                             opt_.min_gate_margin, opt_.max_gate_margin);
    }
  }

  // --- Wcomp blend factors --------------------------------------------------
  if (opt_.blend_measured_weights && !s.rank_solve_seconds.empty() &&
      s.rank_solve_seconds.size() == s.rank_elements.size()) {
    double total_s = 0;
    std::int64_t total_e = 0;
    for (std::size_t r = 0; r < s.rank_solve_seconds.size(); ++r) {
      total_s += s.rank_solve_seconds[r];
      total_e += s.rank_elements[r];
    }
    if (total_e > 0 && finite_positive(total_s)) {
      const double mean = total_s / static_cast<double>(total_e);
      if (weight_scale_.size() != s.rank_solve_seconds.size()) {
        weight_scale_.assign(s.rank_solve_seconds.size(), 1.0);
      }
      for (std::size_t r = 0; r < weight_scale_.size(); ++r) {
        double factor = 1.0;
        if (s.rank_elements[r] > 0 &&
            finite_positive(s.rank_solve_seconds[r])) {
          const double per_elem = s.rank_solve_seconds[r] /
                                  static_cast<double>(s.rank_elements[r]);
          factor = clamp(per_elem / mean, 1.0 / opt_.max_weight_scale,
                         opt_.max_weight_scale);
        }
        weight_scale_[r] = mix(weight_scale_[r], factor);
      }
    }
  }
}

double Calibration::mean_abs_drift() const {
  return remaps_ > 0 ? abs_drift_sum_ / static_cast<double>(remaps_) : 0.0;
}

void blend_weights(std::vector<Weight>& wcomp, const std::vector<Rank>& owner,
                   const std::vector<double>& scale) {
  if (scale.empty()) return;
  PLUM_ASSERT(wcomp.size() == owner.size());
  for (std::size_t v = 0; v < wcomp.size(); ++v) {
    const auto r = static_cast<std::size_t>(owner[v]);
    if (r >= scale.size() || scale[r] == 1.0) continue;
    wcomp[v] = std::max<Weight>(
        1, std::llround(static_cast<double>(wcomp[v]) * scale[r]));
  }
}

obs::Json Calibration::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::Json::str("plum-calibration/1"))
      .set("enabled", obs::Json::boolean(opt_.enabled))
      .set("cycles_observed", obs::Json::integer(cycles_))
      .set("remap_samples", obs::Json::integer(remaps_))
      .set("mean_abs_drift", obs::Json::number(mean_abs_drift()));
  obs::Json params = obs::Json::object();
  params.set("t_iter", obs::Json::number(p_.t_iter))
      .set("t_refine", obs::Json::number(p_.t_refine))
      .set("t_lat", obs::Json::number(p_.t_lat))
      .set("t_setup", obs::Json::number(p_.t_setup))
      .set("bytes_per_element",
           obs::Json::number(CostModel(p_).move_bytes_per_element()))
      .set("bytes_per_set", obs::Json::number(p_.bytes_per_set))
      .set("gate_margin", obs::Json::number(p_.gate_margin));
  doc.set("params", std::move(params));
  if (!weight_scale_.empty()) {
    obs::Json ws = obs::Json::array();
    for (double f : weight_scale_) ws.push(obs::Json::number(f));
    doc.set("rank_weight_scale", std::move(ws));
  }
  return doc;
}

}  // namespace plum::sim
