#pragma once
// Online calibration of the SP2 cost model — the ROADMAP's "close the
// loop" item. The frameworks have been recording predicted-vs-measured
// migration drift (obs::GateRecord) and per-phase timings since the
// plum-meter PRs; sim::Calibration consumes that telemetry, one
// CalibrationSample per Fig. 1 cycle, and re-estimates the machine
// constants the gate prices with:
//
//   t_iter    <- solve seconds / bottleneck solver work
//   t_refine  <- subdivide seconds / bottleneck children created
//   t_lat,
//   t_setup   <- decayed least squares of remap seconds against
//                (words-moved, message-sets) — the §4.5 cost regressors
//   bytes_per_element,
//   bytes_per_set
//             <- decayed least squares of measured migration bytes against
//                (elements, sets); this is the fit that drives gate_drift
//                toward 0
//   gate_margin
//             <- EWMA of the realized measured/predicted cost ratio,
//                clamped; the gate then demands gain > margin * cost, so a
//                model that has been underpricing remaps gates
//                conservatively until its predictions converge
//
// Every update is damped (options.damping) so one noisy cycle cannot whip
// the model, and every estimator falls back to a joint ratio rescale when
// its regressors are degenerate (collinear or single-sample).
//
// Determinism: the byte fits consume counters only, so they are
// deterministic everywhere. The time fits consume seconds, which are
// wall-clock in a live run — real but nondeterministic. Deterministic
// replay (ReplayBook below, FrameworkOptions::replay_path) substitutes a
// recorded plum-replay/1 timing book for the wall clock; under replay every
// calibrated constant is a pure function of deterministic inputs, so
// calibration output is byte-identical across Engine/ParallelEngine and
// thread counts — the same contract plum-lint enforces for traces
// (DESIGN.md).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/machine.hpp"
#include "util/types.hpp"

namespace plum::sim {

struct CalibrationOptions {
  /// Master switch; a disabled Calibration never moves off its initial
  /// MachineParams, so the frameworks' default behavior is unchanged.
  bool enabled = false;
  /// Weight of each new estimate in the damped updates (0 < damping <= 1).
  double damping = 0.5;
  bool fit_timings = true;  ///< fit t_iter / t_refine / t_lat / t_setup
  bool fit_bytes = true;    ///< fit bytes_per_element / bytes_per_set
  bool tune_gate_margin = true;
  double min_gate_margin = 0.5;
  double max_gate_margin = 4.0;
  /// Blend measured per-element solve seconds into the Wcomp weights the
  /// partitioner balances (rank_weight_scale below). Off by default: it
  /// changes partitions, not just prices.
  bool blend_measured_weights = false;
  /// Clamp on any per-rank blend factor (and its reciprocal).
  double max_weight_scale = 4.0;
};

/// One Fig. 1 cycle's telemetry, assembled by Framework/DistFramework.
/// Work terms are deterministic counters; seconds come from the replay book
/// (deterministic) or the wall clock (live).
struct CalibrationSample {
  int cycle = 0;
  std::int64_t solve_work = 0;  ///< bottleneck elements x solver iterations
  std::int64_t refine_children = 0;  ///< bottleneck children created
  double solve_seconds = 0;
  double remap_seconds = 0;
  double subdivide_seconds = 0;

  bool remap_executed = false;  ///< gate accepted and migration ran
  std::int64_t moved_elems = 0;  ///< C the gate priced (per its metric)
  std::int64_t moved_sets = 0;   ///< N the gate priced
  std::int64_t predicted_move_bytes = 0;  ///< prediction at decision time
  std::int64_t measured_move_bytes = 0;   ///< bytes the migration sent

  /// Optional per-rank solve decomposition for Wcomp blending
  /// (DistFramework only; both aligned by rank and same length or empty).
  std::vector<double> rank_solve_seconds;
  std::vector<Index> rank_elements;
};

/// Deterministic replay book (plum-replay/1): the per-cycle seconds an
/// instrumented run measured, keyed by cycle order. Feeding a book back via
/// FrameworkOptions::replay_path replaces every wall-clock input of the
/// calibrator, making the whole control loop bit-exact.
struct ReplayCycle {
  double solve_seconds = 0;
  double remap_seconds = 0;
  double subdivide_seconds = 0;
  std::vector<double> rank_solve_seconds;  ///< optional, rank order
};

struct ReplayBook {
  std::vector<ReplayCycle> cycles;

  /// {"schema": "plum-replay/1", "cycles": [...]} (insertion-ordered,
  /// deterministic dump like every obs::Json document).
  [[nodiscard]] obs::Json to_json() const;
  /// Strict structural parse; false + `error` on schema violations.
  static bool parse(const obs::Json& doc, ReplayBook* out,
                    std::string* error);
  static bool load(const std::string& path, ReplayBook* out,
                   std::string* error);
  [[nodiscard]] bool save(const std::string& path) const;
};

class Calibration {
 public:
  Calibration() : Calibration(MachineParams{}, CalibrationOptions{}) {}
  Calibration(MachineParams initial, CalibrationOptions opt);

  /// Feeds one cycle's telemetry. No-op when options().enabled is false.
  void observe(const CalibrationSample& s);

  [[nodiscard]] const CalibrationOptions& options() const { return opt_; }
  /// Current (calibrated) machine constants.
  [[nodiscard]] const MachineParams& params() const { return p_; }
  /// Cost model over the current constants — what the gate should price
  /// with.
  [[nodiscard]] CostModel model() const { return CostModel(p_); }

  [[nodiscard]] int cycles_observed() const { return cycles_; }
  [[nodiscard]] int remap_samples() const { return remaps_; }

  /// Mean |gate_drift| of the remap samples observed so far, each at its
  /// decision-time prediction — the "before calibration" health metric.
  [[nodiscard]] double mean_abs_drift() const;

  /// Bytes the *current* constants predict for (elems, sets) — the same
  /// arithmetic as CostModel::predicted_move_bytes without needing a
  /// RemapVolume.
  [[nodiscard]] std::int64_t predicted_bytes(std::int64_t elems,
                                             std::int64_t sets) const;
  /// |relative error| the current constants would have made on `s` — the
  /// "after calibration" counterpart of mean_abs_drift for one sample.
  [[nodiscard]] double recalibrated_abs_drift(
      const CalibrationSample& s) const;

  /// Per-rank Wcomp multipliers from the measured per-element solve seconds
  /// (EWMA of each rank's per-element seconds relative to the mean, clamped
  /// to [1/max_weight_scale, max_weight_scale]). Empty unless
  /// blend_measured_weights is set and per-rank data has been observed.
  [[nodiscard]] const std::vector<double>& rank_weight_scale() const {
    return weight_scale_;
  }

  /// {"schema": "plum-calibration/1", ...}: options summary, sample counts,
  /// the calibrated constants, and drift health. Deterministic dump;
  /// byte-identical across engines whenever the observed samples were.
  [[nodiscard]] obs::Json to_json() const;

 private:
  /// Damped blend toward a fresh estimate: p <- (1-d)*p + d*est.
  [[nodiscard]] double mix(double current, double estimate) const;

  CalibrationOptions opt_;
  MachineParams p_;
  int cycles_ = 0;
  int remaps_ = 0;
  double abs_drift_sum_ = 0;  ///< decision-time |drift| over remap samples

  /// Decayed normal-equation accumulators for a 2-regressor least-squares
  /// fit y ~ k1*x1 + k2*x2 (used for both the byte fit and the
  /// t_lat/t_setup fit).
  struct Lsq2 {
    double a11 = 0, a12 = 0, a22 = 0, b1 = 0, b2 = 0;
    int n = 0;
    void add(double x1, double x2, double y, double decay);
    /// Solves for (k1, k2); false when degenerate (collinear regressors or
    /// fewer than two samples) or a coefficient comes out non-positive.
    [[nodiscard]] bool solve(double* k1, double* k2) const;
  };
  Lsq2 bytes_fit_;
  Lsq2 remap_fit_;

  std::vector<double> weight_scale_;
};

/// Applies per-rank Wcomp blend factors (Calibration::rank_weight_scale)
/// to a predicted weight vector, keyed by each vertex's current owner.
/// Rounded back to integer Weight (min 1) so the partitioner's arithmetic
/// stays exact; an empty factor vector is a no-op.
void blend_weights(std::vector<Weight>& wcomp, const std::vector<Rank>& owner,
                   const std::vector<double>& scale);

}  // namespace plum::sim
