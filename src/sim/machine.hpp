#pragma once
// SP2-style machine cost model.
//
// The paper reports wall-clock seconds on a 1997 IBM SP2; we reproduce the
// *shapes* of those curves by converting real, measured work and traffic
// counters (elements subdivided per rank, similarity-matrix volumes,
// marking communication rounds, partitioner level statistics) into seconds
// through a small set of machine constants (DESIGN.md §3). The constants
// below are calibrated so the paper-scale mesh lands in the same range as
// the quoted numbers: 0.25-0.81 s refinement, ~0.58 s partitioning and
// 0.71-1.03 s remapping at P = 64 (paper Fig. 6).
//
// The accept/reject arithmetic of §4.5 (computational gain vs
// redistribution cost) also lives here, since it is expressed in the same
// machine constants: gain = Titer * Nadapt * (Wmax_old - Wmax_new) +
// Trefine-term, cost = M * C * Tlat + N * Tsetup.

#include <vector>

#include "remap/volume.hpp"
#include "util/types.hpp"

namespace plum::sim {

struct MachineParams {
  double t_iter = 65e-6;    ///< solver seconds per element per iteration
  double t_refine = 190e-6; ///< seconds per child element created
  double t_mark = 1.2e-6;   ///< seconds per element examined while marking
  double t_lat = 2.4e-6;    ///< seconds per word moved (incl. pack/unpack)
  double t_setup = 80e-6;   ///< message startup seconds
  int words_per_element = 90;  ///< M: solver+adaptor storage per element
  double alpha = 1.0;  ///< MaxV weight on elements sent
  double beta = 1.0;   ///< MaxV weight on elements received
  /// Byte-level constants for the gate-audit prediction (predicted vs
  /// measured migration bytes). 0 derives the per-element payload from
  /// words_per_element * 8; calibration replaces it with the pack size the
  /// migration layer actually measured.
  double bytes_per_element = 0;
  /// Per-(sender, receiver) framing/setup bytes charged once per message
  /// set. The default mirrors pmesh::kSetFramingBytes (pinned by
  /// test_calibration) so predictions match the migration layer's
  /// accounting out of the box.
  double bytes_per_set = 96;
  /// Gate slack: accept iff gain > gate_margin * cost. Calibration raises
  /// it while the model underprices remaps (realized cost ratio > 1) and
  /// lowers it back toward 1 as predictions converge.
  double gate_margin = 1.0;
  int solver_iters_per_adaption = 50;  ///< Nadapt
  // Parallel multilevel partitioner constants (separate because they fold
  // in all of coarsening/coloring/refinement, not a single kernel):
  double t_part_vertex = 36e-6;       ///< local work per dual vertex / P
  double t_part_sync_per_rank = 8.5e-3;  ///< per-rank synchronization cost
};

enum class CostMetric { kTotalV, kMaxV };

/// Paper name of the metric ("TotalV" / "MaxV"), as reported in Table 2 and
/// recorded in obs::GateRecord::metric.
[[nodiscard]] const char* cost_metric_name(CostMetric metric);

class CostModel {
 public:
  explicit CostModel(MachineParams p = {}) : p_(p) {}
  [[nodiscard]] const MachineParams& params() const { return p_; }

  // --- paper §4.5: the accept/reject arithmetic ---------------------------

  /// Computational gain of running Nadapt solver iterations on the new
  /// rather than the old partitioning, plus the balanced-subdivision bonus:
  /// Titer*Nadapt*(Wold_max - Wnew_max) + Trefine*(Wrefine_old_max -
  /// Wrefine_new_max).
  [[nodiscard]] double computational_gain(Weight wmax_old, Weight wmax_new,
                                          Weight refine_work_max_old,
                                          Weight refine_work_max_new) const;

  /// Redistribution cost M*C*Tlat + N*Tsetup; C and N are (Ctotal, Ntotal)
  /// for TotalV and (Cmax, Nmax) for MaxV (paper §4.5).
  [[nodiscard]] double redistribution_cost(const remap::RemapVolume& vol,
                                           CostMetric metric) const;

  /// Per-element payload the model prices: bytes_per_element when
  /// calibrated, words_per_element * 8 otherwise.
  [[nodiscard]] double move_bytes_per_element() const {
    return p_.bytes_per_element > 0 ? p_.bytes_per_element
                                    : static_cast<double>(p_.words_per_element) * 8.0;
  }

  /// Bytes the cost model expects the remap to move: the per-element
  /// payload times C elements plus bytes_per_set framing per message set
  /// (C and N per `metric`, like redistribution_cost). The gate-audit log
  /// compares this prediction against the bytes the migration actually
  /// sent ("drift", obs/gate_audit.hpp); pricing the per-set framing keeps
  /// the prediction free of a systematic per-set bias.
  [[nodiscard]] std::int64_t predicted_move_bytes(
      const remap::RemapVolume& vol, CostMetric metric) const;

  /// The framework's gate: accept the new partitioning iff
  /// gain > gate_margin * cost (margin 1 is the paper's plain gain > cost).
  [[nodiscard]] bool accept_remap(double gain, double cost) const {
    return gain > p_.gate_margin * cost;
  }

  // --- phase-time estimates for the figure benches -------------------------

  /// Parallel mesh adaption time: bottleneck subdivision work plus marking
  /// sweeps plus per-round message startups.
  [[nodiscard]] double adaption_seconds(
      const std::vector<Index>& subdivision_work_per_rank,
      const std::vector<Index>& elements_per_rank, int mark_rounds) const;

  /// Physical remapping time, governed by the bottleneck processor's
  /// send+receive volume (in initial-mesh elements scaled by
  /// words_per_element) and its message count.
  [[nodiscard]] double remap_seconds(const remap::RemapVolume& vol) const;

  /// Parallel multilevel partitioner estimate: per-level local work shrinks
  /// as n/P while per-level synchronization grows with P; reproduces the
  /// shallow minimum near P = 16 the paper observes for its test mesh.
  [[nodiscard]] double partition_seconds(Index n_vertices, int levels,
                                         Rank nranks) const;

  /// One solver phase (Nadapt iterations) on the bottleneck processor.
  [[nodiscard]] double solver_seconds(Weight wmax) const;

 private:
  MachineParams p_;
};

}  // namespace plum::sim
