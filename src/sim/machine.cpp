#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace plum::sim {

const char* cost_metric_name(CostMetric metric) {
  return metric == CostMetric::kTotalV ? "TotalV" : "MaxV";
}

double CostModel::computational_gain(Weight wmax_old, Weight wmax_new,
                                     Weight refine_work_max_old,
                                     Weight refine_work_max_new) const {
  const double solver_term =
      p_.t_iter * p_.solver_iters_per_adaption *
      static_cast<double>(wmax_old - wmax_new);
  const double refine_term =
      p_.t_refine *
      static_cast<double>(refine_work_max_old - refine_work_max_new);
  return solver_term + refine_term;
}

double CostModel::redistribution_cost(const remap::RemapVolume& vol,
                                      CostMetric metric) const {
  const double C = metric == CostMetric::kTotalV
                       ? static_cast<double>(vol.total_elems)
                       : static_cast<double>(vol.bottleneck_elems);
  const double N = metric == CostMetric::kTotalV
                       ? static_cast<double>(vol.total_sets)
                       : static_cast<double>(vol.bottleneck_sets);
  return p_.words_per_element * C * p_.t_lat + N * p_.t_setup;
}

std::int64_t CostModel::predicted_move_bytes(const remap::RemapVolume& vol,
                                             CostMetric metric) const {
  const Weight elems = metric == CostMetric::kTotalV ? vol.total_elems
                                                     : vol.bottleneck_elems;
  const int sets = metric == CostMetric::kTotalV ? vol.total_sets
                                                 : vol.bottleneck_sets;
  return std::llround(move_bytes_per_element() * static_cast<double>(elems) +
                      p_.bytes_per_set * static_cast<double>(sets));
}

double CostModel::adaption_seconds(
    const std::vector<Index>& subdivision_work_per_rank,
    const std::vector<Index>& elements_per_rank, int mark_rounds) const {
  PLUM_ASSERT(!subdivision_work_per_rank.empty());
  PLUM_ASSERT(subdivision_work_per_rank.size() == elements_per_rank.size());
  const double subdiv =
      p_.t_refine * static_cast<double>(vec_max(subdivision_work_per_rank));
  // Each marking round re-examines the (bottleneck) local region and pays a
  // synchronization startup.
  const double mark = static_cast<double>(mark_rounds) *
                      (p_.t_mark * static_cast<double>(vec_max(elements_per_rank)) +
                       p_.t_setup);
  return subdiv + mark;
}

double CostModel::remap_seconds(const remap::RemapVolume& vol) const {
  // Bottleneck processor: it pays latency for every word it sends and
  // receives, plus a startup per peer set it exchanges with.
  const double copy = p_.words_per_element *
                      static_cast<double>(vol.bottleneck_elems) * p_.t_lat;
  const double setup = static_cast<double>(vol.bottleneck_sets) * p_.t_setup;
  return copy + setup;
}

double CostModel::partition_seconds(Index n_vertices, int levels,
                                    Rank nranks) const {
  PLUM_ASSERT(nranks >= 1 && levels >= 1);
  // Local multilevel work: every level visits the (shrinking) graph, so the
  // geometric series over levels is ~2x the finest level, distributed over
  // P ranks. Synchronization: each level's coloring / boundary rounds cost
  // grows with P. The two terms produce the shallow minimum near P = 16 the
  // paper observes on its 60,968-element dual graph (Fig. 6); t_part_* are
  // calibrated so P = 64 lands at the quoted ~0.58 s.
  const double local = p_.t_part_vertex * static_cast<double>(n_vertices) /
                       static_cast<double>(nranks);
  const double sync = p_.t_part_sync_per_rank *
                      (static_cast<double>(levels) / 14.0) *
                      static_cast<double>(nranks);
  return local + sync;
}

double CostModel::solver_seconds(Weight wmax) const {
  return p_.t_iter * p_.solver_iters_per_adaption *
         static_cast<double>(wmax);
}

}  // namespace plum::sim
