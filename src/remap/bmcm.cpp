// Optimal MaxV mapper (paper §4.4): the bottleneck maximum cardinality
// matching formulation (Gabow & Tarjan [10]). Assigning partition j to
// processor i costs
//     C(i,j) = max(alpha * (R_i - S(i,j)),  beta * (W_j - S(i,j)))
// (elements i must send away vs elements i must receive). We minimize the
// maximum C over the assignment: binary search on the bottleneck value with
// a Hopcroft-Karp feasibility check on the thresholded bipartite graph.

#include <algorithm>
#include <limits>

#include "remap/mapping.hpp"
#include "remap/matching.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace plum::remap {

Assignment map_optimal_bmcm(const SimilarityMatrix& S, double alpha,
                            double beta) {
  PLUM_ASSERT_MSG(S.f() == 1, "BMCM mapper implemented for F = 1");
  Timer timer;
  const Rank P = S.nprocs();

  // plum-scale: host-only -- host-side remapper (paper SS4.3) scratch
  std::vector<Weight> R(static_cast<std::size_t>(P)), W(static_cast<std::size_t>(P));
  for (Rank i = 0; i < P; ++i) R[static_cast<std::size_t>(i)] = S.row_sum(i);
  for (Rank j = 0; j < P; ++j) W[static_cast<std::size_t>(j)] = S.col_sum(j);

  // Scaled integer costs (alpha/beta are machine ratios; x1024 keeps them
  // exact for typical values while staying in int64 range).
  auto cost_of = [&](Rank i, Rank j) -> std::int64_t {
    const double sent = alpha * static_cast<double>(
                                    R[static_cast<std::size_t>(i)] - S.at(i, j));
    const double recv = beta * static_cast<double>(
                                   W[static_cast<std::size_t>(j)] - S.at(i, j));
    return static_cast<std::int64_t>(std::max(sent, recv) * 1024.0);
  };

  std::vector<std::int64_t> costs;
  // plum-scale: host-only -- host-side matcher; capacity bound, actual edges are the O(nonzeros) similarity cells
  costs.reserve(static_cast<std::size_t>(P) * static_cast<std::size_t>(P));
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < P; ++j) costs.push_back(cost_of(i, j));
  }
  std::vector<std::int64_t> sorted = costs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Binary search the smallest bottleneck admitting a perfect matching.
  std::vector<Rank> match_l;
  auto feasible = [&](std::int64_t threshold, std::vector<Rank>& ml) {
    // plum-scale: host-only -- host-side matcher adjacency
    std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(P));
    for (Rank i = 0; i < P; ++i) {
      for (Rank j = 0; j < P; ++j) {
        if (costs[static_cast<std::size_t>(i) * P + j] <= threshold) {
          adj[static_cast<std::size_t>(i)].push_back(j);
        }
      }
    }
    return hopcroft_karp(adj, P, ml) == P;
  };

  std::size_t lo = 0, hi = sorted.size() - 1;
  // The max threshold always admits the complete graph's perfect matching.
  PLUM_ASSERT(feasible(sorted[hi], match_l));
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    std::vector<Rank> ml;
    if (feasible(sorted[mid], ml)) {
      hi = mid;
      match_l = std::move(ml);
    } else {
      lo = mid + 1;
    }
  }

  Assignment out;
  // plum-scale: host-only -- remap result table produced on the host
  out.part_to_proc.assign(static_cast<std::size_t>(P), kNoRank);
  for (Rank i = 0; i < P; ++i) {
    const Rank j = match_l[static_cast<std::size_t>(i)];
    out.part_to_proc[static_cast<std::size_t>(j)] = i;
    out.objective += S.at(i, j);
  }
  out.solve_seconds = timer.seconds();
  return out;
}

}  // namespace plum::remap
