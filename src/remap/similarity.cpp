#include "remap/similarity.hpp"

#include <algorithm>

namespace plum::remap {

SimilarityMatrix::SimilarityMatrix(Rank nprocs, Rank nparts)
    : nprocs_(nprocs), nparts_(nparts) {
  PLUM_ASSERT(nprocs >= 1 && nparts >= nprocs && nparts % nprocs == 0);
  // plum-scale: host-only -- dense similarity fold happens host-side after the sparse row gather
  s_.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nparts),
            0);
}

SimilarityMatrix SimilarityMatrix::build(std::span<const Rank> current_proc,
                                         std::span<const Rank> new_part,
                                         std::span<const Weight> wremap,
                                         Rank nprocs, Rank nparts) {
  PLUM_ASSERT(current_proc.size() == new_part.size());
  PLUM_ASSERT(current_proc.size() == wremap.size());
  SimilarityMatrix S(nprocs, nparts);
  for (std::size_t v = 0; v < current_proc.size(); ++v) {
    S.at(current_proc[v], new_part[v]) += wremap[v];
  }
  return S;
}

std::vector<Weight> SimilarityMatrix::build_row(
    Rank proc, std::span<const Rank> current_proc,
    std::span<const Rank> new_part, std::span<const Weight> wremap,
    Rank nparts) {
  // plum-scale: host-only -- dense row form kept for host-side tests; ranks ship build_row_sparse
  std::vector<Weight> row(static_cast<std::size_t>(nparts), 0);
  for (std::size_t v = 0; v < current_proc.size(); ++v) {
    if (current_proc[v] == proc) {
      row[static_cast<std::size_t>(new_part[v])] += wremap[v];
    }
  }
  return row;
}

std::vector<SimilarityCell> SimilarityMatrix::build_row_sparse(
    Rank proc, std::span<const Rank> current_proc,
    std::span<const Rank> new_part, std::span<const Weight> wremap) {
  std::vector<SimilarityCell> row;
  for (std::size_t v = 0; v < current_proc.size(); ++v) {
    if (current_proc[v] != proc) continue;
    row.push_back({new_part[v], wremap[v]});
  }
  std::sort(row.begin(), row.end(),
            [](const SimilarityCell& a, const SimilarityCell& b) {
              return a.part < b.part;
            });
  // Merge duplicates in place: the row ends up sorted and unique.
  std::size_t w = 0;
  for (std::size_t r = 0; r < row.size(); ++r) {
    if (w > 0 && row[w - 1].part == row[r].part) {
      row[w - 1].w += row[r].w;
    } else {
      row[w++] = row[r];
    }
  }
  row.resize(w);
  return row;
}

SimilarityMatrix SimilarityMatrix::from_rows(
    const std::vector<std::vector<Weight>>& rows) {
  PLUM_ASSERT(!rows.empty());
  const auto nprocs = static_cast<Rank>(rows.size());
  const auto nparts = static_cast<Rank>(rows.front().size());
  SimilarityMatrix S(nprocs, nparts);
  for (Rank i = 0; i < nprocs; ++i) {
    PLUM_ASSERT(static_cast<Rank>(rows[i].size()) == nparts);
    for (Rank j = 0; j < nparts; ++j) {
      S.at(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  return S;
}

SimilarityMatrix SimilarityMatrix::from_sparse_rows(
    const std::vector<std::vector<SimilarityCell>>& rows, Rank nparts) {
  PLUM_ASSERT(!rows.empty());
  const auto nprocs = static_cast<Rank>(rows.size());
  SimilarityMatrix S(nprocs, nparts);
  for (Rank i = 0; i < nprocs; ++i) {
    for (const SimilarityCell& c : rows[static_cast<std::size_t>(i)]) {
      S.at(i, c.part) += c.w;
    }
  }
  return S;
}

Weight SimilarityMatrix::row_sum(Rank i) const {
  Weight sum = 0;
  for (Rank j = 0; j < nparts_; ++j) sum += at(i, j);
  return sum;
}

Weight SimilarityMatrix::col_sum(Rank j) const {
  Weight sum = 0;
  for (Rank i = 0; i < nprocs_; ++i) sum += at(i, j);
  return sum;
}

int SimilarityMatrix::nonzeros() const {
  int nz = 0;
  for (const Weight w : s_) nz += (w != 0);
  return nz;
}

}  // namespace plum::remap
