#pragma once
// Processor reassignment (paper §4.4): map each new partition to a
// processor so the redistribution cost is minimized. Three algorithms, as
// in the paper:
//   map_optimal_mwbg      — maximally weighted bipartite graph matching
//                           (TotalV metric), optimal, Hungarian algorithm.
//   map_heuristic_greedy  — the paper's O(E) radix-sort greedy; Theorem 1
//                           guarantees objective >= 1/2 optimal.
//   map_optimal_bmcm      — bottleneck maximum cardinality matching (MaxV
//                           metric), optimal, threshold search + Hopcroft-
//                           Karp; implemented for F = 1 as in the paper.

#include <vector>

#include "remap/similarity.hpp"

namespace plum::remap {

struct Assignment {
  /// part_to_proc[j] = processor that receives new partition j.
  std::vector<Rank> part_to_proc;
  /// Objective F = sum of retained similarity weight (data NOT moved).
  Weight objective = 0;
  /// Wall-clock seconds spent solving (the paper's "reassignment time").
  double solve_seconds = 0;
};

/// Optimal TotalV mapper. F >= 1 handled by duplicating each processor F
/// times (paper §4.4). O((PF)^3).
Assignment map_optimal_mwbg(const SimilarityMatrix& S);

/// The paper's greedy heuristic (pseudocode in §4.4): sort all entries
/// descending with a radix sort, then assign greedily. O(E) after the sort.
Assignment map_heuristic_greedy(const SimilarityMatrix& S);

/// Optimal MaxV mapper: minimizes max_i max(alpha * elements_sent_i,
/// beta * elements_received_i). Requires F == 1.
Assignment map_optimal_bmcm(const SimilarityMatrix& S, double alpha = 1.0,
                            double beta = 1.0);

/// The identity mapping (partition j stays on processor j % P) — the
/// baseline an unmapped repartitioning would induce.
Assignment map_identity(const SimilarityMatrix& S);

}  // namespace plum::remap
