#pragma once
// Similarity matrix S (paper §4.3): entry S(i,j) is the sum of the
// remapping weights Wremap of all dual-graph vertices in *new partition j*
// that currently reside on *processor i*. In the parallel system each
// processor computes its own row and a host gathers them (one P×F-integer
// row per processor — "a minuscule amount of time"); we expose the same
// row-wise construction so the runtime benches can charge that traffic.

#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace plum::remap {

/// One non-zero of a processor's similarity row: weight headed for new
/// partition `part`. A processor's row has O(F + cut-neighbors) of these
/// regardless of P, so gathering sparse rows moves O(nonzeros) bytes where
/// the dense gather moved O(P * P * F).
struct SimilarityCell {
  Rank part = kNoRank;
  Weight w = 0;
  friend bool operator==(const SimilarityCell&, const SimilarityCell&) =
      default;
};

class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;

  /// Dense P x (P*F) matrix, zero-initialized.
  SimilarityMatrix(Rank nprocs, Rank nparts);

  /// Builds from per-dual-vertex data: current owner processor, new
  /// partition id, and remap weight.
  static SimilarityMatrix build(std::span<const Rank> current_proc,
                                std::span<const Rank> new_part,
                                std::span<const Weight> wremap, Rank nprocs,
                                Rank nparts);

  /// One row as the owning processor would compute it locally.
  static std::vector<Weight> build_row(Rank proc,
                                       std::span<const Rank> current_proc,
                                       std::span<const Rank> new_part,
                                       std::span<const Weight> wremap,
                                       Rank nparts);

  /// One row in sparse form: only the partitions this processor actually
  /// sends weight to, sorted by partition id. This is what a rank ships
  /// to the host gather.
  static std::vector<SimilarityCell> build_row_sparse(
      Rank proc, std::span<const Rank> current_proc,
      std::span<const Rank> new_part, std::span<const Weight> wremap);

  /// Assembles the full matrix from gathered rows.
  static SimilarityMatrix from_rows(const std::vector<std::vector<Weight>>& rows);

  /// Assembles from gathered sparse rows (rows[i] is processor i's row).
  /// The dense fold happens here, host-side, after the gather.
  static SimilarityMatrix from_sparse_rows(
      const std::vector<std::vector<SimilarityCell>>& rows, Rank nparts);

  [[nodiscard]] Rank nprocs() const { return nprocs_; }
  [[nodiscard]] Rank nparts() const { return nparts_; }
  /// Partitions per processor (the paper's F).
  [[nodiscard]] Rank f() const { return nparts_ / nprocs_; }

  [[nodiscard]] Weight at(Rank i, Rank j) const {
    return s_[index(i, j)];
  }
  Weight& at(Rank i, Rank j) { return s_[index(i, j)]; }

  /// Row sum R_i: total weight currently on processor i.
  [[nodiscard]] Weight row_sum(Rank i) const;
  /// Column sum W_j: total weight of new partition j.
  [[nodiscard]] Weight col_sum(Rank j) const;

  /// Number of non-zero entries (candidate "sets" of elements to move).
  [[nodiscard]] int nonzeros() const;

 private:
  [[nodiscard]] std::size_t index(Rank i, Rank j) const {
    PLUM_ASSERT(i >= 0 && i < nprocs_ && j >= 0 && j < nparts_);
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(nparts_) +
           static_cast<std::size_t>(j);
  }

  Rank nprocs_ = 0;
  Rank nparts_ = 0;
  std::vector<Weight> s_;
};

}  // namespace plum::remap
