// The paper's heuristic greedy mapper (§4.4), a direct transcription of its
// pseudocode: radix-sort all similarity entries in descending order, then
// walk the list assigning each partition to the first processor that still
// has capacity. O(E) beyond the sort; objective >= 1/2 optimal (Theorem 1).

#include "remap/mapping.hpp"
#include "util/radix_sort.hpp"
#include "util/timer.hpp"

namespace plum::remap {

Assignment map_heuristic_greedy(const SimilarityMatrix& S) {
  Timer timer;
  const Rank P = S.nprocs();
  const Rank N = S.nparts();
  const Rank F = S.f();

  struct Entry {
    Weight s;
    Rank i, j;
  };
  std::vector<Entry> entries;
  // plum-scale: host-only -- host-side greedy remapper; capacity bound, entries are the O(nonzeros) similarity cells
  entries.reserve(static_cast<std::size_t>(P) * static_cast<std::size_t>(N));
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < N; ++j) {
      // "If necessary, the zero entries in S are also used": keep them in
      // the list so every partition always finds a home.
      entries.push_back({S.at(i, j), i, j});
    }
  }
  radix_sort_descending(entries, [](const Entry& e) {
    return static_cast<std::uint64_t>(e.s);
  });

  // part_map[j] = unassigned; proc_unmap[i] = npart / nproc  (= F).
  // plum-scale: host-only -- host-side greedy remapper scratch
  std::vector<char> part_assigned(static_cast<std::size_t>(N), 0);
  // plum-scale: host-only -- host-side greedy remapper scratch
  std::vector<Rank> proc_remaining(static_cast<std::size_t>(P), F);

  Assignment out;
  // plum-scale: host-only -- remap result table produced on the host
  out.part_to_proc.assign(static_cast<std::size_t>(N), kNoRank);
  Rank count = 0;
  for (const Entry& e : entries) {
    if (count == N) break;
    if (proc_remaining[static_cast<std::size_t>(e.i)] == 0) continue;
    if (part_assigned[static_cast<std::size_t>(e.j)]) continue;
    --proc_remaining[static_cast<std::size_t>(e.i)];
    part_assigned[static_cast<std::size_t>(e.j)] = 1;
    out.part_to_proc[static_cast<std::size_t>(e.j)] = e.i;
    out.objective += e.s;
    ++count;
  }
  out.solve_seconds = timer.seconds();
  return out;
}

}  // namespace plum::remap
