#include <algorithm>
#include <limits>

#include "remap/mapping.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace plum::remap {

namespace {

/// Hungarian algorithm (Jonker-Volgenant potentials formulation) for the
/// square min-cost assignment problem. cost is n x n, row-major.
/// Returns col_of_row[r] = assigned column. O(n^3).
std::vector<int> hungarian_min_cost(const std::vector<std::int64_t>& cost,
                                    int n) {
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  // 1-based arrays per the classical formulation.
  std::vector<std::int64_t> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);    // row matched to col
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);

  auto c = [&](int i, int j) {  // 1-based accessor
    return cost[static_cast<std::size_t>(i - 1) * n + (j - 1)];
  };

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<std::int64_t> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      std::int64_t delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const std::int64_t cur = c(i0, j) - u[static_cast<std::size_t>(i0)] -
                                 v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> col_of_row(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    col_of_row[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] =
        j - 1;
  }
  return col_of_row;
}

}  // namespace

Assignment map_optimal_mwbg(const SimilarityMatrix& S) {
  Timer timer;
  const Rank P = S.nprocs();
  const Rank N = S.nparts();  // = P * F
  const Rank F = S.f();

  // Duplicate each processor row F times -> square N x N max-weight
  // assignment; convert to min-cost with (maxS - S).
  Weight max_entry = 0;
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < N; ++j) max_entry = std::max(max_entry, S.at(i, j));
  }
  // plum-scale: host-only -- host-side assignment solver; the dense cost matrix is inherent to Hungarian matching
  std::vector<std::int64_t> cost(static_cast<std::size_t>(N) *
                                 static_cast<std::size_t>(N));
  for (Rank r = 0; r < N; ++r) {
    const Rank i = r / F;  // the processor this duplicated row represents
    for (Rank j = 0; j < N; ++j) {
      cost[static_cast<std::size_t>(r) * N + j] = max_entry - S.at(i, j);
    }
  }
  const auto col_of_row = hungarian_min_cost(cost, N);

  Assignment out;
  // plum-scale: host-only -- remap result table produced on the host
  out.part_to_proc.assign(static_cast<std::size_t>(N), kNoRank);
  for (Rank r = 0; r < N; ++r) {
    const Rank j = col_of_row[static_cast<std::size_t>(r)];
    out.part_to_proc[static_cast<std::size_t>(j)] = r / F;
    out.objective += S.at(r / F, j);
  }
  out.solve_seconds = timer.seconds();
  return out;
}

Assignment map_identity(const SimilarityMatrix& S) {
  Assignment out;
  const Rank N = S.nparts();
  const Rank F = S.f();
  // plum-scale: host-only -- remap result table produced on the host
  out.part_to_proc.resize(static_cast<std::size_t>(N));
  for (Rank j = 0; j < N; ++j) {
    out.part_to_proc[static_cast<std::size_t>(j)] = j / F;
    out.objective += S.at(j / F, j);
  }
  return out;
}

}  // namespace plum::remap
