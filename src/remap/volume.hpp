#pragma once
// Data-movement volumes induced by a processor assignment (paper §4.4-4.5).
// These are the quantities of Fig. 2 and Table 2:
//   Ctotal / Ntotal — total elements and element-sets moved (TotalV view),
//   Cmax   / Nmax   — elements and sets moved by the bottleneck processor
//                     (MaxV view),
//   max(Sent, Recd) — the per-processor bottleneck Table 2's 2nd column
//                     reports.

#include <utility>
#include <vector>

#include "remap/mapping.hpp"
#include "remap/similarity.hpp"

namespace plum::remap {

struct RemapVolume {
  Weight total_elems = 0;  ///< Ctotal: sum of all moved similarity weight
  int total_sets = 0;      ///< Ntotal: nonzero S(i,j) with j assigned away
  Weight max_sent = 0;     ///< max over processors of elements sent
  Weight max_recv = 0;     ///< max over processors of elements received
  /// max_i max(sent_i, recv_i) — Table 2's "Max(Sent,Recd)".
  Weight max_sent_or_recv = 0;
  Weight bottleneck_elems = 0;  ///< Cmax: sent+recv of the bottleneck proc
  int bottleneck_sets = 0;      ///< Nmax: sets touching the bottleneck proc

  /// MaxV cost kernel: max_i max(alpha*sent_i, beta*recv_i).
  double maxv_cost = 0;
};

/// Evaluates the volumes for `assign` against similarity matrix S.
RemapVolume evaluate_assignment(const SimilarityMatrix& S,
                                const Assignment& assign, double alpha = 1.0,
                                double beta = 1.0);

/// The volume broken out as (name, value) pairs under the canonical gauge
/// names ("remap_total_elems", ..., "remap_max_sent_or_recv"). Live gauges
/// (Framework cycles) and bench reports both emit exactly these names, so
/// the two can be joined without a translation table.
std::vector<std::pair<const char*, Weight>> volume_fields(
    const RemapVolume& vol);

}  // namespace plum::remap
