#include "remap/matching.hpp"

#include <deque>
#include <limits>

namespace plum::remap {

int hopcroft_karp(const std::vector<std::vector<Rank>>& adj, Rank n,
                  std::vector<Rank>& match_l) {
  // plum-scale: host-only -- host-side Hopcroft-Karp matcher scratch
  std::vector<Rank> match_r(static_cast<std::size_t>(n), kNoRank);
  // plum-scale: host-only -- host-side Hopcroft-Karp matcher scratch
  match_l.assign(static_cast<std::size_t>(n), kNoRank);
  // plum-scale: host-only -- host-side Hopcroft-Karp matcher scratch
  std::vector<Rank> dist(static_cast<std::size_t>(n));
  constexpr Rank kInfDist = std::numeric_limits<Rank>::max();

  auto bfs = [&]() {
    std::deque<Rank> q;
    for (Rank l = 0; l < n; ++l) {
      if (match_l[static_cast<std::size_t>(l)] == kNoRank) {
        dist[static_cast<std::size_t>(l)] = 0;
        q.push_back(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInfDist;
      }
    }
    bool found = false;
    while (!q.empty()) {
      const Rank l = q.front();
      q.pop_front();
      for (Rank r : adj[static_cast<std::size_t>(l)]) {
        const Rank next = match_r[static_cast<std::size_t>(r)];
        if (next == kNoRank) {
          found = true;
        } else if (dist[static_cast<std::size_t>(next)] == kInfDist) {
          dist[static_cast<std::size_t>(next)] =
              dist[static_cast<std::size_t>(l)] + 1;
          q.push_back(next);
        }
      }
    }
    return found;
  };

  // Augmenting DFS over the BFS layering, iterative with an explicit frame
  // stack. Frames mirror the recursive formulation exactly — same neighbor
  // order, same dead-end dist invalidation — so the matching produced is
  // identical; only the per-vertex call overhead is gone.
  struct Frame {
    Rank l;
    std::size_t ai;  ///< index into adj[l] of the edge currently tried
  };
  std::vector<Frame> stack;
  auto dfs = [&](Rank root) -> bool {
    stack.clear();
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nbrs = adj[static_cast<std::size_t>(f.l)];
      bool descended = false;
      while (f.ai < nbrs.size()) {
        const Rank r = nbrs[f.ai];
        const Rank next = match_r[static_cast<std::size_t>(r)];
        if (next == kNoRank) {
          // Free right vertex: augment along the whole stack (each frame's
          // current edge becomes matched, deepest first as in recursion).
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            const Rank rr = adj[static_cast<std::size_t>(it->l)][it->ai];
            match_l[static_cast<std::size_t>(it->l)] = rr;
            match_r[static_cast<std::size_t>(rr)] = it->l;
          }
          return true;
        }
        if (dist[static_cast<std::size_t>(next)] ==
            dist[static_cast<std::size_t>(f.l)] + 1) {
          stack.push_back({next, 0});  // invalidates f; reacquired below
          descended = true;
          break;
        }
        ++f.ai;
      }
      if (descended) continue;
      // Every edge of f.l failed: mark the dead end and report the failure
      // to the parent frame, which moves past its current edge.
      dist[static_cast<std::size_t>(stack.back().l)] = kInfDist;
      stack.pop_back();
      if (!stack.empty()) ++stack.back().ai;
    }
    return false;
  };

  int matched = 0;
  while (bfs()) {
    for (Rank l = 0; l < n; ++l) {
      if (match_l[static_cast<std::size_t>(l)] == kNoRank && dfs(l)) {
        ++matched;
      }
    }
  }
  return matched;
}

}  // namespace plum::remap
