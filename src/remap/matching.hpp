#pragma once
// Bipartite matching kernels shared by the reassignment mappers.
//
// hopcroft_karp is the feasibility oracle of the BMCM mapper's bottleneck
// binary search (bmcm.cpp): it runs O(log P^2) times per reassignment, so
// its constant factor shows up directly in the paper's Table 2 times. The
// augmenting DFS is iterative with an explicit frame stack — the earlier
// recursive std::function formulation paid a type-erased call per visited
// vertex and O(P) stack frames per augmenting path, which dominated
// bench_micro's large-P matcher sweeps.

#include <vector>

#include "util/types.hpp"

namespace plum::remap {

/// Hopcroft-Karp maximum matching on an n x n bipartite graph given as
/// adjacency lists (left -> right, neighbors tried in list order).
/// Returns the matching size; match_l[l] = matched right vertex or kNoRank.
/// Deterministic: identical inputs produce the identical matching.
int hopcroft_karp(const std::vector<std::vector<Rank>>& adj, Rank n,
                  std::vector<Rank>& match_l);

}  // namespace plum::remap
