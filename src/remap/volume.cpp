#include "remap/volume.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace plum::remap {

RemapVolume evaluate_assignment(const SimilarityMatrix& S,
                                const Assignment& assign, double alpha,
                                double beta) {
  const Rank P = S.nprocs();
  const Rank N = S.nparts();
  PLUM_ASSERT(static_cast<Rank>(assign.part_to_proc.size()) == N);

  // plum-scale: host-only -- host-side remap-volume report scratch
  std::vector<Weight> sent(static_cast<std::size_t>(P), 0);
  // plum-scale: host-only -- host-side remap-volume report scratch
  std::vector<Weight> recv(static_cast<std::size_t>(P), 0);
  // plum-scale: host-only -- host-side remap-volume report scratch
  std::vector<int> sets(static_cast<std::size_t>(P), 0);

  RemapVolume out;
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < N; ++j) {
      const Weight s = S.at(i, j);
      if (s == 0) continue;
      const Rank dest = assign.part_to_proc[static_cast<std::size_t>(j)];
      PLUM_ASSERT(dest != kNoRank);
      if (dest == i) continue;  // stays home
      out.total_elems += s;
      ++out.total_sets;
      sent[static_cast<std::size_t>(i)] += s;
      recv[static_cast<std::size_t>(dest)] += s;
      ++sets[static_cast<std::size_t>(i)];
      ++sets[static_cast<std::size_t>(dest)];
    }
  }

  Rank bottleneck = 0;
  for (Rank p = 0; p < P; ++p) {
    out.max_sent = std::max(out.max_sent, sent[static_cast<std::size_t>(p)]);
    out.max_recv = std::max(out.max_recv, recv[static_cast<std::size_t>(p)]);
    out.max_sent_or_recv =
        std::max(out.max_sent_or_recv,
                 std::max(sent[static_cast<std::size_t>(p)],
                          recv[static_cast<std::size_t>(p)]));
    const Weight both =
        sent[static_cast<std::size_t>(p)] + recv[static_cast<std::size_t>(p)];
    if (both > sent[static_cast<std::size_t>(bottleneck)] +
                   recv[static_cast<std::size_t>(bottleneck)]) {
      bottleneck = p;
    }
    out.maxv_cost = std::max(
        out.maxv_cost,
        std::max(alpha * static_cast<double>(sent[static_cast<std::size_t>(p)]),
                 beta * static_cast<double>(recv[static_cast<std::size_t>(p)])));
  }
  out.bottleneck_elems = sent[static_cast<std::size_t>(bottleneck)] +
                         recv[static_cast<std::size_t>(bottleneck)];
  out.bottleneck_sets = sets[static_cast<std::size_t>(bottleneck)];
  return out;
}

std::vector<std::pair<const char*, Weight>> volume_fields(
    const RemapVolume& vol) {
  return {
      {"remap_total_elems", vol.total_elems},
      {"remap_total_sets", static_cast<Weight>(vol.total_sets)},
      {"remap_bottleneck_elems", vol.bottleneck_elems},
      {"remap_bottleneck_sets", static_cast<Weight>(vol.bottleneck_sets)},
      {"remap_max_sent", vol.max_sent},
      {"remap_max_recv", vol.max_recv},
      {"remap_max_sent_or_recv", vol.max_sent_or_recv},
  };
}

}  // namespace plum::remap
