#include "mesh/box_mesh.hpp"

#include <array>

namespace plum::mesh {

namespace {

// The six path simplices of the unit cube: each follows a monotone path
// 000 -> 111 visiting corner bitmasks in axis order given by a permutation.
// All six share the main diagonal (000,111) and tile the cube conformingly.
constexpr std::array<std::array<int, 3>, 6> kPerms = {{
    {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}};

}  // namespace

TetMesh make_box_mesh(const BoxSpec& spec) {
  PLUM_ASSERT(spec.nx >= 1 && spec.ny >= 1 && spec.nz >= 1);
  const int vx = spec.nx + 1, vy = spec.ny + 1, vz = spec.nz + 1;

  std::vector<Vec3> verts;
  verts.reserve(static_cast<std::size_t>(vx) * vy * vz);
  for (int k = 0; k < vz; ++k) {
    for (int j = 0; j < vy; ++j) {
      for (int i = 0; i < vx; ++i) {
        verts.push_back({
            spec.lo.x + (spec.hi.x - spec.lo.x) * i / spec.nx,
            spec.lo.y + (spec.hi.y - spec.lo.y) * j / spec.ny,
            spec.lo.z + (spec.hi.z - spec.lo.z) * k / spec.nz,
        });
      }
    }
  }
  auto vid = [&](int i, int j, int k) {
    return static_cast<Index>((static_cast<std::int64_t>(k) * vy + j) * vx + i);
  };

  std::vector<std::array<Index, 4>> tets;
  tets.reserve(static_cast<std::size_t>(spec.nx) * spec.ny * spec.nz * 6);
  for (int k = 0; k < spec.nz; ++k) {
    for (int j = 0; j < spec.ny; ++j) {
      for (int i = 0; i < spec.nx; ++i) {
        // corner(b) = cell corner offset by bit b of each axis.
        auto corner = [&](int mask) {
          return vid(i + (mask & 1), j + ((mask >> 1) & 1),
                     k + ((mask >> 2) & 1));
        };
        for (const auto& perm : kPerms) {
          int mask = 0;
          std::array<Index, 4> t{};
          t[0] = corner(0);
          for (int s = 0; s < 3; ++s) {
            mask |= 1 << perm[s];
            t[s + 1] = corner(mask);
          }
          tets.push_back(t);
        }
      }
    }
  }
  return TetMesh::from_cells(std::move(verts), tets);
}

BoxSpec paper_scale_box() {
  BoxSpec s;
  s.nx = 22;
  s.ny = 22;
  s.nz = 21;
  return s;
}

BoxSpec small_box(int n) {
  BoxSpec s;
  s.nx = s.ny = s.nz = n;
  return s;
}

}  // namespace plum::mesh
