#pragma once
// Structured-box tetrahedral mesh generator.
//
// Stand-in for the paper's UH-1H rotor-blade grid (DESIGN.md §3): each cell
// of an nx × ny × nz grid is split into six tetrahedra with the Kuhn
// (path-simplex) triangulation, which is face-compatible across neighboring
// cells, so the result is a conforming tetrahedral mesh. nx=22, ny=22,
// nz=21 gives 60,984 elements — the scale of the paper's 60,968-element
// initial mesh.

#include "mesh/tet_mesh.hpp"

namespace plum::mesh {

struct BoxSpec {
  int nx = 4, ny = 4, nz = 4;        ///< cells per axis
  Vec3 lo{0, 0, 0};                  ///< box corner
  Vec3 hi{1, 1, 1};                  ///< opposite corner
};

TetMesh make_box_mesh(const BoxSpec& spec);

/// The mesh size used throughout the paper-scale experiments (~61k tets).
BoxSpec paper_scale_box();

/// A small mesh for unit tests (6·n³ tets).
BoxSpec small_box(int n = 3);

}  // namespace plum::mesh
