#pragma once
// Minimal 3-vector for mesh geometry and the flow solver.

#include <array>
#include <cmath>

namespace plum::mesh {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& v) { return std::sqrt(dot(v, v)); }

inline Vec3 normalized(const Vec3& v) {
  const double n = norm(v);
  return n > 0 ? v / n : Vec3{};
}

constexpr Vec3 midpoint(const Vec3& a, const Vec3& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5, (a.z + b.z) * 0.5};
}

}  // namespace plum::mesh
