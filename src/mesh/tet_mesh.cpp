#include "mesh/tet_mesh.hpp"

#include "graph/dual.hpp"

#include <algorithm>
#include <tuple>

namespace plum::mesh {

namespace {

double tet_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  return dot(cross(b - a, c - a), d - a) / 6.0;
}

struct FaceRec {
  Index v0, v1, v2;  // sorted
  Index elem;
  int local_face;
  bool operator<(const FaceRec& o) const {
    return std::tie(v0, v1, v2) < std::tie(o.v0, o.v1, o.v2);
  }
  [[nodiscard]] bool same_face(const FaceRec& o) const {
    return v0 == o.v0 && v1 == o.v1 && v2 == o.v2;
  }
};

}  // namespace

TetMesh TetMesh::from_cells(std::vector<Vec3> vertices,
                            std::span<const std::array<Index, 4>> tets) {
  TetMesh m;
  m.vertices_.reserve(vertices.size() * 2);
  for (const Vec3& p : vertices) m.vertices_.push_back(Vertex{p, false, true});

  m.elements_.reserve(tets.size() * 2);
  for (const auto& t_in : tets) {
    std::array<Index, 4> t = t_in;
    // Enforce positive orientation up front; subdivision preserves it.
    if (tet_volume(vertices[t[0]], vertices[t[1]], vertices[t[2]],
                   vertices[t[3]]) < 0) {
      std::swap(t[2], t[3]);
    }
    Element el;
    el.verts = t;
    el.root = static_cast<Index>(m.elements_.size());
    for (int k = 0; k < kTetEdges; ++k) {
      el.edges[k] = m.find_or_add_edge(t[kEdgeVerts[k][0]],
                                       t[kEdgeVerts[k][1]], 0, false);
    }
    m.elements_.push_back(el);
  }
  m.n_init_elems_ = static_cast<Index>(m.elements_.size());
  m.n_init_edges_ = static_cast<Index>(m.edges_.size());

  for (Index t = 0; t < m.n_init_elems_; ++t) m.add_to_leaf_lists(t);

  // Boundary faces: faces touched by exactly one element.
  std::vector<FaceRec> faces;
  faces.reserve(m.elements_.size() * 4);
  for (Index t = 0; t < m.n_init_elems_; ++t) {
    for (int f = 0; f < kTetFaces; ++f) {
      std::array<Index, 3> fv{};
      for (int i = 0; i < 3; ++i) {
        fv[i] = m.elements_[t].verts[kFaceVerts[f][i]];
      }
      std::sort(fv.begin(), fv.end());
      faces.push_back({fv[0], fv[1], fv[2], t, f});
    }
  }
  std::sort(faces.begin(), faces.end());
  for (std::size_t i = 0; i < faces.size();) {
    if (i + 1 < faces.size() && faces[i].same_face(faces[i + 1])) {
      i += 2;
      continue;
    }
    // Unmatched face -> boundary. Use the element's local vertex order so
    // the triangle's edges line up with element edges.
    const FaceRec& fr = faces[i];
    BFace bf;
    for (int k = 0; k < 3; ++k) {
      bf.verts[k] = m.elements_[fr.elem].verts[kFaceVerts[fr.local_face][k]];
    }
    for (int k = 0; k < 3; ++k) {
      const Index e = m.find_edge(bf.verts[k], bf.verts[(k + 1) % 3]);
      PLUM_ASSERT(e != kInvalidIndex);
      bf.edges[k] = e;
      m.edges_[e].boundary = true;
    }
    for (Index v : bf.verts) m.vertices_[v].boundary = true;
    m.bfaces_.push_back(bf);
    ++i;
  }
  return m;
}

TetMesh TetMesh::assemble(std::vector<Vertex> vertices,
                          std::vector<Edge> edges,
                          std::vector<Element> elements,
                          std::vector<BFace> bfaces, Index n_init_elems,
                          Index n_init_edges) {
  TetMesh m;
  m.vertices_ = std::move(vertices);
  m.edges_ = std::move(edges);
  m.elements_ = std::move(elements);
  m.bfaces_ = std::move(bfaces);
  m.n_init_elems_ = n_init_elems;
  m.n_init_edges_ = n_init_edges;

  m.edge_map_.reserve(m.edges_.size() * 2);
  for (Index e = 0; e < m.num_edges(); ++e) {
    m.edge_map_.emplace(edge_key(m.edges_[e].v0, m.edges_[e].v1), e);
  }
  m.e2elem_.assign(m.edges_.size(), {});
  for (Index t = 0; t < m.num_elements(); ++t) {
    const Element& el = m.elements_[t];
    if (el.alive && el.is_leaf()) m.add_to_leaf_lists(t);
  }
  return m;
}

Index TetMesh::num_active_elements() const {
  Index n = 0;
  for (const Element& el : elements_) {
    if (el.alive && el.is_leaf()) ++n;
  }
  return n;
}

Index TetMesh::num_active_edges() const {
  Index n = 0;
  for (const auto& lst : e2elem_) {
    if (!lst.empty()) ++n;
  }
  return n;
}

Index TetMesh::num_active_bfaces() const {
  Index n = 0;
  for (const BFace& f : bfaces_) {
    if (f.alive && f.is_leaf()) ++n;
  }
  return n;
}

Index TetMesh::find_edge(Index v0, Index v1) const {
  auto it = edge_map_.find(edge_key(v0, v1));
  return it == edge_map_.end() ? kInvalidIndex : it->second;
}

std::vector<Index> TetMesh::active_elements() const {
  std::vector<Index> out;
  out.reserve(elements_.size());
  for (Index t = 0; t < num_elements(); ++t) {
    if (elements_[t].alive && elements_[t].is_leaf()) out.push_back(t);
  }
  return out;
}

Index TetMesh::add_vertex(const Vec3& pos, bool boundary) {
  vertices_.push_back(Vertex{pos, boundary, true});
  return static_cast<Index>(vertices_.size()) - 1;
}

Index TetMesh::find_or_add_edge(Index v0, Index v1, int level, bool boundary) {
  PLUM_ASSERT(v0 != v1);
  const auto key = edge_key(v0, v1);
  auto it = edge_map_.find(key);
  if (it != edge_map_.end()) return it->second;
  Edge e;
  e.v0 = std::min(v0, v1);
  e.v1 = std::max(v0, v1);
  e.level = static_cast<std::int8_t>(level);
  e.boundary = boundary;
  const Index id = static_cast<Index>(edges_.size());
  edges_.push_back(e);
  e2elem_.emplace_back();
  edge_map_.emplace(key, id);
  return id;
}

Index TetMesh::bisect_edge(Index e) {
  // Copy fields up front: find_or_add_edge below may reallocate edges_.
  const Edge parent = edges_[e];
  if (parent.mid != kInvalidIndex) return parent.mid;
  PLUM_ASSERT(parent.alive);

  const Vec3 mp =
      midpoint(vertices_[parent.v0].pos, vertices_[parent.v1].pos);
  const Index mid = add_vertex(mp, parent.boundary);
  const Index c0 =
      find_or_add_edge(parent.v0, mid, parent.level + 1, parent.boundary);
  const Index c1 =
      find_or_add_edge(mid, parent.v1, parent.level + 1, parent.boundary);
  edges_[c0].parent = e;
  edges_[c1].parent = e;
  edges_[e].child = {c0, c1};
  edges_[e].mid = mid;
  if (on_bisect) on_bisect(e, mid);
  return mid;
}

Index TetMesh::add_child_element(Index parent,
                                 const std::array<Index, 4>& verts_in) {
  Element& par = elements_[parent];
  std::array<Index, 4> v = verts_in;
  if (tet_volume(vertices_[v[0]].pos, vertices_[v[1]].pos,
                 vertices_[v[2]].pos, vertices_[v[3]].pos) < 0) {
    std::swap(v[2], v[3]);
  }

  Element el;
  el.verts = v;
  el.parent = parent;
  el.level = static_cast<std::int8_t>(par.level + 1);
  el.root = par.root;
  const Index id = static_cast<Index>(elements_.size());
  if (par.num_children == 0) {
    par.first_child = id;
  } else {
    PLUM_ASSERT_MSG(par.first_child + par.num_children == id,
                    "children of one parent must be contiguous");
  }
  ++par.num_children;

  for (int k = 0; k < kTetEdges; ++k) {
    el.edges[k] = find_or_add_edge(v[kEdgeVerts[k][0]], v[kEdgeVerts[k][1]],
                                   par.level + 1, false);
  }
  elements_.push_back(el);
  add_to_leaf_lists(id);
  return id;
}

void TetMesh::remove_from_leaf_lists(Index elem) {
  for (Index e : elements_[elem].edges) {
    auto& lst = e2elem_[static_cast<std::size_t>(e)];
    auto it = std::find(lst.begin(), lst.end(), elem);
    PLUM_ASSERT(it != lst.end());
    lst.erase(it);
  }
}

void TetMesh::add_to_leaf_lists(Index elem) {
  for (Index e : elements_[elem].edges) {
    e2elem_[static_cast<std::size_t>(e)].push_back(elem);
  }
}

Index TetMesh::add_child_bface(Index parent, const std::array<Index, 3>& v) {
  BFace& par = bfaces_[parent];
  BFace bf;
  bf.verts = v;
  bf.parent = parent;
  for (int k = 0; k < 3; ++k) {
    const Index e = find_or_add_edge(v[k], v[(k + 1) % 3], 0, true);
    bf.edges[k] = e;
    edges_[e].boundary = true;
    vertices_[v[k]].boundary = true;
  }
  const Index id = static_cast<Index>(bfaces_.size());
  PLUM_ASSERT(par.num_children < 4);
  par.child[par.num_children++] = id;
  bfaces_.push_back(bf);
  return id;
}

std::vector<Index> TetMesh::purge_and_compact() {
  // Stable compaction maps; kInvalidIndex maps to itself.
  auto build_map = [](auto const& items, auto alive_of) {
    std::vector<Index> map(items.size(), kInvalidIndex);
    Index next = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (alive_of(items[i])) map[i] = next++;
    }
    return map;
  };
  auto remap = [](const std::vector<Index>& map, Index old) {
    return old == kInvalidIndex ? kInvalidIndex : map[old];
  };

  const auto vmap = build_map(vertices_, [](const Vertex& v) { return v.alive; });
  const auto emap = build_map(edges_, [](const Edge& e) { return e.alive; });
  const auto tmap =
      build_map(elements_, [](const Element& t) { return t.alive; });
  const auto fmap = build_map(bfaces_, [](const BFace& f) { return f.alive; });

  // Initial entities must be untouched: they occupy a stable prefix.
  for (Index t = 0; t < n_init_elems_; ++t) PLUM_ASSERT(tmap[t] == t);
  for (Index e = 0; e < n_init_edges_; ++e) PLUM_ASSERT(emap[e] == e);

  // Vertices.
  {
    std::vector<Vertex> nv;
    nv.reserve(vertices_.size());
    for (const Vertex& v : vertices_) {
      if (v.alive) nv.push_back(v);
    }
    vertices_ = std::move(nv);
  }
  // Edges + e2elem.
  {
    std::vector<Edge> ne;
    std::vector<std::vector<Index>> nlist;
    ne.reserve(edges_.size());
    nlist.reserve(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (!edges_[i].alive) continue;
      Edge e = edges_[i];
      e.v0 = vmap[e.v0];
      e.v1 = vmap[e.v1];
      PLUM_ASSERT(e.v0 != kInvalidIndex && e.v1 != kInvalidIndex);
      e.mid = remap(vmap, e.mid);
      e.parent = remap(emap, e.parent);
      for (auto& c : e.child) c = remap(emap, c);
      // A dead child pair means the bisection was coarsened away. Children
      // die in pairs (the coarsening sibling rule) — never singly.
      if (e.child[0] == kInvalidIndex || e.child[1] == kInvalidIndex) {
        PLUM_ASSERT_MSG(
            e.child[0] == kInvalidIndex && e.child[1] == kInvalidIndex,
            "edge bisection half-coarsened");
        e.child = {kInvalidIndex, kInvalidIndex};
        e.mid = kInvalidIndex;
      }
      ne.push_back(e);
      std::vector<Index> lst = std::move(e2elem_[i]);
      for (auto& t : lst) {
        t = tmap[t];
        PLUM_ASSERT(t != kInvalidIndex);
      }
      nlist.push_back(std::move(lst));
    }
    edges_ = std::move(ne);
    e2elem_ = std::move(nlist);
  }
  // Elements.
  {
    std::vector<Element> nt;
    nt.reserve(elements_.size());
    for (const Element& t_old : elements_) {
      if (!t_old.alive) continue;
      Element t = t_old;
      for (auto& v : t.verts) v = vmap[v];
      for (auto& e : t.edges) e = emap[e];
      t.parent = remap(tmap, t.parent);
      t.root = tmap[t.root];
      if (t.num_children > 0) {
        const Index fc = tmap[t.first_child];
        if (fc == kInvalidIndex) {
          // Children coarsened away; this element is a leaf again.
          t.first_child = kInvalidIndex;
          t.num_children = 0;
          t.subdiv_type = 0;
        } else {
          t.first_child = fc;
        }
      }
      nt.push_back(t);
    }
    elements_ = std::move(nt);
  }
  // Boundary faces.
  {
    std::vector<BFace> nf;
    nf.reserve(bfaces_.size());
    for (const BFace& f_old : bfaces_) {
      if (!f_old.alive) continue;
      BFace f = f_old;
      for (auto& v : f.verts) v = vmap[v];
      for (auto& e : f.edges) e = emap[e];
      f.parent = remap(fmap, f.parent);
      int live_children = 0;
      for (auto& c : f.child) {
        c = remap(fmap, c);
        if (c != kInvalidIndex) ++live_children;
      }
      if (live_children == 0) {
        f.child = {kInvalidIndex, kInvalidIndex, kInvalidIndex, kInvalidIndex};
        f.num_children = 0;
      } else {
        PLUM_ASSERT(live_children == f.num_children);
      }
      nf.push_back(f);
    }
    bfaces_ = std::move(nf);
  }
  // Rebuild edge lookup.
  edge_map_.clear();
  edge_map_.reserve(edges_.size() * 2);
  for (Index e = 0; e < num_edges(); ++e) {
    edge_map_.emplace(edge_key(edges_[e].v0, edges_[e].v1), e);
  }

  // Invert the vertex map (old->new) into new->old for solution arrays.
  std::vector<Index> new_to_old(vertices_.size(), kInvalidIndex);
  for (std::size_t old = 0; old < vmap.size(); ++old) {
    if (vmap[old] != kInvalidIndex) {
      new_to_old[static_cast<std::size_t>(vmap[old])] =
          static_cast<Index>(old);
    }
  }
  return new_to_old;
}

RootWeights TetMesh::root_weights() const {
  RootWeights w;
  w.wcomp.assign(static_cast<std::size_t>(n_init_elems_), 0);
  w.wremap.assign(static_cast<std::size_t>(n_init_elems_), 0);
  for (const Element& t : elements_) {
    if (!t.alive) continue;
    PLUM_ASSERT(t.root >= 0 && t.root < n_init_elems_);
    ++w.wremap[static_cast<std::size_t>(t.root)];
    if (t.is_leaf()) ++w.wcomp[static_cast<std::size_t>(t.root)];
  }
  return w;
}

graph::Csr TetMesh::build_initial_dual() const {
  std::vector<std::array<Index, 4>> tets(
      static_cast<std::size_t>(n_init_elems_));
  for (Index t = 0; t < n_init_elems_; ++t) {
    tets[static_cast<std::size_t>(t)] = elements_[t].verts;
  }
  return graph::build_dual(tets);
}

double TetMesh::total_volume() const {
  double vol = 0;
  for (Index t = 0; t < num_elements(); ++t) {
    if (elements_[t].alive && elements_[t].is_leaf()) {
      vol += element_volume(t);
    }
  }
  return vol;
}

Vec3 TetMesh::element_centroid(Index t) const {
  Vec3 c;
  for (Index v : elements_[t].verts) c += vertices_[v].pos;
  return c / 4.0;
}

double TetMesh::element_volume(Index t) const {
  const auto& v = elements_[t].verts;
  return tet_volume(vertices_[v[0]].pos, vertices_[v[1]].pos,
                    vertices_[v[2]].pos, vertices_[v[3]].pos);
}

double TetMesh::edge_length(Index e) const {
  return norm(vertices_[edges_[e].v1].pos - vertices_[edges_[e].v0].pos);
}

void TetMesh::validate() const {
  for (Index t = 0; t < num_elements(); ++t) {
    const Element& el = elements_[t];
    if (!el.alive) continue;
    for (int k = 0; k < kTetEdges; ++k) {
      const Edge& e = edges_[el.edges[k]];
      const Index a = el.verts[kEdgeVerts[k][0]];
      const Index b = el.verts[kEdgeVerts[k][1]];
      PLUM_ASSERT_MSG((e.v0 == std::min(a, b) && e.v1 == std::max(a, b)),
                      "element edge/vertex mismatch");
    }
    if (el.is_leaf()) {
      PLUM_ASSERT_MSG(element_volume(t) > 0, "inverted leaf element");
    } else {
      PLUM_ASSERT(el.first_child != kInvalidIndex);
      for (int c = 0; c < el.num_children; ++c) {
        PLUM_ASSERT(elements_[el.first_child + c].parent == t);
      }
    }
  }
  // e2elem lists must contain exactly the alive leaves referencing the edge.
  std::vector<Index> expect(static_cast<std::size_t>(num_edges()), 0);
  for (Index t = 0; t < num_elements(); ++t) {
    const Element& el = elements_[t];
    if (!el.alive || !el.is_leaf()) continue;
    for (Index e : el.edges) ++expect[static_cast<std::size_t>(e)];
  }
  for (Index e = 0; e < num_edges(); ++e) {
    PLUM_ASSERT_MSG(static_cast<Index>(e2elem_[e].size()) == expect[e],
                    "stale edge->element list");
    for (Index t : e2elem_[e]) {
      PLUM_ASSERT(elements_[t].alive && elements_[t].is_leaf());
    }
  }
  // Bisected edges: children join through the midpoint.
  for (Index e = 0; e < num_edges(); ++e) {
    const Edge& ed = edges_[e];
    if (!ed.alive || ed.is_leaf()) continue;
    PLUM_ASSERT(ed.mid != kInvalidIndex);
    const Edge& c0 = edges_[ed.child[0]];
    const Edge& c1 = edges_[ed.child[1]];
    auto touches = [&](const Edge& c, Index v) {
      return c.v0 == v || c.v1 == v;
    };
    PLUM_ASSERT(touches(c0, ed.mid) && touches(c1, ed.mid));
    PLUM_ASSERT(touches(c0, ed.v0) || touches(c1, ed.v0));
    PLUM_ASSERT(touches(c0, ed.v1) || touches(c1, ed.v1));
  }
  for (const BFace& f : bfaces_) {
    if (!f.alive) continue;
    for (int k = 0; k < 3; ++k) {
      const Edge& e = edges_[f.edges[k]];
      const Index a = f.verts[k];
      const Index b = f.verts[(k + 1) % 3];
      PLUM_ASSERT(e.v0 == std::min(a, b) && e.v1 == std::max(a, b));
      PLUM_ASSERT_MSG(e.boundary, "boundary face with interior edge");
    }
  }
}

}  // namespace plum::mesh
