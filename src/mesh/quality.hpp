#pragma once
// Element quality metrics: used by tests to confirm that repeated
// refinement does not degenerate elements (the 1:8 octahedron-diagonal
// choice is what keeps quality bounded).

#include "mesh/tet_mesh.hpp"

namespace plum::mesh {

/// Radius-ratio quality in (0, 1]: 3 * inradius / circumradius, 1 for the
/// regular tetrahedron, -> 0 for slivers.
double radius_ratio(const TetMesh& mesh, Index elem);

struct QualityStats {
  double min = 0;
  double mean = 0;
  double max = 0;
};

/// Quality over the active (leaf) elements.
QualityStats mesh_quality(const TetMesh& mesh);

}  // namespace plum::mesh
