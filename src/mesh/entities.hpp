#pragma once
// Mesh entity records and the local topology of a tetrahedron.
//
// Following 3D_TAG (paper §3), elements are defined by their six edges; we
// keep the four vertices alongside because subdivision and geometry need
// them constantly and deriving them from edges each time is pure waste.
// Refinement history (parent/children links on edges and elements) is
// retained: the paper's coarsening reinstates parents instead of
// reconstructing them, and Wremap counts whole refinement trees.

#include <array>
#include <cstdint>

#include "mesh/vec3.hpp"
#include "util/types.hpp"

namespace plum::mesh {

// ---------------------------------------------------------------------------
// Local topology tables. Local edge k of a tet joins local vertices
// kEdgeVerts[k]; local face f is opposite local vertex f and consists of
// vertices kFaceVerts[f] / edges kFaceEdges[f].
// ---------------------------------------------------------------------------

inline constexpr std::array<std::array<int, 2>, kTetEdges> kEdgeVerts = {{
    {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
}};

inline constexpr std::array<std::array<int, 3>, kTetFaces> kFaceVerts = {{
    {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2},
}};

inline constexpr std::array<std::array<int, 3>, kTetFaces> kFaceEdges = {{
    {3, 4, 5}, {1, 2, 5}, {0, 2, 4}, {0, 1, 3},
}};

/// Local edge joining local vertices (a, b); -1 if a == b.
inline constexpr int local_edge_between(int a, int b) {
  for (int k = 0; k < kTetEdges; ++k) {
    if ((kEdgeVerts[k][0] == a && kEdgeVerts[k][1] == b) ||
        (kEdgeVerts[k][0] == b && kEdgeVerts[k][1] == a)) {
      return k;
    }
  }
  return -1;
}

/// The edge opposite to edge k (sharing no vertex with it).
inline constexpr int opposite_edge(int k) {
  constexpr std::array<int, kTetEdges> kOpp = {5, 4, 3, 2, 1, 0};
  return kOpp[k];
}

// ---------------------------------------------------------------------------
// Entity records
// ---------------------------------------------------------------------------

struct Vertex {
  Vec3 pos;
  bool boundary = false;  ///< lies on the external boundary
  bool alive = true;      ///< false once removed by coarsening compaction
};

struct Edge {
  Index v0 = kInvalidIndex;  ///< endpoints, canonical v0 < v1
  Index v1 = kInvalidIndex;
  Index parent = kInvalidIndex;       ///< edge this was bisected from
  std::array<Index, 2> child = {kInvalidIndex, kInvalidIndex};
  Index mid = kInvalidIndex;          ///< midpoint vertex once bisected
  std::int8_t level = 0;              ///< refinement depth (0 = initial mesh)
  bool boundary = false;              ///< lies on the external boundary
  bool alive = true;

  /// Leaf edges are part of the current computational mesh.
  [[nodiscard]] bool is_leaf() const { return child[0] == kInvalidIndex; }
};

struct Element {
  std::array<Index, kTetVerts> verts{};
  std::array<Index, kTetEdges> edges{};  ///< aligned with kEdgeVerts
  Index parent = kInvalidIndex;
  Index first_child = kInvalidIndex;  ///< children are contiguous ids
  std::int8_t num_children = 0;
  std::int8_t level = 0;
  std::int8_t subdiv_type = 0;  ///< 0 none, 2/4/8 = 1:2 / 1:4 / 1:8
  bool alive = true;            ///< false once replaced or coarsened away
  Index root = kInvalidIndex;   ///< initial-mesh ancestor (dual graph vertex)

  [[nodiscard]] bool is_leaf() const { return num_children == 0; }
};

struct BFace {
  std::array<Index, 3> verts{};
  std::array<Index, 3> edges{};  ///< edge i joins verts[i], verts[(i+1)%3]
  Index parent = kInvalidIndex;
  std::array<Index, 4> child = {kInvalidIndex, kInvalidIndex, kInvalidIndex,
                                kInvalidIndex};
  std::int8_t num_children = 0;
  bool alive = true;

  [[nodiscard]] bool is_leaf() const { return num_children == 0; }
};

}  // namespace plum::mesh
