#include "mesh/quality.hpp"

#include <algorithm>
#include <cmath>

namespace plum::mesh {

double radius_ratio(const TetMesh& mesh, Index elem) {
  const auto& vs = mesh.element(elem).verts;
  const Vec3 a = mesh.vertex(vs[0]).pos, b = mesh.vertex(vs[1]).pos,
             c = mesh.vertex(vs[2]).pos, d = mesh.vertex(vs[3]).pos;
  const double vol = std::abs(dot(cross(b - a, c - a), d - a)) / 6.0;
  if (vol <= 0) return 0;

  // Inradius = 3V / total face area.
  auto area = [](const Vec3& p, const Vec3& q, const Vec3& r) {
    return 0.5 * norm(cross(q - p, r - p));
  };
  const double atot =
      area(b, c, d) + area(a, c, d) + area(a, b, d) + area(a, b, c);
  const double rin = 3.0 * vol / atot;

  // Circumradius via the standard product-of-edges formula.
  const double la = norm(b - a) * norm(d - c);
  const double lb = norm(c - a) * norm(d - b);
  const double lc = norm(d - a) * norm(c - b);
  const double p = (la + lb + lc) * (-la + lb + lc) * (la - lb + lc) *
                   (la + lb - lc);
  if (p <= 0) return 0;
  const double rcirc = std::sqrt(p) / (24.0 * vol);
  return rcirc > 0 ? std::min(1.0, 3.0 * rin / rcirc) : 0;
}

QualityStats mesh_quality(const TetMesh& mesh) {
  QualityStats s;
  s.min = 1;
  s.max = 0;
  double sum = 0;
  long n = 0;
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    const auto& el = mesh.element(t);
    if (!el.alive || !el.is_leaf()) continue;
    const double q = radius_ratio(mesh, t);
    s.min = std::min(s.min, q);
    s.max = std::max(s.max, q);
    sum += q;
    ++n;
  }
  s.mean = n > 0 ? sum / static_cast<double>(n) : 0;
  return s;
}

}  // namespace plum::mesh
