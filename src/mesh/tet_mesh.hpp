#pragma once
// Edge-based tetrahedral mesh with retained refinement forest (3D_TAG-style,
// paper §3).
//
// The mesh keeps every entity ever created (vertices, edges, elements,
// boundary faces); refinement links parents to children and the *current
// computational mesh* is the set of leaf elements plus the edges/faces they
// reference. Coarsening removes subtrees and then compacts the arrays —
// "objects are renumbered due to compaction" — preserving the relative
// order, so initial-mesh entities (which can never be coarsened away) keep
// their ids forever. That stability is what lets the dual graph of the
// initial mesh (src/graph/dual.hpp) survive any number of adaptions.
//
// TetMesh owns topology bookkeeping only; the adaption *algorithms*
// (marking, pattern upgrade, subdivision, coarsening) live in src/adapt.

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "mesh/entities.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace plum::mesh {

/// Per-initial-element weights for the dual graph (paper §4.1).
struct RootWeights {
  std::vector<Weight> wcomp;   ///< #leaf elements in each refinement tree
  std::vector<Weight> wremap;  ///< #total elements in each refinement tree
};

class TetMesh {
 public:
  TetMesh() = default;

  /// Builds the initial mesh from vertex coordinates and tet connectivity.
  /// Edges and boundary faces are derived; a face is boundary iff exactly
  /// one tet touches it. Elements must be positively oriented.
  static TetMesh from_cells(std::vector<Vec3> vertices,
                            std::span<const std::array<Index, 4>> tets);

  // --- sizes ---------------------------------------------------------------
  [[nodiscard]] Index num_vertices() const {
    return static_cast<Index>(vertices_.size());
  }
  [[nodiscard]] Index num_edges() const {
    return static_cast<Index>(edges_.size());
  }
  [[nodiscard]] Index num_elements() const {
    return static_cast<Index>(elements_.size());
  }
  [[nodiscard]] Index num_bfaces() const {
    return static_cast<Index>(bfaces_.size());
  }
  [[nodiscard]] Index num_initial_elements() const { return n_init_elems_; }
  [[nodiscard]] Index num_initial_edges() const { return n_init_edges_; }

  /// Counts over the *current computational mesh* (leaves only). These are
  /// the quantities Table 1 reports.
  [[nodiscard]] Index num_active_elements() const;
  [[nodiscard]] Index num_active_edges() const;
  [[nodiscard]] Index num_active_bfaces() const;

  // --- entity access -------------------------------------------------------
  [[nodiscard]] const Vertex& vertex(Index v) const { return vertices_[v]; }
  [[nodiscard]] Vertex& vertex(Index v) { return vertices_[v]; }
  [[nodiscard]] const Edge& edge(Index e) const { return edges_[e]; }
  [[nodiscard]] Edge& edge(Index e) { return edges_[e]; }
  [[nodiscard]] const Element& element(Index t) const { return elements_[t]; }
  [[nodiscard]] Element& element(Index t) { return elements_[t]; }
  [[nodiscard]] const BFace& bface(Index f) const { return bfaces_[f]; }
  [[nodiscard]] BFace& bface(Index f) { return bfaces_[f]; }

  /// Alive leaf elements sharing edge `e` ("each edge has a list of all the
  /// elements that share it" — the search-eliminating lists of §3).
  [[nodiscard]] const std::vector<Index>& edge_elements(Index e) const {
    return e2elem_[static_cast<std::size_t>(e)];
  }

  /// Edge id joining v0,v1 or kInvalidIndex.
  [[nodiscard]] Index find_edge(Index v0, Index v1) const;

  /// Ids of all leaf elements (the computational mesh).
  [[nodiscard]] std::vector<Index> active_elements() const;

  // --- mutation API used by the adaptor ------------------------------------

  /// Adds a vertex; returns its id.
  Index add_vertex(const Vec3& pos, bool boundary);

  /// Finds the edge (v0,v1), creating it (with the given level/boundary
  /// flags) if absent. New edges start with an empty element list.
  Index find_or_add_edge(Index v0, Index v1, int level, bool boundary);

  /// Bisects edge `e`: creates the midpoint vertex and the two child edges
  /// (idempotent — returns existing midpoint if already bisected). Fires the
  /// on_bisect hook for solution interpolation.
  Index bisect_edge(Index e);

  /// Creates a child element of `parent` with the given vertices. Edges are
  /// found-or-created at level parent.level+1; e2elem lists are updated.
  /// Children of one parent must be created consecutively.
  Index add_child_element(Index parent, const std::array<Index, 4>& verts);

  /// Removes `elem` from the leaf set (called right before its children are
  /// added, or when coarsening removes it). Updates e2elem.
  void remove_from_leaf_lists(Index elem);

  /// Re-inserts a reinstated parent into the leaf lists of its edges.
  void add_to_leaf_lists(Index elem);

  /// Boundary-face management mirrors element refinement.
  Index add_child_bface(Index parent, const std::array<Index, 3>& verts);

  /// Deletes everything flagged dead (alive == false), compacts all arrays
  /// preserving order, rewrites all cross-references and rebuilds the edge
  /// map. Initial-mesh entities keep their ids (they are never dead).
  /// Returns the vertex renumbering as new-id -> old-id (what a per-vertex
  /// solution array needs to follow the compaction).
  std::vector<Index> purge_and_compact();

  /// Assembles a mesh from fully-specified, locally-indexed entity records
  /// (the distributed-mesh constructor carves per-rank local meshes this
  /// way). Rebuilds the edge map and the edge->leaf-element lists. Initial
  /// entities must occupy the array prefixes [0, n_init_*).
  static TetMesh assemble(std::vector<Vertex> vertices,
                          std::vector<Edge> edges,
                          std::vector<Element> elements,
                          std::vector<BFace> bfaces, Index n_init_elems,
                          Index n_init_edges);

  /// Hook invoked as (parent_edge, mid_vertex) when an edge is bisected;
  /// the solver interpolates its solution vector here (paper §3: "linearly
  /// interpolated at the mid-point").
  std::function<void(Index, Index)> on_bisect;

  // --- dual-graph support ---------------------------------------------------

  /// Walks every refinement tree once; O(#elements).
  [[nodiscard]] RootWeights root_weights() const;

  /// Dual graph of the initial mesh (unit weights; refresh via
  /// root_weights + Csr::set_weights).
  [[nodiscard]] graph::Csr build_initial_dual() const;

  /// Checks structural invariants; aborts on violation. O(mesh size).
  void validate() const;

  /// Sum of leaf-element volumes (conservation check for adaption).
  [[nodiscard]] double total_volume() const;

  /// Geometry helpers.
  [[nodiscard]] Vec3 element_centroid(Index t) const;
  [[nodiscard]] double element_volume(Index t) const;
  [[nodiscard]] double edge_length(Index e) const;

 private:
  static std::uint64_t edge_key(Index v0, Index v1) {
    if (v0 > v1) std::swap(v0, v1);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v0)) << 32) |
           static_cast<std::uint32_t>(v1);
  }

  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<Element> elements_;
  std::vector<BFace> bfaces_;
  std::vector<std::vector<Index>> e2elem_;  // leaf elements per edge
  // plum-lint: allow(unordered-iteration) -- lookup-only (find/emplace by
  // edge key); never iterated, so its order cannot reach messages or sums.
  std::unordered_map<std::uint64_t, Index> edge_map_;
  Index n_init_elems_ = 0;
  Index n_init_edges_ = 0;
};

}  // namespace plum::mesh
