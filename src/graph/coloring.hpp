#pragma once
// Graph coloring. Parallel MeTiS (paper §4.2) parallelizes coarsening and
// uncoarsening with a vertex coloring: vertices of one color can be matched
// or moved simultaneously without conflicts. We provide the same primitive;
// the partitioner records the color-class counts per level, which the SP2
// machine model (src/sim) uses to estimate parallel partitioning rounds.

#include <vector>

#include "graph/csr.hpp"

namespace plum::graph {

/// Greedy first-fit coloring in the given vertex order (identity order if
/// `order` is empty). Returns per-vertex colors in [0, num_colors).
struct Coloring {
  std::vector<int> color;
  int num_colors = 0;
};

Coloring greedy_coloring(const Csr& g, const std::vector<Index>& order = {});

/// Luby-style randomized maximal-independent-set coloring: repeatedly peel a
/// MIS, giving all its vertices the next color. Produces the color classes a
/// synchronous parallel machine would actually process one round at a time.
Coloring luby_coloring(const Csr& g, std::uint64_t seed);

/// Checks that no edge joins two equal colors.
bool is_valid_coloring(const Csr& g, const std::vector<int>& color);

}  // namespace plum::graph
