#pragma once
// Connectivity utilities: BFS layers and connected components. Used by the
// greedy-graph-growing initial partitioner and by partition-quality checks.

#include <vector>

#include "graph/csr.hpp"

namespace plum::graph {

/// Component id per vertex, ids dense in [0, num_components).
struct Components {
  std::vector<Index> comp;
  Index num_components = 0;
};

Components connected_components(const Csr& g);

/// BFS from `source` restricted to vertices where mask[v] != 0 (all vertices
/// if mask empty). Returns visit order; dist filled with hop counts (-1 for
/// unreached).
std::vector<Index> bfs_order(const Csr& g, Index source,
                             std::vector<Index>* dist = nullptr,
                             const std::vector<char>& mask = {});

/// A pseudo-peripheral vertex: repeated BFS to the farthest vertex. Good
/// seeds for graph growing.
Index pseudo_peripheral(const Csr& g, Index start);

}  // namespace plum::graph
