#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace plum::graph {

Coloring greedy_coloring(const Csr& g, const std::vector<Index>& order) {
  const Index n = g.num_vertices();
  Coloring out;
  out.color.assign(static_cast<std::size_t>(n), -1);

  std::vector<Index> seq;
  const std::vector<Index>* ord = &order;
  if (order.empty()) {
    seq.resize(static_cast<std::size_t>(n));
    std::iota(seq.begin(), seq.end(), 0);
    ord = &seq;
  }
  PLUM_ASSERT(static_cast<Index>(ord->size()) == n);

  std::vector<char> used;  // scratch: colors taken by neighbors
  for (Index v : *ord) {
    used.assign(static_cast<std::size_t>(out.num_colors) + 1, 0);
    for (Index u : g.neighbors(v)) {
      const int c = out.color[u];
      if (c >= 0) used[static_cast<std::size_t>(c)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    out.color[v] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

Coloring luby_coloring(const Csr& g, std::uint64_t seed) {
  const Index n = g.num_vertices();
  Coloring out;
  out.color.assign(static_cast<std::size_t>(n), -1);

  // Random priorities; a vertex joins the current MIS if it beats every
  // still-uncolored neighbor. Ties broken by index (priorities are distinct
  // with overwhelming probability, but determinism must not rely on that).
  Rng rng(seed);
  std::vector<std::uint64_t> prio(static_cast<std::size_t>(n));
  for (auto& p : prio) p = rng.next();

  Index remaining = n;
  std::vector<char> tentative(static_cast<std::size_t>(n), 0);
  while (remaining > 0) {
    // Selection: v joins this round's independent set if it beats every
    // still-uncolored neighbor. Two adjacent uncolored vertices can never
    // both win (one of them loses the priority comparison).
    for (Index v = 0; v < n; ++v) {
      if (out.color[v] >= 0) continue;
      bool wins = true;
      for (Index u : g.neighbors(v)) {
        if (out.color[u] >= 0) continue;
        if (prio[u] > prio[v] || (prio[u] == prio[v] && u > v)) {
          wins = false;
          break;
        }
      }
      tentative[static_cast<std::size_t>(v)] = wins;
    }
    for (Index v = 0; v < n; ++v) {
      if (tentative[static_cast<std::size_t>(v)]) {
        tentative[static_cast<std::size_t>(v)] = 0;
        out.color[v] = out.num_colors;
        --remaining;
      }
    }
    ++out.num_colors;
  }
  return out;
}

bool is_valid_coloring(const Csr& g, const std::vector<int>& color) {
  for (Index v = 0; v < g.num_vertices(); ++v) {
    if (color[v] < 0) return false;
    for (Index u : g.neighbors(v)) {
      if (color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace plum::graph
