#pragma once
// Compressed-sparse-row undirected graph with per-vertex weights.
//
// This is the common currency of the load balancer: the dual graph of the
// initial mesh (DESIGN.md #4), every coarsened level inside the multilevel
// partitioner, and the inputs of the repartition evaluator are all `Csr`.
//
// Each vertex carries the paper's two weights:
//   wcomp  — computational weight (leaf count of the element's refinement
//            tree; what the flow solver pays per iteration),
//   wremap — remapping weight (total node count of the tree; what migration
//            pays when the element changes processor).
// Edge weights model communication volume across the corresponding face.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace plum::graph {

class Csr {
 public:
  Csr() = default;

  /// Builds from an undirected edge list; each {u,v} pair is stored in both
  /// adjacency rows. Self loops and duplicate edges are rejected by debug
  /// validation (call `validate()`), not silently merged.
  static Csr from_edges(Index num_vertices,
                        std::span<const std::pair<Index, Index>> edges,
                        std::span<const Weight> edge_weights = {});

  [[nodiscard]] Index num_vertices() const {
    return static_cast<Index>(xadj_.size()) - 1;
  }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjncy_.size()) / 2;
  }

  /// Neighbors of `v` (unordered).
  [[nodiscard]] std::span<const Index> neighbors(Index v) const {
    return {adjncy_.data() + xadj_[v], adjncy_.data() + xadj_[v + 1]};
  }
  /// Weights of the incident edges, aligned with neighbors(v).
  [[nodiscard]] std::span<const Weight> edge_weights(Index v) const {
    return {adjwgt_.data() + xadj_[v], adjwgt_.data() + xadj_[v + 1]};
  }

  [[nodiscard]] Index degree(Index v) const {
    return static_cast<Index>(xadj_[v + 1] - xadj_[v]);
  }

  [[nodiscard]] Weight wcomp(Index v) const { return wcomp_[v]; }
  [[nodiscard]] Weight wremap(Index v) const { return wremap_[v]; }
  void set_wcomp(Index v, Weight w) { wcomp_[v] = w; }
  void set_wremap(Index v, Weight w) { wremap_[v] = w; }

  void set_weights(std::vector<Weight> wcomp, std::vector<Weight> wremap);

  [[nodiscard]] const std::vector<Weight>& wcomp_all() const { return wcomp_; }
  [[nodiscard]] const std::vector<Weight>& wremap_all() const {
    return wremap_;
  }

  [[nodiscard]] Weight total_wcomp() const;
  [[nodiscard]] Weight total_wremap() const;

  /// Checks structural invariants (symmetry, sorted-free duplicates, no self
  /// loops, weight array sizes). Aborts on violation. O(V + E log E).
  void validate() const;

  /// Raw arrays, exposed for the partitioner's tight loops.
  [[nodiscard]] const std::vector<std::int64_t>& xadj() const { return xadj_; }
  [[nodiscard]] const std::vector<Index>& adjncy() const { return adjncy_; }
  [[nodiscard]] const std::vector<Weight>& adjwgt() const { return adjwgt_; }

 private:
  // xadj_ has V+1 entries; adjncy_/adjwgt_ have 2E entries.
  std::vector<std::int64_t> xadj_{0};
  std::vector<Index> adjncy_;
  std::vector<Weight> adjwgt_;
  std::vector<Weight> wcomp_;
  std::vector<Weight> wremap_;
};

}  // namespace plum::graph
