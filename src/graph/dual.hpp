#pragma once
// Dual graph of a tetrahedral mesh (paper §4.1).
//
// Dual vertices are the tetrahedra of the *initial* mesh; a dual edge joins
// two tetrahedra that share a triangular face. Partitioning the dual yields
// an assignment of tetrahedra to processors, and — the paper's key point —
// its size never changes while the computational mesh is adapted: only the
// two per-vertex weights (Wcomp, Wremap) are refreshed from the refinement
// trees before each repartitioning.
//
// Construction takes raw element→vertex connectivity (4 vertex ids per tet)
// so it has no dependency on the mesh class; src/mesh provides a
// convenience overload.

#include <array>
#include <span>

#include "graph/csr.hpp"

namespace plum::graph {

/// Builds the face-adjacency dual. Each tet has ≤ 4 dual neighbors.
/// O(E log E) via sorted-face matching. Unit weights; callers refresh them
/// with Csr::set_weights as the refinement trees evolve.
Csr build_dual(std::span<const std::array<Index, 4>> tets);

}  // namespace plum::graph
