#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

namespace plum::graph {

Csr Csr::from_edges(Index num_vertices,
                    std::span<const std::pair<Index, Index>> edges,
                    std::span<const Weight> edge_weights) {
  PLUM_ASSERT(num_vertices >= 0);
  PLUM_ASSERT(edge_weights.empty() || edge_weights.size() == edges.size());

  Csr g;
  g.xadj_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : edges) {
    PLUM_ASSERT(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices);
    PLUM_ASSERT_MSG(u != v, "self loop");
    ++g.xadj_[u + 1];
    ++g.xadj_[v + 1];
  }
  std::partial_sum(g.xadj_.begin(), g.xadj_.end(), g.xadj_.begin());

  g.adjncy_.resize(static_cast<std::size_t>(g.xadj_.back()));
  g.adjwgt_.resize(g.adjncy_.size());
  std::vector<std::int64_t> fill(g.xadj_.begin(), g.xadj_.end() - 1);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const Weight w = edge_weights.empty() ? 1 : edge_weights[e];
    g.adjncy_[static_cast<std::size_t>(fill[u])] = v;
    g.adjwgt_[static_cast<std::size_t>(fill[u]++)] = w;
    g.adjncy_[static_cast<std::size_t>(fill[v])] = u;
    g.adjwgt_[static_cast<std::size_t>(fill[v]++)] = w;
  }

  g.wcomp_.assign(static_cast<std::size_t>(num_vertices), 1);
  g.wremap_.assign(static_cast<std::size_t>(num_vertices), 1);
  return g;
}

void Csr::set_weights(std::vector<Weight> wcomp, std::vector<Weight> wremap) {
  PLUM_ASSERT(static_cast<Index>(wcomp.size()) == num_vertices());
  PLUM_ASSERT(static_cast<Index>(wremap.size()) == num_vertices());
  wcomp_ = std::move(wcomp);
  wremap_ = std::move(wremap);
}

Weight Csr::total_wcomp() const {
  return std::accumulate(wcomp_.begin(), wcomp_.end(), Weight{0});
}

Weight Csr::total_wremap() const {
  return std::accumulate(wremap_.begin(), wremap_.end(), Weight{0});
}

void Csr::validate() const {
  const Index n = num_vertices();
  PLUM_ASSERT(static_cast<Index>(wcomp_.size()) == n);
  PLUM_ASSERT(static_cast<Index>(wremap_.size()) == n);
  PLUM_ASSERT(adjwgt_.size() == adjncy_.size());
  for (Index v = 0; v < n; ++v) {
    PLUM_ASSERT(xadj_[v] <= xadj_[v + 1]);
    auto nbrs = neighbors(v);
    std::vector<Index> sorted(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end());
    PLUM_ASSERT_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate edge");
    for (Index u : nbrs) {
      PLUM_ASSERT_MSG(u != v, "self loop");
      // Symmetry: v must appear in u's row.
      auto back = neighbors(u);
      PLUM_ASSERT_MSG(std::find(back.begin(), back.end(), v) != back.end(),
                      "asymmetric adjacency");
    }
  }
}

}  // namespace plum::graph
