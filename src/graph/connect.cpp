#include "graph/connect.hpp"

#include <deque>

namespace plum::graph {

Components connected_components(const Csr& g) {
  const Index n = g.num_vertices();
  Components out;
  out.comp.assign(static_cast<std::size_t>(n), kInvalidIndex);
  std::deque<Index> queue;
  for (Index s = 0; s < n; ++s) {
    if (out.comp[s] != kInvalidIndex) continue;
    const Index id = out.num_components++;
    out.comp[s] = id;
    queue.push_back(s);
    while (!queue.empty()) {
      const Index v = queue.front();
      queue.pop_front();
      for (Index u : g.neighbors(v)) {
        if (out.comp[u] == kInvalidIndex) {
          out.comp[u] = id;
          queue.push_back(u);
        }
      }
    }
  }
  return out;
}

std::vector<Index> bfs_order(const Csr& g, Index source,
                             std::vector<Index>* dist,
                             const std::vector<char>& mask) {
  const Index n = g.num_vertices();
  PLUM_ASSERT(source >= 0 && source < n);
  PLUM_ASSERT(mask.empty() || static_cast<Index>(mask.size()) == n);
  PLUM_ASSERT(mask.empty() || mask[source]);

  std::vector<Index> d(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));
  std::deque<Index> queue;
  d[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const Index v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (Index u : g.neighbors(v)) {
      if (d[u] != kInvalidIndex) continue;
      if (!mask.empty() && !mask[u]) continue;
      d[u] = d[v] + 1;
      queue.push_back(u);
    }
  }
  if (dist) *dist = std::move(d);
  return order;
}

Index pseudo_peripheral(const Csr& g, Index start) {
  Index v = start;
  Index last_ecc = -1;
  // Each hop strictly increases eccentricity; terminates in O(diameter).
  for (;;) {
    std::vector<Index> dist;
    const auto order = bfs_order(g, v, &dist);
    const Index far = order.back();
    const Index ecc = dist[far];
    if (ecc <= last_ecc) return v;
    last_ecc = ecc;
    v = far;
  }
}

}  // namespace plum::graph
