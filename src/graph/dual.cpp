#include "graph/dual.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

namespace plum::graph {

namespace {

// A face key: the three vertex ids sorted ascending, plus owner element.
struct FaceRec {
  Index v0, v1, v2;
  Index elem;
  bool operator<(const FaceRec& o) const {
    return std::tie(v0, v1, v2, elem) < std::tie(o.v0, o.v1, o.v2, o.elem);
  }
  bool same_face(const FaceRec& o) const {
    return v0 == o.v0 && v1 == o.v1 && v2 == o.v2;
  }
};

}  // namespace

Csr build_dual(std::span<const std::array<Index, 4>> tets) {
  // The four faces of tet (a,b,c,d): (b,c,d), (a,c,d), (a,b,d), (a,b,c).
  std::vector<FaceRec> faces;
  faces.reserve(tets.size() * 4);
  for (std::size_t e = 0; e < tets.size(); ++e) {
    const auto& t = tets[e];
    for (int skip = 0; skip < 4; ++skip) {
      std::array<Index, 3> f{};
      int k = 0;
      for (int i = 0; i < 4; ++i) {
        if (i != skip) f[k++] = t[i];
      }
      std::sort(f.begin(), f.end());
      faces.push_back({f[0], f[1], f[2], static_cast<Index>(e)});
    }
  }
  std::sort(faces.begin(), faces.end());

  std::vector<std::pair<Index, Index>> edges;
  edges.reserve(tets.size() * 2);
  for (std::size_t i = 0; i + 1 < faces.size(); ++i) {
    if (faces[i].same_face(faces[i + 1])) {
      PLUM_ASSERT_MSG(
          i + 2 >= faces.size() || !faces[i + 1].same_face(faces[i + 2]),
          "a face shared by more than two tetrahedra (non-manifold mesh)");
      edges.emplace_back(faces[i].elem, faces[i + 1].elem);
      ++i;  // skip the matched partner
    }
  }
  return Csr::from_edges(static_cast<Index>(tets.size()), edges);
}

}  // namespace plum::graph
