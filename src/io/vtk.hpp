#pragma once
// Legacy-VTK export of the *current computational mesh* (leaf elements)
// with optional per-vertex scalar fields and the per-element partition id —
// the "finalization phase" gather that post-processing / visualization
// needs (paper §3).

#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/tet_mesh.hpp"
#include "partition/quality.hpp"

namespace plum::io {

struct VtkFields {
  /// Per-vertex scalar (e.g. density); empty to skip.
  std::vector<double> vertex_scalar;
  std::string vertex_scalar_name = "density";
  /// Per-initial-element processor id; leaves inherit their root's value.
  partition::PartVec root_partition;
};

void write_vtk(std::ostream& os, const mesh::TetMesh& mesh,
               const VtkFields& fields = {});
void write_vtk_file(const std::string& path, const mesh::TetMesh& mesh,
                    const VtkFields& fields = {});

}  // namespace plum::io
