#pragma once
// Small fixed-width table printer used by the benches to emit the paper's
// tables/figures as aligned text, plus a similarity-matrix pretty-printer
// (the Fig. 2 rendering).

#include <iosfwd>
#include <string>
#include <vector>

#include "remap/similarity.hpp"

namespace plum::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; each cell already formatted.
  void add_row(std::vector<std::string> cells);

  /// Renders with per-column widths and a header underline.
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 4);
  static std::string fmt(std::int64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints S with row/column sums, highlighting assigned entries if an
/// assignment is given (Fig. 2 style).
void print_similarity(std::ostream& os, const remap::SimilarityMatrix& S,
                      const std::vector<Rank>* part_to_proc = nullptr);

}  // namespace plum::io
