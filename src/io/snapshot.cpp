#include "io/snapshot.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace plum::io {

namespace {
constexpr const char* kMagic = "plum-snap";
constexpr int kVersion = 1;
}  // namespace

void write_snapshot(std::ostream& os, const mesh::TetMesh& mesh,
                    const std::vector<std::array<double, 5>>& solution) {
  PLUM_ASSERT(solution.empty() ||
              static_cast<Index>(solution.size()) == mesh.num_vertices());
  os << kMagic << ' ' << kVersion << '\n';
  os << mesh.num_vertices() << ' ' << mesh.num_edges() << ' '
     << mesh.num_elements() << ' ' << mesh.num_bfaces() << ' '
     << mesh.num_initial_elements() << ' ' << mesh.num_initial_edges() << ' '
     << (solution.empty() ? 0 : 1) << '\n';
  os.precision(17);

  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    const auto& vx = mesh.vertex(v);
    os << vx.pos.x << ' ' << vx.pos.y << ' ' << vx.pos.z << ' '
       << int(vx.boundary) << '\n';
  }
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    const auto& ed = mesh.edge(e);
    os << ed.v0 << ' ' << ed.v1 << ' ' << ed.parent << ' ' << ed.child[0]
       << ' ' << ed.child[1] << ' ' << ed.mid << ' ' << int(ed.level) << ' '
       << int(ed.boundary) << '\n';
  }
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    const auto& el = mesh.element(t);
    for (Index v : el.verts) os << v << ' ';
    for (Index e : el.edges) os << e << ' ';
    os << el.parent << ' ' << el.first_child << ' ' << int(el.num_children)
       << ' ' << int(el.level) << ' ' << int(el.subdiv_type) << ' ' << el.root
       << '\n';
  }
  for (Index f = 0; f < mesh.num_bfaces(); ++f) {
    const auto& bf = mesh.bface(f);
    for (Index v : bf.verts) os << v << ' ';
    for (Index e : bf.edges) os << e << ' ';
    os << bf.parent << ' ' << bf.child[0] << ' ' << bf.child[1] << ' '
       << bf.child[2] << ' ' << bf.child[3] << ' ' << int(bf.num_children)
       << '\n';
  }
  for (const auto& s : solution) {
    for (double x : s) os << x << ' ';
    os << '\n';
  }
}

Snapshot read_snapshot(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  PLUM_ASSERT_MSG(magic == kMagic && version == kVersion,
                  "not a plum-snap 1 stream");
  Index nv = 0, ne = 0, nt = 0, nf = 0, init_t = 0, init_e = 0;
  int has_solution = 0;
  is >> nv >> ne >> nt >> nf >> init_t >> init_e >> has_solution;
  PLUM_ASSERT(nv >= 0 && ne >= 0 && nt >= 0 && nf >= 0);

  std::vector<mesh::Vertex> verts(static_cast<std::size_t>(nv));
  for (auto& vx : verts) {
    int boundary = 0;
    is >> vx.pos.x >> vx.pos.y >> vx.pos.z >> boundary;
    vx.boundary = boundary != 0;
  }
  std::vector<mesh::Edge> edges(static_cast<std::size_t>(ne));
  for (auto& ed : edges) {
    int level = 0, boundary = 0;
    is >> ed.v0 >> ed.v1 >> ed.parent >> ed.child[0] >> ed.child[1] >>
        ed.mid >> level >> boundary;
    ed.level = static_cast<std::int8_t>(level);
    ed.boundary = boundary != 0;
  }
  std::vector<mesh::Element> elems(static_cast<std::size_t>(nt));
  for (auto& el : elems) {
    int nchild = 0, level = 0, subdiv = 0;
    for (auto& v : el.verts) is >> v;
    for (auto& e : el.edges) is >> e;
    is >> el.parent >> el.first_child >> nchild >> level >> subdiv >> el.root;
    el.num_children = static_cast<std::int8_t>(nchild);
    el.level = static_cast<std::int8_t>(level);
    el.subdiv_type = static_cast<std::int8_t>(subdiv);
  }
  std::vector<mesh::BFace> bfaces(static_cast<std::size_t>(nf));
  for (auto& bf : bfaces) {
    int nchild = 0;
    for (auto& v : bf.verts) is >> v;
    for (auto& e : bf.edges) is >> e;
    is >> bf.parent >> bf.child[0] >> bf.child[1] >> bf.child[2] >>
        bf.child[3] >> nchild;
    bf.num_children = static_cast<std::int8_t>(nchild);
  }
  Snapshot snap;
  if (has_solution) {
    snap.solution.resize(static_cast<std::size_t>(nv));
    for (auto& s : snap.solution) {
      for (double& x : s) is >> x;
    }
  }
  PLUM_ASSERT_MSG(is.good() || is.eof(), "truncated plum-snap stream");
  snap.mesh = mesh::TetMesh::assemble(std::move(verts), std::move(edges),
                                      std::move(elems), std::move(bfaces),
                                      init_t, init_e);
  return snap;
}

void write_snapshot_file(const std::string& path, const mesh::TetMesh& mesh,
                         const std::vector<std::array<double, 5>>& solution) {
  std::ofstream os(path);
  PLUM_ASSERT_MSG(os.good(), "cannot open snapshot file for writing");
  write_snapshot(os, mesh, solution);
}

Snapshot read_snapshot_file(const std::string& path) {
  std::ifstream is(path);
  PLUM_ASSERT_MSG(is.good(), "cannot open snapshot file for reading");
  return read_snapshot(is);
}

}  // namespace plum::io
