#pragma once
// Restart snapshots (paper §3: "storing a snapshot of a grid for future
// restarts could also require a global view"). Unlike mesh_io.hpp, which
// carries only the initial grid, a snapshot serializes the *entire adapted
// state* — every vertex/edge/element/boundary-face record including the
// refinement forest — plus an optional per-vertex solution block, so a
// computation can resume exactly where it stopped (including the ability to
// coarsen back below the snapshot's finest level).
//
// Format "plum-snap 1": a text header, then fixed-order records. Text keeps
// the format debuggable and platform-independent; snapshots of the paper-
// scale mesh (~0.4M entities) round-trip in well under a second.

#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/tet_mesh.hpp"

namespace plum::io {

void write_snapshot(std::ostream& os, const mesh::TetMesh& mesh,
                    const std::vector<std::array<double, 5>>& solution = {});
void write_snapshot_file(const std::string& path, const mesh::TetMesh& mesh,
                         const std::vector<std::array<double, 5>>& solution = {});

struct Snapshot {
  mesh::TetMesh mesh;
  std::vector<std::array<double, 5>> solution;  ///< empty if not stored
};

Snapshot read_snapshot(std::istream& is);
Snapshot read_snapshot_file(const std::string& path);

}  // namespace plum::io
