#include "io/vtk.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace plum::io {

void write_vtk(std::ostream& os, const mesh::TetMesh& mesh,
               const VtkFields& fields) {
  const auto leaves = mesh.active_elements();

  os << "# vtk DataFile Version 3.0\n"
     << "plum adapted mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << mesh.num_vertices() << " double\n";
  os.precision(12);
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    const auto& p = mesh.vertex(v).pos;
    os << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  os << "CELLS " << leaves.size() << ' ' << leaves.size() * 5 << '\n';
  for (Index t : leaves) {
    const auto& vs = mesh.element(t).verts;
    os << "4 " << vs[0] << ' ' << vs[1] << ' ' << vs[2] << ' ' << vs[3]
       << '\n';
  }
  os << "CELL_TYPES " << leaves.size() << '\n';
  for (std::size_t i = 0; i < leaves.size(); ++i) os << "10\n";  // VTK_TETRA

  if (!fields.vertex_scalar.empty()) {
    PLUM_ASSERT(static_cast<Index>(fields.vertex_scalar.size()) ==
                mesh.num_vertices());
    os << "POINT_DATA " << mesh.num_vertices() << '\n';
    os << "SCALARS " << fields.vertex_scalar_name << " double 1\n"
       << "LOOKUP_TABLE default\n";
    for (double s : fields.vertex_scalar) os << s << '\n';
  }
  if (!fields.root_partition.empty()) {
    os << "CELL_DATA " << leaves.size() << '\n'
       << "SCALARS processor int 1\nLOOKUP_TABLE default\n";
    for (Index t : leaves) {
      os << fields.root_partition[static_cast<std::size_t>(
                mesh.element(t).root)]
         << '\n';
    }
  }
}

void write_vtk_file(const std::string& path, const mesh::TetMesh& mesh,
                    const VtkFields& fields) {
  std::ofstream os(path);
  PLUM_ASSERT_MSG(os.good(), "cannot open VTK file for writing");
  write_vtk(os, mesh, fields);
}

}  // namespace plum::io
