#include "io/mesh_io.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace plum::io {

void write_mesh(std::ostream& os, const mesh::TetMesh& mesh) {
  os << "plum-tet 1\n";
  os << mesh.num_vertices() << ' ' << mesh.num_initial_elements() << '\n';
  os.precision(17);
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    const auto& p = mesh.vertex(v).pos;
    os << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  for (Index t = 0; t < mesh.num_initial_elements(); ++t) {
    const auto& vs = mesh.element(t).verts;
    os << vs[0] << ' ' << vs[1] << ' ' << vs[2] << ' ' << vs[3] << '\n';
  }
}

void write_mesh_file(const std::string& path, const mesh::TetMesh& mesh) {
  std::ofstream os(path);
  PLUM_ASSERT_MSG(os.good(), "cannot open mesh file for writing");
  write_mesh(os, mesh);
}

mesh::TetMesh read_mesh(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  PLUM_ASSERT_MSG(magic == "plum-tet" && version == 1,
                  "not a plum-tet 1 stream");
  Index nv = 0, nt = 0;
  is >> nv >> nt;
  PLUM_ASSERT(nv >= 4 && nt >= 1);

  std::vector<mesh::Vec3> verts(static_cast<std::size_t>(nv));
  for (auto& p : verts) is >> p.x >> p.y >> p.z;
  std::vector<std::array<Index, 4>> tets(static_cast<std::size_t>(nt));
  for (auto& t : tets) {
    is >> t[0] >> t[1] >> t[2] >> t[3];
    for (Index v : t) PLUM_ASSERT(v >= 0 && v < nv);
  }
  PLUM_ASSERT_MSG(is.good() || is.eof(), "truncated plum-tet stream");
  return mesh::TetMesh::from_cells(std::move(verts), tets);
}

mesh::TetMesh read_mesh_file(const std::string& path) {
  std::ifstream is(path);
  PLUM_ASSERT_MSG(is.good(), "cannot open mesh file for reading");
  return read_mesh(is);
}

}  // namespace plum::io
