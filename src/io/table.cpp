#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace plum::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PLUM_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

void print_similarity(std::ostream& os, const remap::SimilarityMatrix& S,
                      const std::vector<Rank>* part_to_proc) {
  os << "similarity matrix S (rows = processors, cols = new partitions";
  if (part_to_proc) os << "; [x] = assigned";
  os << ")\n";
  for (Rank i = 0; i < S.nprocs(); ++i) {
    os << "  P" << i << " |";
    for (Rank j = 0; j < S.nparts(); ++j) {
      const bool mine =
          part_to_proc && (*part_to_proc)[static_cast<std::size_t>(j)] == i;
      std::ostringstream cell;
      if (S.at(i, j) != 0 || mine) {
        cell << S.at(i, j);
      }
      std::string body = cell.str();
      if (mine) body = "[" + body + "]";
      os << std::setw(8) << body;
    }
    os << "   R=" << S.row_sum(i) << '\n';
  }
  os << "  W  |";
  for (Rank j = 0; j < S.nparts(); ++j) {
    os << std::setw(8) << S.col_sum(j);
  }
  os << '\n';
}

}  // namespace plum::io
