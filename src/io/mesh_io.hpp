#pragma once
// Plain-text mesh I/O for the *initial* (unrefined) computational mesh.
//
// Format ("plum-tet 1"):
//   plum-tet 1
//   <num_vertices> <num_tets>
//   x y z                    (per vertex)
//   v0 v1 v2 v3              (per tet)
//
// This is the interchange point for user-supplied grids (the paper's
// rotor-blade mesh would enter here); adapted meshes are written for
// inspection via the VTK exporter (vtk.hpp).

#include <iosfwd>
#include <string>

#include "mesh/tet_mesh.hpp"

namespace plum::io {

/// Writes the initial elements of `mesh`.
void write_mesh(std::ostream& os, const mesh::TetMesh& mesh);
void write_mesh_file(const std::string& path, const mesh::TetMesh& mesh);

/// Reads a "plum-tet 1" stream; aborts on malformed input.
mesh::TetMesh read_mesh(std::istream& is);
mesh::TetMesh read_mesh_file(const std::string& path);

}  // namespace plum::io
