#include "obs/gate_audit.hpp"

namespace plum::obs {

double gate_drift(std::int64_t predicted_bytes, std::int64_t measured_bytes) {
  if (predicted_bytes == 0) return 0.0;
  return (static_cast<double>(measured_bytes) -
          static_cast<double>(predicted_bytes)) /
         static_cast<double>(predicted_bytes);
}

Json gate_record_json(const GateRecord& rec) {
  Json j = Json::object();
  j.set("cycle", Json::integer(rec.cycle))
      .set("evaluated", Json::boolean(rec.evaluated))
      .set("accepted", Json::boolean(rec.accepted))
      .set("metric", Json::str(rec.metric))
      .set("imbalance_old", Json::number(rec.imbalance_old))
      .set("imbalance_new", Json::number(rec.imbalance_new))
      .set("gain_s", Json::number(rec.gain_s))
      .set("cost_s", Json::number(rec.cost_s))
      .set("moved_elems", Json::integer(rec.moved_elems))
      .set("moved_sets", Json::integer(rec.moved_sets))
      .set("predicted_move_bytes", Json::integer(rec.predicted_move_bytes))
      .set("measured_move_bytes", Json::integer(rec.measured_move_bytes))
      .set("drift", Json::number(rec.drift));
  return j;
}

Json gate_audit_json(const std::vector<GateRecord>& records) {
  Json arr = Json::array();
  for (const auto& rec : records) arr.push(gate_record_json(rec));
  return arr;
}

}  // namespace plum::obs
