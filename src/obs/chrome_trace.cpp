#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>

namespace plum::obs {

namespace {

constexpr double kMicros = 1e6;

Json complete_event(const std::string& name, int tid, double t_start_s,
                    double dur_s) {
  Json ev = Json::object();
  ev.set("name", Json::str(name))
      .set("ph", Json::str("X"))
      .set("pid", Json::integer(1))
      .set("tid", Json::integer(tid))
      .set("ts", Json::number(t_start_s * kMicros))
      .set("dur", Json::number(dur_s * kMicros));
  return ev;
}

Json thread_name_event(int tid, const std::string& name) {
  Json args = Json::object();
  args.set("name", Json::str(name));
  Json ev = Json::object();
  ev.set("name", Json::str("thread_name"))
      .set("ph", Json::str("M"))
      .set("pid", Json::integer(1))
      .set("tid", Json::integer(tid))
      .set("args", std::move(args));
  return ev;
}

}  // namespace

Json chrome_trace_json(const TraceRecorder& rec,
                       const std::string& process_name) {
  Json events = Json::array();

  {
    Json args = Json::object();
    args.set("name", Json::str(process_name));
    Json ev = Json::object();
    ev.set("name", Json::str("process_name"))
        .set("ph", Json::str("M"))
        .set("pid", Json::integer(1))
        .set("args", std::move(args));
    events.push(std::move(ev));
  }
  events.push(thread_name_event(0, "phases"));

  int max_ranks = 0;
  for (const auto& st : rec.supersteps()) {
    max_ranks = std::max(max_ranks, static_cast<int>(st.counters.size()));
  }
  for (int r = 0; r < max_ranks; ++r) {
    events.push(thread_name_event(r + 1, "rank " + std::to_string(r)));
  }

  for (const auto& ph : rec.phases()) {
    Json ev = complete_event(ph.name, 0, ph.t_start_s, ph.wall_s);
    Json args = Json::object();
    args.set("depth", Json::integer(ph.depth))
        .set("supersteps", Json::integer(ph.supersteps))
        .set("compute_units", Json::integer(ph.compute_units))
        .set("msgs_sent", Json::integer(ph.msgs_sent))
        .set("bytes_sent", Json::integer(ph.bytes_sent))
        .set("modeled_s", Json::number(ph.modeled_s));
    ev.set("args", std::move(args));
    events.push(std::move(ev));
  }

  for (const auto& st : rec.supersteps()) {
    const std::string base =
        st.phase.empty() ? "step" : st.phase + " step";
    const std::string name = base + " " + std::to_string(st.step);
    // The superstep ends when its slowest (critical) rank ends; every
    // other rank gets an explicit "wait" slice from its own finish to the
    // critical rank's, so stragglers are visible as the only lanes without
    // idle gaps.
    double critical_s = 0;
    int critical_rank = 0;
    for (std::size_t r = 0; r < st.rank_seconds.size(); ++r) {
      if (st.rank_seconds[r] > critical_s) {
        critical_s = st.rank_seconds[r];
        critical_rank = static_cast<int>(r);
      }
    }
    for (std::size_t r = 0; r < st.counters.size(); ++r) {
      const double dur = r < st.rank_seconds.size() ? st.rank_seconds[r] : 0;
      Json ev = complete_event(name, static_cast<int>(r) + 1, st.t_start_s,
                               dur);
      Json args = Json::object();
      args.set("compute_units", Json::integer(st.counters[r].compute_units))
          .set("msgs_sent", Json::integer(st.counters[r].msgs_sent))
          .set("bytes_sent", Json::integer(st.counters[r].bytes_sent));
      ev.set("args", std::move(args));
      events.push(std::move(ev));

      if (static_cast<int>(r) == critical_rank) continue;
      Json wait = complete_event("wait", static_cast<int>(r) + 1,
                                 st.t_start_s + dur, critical_s - dur);
      Json wargs = Json::object();
      wargs.set("step", Json::integer(st.step))
          .set("critical_rank", Json::integer(critical_rank))
          .set("wait_s", Json::number(critical_s - dur));
      wait.set("args", std::move(wargs));
      events.push(std::move(wait));
    }
  }

  // Counter track: per-superstep traffic (messages / bytes posted across
  // all ranks), rendered by the trace viewer as a stacked timeline.
  for (const auto& st : rec.supersteps()) {
    std::int64_t msgs = 0, bytes = 0;
    for (const auto& c : st.counters) {
      msgs += c.msgs_sent;
      bytes += c.bytes_sent;
    }
    Json args = Json::object();
    args.set("msgs", Json::integer(msgs)).set("bytes", Json::integer(bytes));
    Json ev = Json::object();
    ev.set("name", Json::str("traffic"))
        .set("ph", Json::str("C"))
        .set("pid", Json::integer(1))
        .set("ts", Json::number(st.t_start_s * kMicros))
        .set("args", std::move(args));
    events.push(std::move(ev));
  }

  Json doc = Json::object();
  doc.set("traceEvents", std::move(events))
      .set("displayTimeUnit", Json::str("ms"));
  return doc;
}

bool write_chrome_trace(const TraceRecorder& rec,
                        const std::string& process_name,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(rec, process_name).dump(2) << '\n';
  return static_cast<bool>(out);
}

}  // namespace plum::obs
