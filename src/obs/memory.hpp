#pragma once
// plum-mem: per-rank, per-phase allocation observability plus the arena
// the hot phase scratch structures allocate from.
//
// Three pieces, one ownership rule:
//
//   MemoryTracker      — per-rank (plus one host row), per-phase counters:
//                        alloc/free count, bytes requested, peak live
//                        bytes. Counters are written through rank-bound
//                        MemTap handles by the claiming worker — the same
//                        rank-indexed-slot rule as rt::StepCounters and
//                        the plum-scope flight recorder — so the counts
//                        are deterministic and byte-identical across
//                        Engine/ParallelEngine, thread counts, and
//                        transports (rank lambdas always run in the
//                        coordinator process). The phase stamp is
//                        host-set/worker-read, fed by TraceRecorder's
//                        begin_phase/end_phase exactly like the flight
//                        recorder's.
//   Arena              — a chunked bump allocator for per-cycle scratch.
//                        reset() rewinds every chunk for reuse (frees only
//                        oversized dedicated blocks), so steady-state
//                        cycles perform zero scratch heap traffic. One
//                        arena per rank row inside the tracker: a shared
//                        bump pointer would race under ParallelEngine.
//   TrackingAllocator  — a std-allocator adapter carrying {Arena*, MemTap}
//                        (a MemScratch). Counts every allocate/deallocate
//                        through the tap and serves memory from the arena
//                        when one is bound, from operator new otherwise.
//
// What the deterministic counters exclude, by design: the arena's own
// chunk allocations (operator new traffic that depends on reuse history),
// and every RSS gauge (util::read_rss, DepotStats heap fields) — those are
// wall-class observables and only appear in full JSON views.
//
// This header is deliberately link-light: everything the hot subsystems
// (partition, adapt, pmesh) touch is defined inline, so they can allocate
// through a MemScratch without linking plum_obs. Only the JSON emission
// and validation (heap_json, validate_heap_section) live in memory.cpp.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace plum::obs {

class Json;
class MemoryTracker;

/// Allocation counters for one (rank row, phase) cell.
struct MemStats {
  std::int64_t allocs = 0;           ///< allocate() calls
  std::int64_t frees = 0;            ///< deallocate() calls
  std::int64_t bytes_requested = 0;  ///< sum of allocate() sizes
  std::int64_t peak_live_bytes = 0;  ///< max(row live bytes) while in phase

  friend bool operator==(const MemStats&, const MemStats&) = default;
};

/// Rank-bound counting handle. Each tap writes only its own row of the
/// tracker, so capturing per-rank taps (MemoryTracker::scratch(r)) in a
/// superstep lambda is rank-safe; sharing one tap across ranks is the
/// shared-accumulator bug plum-lint flags. A default-constructed tap is a
/// no-op, so call sites need no null guards.
class MemTap {
 public:
  MemTap() = default;
  MemTap(MemoryTracker* t, int row) : t_(t), row_(row) {}

  inline void on_alloc(std::size_t bytes);
  inline void on_free(std::size_t bytes);

 private:
  MemoryTracker* t_ = nullptr;
  int row_ = -1;
};

/// Chunked bump allocator for phase-local scratch. allocate() never frees;
/// reset() rewinds all chunks for reuse and releases only the oversized
/// dedicated blocks. Owned by a MemoryTracker row (or a bench fixture) and
/// reset by the framework at the top of each cycle.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}
  ~Arena() { release_all(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align`. Requests larger than the
  /// chunk size (or over-aligned beyond max_align_t) get a dedicated block
  /// that reset() frees.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    live_bytes_ += static_cast<std::int64_t>(bytes);
    if (live_bytes_ > peak_live_bytes_) peak_live_bytes_ = live_bytes_;
    if (bytes > chunk_bytes_ || align > alignof(std::max_align_t)) {
      return allocate_oversized(bytes, align);
    }
    for (;;) {
      if (cursor_ < chunks_.size()) {
        Chunk& c = chunks_[cursor_];
        const std::size_t aligned = align_up(c.used, align);
        if (aligned + bytes <= c.size) {
          c.used = aligned + bytes;
          return c.data + aligned;
        }
        ++cursor_;
        continue;
      }
      chunks_.push_back(Chunk{
          static_cast<std::byte*>(::operator new(chunk_bytes_)),
          chunk_bytes_, 0});
    }
  }

  /// Rewinds every chunk (memory is reused, not freed) and releases the
  /// oversized dedicated blocks. Live accounting returns to zero; the peak
  /// survives so a cycle-spanning high-water mark stays observable.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    cursor_ = 0;
    free_oversized();
    live_bytes_ = 0;
  }

  [[nodiscard]] std::int64_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::int64_t peak_live_bytes() const {
    return peak_live_bytes_;
  }
  /// Bytes of chunk capacity currently held (reused across resets).
  [[nodiscard]] std::int64_t reserved_bytes() const {
    return static_cast<std::int64_t>(chunks_.size() * chunk_bytes_);
  }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t oversized_count() const {
    return oversized_.size();
  }
  [[nodiscard]] std::size_t chunk_bytes() const { return chunk_bytes_; }

 private:
  struct Chunk {
    std::byte* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct Oversized {
    void* data = nullptr;
    std::size_t align = 0;
  };

  static std::size_t align_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void* allocate_oversized(std::size_t bytes, std::size_t align) {
    const std::size_t a =
        align > alignof(std::max_align_t) ? align : alignof(std::max_align_t);
    void* p = ::operator new(bytes, std::align_val_t(a));
    oversized_.push_back(Oversized{p, a});
    return p;
  }

  void free_oversized() {
    for (const Oversized& o : oversized_) {
      ::operator delete(o.data, std::align_val_t(o.align));
    }
    oversized_.clear();
  }

  void release_all() {
    for (const Chunk& c : chunks_) ::operator delete(c.data);
    chunks_.clear();
    free_oversized();
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;  ///< first chunk with room
  std::vector<Oversized> oversized_;
  std::int64_t live_bytes_ = 0;
  std::int64_t peak_live_bytes_ = 0;
};

/// What a hot-phase call site receives: the arena to allocate from and the
/// tap that attributes the traffic. Default-constructed (both empty) means
/// "plain heap, uncounted" — every converted subsystem accepts a MemScratch
/// defaulting to {} so standalone callers need no tracker.
struct MemScratch {
  Arena* arena = nullptr;
  MemTap tap;
};

/// std-allocator adapter over a MemScratch. With an arena bound, memory is
/// bump-allocated and individual deallocations only update the tap (the
/// arena reclaims on reset); without one it forwards to operator new/
/// delete. Either way every call is counted through the tap.
template <class T>
class TrackingAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  TrackingAllocator() = default;
  explicit TrackingAllocator(MemScratch s) : arena_(s.arena), tap_(s.tap) {}
  template <class U>
  TrackingAllocator(const TrackingAllocator<U>& other)  // NOLINT(runtime/explicit)
      : arena_(other.arena_), tap_(other.tap_) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    tap_.on_alloc(bytes);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) {
    tap_.on_free(n * sizeof(T));
    if (arena_ != nullptr) return;  // reclaimed wholesale by Arena::reset()
    ::operator delete(p);
  }

  /// The bound arena (nullptr = plain heap); public so the cross-type
  /// operator== below can compare sources without befriending every
  /// instantiation.
  [[nodiscard]] Arena* arena_ptr() const { return arena_; }

  /// Allocators are interchangeable iff they draw from the same source
  /// (same arena, or both plain heap). Tap identity is irrelevant for
  /// memory safety — frees are attributed to the freeing row.
  template <class U>
  friend bool operator==(const TrackingAllocator& a,
                         const TrackingAllocator<U>& b) {
    return a.arena_ptr() == b.arena_ptr();
  }
  template <class U>
  friend bool operator!=(const TrackingAllocator& a,
                         const TrackingAllocator<U>& b) {
    return !(a == b);
  }

 private:
  template <class U>
  friend class TrackingAllocator;

  Arena* arena_ = nullptr;
  MemTap tap_;
};

/// The common case: a vector of scratch POD-ish elements.
template <class T>
using TrackedVec = std::vector<T, TrackingAllocator<T>>;

/// Per-rank, per-phase deterministic allocation counters (see the header
/// comment). Rows 0..nranks-1 belong to the ranks (written only by the
/// claiming worker through scratch(r)/taps()); row nranks is the host row
/// (serial framework phases: partition, repartition, local subdivision).
class MemoryTracker {
 public:
  explicit MemoryTracker(Rank nranks,
                         std::size_t arena_chunk_bytes = Arena::kDefaultChunkBytes)
      : nranks_(nranks), rows_(static_cast<std::size_t>(nranks) + 1) {
    arenas_.reserve(rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      arenas_.push_back(std::make_unique<Arena>(arena_chunk_bytes));
    }
  }

  [[nodiscard]] Rank nranks() const { return nranks_; }

  /// Rank r's scratch bundle: its arena and its counting tap. Rank-safe to
  /// capture per rank in superstep lambdas (rank-indexed rows/arenas).
  [[nodiscard]] MemScratch scratch(Rank r) {
    return MemScratch{arenas_[static_cast<std::size_t>(r)].get(),
                      MemTap(this, static_cast<int>(r))};
  }
  /// The host row's scratch bundle, for serial framework-side phases.
  [[nodiscard]] MemScratch host_scratch() {
    return MemScratch{arenas_.back().get(),
                      MemTap(this, static_cast<int>(nranks_))};
  }
  /// One rank-bound tap per rank (no arena), mirroring
  /// FlightRecorder::handles().
  [[nodiscard]] std::vector<MemTap> taps() {
    std::vector<MemTap> out;
    // plum-scale: dist(P) -- one counting tap per rank, the ownership rule
    out.reserve(static_cast<std::size_t>(nranks_));
    for (Rank r = 0; r < nranks_; ++r) out.emplace_back(this, r);
    return out;
  }

  /// Rewinds every row's arena (call at the top of each cycle; this is the
  /// scratch-memory contract's "scratch dies with the cycle" edge).
  void reset_arenas() {
    for (auto& a : arenas_) a->reset();
  }
  [[nodiscard]] Arena& arena(Rank r) {
    return *arenas_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] Arena& host_arena() { return *arenas_.back(); }

  /// Sets the phase id stamped on subsequent counts (interning `name` on
  /// first use). Host-side only, between supersteps — TraceRecorder's
  /// phase scopes drive this once attached via set_memory_tracker();
  /// workers read the current id under the engine's barrier ordering,
  /// exactly like FlightRecorder::set_phase.
  void set_phase(const std::string& name) {
    for (std::size_t i = 0; i < phase_names_.size(); ++i) {
      if (phase_names_[i] == name) {
        current_phase_ = static_cast<std::int32_t>(i);
        return;
      }
    }
    phase_names_.push_back(name);
    current_phase_ = static_cast<std::int32_t>(phase_names_.size() - 1);
  }
  /// Resets the stamp to -1 (counts land in the "unphased" bucket).
  void clear_phase() { current_phase_ = -1; }

  [[nodiscard]] const std::vector<std::string>& phase_names() const {
    return phase_names_;
  }

  /// Stats for one (row, phase) cell; phase -1 reads the unphased bucket.
  [[nodiscard]] MemStats stats(int row, std::int32_t phase) const {
    const RowState& r = rows_[static_cast<std::size_t>(row)];
    if (phase < 0) return r.unphased;
    const auto p = static_cast<std::size_t>(phase);
    return p < r.by_phase.size() ? r.by_phase[p] : MemStats{};
  }
  /// Currently-live tracked bytes for one row (rank r, or nranks for the
  /// host row). Returns to zero when all scratch containers are destroyed
  /// — the steady-state leak check asserts exactly that.
  [[nodiscard]] std::int64_t live_bytes(int row) const {
    return rows_[static_cast<std::size_t>(row)].live_bytes;
  }
  [[nodiscard]] std::int64_t total_live_bytes() const {
    std::int64_t sum = 0;
    for (const RowState& r : rows_) sum += r.live_bytes;
    return sum;
  }

  /// Drops all counters and interned phases (arenas keep their chunks).
  void clear() {
    for (RowState& r : rows_) r = RowState{};
    phase_names_.clear();
    current_phase_ = -1;
  }

  /// The "plum-heap/1" section (see memory.cpp for the exact shape). With
  /// include_wall, an "rss" object (util::read_rss) is appended — that is
  /// the only wall-class field; everything else is deterministic.
  [[nodiscard]] Json heap_json(bool include_wall) const;
  /// heap_json(true) / heap_json(false), mirroring the other recorders.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] Json deterministic_json() const;

 private:
  friend class MemTap;

  struct RowState {
    std::vector<MemStats> by_phase;  ///< indexed by interned phase id
    MemStats unphased;               ///< phase stamp was -1
    std::int64_t live_bytes = 0;
  };

  MemStats& cell(RowState& r) {
    const std::int32_t p = current_phase_;
    if (p < 0) return r.unphased;
    const auto idx = static_cast<std::size_t>(p);
    if (idx >= r.by_phase.size()) r.by_phase.resize(idx + 1);
    return r.by_phase[idx];
  }

  void on_alloc(int row, std::size_t bytes) {
    RowState& r = rows_[static_cast<std::size_t>(row)];
    MemStats& s = cell(r);
    ++s.allocs;
    s.bytes_requested += static_cast<std::int64_t>(bytes);
    r.live_bytes += static_cast<std::int64_t>(bytes);
    if (r.live_bytes > s.peak_live_bytes) s.peak_live_bytes = r.live_bytes;
  }

  void on_free(int row, std::size_t bytes) {
    RowState& r = rows_[static_cast<std::size_t>(row)];
    ++cell(r).frees;
    r.live_bytes -= static_cast<std::int64_t>(bytes);
  }

  Rank nranks_;
  std::int32_t current_phase_ = -1;  ///< host-set, worker-read
  std::vector<std::string> phase_names_;  ///< interned, id = index
  std::vector<RowState> rows_;  ///< ranks 0..P-1 then the host row (dist(P))
  std::vector<std::unique_ptr<Arena>> arenas_;  ///< one per row (dist(P))
};

inline void MemTap::on_alloc(std::size_t bytes) {
  if (t_ != nullptr) t_->on_alloc(row_, bytes);
}
inline void MemTap::on_free(std::size_t bytes) {
  if (t_ != nullptr) t_->on_free(row_, bytes);
}

/// Returns "" when `heap` is a valid plum-heap/1 section, else a
/// description of the first violation (shared by check_bench_json and the
/// unit tests).
[[nodiscard]] std::string validate_heap_section(const Json& heap);

/// {"vm_rss_bytes":..,"vm_hwm_bytes":..} from util::read_rss() —
/// wall-class, full views only.
[[nodiscard]] Json rss_json();

}  // namespace plum::obs
