#pragma once
// MetricsRegistry: a flat, name -> scalar store for run-level results
// (speedups, imbalance factors, modeled seconds, ...) plus named time
// series ("gauges") appended to once per Framework cycle (imbalance, edge
// cut, RemapVolume breakdown) and fixed-bound histograms (per-rank step
// seconds, wait fractions — see obs/critical_path.hpp). Names are kept in
// sorted order (std::map — unordered containers are banned on
// deterministic paths, see plum-lint) so the JSON rendering is stable: the
// same metric values always produce the same bytes, regardless of
// insertion order at the call sites.
//
// Rank-safety: the registry is host-side state. Record into it between
// supersteps (e.g. at the end of a Framework cycle), never from inside a
// superstep lambda — plum-lint's shared-accumulator check flags naive
// `registry.set(...)` / `registry.add_sample(...)` calls there. Per-rank
// quantities must flow through StepCounters / rank-indexed slots and be
// folded into the registry at the barrier.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace plum::obs {

class MetricsRegistry {
 public:
  /// Sets (or overwrites) a metric. Integer and floating flavors are kept
  /// distinct so counts render as JSON integers.
  void set(const std::string& name, double value);
  void set_int(const std::string& name, std::int64_t value);

  /// Appends one sample to the named gauge series (created on first use).
  /// A name is either a scalar, a series, or a histogram, never two of
  /// those at once.
  void add_sample(const std::string& name, double value);
  void add_sample_int(const std::string& name, std::int64_t value);

  /// Appends one sample to a *wall-marked* gauge series: a series fed from
  /// wall-clock or otherwise nondeterministic measurements (e.g. the pipe
  /// transport's depot telemetry — syscall counts, stall ns). Wall series
  /// render in to_json() as {"series":true,"wall":true,"samples":[...]}
  /// objects and are omitted from deterministic_json(), exactly like
  /// wall-clock histograms, so recording them never breaks the
  /// cross-engine/transport byte-identity contract.
  void add_wall_sample(const std::string& name, double value);
  void add_wall_sample_int(const std::string& name, std::int64_t value);

  /// Defines a fixed-bound histogram: `bounds` are ascending bucket upper
  /// bounds; values above the last bound land in an implicit overflow
  /// bucket, so there are bounds.size() + 1 counts. Bounds are fixed at
  /// definition time — quantiles render deterministically as bucket upper
  /// bounds, never interpolated sample values. `wall_clock` marks
  /// histograms fed from wall-clock measurements; deterministic_json()
  /// omits them (wall samples vary across engines/thread counts and would
  /// break the cross-engine byte-identity contract). Redefining an
  /// existing histogram is a no-op (the original bounds stay).
  void define_histogram(const std::string& name, std::vector<double> bounds,
                        bool wall_clock = false);
  /// Adds one sample to a histogram defined with define_histogram().
  void add_hist_sample(const std::string& name, double value);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Value as double (integer metrics widen); asserts on a missing name or
  /// a series name (use series()).
  [[nodiscard]] double get(const std::string& name) const;
  [[nodiscard]] bool is_series(const std::string& name) const;
  /// Samples of a gauge as doubles (integer samples widen); asserts on a
  /// missing or scalar name.
  [[nodiscard]] std::vector<double> series(const std::string& name) const;

  [[nodiscard]] bool is_histogram(const std::string& name) const;
  /// Total samples recorded into a histogram; asserts unless is_histogram.
  [[nodiscard]] std::int64_t hist_count(const std::string& name) const;
  /// Largest sample seen (0 when empty); asserts unless is_histogram.
  [[nodiscard]] double hist_max(const std::string& name) const;
  /// Deterministic quantile: the upper bound of the bucket holding the
  /// ceil(q*n)-th sample; overflow-bucket hits report hist_max(). 0 when
  /// the histogram is empty. Asserts unless is_histogram.
  [[nodiscard]] double hist_quantile(const std::string& name, double q) const;

  /// Copies every entry of `other` into this registry (overwriting scalars,
  /// replacing series and histograms wholesale — samples are never
  /// concatenated or summed across registries). Lets benches lift a
  /// Framework's live gauges into their report run.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  void clear() { values_.clear(); }

  /// {"name": value, ...} with names in sorted order; series render as
  /// arrays of samples in append order (wall series as
  /// {"series":true,"wall":true,"samples":[...]} objects); histograms
  /// render as objects:
  ///   {"histogram":true,"wall":...,"count":n,"max":...,"p50":...,
  ///    "p95":...,"bounds":[...],"counts":[...]}
  [[nodiscard]] Json to_json() const;

  /// Same document minus every wall-clock histogram and wall-marked
  /// series. Byte-identical across engines and thread counts for
  /// deterministic workloads — the view the cross-engine tests compare.
  [[nodiscard]] Json deterministic_json() const;

 private:
  struct Value {
    bool integral = false;
    bool series = false;
    bool histogram = false;
    bool wall = false;  ///< histogram/series holds wall-clock samples
    double d = 0;
    std::int64_t i = 0;
    std::vector<double> samples_d;
    std::vector<std::int64_t> samples_i;
    std::vector<double> bounds;        ///< ascending bucket upper bounds
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
    double hist_max = 0;
    std::int64_t hist_n = 0;
  };

  [[nodiscard]] Json to_json_impl(bool include_wall_clock) const;
  static double quantile_of(const Value& v, double q);

  std::map<std::string, Value> values_;
};

}  // namespace plum::obs
