#pragma once
// MetricsRegistry: a flat, name -> scalar store for run-level results
// (speedups, imbalance factors, modeled seconds, ...) plus named time
// series ("gauges") appended to once per Framework cycle (imbalance, edge
// cut, RemapVolume breakdown). Names are kept in sorted order (std::map —
// unordered containers are banned on deterministic paths, see plum-lint)
// so the JSON rendering is stable: the same metric values always produce
// the same bytes, regardless of insertion order at the call sites.
//
// Rank-safety: the registry is host-side state. Record into it between
// supersteps (e.g. at the end of a Framework cycle), never from inside a
// superstep lambda — plum-lint's shared-accumulator check flags naive
// `registry.set(...)` / `registry.add_sample(...)` calls there. Per-rank
// quantities must flow through StepCounters / rank-indexed slots and be
// folded into the registry at the barrier.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace plum::obs {

class MetricsRegistry {
 public:
  /// Sets (or overwrites) a metric. Integer and floating flavors are kept
  /// distinct so counts render as JSON integers.
  void set(const std::string& name, double value);
  void set_int(const std::string& name, std::int64_t value);

  /// Appends one sample to the named gauge series (created on first use).
  /// A name is either a scalar or a series, never both.
  void add_sample(const std::string& name, double value);
  void add_sample_int(const std::string& name, std::int64_t value);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Value as double (integer metrics widen); asserts on a missing name or
  /// a series name (use series()).
  [[nodiscard]] double get(const std::string& name) const;
  [[nodiscard]] bool is_series(const std::string& name) const;
  /// Samples of a gauge as doubles (integer samples widen); asserts on a
  /// missing or scalar name.
  [[nodiscard]] std::vector<double> series(const std::string& name) const;

  /// Copies every entry of `other` into this registry (overwriting scalars,
  /// replacing series wholesale). Lets benches lift a Framework's live
  /// gauges into their report run.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  void clear() { values_.clear(); }

  /// {"name": value, ...} with names in sorted order; series render as
  /// arrays of samples in append order.
  [[nodiscard]] Json to_json() const;

 private:
  struct Value {
    bool integral = false;
    bool series = false;
    double d = 0;
    std::int64_t i = 0;
    std::vector<double> samples_d;
    std::vector<std::int64_t> samples_i;
  };
  std::map<std::string, Value> values_;
};

}  // namespace plum::obs
