#pragma once
// MetricsRegistry: a flat, name -> scalar store for run-level results
// (speedups, imbalance factors, modeled seconds, ...). Names are kept in
// sorted order (std::map — unordered containers are banned on
// deterministic paths, see plum-lint) so the JSON rendering is stable:
// the same metric values always produce the same bytes, regardless of
// insertion order at the call sites.

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hpp"

namespace plum::obs {

class MetricsRegistry {
 public:
  /// Sets (or overwrites) a metric. Integer and floating flavors are kept
  /// distinct so counts render as JSON integers.
  void set(const std::string& name, double value);
  void set_int(const std::string& name, std::int64_t value);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Value as double (integer metrics widen); asserts on a missing name.
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  void clear() { values_.clear(); }

  /// {"name": value, ...} with names in sorted order.
  [[nodiscard]] Json to_json() const;

 private:
  struct Value {
    bool integral = false;
    double d = 0;
    std::int64_t i = 0;
  };
  std::map<std::string, Value> values_;
};

}  // namespace plum::obs
