#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>

namespace plum::obs {

namespace {

constexpr double kSecondsBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                     1e-2, 0.1,  1.0,  10.0};
constexpr double kFractionBounds[] = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};

std::vector<double> bounds_vec(const double* first, std::size_t n) {
  return std::vector<double>(first, first + n);
}

/// Per-rank values of one superstep under the chosen source. Wall seconds
/// may be absent (no observer attached when recorded); missing ranks read
/// as 0 so the decomposition stays total.
double step_value(const SuperstepRecord& st, std::size_t r,
                  PathSource source) {
  if (source == PathSource::kCounters) {
    return static_cast<double>(st.counters[r].compute_units);
  }
  return r < st.rank_seconds.size() ? st.rank_seconds[r] : 0.0;
}

}  // namespace

const char* path_source_name(PathSource s) {
  return s == PathSource::kCounters ? "counters" : "wall";
}

double RankPath::wait_fraction() const {
  const double total = busy + wait;
  return total > 0 ? wait / total : 0.0;
}

double PhasePath::wait_fraction() const {
  const double total = busy + wait;
  return total > 0 ? wait / total : 0.0;
}

double CriticalPathAnalysis::wait_fraction() const {
  const double total = busy_total + wait_total;
  return total > 0 ? wait_total / total : 0.0;
}

CriticalPathAnalysis analyze_critical_path(const TraceRecorder& rec,
                                           PathSource source) {
  CriticalPathAnalysis out;
  out.source = source;

  std::size_t nranks = 0;
  for (const auto& st : rec.supersteps()) {
    nranks = std::max(nranks, st.counters.size());
  }
  out.ranks.resize(nranks);

  // Phase accumulators keyed by name (sorted), with a per-rank tally of
  // critical steps to pick each phase's worst straggler.
  struct PhaseAcc {
    PhasePath path;
    std::vector<int> critical_by_rank;
  };
  std::map<std::string, PhaseAcc> phases;

  for (const auto& st : rec.supersteps()) {
    StepPath sp;
    sp.step = st.step;
    sp.phase = st.phase;
    const std::size_t p = st.counters.size();
    for (std::size_t r = 0; r < p; ++r) {
      const double own = step_value(st, r, source);
      sp.busy += own;
      if (own > sp.critical) {
        sp.critical = own;
        sp.critical_rank = static_cast<Rank>(r);
      }
    }
    for (std::size_t r = 0; r < p; ++r) {
      const double own = step_value(st, r, source);
      const double wait = sp.critical - own;
      sp.wait += wait;
      out.ranks[r].busy += own;
      out.ranks[r].wait += wait;
    }
    if (p > 0) {
      out.ranks[static_cast<std::size_t>(sp.critical_rank)].steps_critical++;
      const double mean = sp.busy / static_cast<double>(p);
      sp.imbalance = mean > 0 ? sp.critical / mean : 1.0;
    } else {
      sp.imbalance = 1.0;
    }

    PhaseAcc& acc = phases[st.phase];
    acc.path.name = st.phase;
    acc.path.supersteps += 1;
    acc.path.critical += sp.critical;
    acc.path.busy += sp.busy;
    acc.path.wait += sp.wait;
    if (p > 0) {
      if (acc.critical_by_rank.size() < p) acc.critical_by_rank.resize(p, 0);
      acc.critical_by_rank[static_cast<std::size_t>(sp.critical_rank)]++;
    }

    out.critical_total += sp.critical;
    out.busy_total += sp.busy;
    out.wait_total += sp.wait;
    out.steps.push_back(std::move(sp));
  }

  for (auto& [name, acc] : phases) {
    for (std::size_t r = 0; r < acc.critical_by_rank.size(); ++r) {
      if (acc.critical_by_rank[r] > acc.path.worst_rank_steps) {
        acc.path.worst_rank_steps = acc.critical_by_rank[r];
        acc.path.worst_rank = static_cast<Rank>(r);
      }
    }
    out.phases.push_back(std::move(acc.path));
  }
  return out;
}

Json CriticalPathAnalysis::to_json() const {
  Json doc = Json::object();
  doc.set("source", Json::str(path_source_name(source)))
      .set("critical_total", Json::number(critical_total))
      .set("busy_total", Json::number(busy_total))
      .set("wait_total", Json::number(wait_total))
      .set("wait_fraction", Json::number(wait_fraction()));

  Json rank_arr = Json::array();
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const RankPath& rp = ranks[r];
    Json j = Json::object();
    j.set("rank", Json::integer(static_cast<std::int64_t>(r)))
        .set("busy", Json::number(rp.busy))
        .set("wait", Json::number(rp.wait))
        .set("wait_fraction", Json::number(rp.wait_fraction()))
        .set("steps_critical", Json::integer(rp.steps_critical));
    rank_arr.push(std::move(j));
  }
  doc.set("ranks", std::move(rank_arr));

  Json phase_arr = Json::array();
  for (const PhasePath& ph : phases) {
    Json j = Json::object();
    j.set("name", Json::str(ph.name))
        .set("supersteps", Json::integer(ph.supersteps))
        .set("critical", Json::number(ph.critical))
        .set("busy", Json::number(ph.busy))
        .set("wait", Json::number(ph.wait))
        .set("wait_fraction", Json::number(ph.wait_fraction()))
        .set("worst_rank", Json::integer(ph.worst_rank))
        .set("worst_rank_steps", Json::integer(ph.worst_rank_steps));
    phase_arr.push(std::move(j));
  }
  doc.set("phases", std::move(phase_arr));

  Json step_arr = Json::array();
  for (const StepPath& sp : steps) {
    Json j = Json::object();
    j.set("step", Json::integer(sp.step))
        .set("phase", Json::str(sp.phase))
        .set("rank", Json::integer(sp.critical_rank))
        .set("critical", Json::number(sp.critical))
        .set("wait", Json::number(sp.wait))
        .set("imbalance", Json::number(sp.imbalance));
    step_arr.push(std::move(j));
  }
  doc.set("steps", std::move(step_arr));
  return doc;
}

void record_step_histograms(MetricsRegistry& m, const TraceRecorder& rec,
                            std::size_t* cursor) {
  m.define_histogram(kRankStepSecondsHist,
                     bounds_vec(kSecondsBounds, std::size(kSecondsBounds)),
                     /*wall_clock=*/true);
  m.define_histogram(kRankWaitFractionHist,
                     bounds_vec(kFractionBounds, std::size(kFractionBounds)),
                     /*wall_clock=*/false);
  const auto& steps = rec.supersteps();
  for (std::size_t i = *cursor; i < steps.size(); ++i) {
    const SuperstepRecord& st = steps[i];
    const std::size_t p = st.counters.size();
    double crit_units = 0;
    for (std::size_t r = 0; r < p; ++r) {
      crit_units = std::max(
          crit_units, static_cast<double>(st.counters[r].compute_units));
    }
    for (std::size_t r = 0; r < p; ++r) {
      if (r < st.rank_seconds.size()) {
        m.add_hist_sample(kRankStepSecondsHist, st.rank_seconds[r]);
      }
      const double own = static_cast<double>(st.counters[r].compute_units);
      const double frac =
          crit_units > 0 ? (crit_units - own) / crit_units : 0.0;
      m.add_hist_sample(kRankWaitFractionHist, frac);
    }
  }
  *cursor = steps.size();
}

void record_phase_histograms(MetricsRegistry& m, const TraceRecorder& rec,
                             std::size_t* cursor) {
  m.define_histogram(kPhaseSecondsHist,
                     bounds_vec(kSecondsBounds, std::size(kSecondsBounds)),
                     /*wall_clock=*/true);
  const auto& phases = rec.phases();
  while (*cursor < phases.size() && phases[*cursor].closed) {
    m.add_hist_sample(kPhaseSecondsHist, phases[*cursor].wall_s);
    ++(*cursor);
  }
}

}  // namespace plum::obs
