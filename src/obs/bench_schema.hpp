#pragma once
// Schema validator for the machine-readable bench reports
// (BENCH_<name>.json, schema ids "plum-bench/1" and "plum-bench/2").
// Shared by tools/check_bench_json (the CI gate) and tests/test_obs.cpp so
// the two can never drift apart.
//
// Expected shape (v2; v1 is the same minus the three starred extensions):
//   {
//     "schema": "plum-bench/2",
//     "bench":  "<bench name>",
//     "runs": [
//       {
//         "case": "<mesh/workload id>",
//         "P": <int >= 1>,
//         "metrics": { "<name>": <number> | [<number>, ...]*, ... },
//         "phases": [
//           { "name": "<phase>", "wall_s": <number>,
//             "modeled_s": <number>, "supersteps": <int>, ... }
//         ],
//         "comm_matrix"*: { "nranks": <int >= 1>,
//                           "msgs":  [[<int>, ...], ...],   // nranks rows
//                           "bytes": [[<int>, ...], ...] },
//         "gate_audit"*: [
//           { "cycle": <int >= 0>, "evaluated": <bool>, "accepted": <bool>,
//             "metric": "<CostMetric>", "imbalance_old": <number>,
//             "imbalance_new": <number>, "gain_s": <number>,
//             "cost_s": <number>, "predicted_move_bytes": <int >= 0>,
//             "measured_move_bytes": <int >= 0>, "drift": <number> }, ...
//         ]
//       }, ...
//     ]
//   }
// Starred fields are v2-only: array-valued metrics (gauge time series) and
// the optional "comm_matrix" / "gate_audit" run sections. "phases" may be
// an empty array (benches that don't run the BSP loop); every non-starred
// field above is required. v1 documents stay valid forever.

#include <string>

#include "obs/json.hpp"

namespace plum::obs {

/// Returns "" when `doc` is a valid plum-bench/1 or plum-bench/2 report;
/// otherwise a human-readable description of the first violation found.
[[nodiscard]] std::string validate_bench_report(const Json& doc);

}  // namespace plum::obs
