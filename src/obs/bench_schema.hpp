#pragma once
// Schema validator for the machine-readable bench reports
// (BENCH_<name>.json, schema id "plum-bench/1"). Shared by
// tools/check_bench_json (the CI gate) and tests/test_obs.cpp so the two
// can never drift apart.
//
// Expected shape:
//   {
//     "schema": "plum-bench/1",
//     "bench":  "<bench name>",
//     "runs": [
//       {
//         "case": "<mesh/workload id>",
//         "P": <int >= 1>,
//         "metrics": { "<name>": <number>, ... },
//         "phases": [
//           { "name": "<phase>", "wall_s": <number>,
//             "modeled_s": <number>, "supersteps": <int>, ... }
//         ]
//       }, ...
//     ]
//   }
// "phases" may be an empty array (benches that don't run the BSP loop);
// every other field above is required.

#include <string>

#include "obs/json.hpp"

namespace plum::obs {

/// Returns "" when `doc` is a valid plum-bench/1 report; otherwise a
/// human-readable description of the first violation found.
[[nodiscard]] std::string validate_bench_report(const Json& doc);

}  // namespace plum::obs
