#include "obs/bench_schema.hpp"

namespace plum::obs {

namespace {

std::string run_error(std::size_t i, const std::string& what) {
  return "runs[" + std::to_string(i) + "]: " + what;
}

bool is_int_matrix(const Json& m, std::int64_t nranks) {
  if (!m.is_array() || static_cast<std::int64_t>(m.size()) != nranks) {
    return false;
  }
  for (std::size_t r = 0; r < m.size(); ++r) {
    const Json& row = m.at(r);
    if (!row.is_array() || static_cast<std::int64_t>(row.size()) != nranks) {
      return false;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row.at(c).kind() != Json::Kind::kInt || row.at(c).as_int() < 0) {
        return false;
      }
    }
  }
  return true;
}

std::string check_comm_matrix(const Json& cm, std::size_t i) {
  if (!cm.is_object()) return run_error(i, "\"comm_matrix\" is not an object");
  const Json* nranks = cm.find("nranks");
  if (!nranks || nranks->kind() != Json::Kind::kInt || nranks->as_int() < 1) {
    return run_error(i, "comm_matrix field \"nranks\" must be an int >= 1");
  }
  for (const char* field : {"msgs", "bytes"}) {
    const Json* m = cm.find(field);
    if (!m || !is_int_matrix(*m, nranks->as_int())) {
      return run_error(i, "comm_matrix field \"" + std::string(field) +
                              "\" must be an nranks x nranks matrix of "
                              "non-negative ints");
    }
  }
  return "";
}

std::string check_gate_audit(const Json& ga, std::size_t i) {
  if (!ga.is_array()) return run_error(i, "\"gate_audit\" is not an array");
  for (std::size_t k = 0; k < ga.size(); ++k) {
    const Json& rec = ga.at(k);
    const std::string where = "gate_audit[" + std::to_string(k) + "]";
    if (!rec.is_object()) return run_error(i, where + " is not an object");
    const Json* cycle = rec.find("cycle");
    if (!cycle || cycle->kind() != Json::Kind::kInt || cycle->as_int() < 0) {
      return run_error(i, where + " field \"cycle\" must be an int >= 0");
    }
    for (const char* field : {"evaluated", "accepted"}) {
      const Json* v = rec.find(field);
      if (!v || v->kind() != Json::Kind::kBool) {
        return run_error(i, where + " missing bool field \"" +
                                std::string(field) + "\"");
      }
    }
    const Json* metric = rec.find("metric");
    if (!metric || !metric->is_string()) {
      return run_error(i, where + " missing string field \"metric\"");
    }
    for (const char* field :
         {"imbalance_old", "imbalance_new", "gain_s", "cost_s", "drift"}) {
      const Json* v = rec.find(field);
      if (!v || !v->is_number()) {
        return run_error(i, where + " missing numeric field \"" +
                                std::string(field) + "\"");
      }
    }
    for (const char* field : {"predicted_move_bytes", "measured_move_bytes"}) {
      const Json* v = rec.find(field);
      if (!v || v->kind() != Json::Kind::kInt || v->as_int() < 0) {
        return run_error(i, where + " field \"" + std::string(field) +
                                "\" must be an int >= 0");
      }
    }
    // The calibration regressors (moved_elems / moved_sets) are optional so
    // pre-calibration producers keep validating, but must be counts when
    // present.
    for (const char* field : {"moved_elems", "moved_sets"}) {
      if (const Json* v = rec.find(field)) {
        if (v->kind() != Json::Kind::kInt || v->as_int() < 0) {
          return run_error(i, where + " field \"" + std::string(field) +
                                  "\" must be an int >= 0");
        }
      }
    }
  }
  return "";
}

/// v2 per-run calibration section (sim::Calibration::to_json(),
/// schema plum-calibration/1).
std::string check_calibration(const Json& cal, std::size_t i) {
  if (!cal.is_object()) {
    return run_error(i, "\"calibration\" is not an object");
  }
  const Json* schema = cal.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "plum-calibration/1") {
    return run_error(i,
                     "calibration schema must be \"plum-calibration/1\"");
  }
  const Json* enabled = cal.find("enabled");
  if (!enabled || enabled->kind() != Json::Kind::kBool) {
    return run_error(i, "calibration missing bool field \"enabled\"");
  }
  for (const char* field : {"cycles_observed", "remap_samples"}) {
    const Json* v = cal.find(field);
    if (!v || v->kind() != Json::Kind::kInt || v->as_int() < 0) {
      return run_error(i, "calibration field \"" + std::string(field) +
                              "\" must be an int >= 0");
    }
  }
  const Json* drift = cal.find("mean_abs_drift");
  if (!drift || !drift->is_number()) {
    return run_error(i,
                     "calibration missing numeric field \"mean_abs_drift\"");
  }
  const Json* params = cal.find("params");
  if (!params || !params->is_object()) {
    return run_error(i, "calibration missing object field \"params\"");
  }
  for (const char* field : {"t_iter", "t_refine", "t_lat", "t_setup",
                            "bytes_per_element", "bytes_per_set",
                            "gate_margin"}) {
    const Json* v = params->find(field);
    if (!v || !v->is_number()) {
      return run_error(i, "calibration params missing numeric field \"" +
                              std::string(field) + "\"");
    }
  }
  if (const Json* ws = cal.find("rank_weight_scale")) {
    if (!ws->is_array()) {
      return run_error(i, "calibration \"rank_weight_scale\" is not an array");
    }
    for (std::size_t k = 0; k < ws->size(); ++k) {
      if (!ws->at(k).is_number()) {
        return run_error(
            i, "calibration \"rank_weight_scale\" has a non-number entry");
      }
    }
  }
  return "";
}

/// v2 histogram metric objects, as rendered by MetricsRegistry::to_json().
std::string check_histogram(const Json& h, std::size_t i,
                            const std::string& name) {
  const auto bad = [&](const std::string& what) {
    return run_error(i, "histogram metric \"" + name + "\" " + what);
  };
  const Json* marker = h.find("histogram");
  if (!marker || marker->kind() != Json::Kind::kBool || !marker->as_bool()) {
    return bad("must carry \"histogram\": true");
  }
  const Json* wall = h.find("wall");
  if (!wall || wall->kind() != Json::Kind::kBool) {
    return bad("missing bool field \"wall\"");
  }
  const Json* count = h.find("count");
  if (!count || count->kind() != Json::Kind::kInt || count->as_int() < 0) {
    return bad("field \"count\" must be an int >= 0");
  }
  for (const char* field : {"max", "p50", "p95"}) {
    const Json* v = h.find(field);
    if (!v || !v->is_number()) {
      return bad("missing numeric field \"" + std::string(field) + "\"");
    }
  }
  const Json* bounds = h.find("bounds");
  if (!bounds || !bounds->is_array() || bounds->size() == 0) {
    return bad("missing non-empty array field \"bounds\"");
  }
  for (std::size_t k = 0; k < bounds->size(); ++k) {
    if (!bounds->at(k).is_number()) return bad("has a non-number bound");
  }
  const Json* counts = h.find("counts");
  if (!counts || !counts->is_array() ||
      counts->size() != bounds->size() + 1) {
    return bad("field \"counts\" must be an array of bounds+1 buckets");
  }
  for (std::size_t k = 0; k < counts->size(); ++k) {
    if (counts->at(k).kind() != Json::Kind::kInt ||
        counts->at(k).as_int() < 0) {
      return bad("has a bucket count that is not an int >= 0");
    }
  }
  return "";
}

/// v2 wall-marked series objects, as rendered by
/// MetricsRegistry::to_json() for add_wall_sample() gauges.
std::string check_series_object(const Json& s, std::size_t i,
                                const std::string& name) {
  const auto bad = [&](const std::string& what) {
    return run_error(i, "series metric \"" + name + "\" " + what);
  };
  const Json* marker = s.find("series");
  if (!marker || marker->kind() != Json::Kind::kBool || !marker->as_bool()) {
    return bad("must carry \"series\": true");
  }
  const Json* wall = s.find("wall");
  if (!wall || wall->kind() != Json::Kind::kBool) {
    return bad("missing bool field \"wall\"");
  }
  const Json* samples = s.find("samples");
  if (!samples || !samples->is_array()) {
    return bad("missing array field \"samples\"");
  }
  for (std::size_t k = 0; k < samples->size(); ++k) {
    if (!samples->at(k).is_number()) {
      return bad("contains a non-number sample");
    }
  }
  return "";
}

/// v2 per-run critical-path section (obs::CriticalPathAnalysis::to_json()).
std::string check_critical_path(const Json& cp, std::size_t i) {
  if (!cp.is_object()) {
    return run_error(i, "\"critical_path\" is not an object");
  }
  const Json* source = cp.find("source");
  if (!source || !source->is_string()) {
    return run_error(i, "critical_path missing string field \"source\"");
  }
  for (const char* field :
       {"critical_total", "busy_total", "wait_total", "wait_fraction"}) {
    const Json* v = cp.find(field);
    if (!v || !v->is_number()) {
      return run_error(i, "critical_path missing numeric field \"" +
                              std::string(field) + "\"");
    }
  }
  for (const char* field : {"ranks", "phases", "steps"}) {
    const Json* v = cp.find(field);
    if (!v || !v->is_array()) {
      return run_error(i, "critical_path missing array field \"" +
                              std::string(field) + "\"");
    }
  }
  return "";
}

std::string check_run(const Json& run, std::size_t i, int version) {
  if (!run.is_object()) return run_error(i, "not an object");

  const Json* c = run.find("case");
  if (!c || !c->is_string() || c->as_string().empty()) {
    return run_error(i, "missing or empty string field \"case\"");
  }

  const Json* p = run.find("P");
  if (!p || p->kind() != Json::Kind::kInt || p->as_int() < 1) {
    return run_error(i, "field \"P\" must be an integer >= 1");
  }

  const Json* metrics = run.find("metrics");
  if (!metrics || !metrics->is_object()) {
    return run_error(i, "missing object field \"metrics\"");
  }
  for (const auto& [name, value] : metrics->items()) {
    if (value.is_number()) continue;
    // v2 additionally allows gauge series: arrays of numbers.
    if (version >= 2 && value.is_array()) {
      bool ok = true;
      for (std::size_t k = 0; k < value.size(); ++k) {
        if (!value.at(k).is_number()) {
          ok = false;
          break;
        }
      }
      if (ok) continue;
      return run_error(i, "metric \"" + name +
                              "\" series contains a non-number sample");
    }
    if (version < 2 && value.is_array()) {
      return run_error(i, "metric \"" + name +
                              "\" is a series, which requires schema "
                              "\"plum-bench/2\"");
    }
    // ... and fixed-bound histogram objects / wall-marked series objects.
    if (version >= 2 && value.is_object()) {
      const std::string err = value.find("series") != nullptr
                                  ? check_series_object(value, i, name)
                                  : check_histogram(value, i, name);
      if (!err.empty()) return err;
      continue;
    }
    if (version < 2 && value.is_object()) {
      return run_error(i, "metric \"" + name +
                              "\" is a histogram, which requires schema "
                              "\"plum-bench/2\"");
    }
    return run_error(i, "metric \"" + name + "\" is not a number");
  }

  const Json* phases = run.find("phases");
  if (!phases || !phases->is_array()) {
    return run_error(i, "missing array field \"phases\"");
  }
  for (std::size_t k = 0; k < phases->size(); ++k) {
    const Json& ph = phases->at(k);
    const std::string where = "phases[" + std::to_string(k) + "]";
    if (!ph.is_object()) return run_error(i, where + " is not an object");
    const Json* name = ph.find("name");
    if (!name || !name->is_string() || name->as_string().empty()) {
      return run_error(i, where + " missing string field \"name\"");
    }
    for (const char* field : {"wall_s", "modeled_s"}) {
      const Json* v = ph.find(field);
      if (!v || !v->is_number()) {
        return run_error(i, where + " missing numeric field \"" +
                                std::string(field) + "\"");
      }
    }
    const Json* ss = ph.find("supersteps");
    if (!ss || ss->kind() != Json::Kind::kInt || ss->as_int() < 0) {
      return run_error(i,
                       where + " field \"supersteps\" must be an int >= 0");
    }
  }

  if (version >= 2) {
    if (const Json* cm = run.find("comm_matrix")) {
      const std::string err = check_comm_matrix(*cm, i);
      if (!err.empty()) return err;
    }
    if (const Json* ga = run.find("gate_audit")) {
      const std::string err = check_gate_audit(*ga, i);
      if (!err.empty()) return err;
    }
    if (const Json* cp = run.find("critical_path")) {
      const std::string err = check_critical_path(*cp, i);
      if (!err.empty()) return err;
    }
    if (const Json* cal = run.find("calibration")) {
      const std::string err = check_calibration(*cal, i);
      if (!err.empty()) return err;
    }
  } else {
    for (const char* field :
         {"comm_matrix", "gate_audit", "critical_path", "calibration"}) {
      if (run.find(field)) {
        return run_error(i, "field \"" + std::string(field) +
                                "\" requires schema plum-bench/2");
      }
    }
  }
  return "";
}

}  // namespace

std::string validate_bench_report(const Json& doc) {
  if (!doc.is_object()) return "top-level value is not an object";

  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string()) {
    return "missing string field \"schema\"";
  }
  int version = 0;
  if (schema->as_string() == "plum-bench/1") {
    version = 1;
  } else if (schema->as_string() == "plum-bench/2") {
    version = 2;
  } else {
    return "unknown schema \"" + schema->as_string() +
           "\" (expected \"plum-bench/1\" or \"plum-bench/2\")";
  }

  const Json* bench = doc.find("bench");
  if (!bench || !bench->is_string() || bench->as_string().empty()) {
    return "missing or empty string field \"bench\"";
  }

  const Json* runs = doc.find("runs");
  if (!runs || !runs->is_array()) return "missing array field \"runs\"";
  if (runs->size() == 0) return "\"runs\" is empty";

  for (std::size_t i = 0; i < runs->size(); ++i) {
    const std::string err = check_run(runs->at(i), i, version);
    if (!err.empty()) return err;
  }
  return "";
}

}  // namespace plum::obs
