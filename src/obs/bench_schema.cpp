#include "obs/bench_schema.hpp"

namespace plum::obs {

namespace {

std::string run_error(std::size_t i, const std::string& what) {
  return "runs[" + std::to_string(i) + "]: " + what;
}

std::string check_run(const Json& run, std::size_t i) {
  if (!run.is_object()) return run_error(i, "not an object");

  const Json* c = run.find("case");
  if (!c || !c->is_string() || c->as_string().empty()) {
    return run_error(i, "missing or empty string field \"case\"");
  }

  const Json* p = run.find("P");
  if (!p || p->kind() != Json::Kind::kInt || p->as_int() < 1) {
    return run_error(i, "field \"P\" must be an integer >= 1");
  }

  const Json* metrics = run.find("metrics");
  if (!metrics || !metrics->is_object()) {
    return run_error(i, "missing object field \"metrics\"");
  }
  for (const auto& [name, value] : metrics->items()) {
    if (!value.is_number()) {
      return run_error(i, "metric \"" + name + "\" is not a number");
    }
  }

  const Json* phases = run.find("phases");
  if (!phases || !phases->is_array()) {
    return run_error(i, "missing array field \"phases\"");
  }
  for (std::size_t k = 0; k < phases->size(); ++k) {
    const Json& ph = phases->at(k);
    const std::string where = "phases[" + std::to_string(k) + "]";
    if (!ph.is_object()) return run_error(i, where + " is not an object");
    const Json* name = ph.find("name");
    if (!name || !name->is_string() || name->as_string().empty()) {
      return run_error(i, where + " missing string field \"name\"");
    }
    for (const char* field : {"wall_s", "modeled_s"}) {
      const Json* v = ph.find(field);
      if (!v || !v->is_number()) {
        return run_error(i, where + " missing numeric field \"" +
                                std::string(field) + "\"");
      }
    }
    const Json* ss = ph.find("supersteps");
    if (!ss || ss->kind() != Json::Kind::kInt || ss->as_int() < 0) {
      return run_error(i,
                       where + " field \"supersteps\" must be an int >= 0");
    }
  }
  return "";
}

}  // namespace

std::string validate_bench_report(const Json& doc) {
  if (!doc.is_object()) return "top-level value is not an object";

  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string()) {
    return "missing string field \"schema\"";
  }
  if (schema->as_string() != "plum-bench/1") {
    return "unknown schema \"" + schema->as_string() +
           "\" (expected \"plum-bench/1\")";
  }

  const Json* bench = doc.find("bench");
  if (!bench || !bench->is_string() || bench->as_string().empty()) {
    return "missing or empty string field \"bench\"";
  }

  const Json* runs = doc.find("runs");
  if (!runs || !runs->is_array()) return "missing array field \"runs\"";
  if (runs->size() == 0) return "\"runs\" is empty";

  for (std::size_t i = 0; i < runs->size(); ++i) {
    const std::string err = check_run(runs->at(i), i);
    if (!err.empty()) return err;
  }
  return "";
}

}  // namespace plum::obs
