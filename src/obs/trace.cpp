#include "obs/trace.hpp"

#include "obs/critical_path.hpp"
#include "obs/memory.hpp"
#include "obs/scope.hpp"
#include "runtime/collectives.hpp"
#include "util/assert.hpp"

namespace plum::obs {

std::string tag_class_name(int tag) {
  // Keep in sync with the tag conventions of the sending subsystems:
  // pmesh/migrate.cpp + pmesh/finalize.cpp use tag 0 for bulk payloads,
  // pmesh/parallel_adapt.cpp uses 1..3, solver/parallel_solver.cpp 11/12
  // and 111 (metric reply).
  if (tag == rt::detail::kCollectiveTag) return "collective";
  if (tag == 0) return "bulk";
  if (tag >= 1 && tag <= 3) return "adapt";
  if (tag == 11 || tag == 12 || tag == 111) return "solver";
  return "tag" + std::to_string(tag);
}

Json comm_matrix_json(const rt::CommMatrix& m) {
  Json j = Json::object();
  j.set("nranks", Json::integer(m.nranks));
  Json msgs = Json::array();
  Json bytes = Json::array();
  for (Rank from = 0; from < m.nranks; ++from) {
    Json mrow = Json::array();
    Json brow = Json::array();
    for (Rank to = 0; to < m.nranks; ++to) {
      mrow.push(Json::integer(m.msgs_at(from, to)));
      brow.push(Json::integer(m.bytes_at(from, to)));
    }
    msgs.push(std::move(mrow));
    bytes.push(std::move(brow));
  }
  j.set("msgs", std::move(msgs)).set("bytes", std::move(bytes));
  return j;
}

void TraceRecorder::on_superstep(int step,
                                 const std::vector<rt::StepCounters>& counters,
                                 const std::vector<double>& rank_seconds,
                                 double wall_seconds) {
  SuperstepRecord rec;
  rec.step = step;
  if (!open_.empty()) rec.phase = phases_[open_.back()].name;
  rec.counters = counters;
  rec.rank_seconds = rank_seconds;
  rec.wall_s = wall_seconds;
  rec.t_start_s = epoch_.seconds() - wall_seconds;
  supersteps_.push_back(std::move(rec));

  // Charge the step's totals to every open phase (nested phases each see
  // the supersteps that ran while they were open).
  std::int64_t compute = 0, msgs = 0, bytes = 0;
  for (const auto& c : counters) {
    compute += c.compute_units;
    msgs += c.msgs_sent;
    bytes += c.bytes_sent;
  }
  for (const std::size_t idx : open_) {
    PhaseRecord& ph = phases_[idx];
    ph.supersteps += 1;
    ph.compute_units += compute;
    ph.msgs_sent += msgs;
    ph.bytes_sent += bytes;
  }

  // Fold the per-rank comm cells into the run-wide sender-by-receiver
  // matrix and the per-tag-class totals.
  comm_.accumulate(counters);
  for (const auto& c : counters) {
    for (const auto& cell : c.sends) {
      CommTotals& t = by_class_[tag_class_name(cell.tag)];
      t.msgs += cell.msgs;
      t.bytes += cell.bytes;
    }
  }
}

std::size_t TraceRecorder::begin_phase(const std::string& name) {
  PhaseRecord ph;
  ph.name = name;
  ph.depth = static_cast<int>(open_.size());
  ph.t_start_s = epoch_.seconds();
  const std::size_t idx = phases_.size();
  phases_.push_back(std::move(ph));
  open_.push_back(idx);
  if (scope_ != nullptr) scope_->set_phase(name);
  if (mem_ != nullptr) mem_->set_phase(name);
  return idx;
}

void TraceRecorder::end_phase(std::size_t idx) {
  PLUM_ASSERT_MSG(!open_.empty() && open_.back() == idx,
                  "phases must close innermost-first");
  PhaseRecord& ph = phases_[idx];
  ph.wall_s = epoch_.seconds() - ph.t_start_s;
  ph.closed = true;
  open_.pop_back();
  if (scope_ != nullptr) {
    if (open_.empty()) {
      scope_->clear_phase();
    } else {
      scope_->set_phase(phases_[open_.back()].name);
    }
  }
  if (mem_ != nullptr) {
    if (open_.empty()) {
      mem_->clear_phase();
    } else {
      mem_->set_phase(phases_[open_.back()].name);
    }
  }
}

void TraceRecorder::set_modeled_seconds(std::size_t idx, double seconds) {
  PLUM_ASSERT(idx < phases_.size());
  phases_[idx].modeled_s = seconds;
}

void TraceRecorder::clear() {
  phases_.clear();
  open_.clear();
  supersteps_.clear();
  comm_ = rt::CommMatrix{};
  by_class_.clear();
  gates_.clear();
  calibration_ = Json{};
  has_calibration_ = false;
  calibration_deterministic_ = false;
  depot_ = Json{};
  has_depot_ = false;
  epoch_.start();
}

Json TraceRecorder::to_json_impl(bool include_wall) const {
  Json doc = Json::object();
  Json phases = Json::array();
  for (const auto& ph : phases_) {
    Json p = Json::object();
    p.set("name", Json::str(ph.name))
        .set("depth", Json::integer(ph.depth))
        .set("supersteps", Json::integer(ph.supersteps))
        .set("compute_units", Json::integer(ph.compute_units))
        .set("msgs_sent", Json::integer(ph.msgs_sent))
        .set("bytes_sent", Json::integer(ph.bytes_sent))
        .set("modeled_s", Json::number(ph.modeled_s));
    if (include_wall) {
      p.set("t_start_s", Json::number(ph.t_start_s))
          .set("wall_s", Json::number(ph.wall_s));
    }
    phases.push(std::move(p));
  }
  doc.set("phases", std::move(phases));

  Json steps = Json::array();
  for (const auto& st : supersteps_) {
    Json s = Json::object();
    s.set("step", Json::integer(st.step)).set("phase", Json::str(st.phase));
    Json ranks = Json::array();
    for (std::size_t r = 0; r < st.counters.size(); ++r) {
      Json c = Json::object();
      c.set("compute_units", Json::integer(st.counters[r].compute_units))
          .set("msgs_sent", Json::integer(st.counters[r].msgs_sent))
          .set("bytes_sent", Json::integer(st.counters[r].bytes_sent));
      if (include_wall && r < st.rank_seconds.size()) {
        c.set("seconds", Json::number(st.rank_seconds[r]));
      }
      ranks.push(std::move(c));
    }
    s.set("ranks", std::move(ranks));
    if (include_wall) {
      s.set("t_start_s", Json::number(st.t_start_s))
          .set("wall_s", Json::number(st.wall_s));
    }
    steps.push(std::move(s));
  }
  doc.set("supersteps", std::move(steps));

  // Everything below is counted or modeled, never wall-clock, so the three
  // sections appear in both serializations and stay inside the
  // deterministic_json() byte-identity contract.
  doc.set("comm_matrix", comm_matrix_json(comm_));
  // Depot telemetry sits next to the comm matrix but is wall-clock sourced
  // (syscall counts, stall ns), so it stays out of the deterministic view.
  if (has_depot_ && include_wall) doc.set("depot", depot_);
  // plum-heap/1: the per-rank, per-phase allocation counters are
  // deterministic (rank-bound taps, claiming-worker writes) and live in
  // both views; the tracker appends its RSS gauge only when include_wall.
  if (mem_ != nullptr) doc.set("heap", mem_->heap_json(include_wall));
  Json by_class = Json::object();
  for (const auto& [cls, t] : by_class_) {
    Json entry = Json::object();
    entry.set("msgs", Json::integer(t.msgs))
        .set("bytes", Json::integer(t.bytes));
    by_class.set(cls, std::move(entry));
  }
  doc.set("comm_by_class", std::move(by_class));
  doc.set("gate_audit", gate_audit_json(gates_));
  // Present only when a framework attached a calibration document. A
  // deterministic (replayed) calibration belongs to both views; a live
  // wall-clock one is excluded from deterministic_json() like every other
  // wall-sourced field.
  if (has_calibration_ && (include_wall || calibration_deterministic_)) {
    doc.set("calibration", calibration_);
  }

  // plum-path: the counter-sourced decomposition is derived from the same
  // deterministic inputs as the superstep records above, so it lives in
  // both serializations; the wall-clock decomposition (measured per-rank
  // step seconds) only appears in the full view.
  doc.set("critical_path",
          analyze_critical_path(*this, PathSource::kCounters).to_json());
  if (include_wall) {
    doc.set("critical_path_wall",
            analyze_critical_path(*this, PathSource::kWallClock).to_json());
  }
  return doc;
}

Json TraceRecorder::to_json() const { return to_json_impl(true); }

std::string TraceRecorder::deterministic_json() const {
  return to_json_impl(false).dump();
}

}  // namespace plum::obs
