#pragma once
// Gate-audit records: one structured entry per repartition-gate evaluation
// (Fig. 1 "gate" phase). Each record keeps the gate's decision inputs —
// predicted imbalance, modeled gain and redistribution cost under the chosen
// sim::CostMetric — and, after an accepted remap has actually migrated data,
// the measured bytes moved. The predicted-vs-measured ratio ("drift") is the
// paper-facing health metric: a cost model whose drift wanders from 0 is
// mispricing remaps and will gate wrongly.
//
// Records are collected by obs::TraceRecorder (add_gate_record) so they ride
// along in both to_json() and deterministic_json(); every field below is
// modeled or counted, never wall-clock, so cross-engine byte-identity holds.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace plum::obs {

struct GateRecord {
  int cycle = 0;            ///< Framework cycle index (0-based)
  bool evaluated = false;   ///< false: imbalance below trigger, gate skipped
  bool accepted = false;    ///< CostModel::accept_remap outcome
  std::string metric;       ///< chosen CostMetric ("TotalV" / "MaxV")
  double imbalance_old = 0;  ///< predicted-weight imbalance before remap
  double imbalance_new = 0;  ///< predicted-weight imbalance after remap
  double gain_s = 0;         ///< modeled computational gain (seconds)
  double cost_s = 0;         ///< modeled redistribution cost (seconds)
  /// The C (elements) and N (message sets) the cost model priced, under the
  /// record's `metric` — the regressors sim::Calibration fits the byte
  /// constants against. 0 on records whose gate never evaluated.
  std::int64_t moved_elems = 0;
  std::int64_t moved_sets = 0;
  std::int64_t predicted_move_bytes = 0;  ///< CostModel::predicted_move_bytes
  std::int64_t measured_move_bytes = 0;   ///< bytes the migration really sent
  /// (measured - predicted) / predicted; 0 when nothing was predicted or the
  /// remap was rejected (nothing measured).
  double drift = 0;

  friend bool operator==(const GateRecord&, const GateRecord&) = default;
};

/// Relative prediction error; 0 when predicted == 0. The zero-predicted
/// case is deliberate policy, not a gap: a gate that priced nothing has no
/// meaningful relative error (measured/0 would be non-finite and would
/// poison every JSON serialization and drift mean downstream), so both
/// (0, 0) and (0, N > 0) report drift 0 — pinned by test_obs.
[[nodiscard]] double gate_drift(std::int64_t predicted_bytes,
                                std::int64_t measured_bytes);

/// One record as an insertion-ordered JSON object (field order is part of
/// the deterministic_json() byte contract).
[[nodiscard]] Json gate_record_json(const GateRecord& rec);

/// {"gate_audit": [...]} array element list for a whole run.
[[nodiscard]] Json gate_audit_json(const std::vector<GateRecord>& records);

}  // namespace plum::obs
