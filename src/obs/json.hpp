#pragma once
// Minimal JSON document model for plum-trace: deterministic serialization
// (insertion-ordered objects, shortest-round-trip number formatting via
// std::to_chars) plus a strict recursive-descent parser for the validators.
//
// Deliberately tiny and dependency-free — the observability layer must
// build everywhere the engine builds (the same constraint as plum-lint).
// Determinism matters more than speed here: two runs that produced
// bit-identical metrics must serialize to byte-identical documents, which
// is what the cross-engine trace tests assert.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace plum::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  // -- construction ----------------------------------------------------------
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json integer(std::int64_t v);
  static Json number(double v);
  static Json str(std::string s);
  static Json array();
  static Json object();

  // -- building --------------------------------------------------------------
  /// Object: sets `key` (insertion order preserved; an existing key is
  /// overwritten in place). Returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Array: appends an element. Returns *this for chaining.
  Json& push(Json value);

  // -- inspection ------------------------------------------------------------
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  /// Array element (must be an array and in range).
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// Object entries in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items() const;

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // -- serialization ---------------------------------------------------------
  /// Compact when indent < 0, pretty-printed otherwise. Deterministic:
  /// object order is insertion order and numbers use std::to_chars.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parse (UTF-8 in, no trailing garbage). Returns false and fills
  /// `error` (with a byte offset) on malformed input.
  static bool parse(const std::string& text, Json* out, std::string* error);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Escapes `s` into a quoted JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace plum::obs
