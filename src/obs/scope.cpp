#include "obs/scope.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "runtime/frame.hpp"
#include "util/assert.hpp"

namespace plum::obs {

// --- ScopeRecorder ------------------------------------------------------------

void ScopeRecorder::record_event(int step, std::int64_t ticks,
                                 std::int64_t wall_ns) {
  if (rec_ != nullptr) rec_->record_into(rank_, step, ticks, wall_ns);
}

// --- FlightRecorder -----------------------------------------------------------

FlightRecorder::FlightRecorder(Rank nranks, int capacity)
    : nranks_(nranks), capacity_(capacity) {
  PLUM_ASSERT(nranks >= 1);
  PLUM_ASSERT_MSG(capacity >= 1, "flight recorder ring needs capacity >= 1");
  // plum-scale: dist(P) -- one fixed-capacity event ring per simulated rank
  rings_.resize(static_cast<std::size_t>(nranks));
  for (auto& ring : rings_) {
    ring.slots.resize(static_cast<std::size_t>(capacity));
  }
}

void FlightRecorder::record_into(Rank rank, int step, std::int64_t ticks,
                                 std::int64_t wall_ns) {
  PLUM_ASSERT(rank >= 0 && rank < nranks_);
  RankRing& ring = rings_[static_cast<std::size_t>(rank)];
  ScopeEvent& slot =
      ring.slots[ring.written % static_cast<std::uint64_t>(capacity_)];
  slot.step = static_cast<std::int32_t>(step);
  slot.phase = current_phase_;
  slot.rank = rank;
  slot.ticks = ticks;
  slot.wall_ns = wall_ns;
  ++ring.written;
}

void FlightRecorder::record_rank_step(int step, Rank rank,
                                      const rt::StepCounters& counters,
                                      std::int64_t wall_ns) {
  record_into(rank, step, counters.compute_units, wall_ns);
}

std::vector<ScopeRecorder> FlightRecorder::handles() {
  std::vector<ScopeRecorder> out;
  out.reserve(static_cast<std::size_t>(nranks_));
  for (Rank r = 0; r < nranks_; ++r) out.emplace_back(this, r);
  return out;
}

void FlightRecorder::set_phase(const std::string& name) {
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) {
      current_phase_ = static_cast<std::int32_t>(i);
      return;
    }
  }
  current_phase_ = static_cast<std::int32_t>(phase_names_.size());
  phase_names_.push_back(name);
}

void FlightRecorder::clear_phase() { current_phase_ = -1; }

std::uint64_t FlightRecorder::events_recorded(Rank r) const {
  PLUM_ASSERT(r >= 0 && r < nranks_);
  return rings_[static_cast<std::size_t>(r)].written;
}

std::vector<ScopeEvent> FlightRecorder::last_events(Rank r) const {
  PLUM_ASSERT(r >= 0 && r < nranks_);
  const RankRing& ring = rings_[static_cast<std::size_t>(r)];
  const auto cap = static_cast<std::uint64_t>(capacity_);
  const std::uint64_t n = ring.written < cap ? ring.written : cap;
  std::vector<ScopeEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  // Oldest surviving event first: when the ring wrapped, that is the slot
  // the next write would overwrite.
  const std::uint64_t first = ring.written - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring.slots[(first + i) % cap]);
  }
  return out;
}

void FlightRecorder::clear() {
  for (auto& ring : rings_) {
    ring.written = 0;
  }
}

Json FlightRecorder::to_json_impl(bool include_wall) const {
  Json doc = Json::object();
  doc.set("capacity", Json::integer(capacity_))
      .set("nranks", Json::integer(nranks_));
  Json phases = Json::array();
  for (const auto& name : phase_names_) phases.push(Json::str(name));
  doc.set("phases", std::move(phases));
  Json ranks = Json::array();
  for (Rank r = 0; r < nranks_; ++r) {
    Json rec = Json::object();
    rec.set("rank", Json::integer(r))
        .set("written", Json::integer(static_cast<std::int64_t>(
                            events_recorded(r))));
    Json events = Json::array();
    for (const ScopeEvent& e : last_events(r)) {
      Json ev = Json::object();
      ev.set("step", Json::integer(e.step))
          .set("phase", Json::integer(e.phase))
          .set("ticks", Json::integer(e.ticks));
      if (include_wall) ev.set("wall_ns", Json::integer(e.wall_ns));
      events.push(std::move(ev));
    }
    rec.set("events", std::move(events));
    ranks.push(std::move(rec));
  }
  doc.set("ranks", std::move(ranks));
  return doc;
}

Json FlightRecorder::to_json() const { return to_json_impl(true); }

Json FlightRecorder::deterministic_json() const { return to_json_impl(false); }

// --- ScopeStreamWriter --------------------------------------------------------

ScopeStreamWriter::ScopeStreamWriter(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    std::fprintf(stderr, "plum-scope: cannot open stream file %s\n",
                 path.c_str());
  }
}

ScopeStreamWriter::~ScopeStreamWriter() {
  if (fd_ >= 0) ::close(fd_);
}

bool ScopeStreamWriter::append(const Json& record) {
  if (fd_ < 0) return false;
  std::string line = record.dump();
  line.push_back('\n');
  // rt::write_all retries EINTR and short writes; with O_APPEND the line
  // lands atomically enough for a single writer that a tailing plum-top
  // never parses a torn record.
  return rt::write_all(fd_, reinterpret_cast<const std::byte*>(line.data()),
                       line.size());
}

// --- depot telemetry rendering ------------------------------------------------

Json depot_stats_json(const std::vector<rt::DepotStats>& stats) {
  Json arr = Json::array();
  for (std::size_t g = 0; g < stats.size(); ++g) {
    const rt::DepotStats& s = stats[g];
    Json d = Json::object();
    d.set("group", Json::integer(static_cast<std::int64_t>(g)))
        .set("buffered_bytes", Json::integer(s.buffered_bytes))
        .set("frames_in", Json::integer(s.frames_in))
        .set("frames_out", Json::integer(s.frames_out))
        .set("read_calls", Json::integer(s.read_calls))
        .set("write_calls", Json::integer(s.write_calls))
        .set("peak_buffer_bytes", Json::integer(s.peak_buffer_bytes))
        .set("stall_ns", Json::integer(s.stall_ns))
        .set("vm_rss_bytes", Json::integer(s.vm_rss_bytes))
        .set("vm_hwm_bytes", Json::integer(s.vm_hwm_bytes));
    arr.push(std::move(d));
  }
  return arr;
}

// --- postmortem ---------------------------------------------------------------

namespace {

PostmortemConfig& pm_config() {
  static PostmortemConfig cfg;
  return cfg;
}

void pm_hook(const plum::detail::AbortInfo& info) {
  const PostmortemConfig& cfg = pm_config();
  const Json doc =
      postmortem_json(cfg, info.expr, info.file, info.line, info.msg);
  const char* dir = std::getenv("PLUM_BENCH_JSON_DIR");
  std::string path = (dir && dir[0]) ? std::string(dir) : std::string(".");
  path += "/POSTMORTEM_" + cfg.name + ".json";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "plum-scope: cannot write postmortem %s\n",
                 path.c_str());
    return;
  }
  std::string text = doc.dump(2);
  text.push_back('\n');
  (void)rt::write_all(fd, reinterpret_cast<const std::byte*>(text.data()),
                      text.size());
  ::close(fd);
  std::fprintf(stderr, "plum-scope: postmortem written to %s\n", path.c_str());
}

}  // namespace

void install_postmortem(PostmortemConfig cfg) {
  pm_config() = std::move(cfg);
  plum::detail::set_abort_hook(&pm_hook);
}

void uninstall_postmortem() {
  pm_config() = PostmortemConfig{};
  plum::detail::set_abort_hook(nullptr);
}

Json postmortem_json(const PostmortemConfig& cfg, const char* expr,
                     const char* file, int line, const char* msg) {
  Json doc = Json::object();
  doc.set("schema", Json::str("plum-postmortem/1"))
      .set("name", Json::str(cfg.name));
  Json reason = Json::object();
  reason.set("expr", Json::str(expr ? expr : ""))
      .set("file", Json::str(file ? file : ""))
      .set("line", Json::integer(line))
      .set("msg", Json::str(msg ? msg : ""));
  doc.set("reason", std::move(reason));
  // Full (wall-included) ring view: a postmortem is forensic output, never
  // part of any deterministic comparison.
  if (cfg.recorder != nullptr) doc.set("scope", cfg.recorder->to_json());
  if (cfg.transport != nullptr) {
    doc.set("depot", depot_stats_json(cfg.transport->depot_stats()));
  }
  const auto& notes = plum::detail::crash_notes();
  const auto stderr_it = notes.find("child_stderr");
  doc.set("child_stderr",
          Json::str(stderr_it != notes.end() ? stderr_it->second : ""));
  Json notes_json = Json::object();
  for (const auto& [key, text] : notes) {
    if (key == "child_stderr") continue;  // surfaced top-level above
    notes_json.set(key, Json::str(text));
  }
  doc.set("notes", std::move(notes_json));
  return doc;
}

// --- validators ---------------------------------------------------------------

std::string validate_postmortem(const Json& doc) {
  if (!doc.is_object()) return "top-level value is not an object";
  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "plum-postmortem/1") {
    return "schema must be \"plum-postmortem/1\"";
  }
  const Json* name = doc.find("name");
  if (!name || !name->is_string() || name->as_string().empty()) {
    return "missing or empty string field \"name\"";
  }
  const Json* reason = doc.find("reason");
  if (!reason || !reason->is_object()) {
    return "missing object field \"reason\"";
  }
  for (const char* field : {"expr", "file", "msg"}) {
    const Json* v = reason->find(field);
    if (!v || !v->is_string()) {
      return "reason missing string field \"" + std::string(field) + "\"";
    }
  }
  const Json* line = reason->find("line");
  if (!line || line->kind() != Json::Kind::kInt || line->as_int() < 0) {
    return "reason field \"line\" must be an int >= 0";
  }
  const Json* child_stderr = doc.find("child_stderr");
  if (!child_stderr || !child_stderr->is_string()) {
    return "missing string field \"child_stderr\"";
  }
  if (const Json* scope = doc.find("scope")) {
    if (!scope->is_object()) return "\"scope\" is not an object";
    for (const char* field : {"capacity", "nranks"}) {
      const Json* v = scope->find(field);
      if (!v || v->kind() != Json::Kind::kInt || v->as_int() < 1) {
        return "scope field \"" + std::string(field) +
               "\" must be an int >= 1";
      }
    }
    const Json* ranks = scope->find("ranks");
    if (!ranks || !ranks->is_array()) {
      return "scope missing array field \"ranks\"";
    }
    for (std::size_t r = 0; r < ranks->size(); ++r) {
      const Json& rec = ranks->at(r);
      const std::string where = "scope ranks[" + std::to_string(r) + "]";
      if (!rec.is_object()) return where + " is not an object";
      const Json* events = rec.find("events");
      if (!events || !events->is_array()) {
        return where + " missing array field \"events\"";
      }
      for (std::size_t k = 0; k < events->size(); ++k) {
        const Json& ev = events->at(k);
        if (!ev.is_object()) return where + " has a non-object event";
        for (const char* field : {"step", "phase", "ticks"}) {
          const Json* v = ev.find(field);
          if (!v || v->kind() != Json::Kind::kInt) {
            return where + " event missing int field \"" +
                   std::string(field) + "\"";
          }
        }
      }
    }
  }
  if (const Json* depot = doc.find("depot")) {
    if (!depot->is_array()) return "\"depot\" is not an array";
    for (std::size_t g = 0; g < depot->size(); ++g) {
      if (!depot->at(g).is_object()) {
        return "depot[" + std::to_string(g) + "] is not an object";
      }
    }
  }
  return "";
}

std::string validate_scope_record(const Json& doc) {
  if (!doc.is_object()) return "record is not an object";
  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "plum-scope/1") {
    return "schema must be \"plum-scope/1\"";
  }
  const Json* name = doc.find("name");
  if (!name || !name->is_string() || name->as_string().empty()) {
    return "missing or empty string field \"name\"";
  }
  for (const char* field : {"cycle", "supersteps", "elements"}) {
    const Json* v = doc.find(field);
    if (!v || v->kind() != Json::Kind::kInt || v->as_int() < 0) {
      return "field \"" + std::string(field) + "\" must be an int >= 0";
    }
  }
  const Json* imbalance = doc.find("imbalance");
  if (!imbalance || !imbalance->is_number()) {
    return "missing numeric field \"imbalance\"";
  }
  const Json* wall = doc.find("wall_s");
  if (!wall || !wall->is_number()) {
    return "missing numeric field \"wall_s\"";
  }
  const Json* gate = doc.find("gate");
  if (!gate || !gate->is_object()) return "missing object field \"gate\"";
  for (const char* field : {"evaluated", "accepted"}) {
    const Json* v = gate->find(field);
    if (!v || v->kind() != Json::Kind::kBool) {
      return "gate missing bool field \"" + std::string(field) + "\"";
    }
  }
  const Json* ranks = doc.find("ranks");
  if (!ranks || !ranks->is_array()) return "missing array field \"ranks\"";
  for (std::size_t r = 0; r < ranks->size(); ++r) {
    const Json& rec = ranks->at(r);
    const std::string where = "ranks[" + std::to_string(r) + "]";
    if (!rec.is_object()) return where + " is not an object";
    const Json* rank = rec.find("rank");
    if (!rank || rank->kind() != Json::Kind::kInt || rank->as_int() < 0) {
      return where + " field \"rank\" must be an int >= 0";
    }
    for (const char* field : {"busy", "wait"}) {
      const Json* v = rec.find(field);
      if (!v || v->kind() != Json::Kind::kInt || v->as_int() < 0) {
        return where + " field \"" + std::string(field) +
               "\" must be an int >= 0";
      }
    }
  }
  if (const Json* depot = doc.find("depot")) {
    if (!depot->is_array()) return "\"depot\" is not an array";
    for (std::size_t g = 0; g < depot->size(); ++g) {
      if (!depot->at(g).is_object()) {
        return "depot[" + std::to_string(g) + "] is not an object";
      }
    }
  }
  return "";
}

TailStatus latest_stream_record(std::string_view text, Json* out) {
  if (text.empty()) return TailStatus::kNone;
  bool saw_bytes = false;
  std::size_t end = text.size();
  // A tail without a trailing newline is a writer caught mid-append; skip
  // it (it will complete, or be superseded, by the next poll) but remember
  // that bytes exist so an all-torn stream reports kPartial, not kNone.
  if (text.back() != '\n') {
    const std::size_t nl = text.rfind('\n');
    saw_bytes = true;
    if (nl == std::string_view::npos) return TailStatus::kPartial;
    end = nl + 1;
  }
  while (end > 0) {
    std::size_t start = 0;
    if (end >= 2) {
      const std::size_t nl = text.rfind('\n', end - 2);
      if (nl != std::string_view::npos) start = nl + 1;
    }
    const std::string_view line = text.substr(start, end - 1 - start);
    if (!line.empty()) {
      saw_bytes = true;
      Json doc;
      std::string err;
      if (Json::parse(std::string(line), &doc, &err) &&
          validate_scope_record(doc).empty()) {
        *out = std::move(doc);
        return TailStatus::kRecord;
      }
      // Truncated or malformed line (crash mid-write, or a torn read that
      // happened to end on '\n'): fall through to older lines.
    }
    end = start;
  }
  return saw_bytes ? TailStatus::kPartial : TailStatus::kNone;
}

}  // namespace plum::obs
