#pragma once
// plum-scope: the always-on flight recorder, live run streaming, and crash
// postmortems.
//
// Three surfaces, all fed from the same cheap primitives:
//
//   FlightRecorder    — a fixed-capacity per-rank ring of POD ScopeEvents,
//                       attached to an engine as a rt::RankScopeSink. The
//                       claiming worker writes rank r's slot inside the
//                       superstep (rank-safe by construction: rings are
//                       rank-indexed, the rank_seconds_ pattern), oldest
//                       events are overwritten, and recording costs a few
//                       ns per event — cheap enough to leave on always.
//                       Wall-clock fields are excluded from
//                       deterministic_json() exactly like the registry's
//                       wall histograms, so the Engine/ParallelEngine
//                       byte-identity contract survives the recorder.
//   ScopeStreamWriter — an EINTR/short-write-safe NDJSON appender; the
//                       frameworks emit one "plum-scope/1" record per
//                       cycle through it (per-rank busy/wait, gate
//                       verdict, imbalance, depot gauges), and
//                       tools/plum-top tails the file to render a live
//                       per-rank table of a run in progress.
//   install_postmortem — hooks plum::detail::assert_fail so a failed
//                       PLUM_ASSERT (including the pipe transport's
//                       rank-death path) flushes the last-N ring events
//                       per rank, the final depot telemetry, and the dead
//                       child's captured stderr to POSTMORTEM_<name>.json
//                       (schema "plum-postmortem/1") before aborting.
//
// Rank-safety: superstep lambdas must record through the rank-bound
// ScopeRecorder handle (handles()[r].record_event(...)), never by calling
// into a shared FlightRecorder — plum-lint's shared-accumulator check
// flags naive record_event() calls on captured objects.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/json.hpp"
#include "runtime/engine.hpp"
#include "util/types.hpp"

namespace plum::obs {

/// One flight-recorder entry: what a rank was doing in one superstep.
/// Plain POD so a ring slot write is a few stores, never an allocation.
struct ScopeEvent {
  std::int32_t step = 0;    ///< Outbox::step() index
  std::int32_t phase = -1;  ///< interned phase id (-1 = outside any phase)
  std::int32_t rank = 0;
  std::int64_t ticks = 0;    ///< compute units charged during the step
  std::int64_t wall_ns = 0;  ///< step-fn wall time; deterministic views drop it
};
static_assert(std::is_trivially_copyable_v<ScopeEvent>,
              "ScopeEvent must stay a POD ring slot");

class FlightRecorder;

/// Rank-bound recording handle for superstep lambdas. Each handle writes
/// only its own rank's ring, so capturing `handles` (one per rank, from
/// FlightRecorder::handles()) and calling `handles[r].record_event(...)`
/// is rank-safe; capturing a single handle and calling it from every rank
/// is the shared-accumulator bug plum-lint flags.
class ScopeRecorder {
 public:
  ScopeRecorder() = default;
  ScopeRecorder(FlightRecorder* rec, Rank rank) : rec_(rec), rank_(rank) {}

  /// Records one event into the bound rank's ring (overwrite-oldest).
  void record_event(int step, std::int64_t ticks, std::int64_t wall_ns = 0);

 private:
  FlightRecorder* rec_ = nullptr;
  Rank rank_ = 0;
};

/// Fixed-capacity per-rank binary flight recorder (see the header comment).
class FlightRecorder final : public rt::RankScopeSink {
 public:
  static constexpr int kDefaultCapacity = 256;

  explicit FlightRecorder(Rank nranks, int capacity = kDefaultCapacity);

  // rt::RankScopeSink — called by the claiming worker inside supersteps,
  // immediately after rank `rank`'s step function returns.
  void record_rank_step(int step, Rank rank, const rt::StepCounters& counters,
                        std::int64_t wall_ns) override;

  /// One rank-bound handle per rank, for superstep lambdas that want to
  /// record extra events (rank-indexed, hence rank-safe to capture).
  [[nodiscard]] std::vector<ScopeRecorder> handles();

  /// Sets the phase id stamped on subsequently recorded events (interning
  /// `name` on first use). Host-side only: call between supersteps (the
  /// TraceRecorder phase scopes do this automatically once attached via
  /// TraceRecorder::set_flight_recorder); workers read the current id
  /// inside supersteps under the engine's barrier ordering.
  void set_phase(const std::string& name);
  /// Resets the stamp to -1 (outside any phase).
  void clear_phase();

  [[nodiscard]] Rank nranks() const { return nranks_; }
  [[nodiscard]] int capacity() const { return capacity_; }
  /// Total events ever recorded for rank r (>= capacity means the ring
  /// wrapped and oldest events were overwritten).
  [[nodiscard]] std::uint64_t events_recorded(Rank r) const;
  /// Rank r's surviving events, oldest first (at most capacity()).
  [[nodiscard]] std::vector<ScopeEvent> last_events(Rank r) const;
  [[nodiscard]] const std::vector<std::string>& phase_names() const {
    return phase_names_;
  }

  /// Drops all recorded events (capacity and interned phases survive).
  void clear();

  /// {"capacity":..,"nranks":..,"phases":[..],"ranks":[{"rank":r,
  ///  "written":n,"events":[{"step":..,"phase":..,"ticks":..,
  ///  "wall_ns":..},..]},..]} — events oldest first.
  [[nodiscard]] Json to_json() const;
  /// Same minus every wall_ns field. Byte-identical across engines and
  /// thread counts for deterministic workloads (the cross-engine tests
  /// compare this view's dump()).
  [[nodiscard]] Json deterministic_json() const;

 private:
  friend class ScopeRecorder;

  struct RankRing {
    std::vector<ScopeEvent> slots;  ///< capacity-sized, overwrite-oldest
    std::uint64_t written = 0;
  };

  void record_into(Rank rank, int step, std::int64_t ticks,
                   std::int64_t wall_ns);
  [[nodiscard]] Json to_json_impl(bool include_wall) const;

  Rank nranks_;
  int capacity_;
  std::int32_t current_phase_ = -1;  ///< host-set, worker-read (see set_phase)
  std::vector<std::string> phase_names_;  ///< interned, id = index
  std::vector<RankRing> rings_;  ///< one ring per rank (dist(P) at the resize)
};

/// EINTR/short-write-safe NDJSON appender for "plum-scope/1" streams. One
/// append() writes one complete line, so a tailing reader (tools/plum-top)
/// never sees a torn record from a single writer.
class ScopeStreamWriter {
 public:
  /// Opens `path` for appending (created if missing). ok() reports failure.
  explicit ScopeStreamWriter(const std::string& path);
  ~ScopeStreamWriter();
  ScopeStreamWriter(const ScopeStreamWriter&) = delete;
  ScopeStreamWriter& operator=(const ScopeStreamWriter&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  /// Appends record.dump() + '\n'. Returns false on write failure.
  bool append(const Json& record);

 private:
  int fd_ = -1;
};

/// What the postmortem hook flushes when an assertion aborts the run.
/// All pointers are borrowed and must outlive the installation; nulls are
/// allowed (the corresponding section is omitted).
struct PostmortemConfig {
  std::string name;  ///< POSTMORTEM_<name>.json
  const FlightRecorder* recorder = nullptr;
  const rt::Transport* transport = nullptr;  ///< depot telemetry source
};

/// Installs the process-wide abort hook (plum::detail::set_abort_hook)
/// that writes POSTMORTEM_<name>.json — into $PLUM_BENCH_JSON_DIR, or the
/// working directory — before abort(). A second install replaces the
/// first (one postmortem owner per process; DistFramework installs on
/// construction and uninstalls on destruction).
void install_postmortem(PostmortemConfig cfg);
/// Clears the hook if this config still owns it.
void uninstall_postmortem();

/// The "plum-postmortem/1" document the hook writes (exposed so tests can
/// validate the builder without aborting). `child_stderr` and the other
/// crash notes are read from plum::detail::crash_notes().
[[nodiscard]] Json postmortem_json(const PostmortemConfig& cfg,
                                   const char* expr, const char* file,
                                   int line, const char* msg);

/// [{"group":g,"buffered_bytes":..,"frames_in":..,"frames_out":..,
///   "read_calls":..,"write_calls":..,"peak_buffer_bytes":..,
///   "stall_ns":..},..] — one object per rank group, the JSON rendering of
/// rt::Transport::depot_stats() shared by the postmortem documents and
/// the scope stream records.
[[nodiscard]] Json depot_stats_json(const std::vector<rt::DepotStats>& stats);

/// Returns "" when `doc` is a valid plum-postmortem/1 document, else a
/// description of the first violation (the check_bench_json gate and the
/// unit tests share this validator).
[[nodiscard]] std::string validate_postmortem(const Json& doc);

/// Returns "" when `line` parses as one valid plum-scope/1 NDJSON record,
/// else a description of the first violation.
[[nodiscard]] std::string validate_scope_record(const Json& doc);

/// Outcome of scanning the tail of a live plum-scope/1 NDJSON stream.
enum class TailStatus {
  kNone,     ///< stream holds no record bytes at all
  kRecord,   ///< *out filled with the latest valid record
  kPartial,  ///< only a torn/partial trailing record so far — skip and retry
};

/// Finds the latest valid record in `text` (the raw bytes of a stream
/// file): newline-terminated lines are scanned backwards and the first one
/// that parses and validates wins. A trailing chunk without a newline — a
/// writer caught mid-append — or a line truncated by a crash yields
/// kPartial instead of an error, so tailing readers (tools/plum-top) skip
/// the torn record and retry on the next poll.
[[nodiscard]] TailStatus latest_stream_record(std::string_view text,
                                              Json* out);

}  // namespace plum::obs
