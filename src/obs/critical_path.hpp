#pragma once
// plum-path: critical-path and straggler attribution over a recorded trace.
//
// The engine's barrier is where load imbalance turns into lost time: every
// superstep finishes when its slowest ("critical") rank finishes, and every
// other rank idles for the difference. analyze_critical_path() folds a
// TraceRecorder's per-superstep records into that decomposition:
//
//   per superstep : critical rank, per-rank busy vs. wait
//                   (wait = critical rank's value minus own),
//                   imbalance factor (critical / mean)
//   per rank      : total busy, total wait, #steps it was critical
//   per phase     : straggler attribution — which Fig. 1 phase accumulated
//                   the wait, and which rank was most often its straggler
//
// Two sources feed the same decomposition:
//   PathSource::kWallClock — SuperstepRecord::rank_seconds, the measured
//     per-rank step-function wall time. Honest but machine- and
//     scheduling-dependent; serialized only by TraceRecorder::to_json().
//   PathSource::kCounters  — StepCounters::compute_units, the deterministic
//     work proxy every rank charges via Outbox::charge(). Byte-identical
//     across Engine/ParallelEngine and thread counts, so it is folded into
//     TraceRecorder::deterministic_json() and sits inside the cross-engine
//     byte-identity contract (asserted in test_parallel_engine.cpp).
//
// record_step_histograms()/record_phase_histograms() sample the same
// decomposition into MetricsRegistry fixed-bound histograms once per
// Framework/DistFramework cycle (per-rank step seconds are wall-clock and
// stay out of the registry's deterministic view; wait fractions come from
// the counter source and stay inside it).

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace plum::obs {

/// Which per-rank quantity drives the decomposition. Values are wall
/// seconds under kWallClock and compute units under kCounters.
enum class PathSource { kCounters, kWallClock };

[[nodiscard]] const char* path_source_name(PathSource s);

/// One superstep's slice of the critical path.
struct StepPath {
  int step = 0;
  std::string phase;       ///< innermost open phase ("" outside any phase)
  Rank critical_rank = 0;  ///< argmax of the per-rank value; ties -> lowest
  double critical = 0;     ///< the critical rank's value
  double busy = 0;         ///< sum of per-rank values
  double wait = 0;         ///< sum over ranks of (critical - own)
  double imbalance = 0;    ///< critical / mean (1.0 when busy == 0)
};

/// One rank's totals across every superstep.
struct RankPath {
  double busy = 0;
  double wait = 0;
  int steps_critical = 0;  ///< supersteps where this rank was critical

  /// wait / (busy + wait); 0 when the rank never ran.
  [[nodiscard]] double wait_fraction() const;
};

/// Straggler attribution for one phase name (supersteps grouped by the
/// innermost phase that was open when they ran).
struct PhasePath {
  std::string name;
  int supersteps = 0;
  double critical = 0;  ///< sum of per-step critical values (the path length)
  double busy = 0;
  double wait = 0;
  Rank worst_rank = kNoRank;  ///< most often critical; ties -> lowest rank
  int worst_rank_steps = 0;   ///< supersteps worst_rank was critical in

  [[nodiscard]] double wait_fraction() const;
};

struct CriticalPathAnalysis {
  PathSource source = PathSource::kCounters;
  std::vector<StepPath> steps;    ///< one per superstep, step order
  std::vector<RankPath> ranks;    ///< rank order
  std::vector<PhasePath> phases;  ///< sorted by phase name
  double critical_total = 0;  ///< sum of per-step critical values
  double busy_total = 0;
  double wait_total = 0;

  [[nodiscard]] double wait_fraction() const;

  /// {"source":..., totals, "ranks":[...], "phases":[...], "steps":[...]}.
  /// Under kCounters the field names carry no wall-clock vocabulary, so the
  /// document can be embedded in deterministic serializations.
  [[nodiscard]] Json to_json() const;
};

[[nodiscard]] CriticalPathAnalysis analyze_critical_path(
    const TraceRecorder& rec, PathSource source);

// --- per-cycle histogram recording -----------------------------------------

/// Histogram names recorded by the frameworks (see obs/metrics.hpp for the
/// fixed-bound histogram semantics).
inline constexpr const char* kRankStepSecondsHist = "rank_step_seconds";
inline constexpr const char* kRankWaitFractionHist = "rank_wait_fraction";
inline constexpr const char* kPhaseSecondsHist = "phase_wall_seconds";

/// Samples every superstep at index >= *cursor into two histograms and
/// advances *cursor: per-rank step wall seconds (kRankStepSecondsHist,
/// wall-clock — excluded from MetricsRegistry::deterministic_json()) and
/// per-rank wait fractions from the counter decomposition
/// (kRankWaitFractionHist, deterministic). Call once per cycle from the
/// coordinating thread, never from inside a superstep lambda.
void record_step_histograms(MetricsRegistry& m, const TraceRecorder& rec,
                            std::size_t* cursor);

/// Samples the wall seconds of every *closed* phase at index >= *cursor
/// into kPhaseSecondsHist (wall-clock) and advances *cursor past the
/// leading run of closed phases. A still-open phase stops the scan; it is
/// picked up on the next call, after it closes.
void record_phase_histograms(MetricsRegistry& m, const TraceRecorder& rec,
                             std::size_t* cursor);

}  // namespace plum::obs
