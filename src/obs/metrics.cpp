#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace plum::obs {

void MetricsRegistry::set(const std::string& name, double value) {
  Value v;
  v.d = value;
  values_[name] = std::move(v);
}

void MetricsRegistry::set_int(const std::string& name, std::int64_t value) {
  Value v;
  v.integral = true;
  v.i = value;
  values_[name] = std::move(v);
}

void MetricsRegistry::add_sample(const std::string& name, double value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    Value v;
    v.series = true;
    v.samples_d.push_back(value);
    values_.emplace(name, std::move(v));
    return;
  }
  PLUM_ASSERT_MSG(it->second.series, "metric name already used as a scalar");
  PLUM_ASSERT_MSG(!it->second.integral, "gauge mixes int and double samples");
  it->second.samples_d.push_back(value);
}

void MetricsRegistry::add_sample_int(const std::string& name,
                                     std::int64_t value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    Value v;
    v.series = true;
    v.integral = true;
    v.samples_i.push_back(value);
    values_.emplace(name, std::move(v));
    return;
  }
  PLUM_ASSERT_MSG(it->second.series, "metric name already used as a scalar");
  PLUM_ASSERT_MSG(it->second.integral, "gauge mixes int and double samples");
  it->second.samples_i.push_back(value);
}

void MetricsRegistry::add_wall_sample(const std::string& name, double value) {
  add_sample(name, value);
  values_[name].wall = true;
}

void MetricsRegistry::add_wall_sample_int(const std::string& name,
                                          std::int64_t value) {
  add_sample_int(name, value);
  values_[name].wall = true;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> bounds,
                                       bool wall_clock) {
  const auto it = values_.find(name);
  if (it != values_.end()) {
    PLUM_ASSERT_MSG(it->second.histogram,
                    "metric name already used as a scalar or series");
    return;  // keep the original bounds and samples
  }
  PLUM_ASSERT_MSG(!bounds.empty(), "histogram needs at least one bound");
  PLUM_ASSERT_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                  "histogram bounds must ascend");
  Value v;
  v.histogram = true;
  v.wall = wall_clock;
  v.counts.assign(bounds.size() + 1, 0);
  v.bounds = std::move(bounds);
  values_.emplace(name, std::move(v));
}

void MetricsRegistry::add_hist_sample(const std::string& name, double value) {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end() && it->second.histogram,
                  "add_hist_sample needs a define_histogram() name");
  Value& v = it->second;
  std::size_t b = 0;
  while (b < v.bounds.size() && value > v.bounds[b]) ++b;
  v.counts[b]++;
  v.hist_n++;
  v.hist_max = std::max(v.hist_max, value);
}

bool MetricsRegistry::is_histogram(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second.histogram;
}

std::int64_t MetricsRegistry::hist_count(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end() && it->second.histogram,
                  "unknown histogram");
  return it->second.hist_n;
}

double MetricsRegistry::hist_max(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end() && it->second.histogram,
                  "unknown histogram");
  return it->second.hist_max;
}

double MetricsRegistry::quantile_of(const Value& v, double q) {
  if (v.hist_n == 0) return 0;
  std::int64_t target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(v.hist_n)));
  target = std::max<std::int64_t>(target, 1);
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < v.bounds.size(); ++b) {
    cum += v.counts[b];
    if (cum >= target) return v.bounds[b];
  }
  return v.hist_max;  // landed in the overflow bucket
}

double MetricsRegistry::hist_quantile(const std::string& name,
                                      double q) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end() && it->second.histogram,
                  "unknown histogram");
  return quantile_of(it->second, q);
}

bool MetricsRegistry::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double MetricsRegistry::get(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end(), "unknown metric");
  PLUM_ASSERT_MSG(!it->second.series, "metric is a series; use series()");
  PLUM_ASSERT_MSG(!it->second.histogram,
                  "metric is a histogram; use hist_quantile()/hist_max()");
  return it->second.integral ? static_cast<double>(it->second.i) : it->second.d;
}

bool MetricsRegistry::is_series(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second.series;
}

std::vector<double> MetricsRegistry::series(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end(), "unknown metric");
  PLUM_ASSERT_MSG(it->second.series, "metric is a scalar; use get()");
  if (!it->second.integral) return it->second.samples_d;
  std::vector<double> out;
  out.reserve(it->second.samples_i.size());
  for (const auto v : it->second.samples_i) {
    out.push_back(static_cast<double>(v));
  }
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.values_) values_[name] = v;
}

Json MetricsRegistry::to_json_impl(bool include_wall_clock) const {
  Json out = Json::object();
  for (const auto& [name, v] : values_) {
    if (v.histogram) {
      if (v.wall && !include_wall_clock) continue;
      Json h = Json::object();
      h.set("histogram", Json::boolean(true))
          .set("wall", Json::boolean(v.wall))
          .set("count", Json::integer(v.hist_n))
          .set("max", Json::number(v.hist_max))
          .set("p50", Json::number(quantile_of(v, 0.50)))
          .set("p95", Json::number(quantile_of(v, 0.95)));
      Json bounds = Json::array();
      for (const auto b : v.bounds) bounds.push(Json::number(b));
      Json counts = Json::array();
      for (const auto c : v.counts) counts.push(Json::integer(c));
      h.set("bounds", std::move(bounds)).set("counts", std::move(counts));
      out.set(name, std::move(h));
      continue;
    }
    if (!v.series) {
      out.set(name, v.integral ? Json::integer(v.i) : Json::number(v.d));
      continue;
    }
    if (v.wall && !include_wall_clock) continue;
    Json arr = Json::array();
    if (v.integral) {
      for (const auto s : v.samples_i) arr.push(Json::integer(s));
    } else {
      for (const auto s : v.samples_d) arr.push(Json::number(s));
    }
    if (v.wall) {
      // Wall series render as tagged objects so consumers (plum-diff,
      // plum-report) can tell report-only gauges from gated ones.
      Json obj = Json::object();
      obj.set("series", Json::boolean(true))
          .set("wall", Json::boolean(true))
          .set("samples", std::move(arr));
      out.set(name, std::move(obj));
      continue;
    }
    out.set(name, std::move(arr));
  }
  return out;
}

Json MetricsRegistry::to_json() const { return to_json_impl(true); }

Json MetricsRegistry::deterministic_json() const {
  return to_json_impl(false);
}

}  // namespace plum::obs
