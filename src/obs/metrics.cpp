#include "obs/metrics.hpp"

#include "util/assert.hpp"

namespace plum::obs {

void MetricsRegistry::set(const std::string& name, double value) {
  values_[name] = Value{false, value, 0};
}

void MetricsRegistry::set_int(const std::string& name, std::int64_t value) {
  values_[name] = Value{true, 0, value};
}

bool MetricsRegistry::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double MetricsRegistry::get(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end(), "unknown metric");
  return it->second.integral ? static_cast<double>(it->second.i) : it->second.d;
}

Json MetricsRegistry::to_json() const {
  Json out = Json::object();
  for (const auto& [name, v] : values_) {
    out.set(name, v.integral ? Json::integer(v.i) : Json::number(v.d));
  }
  return out;
}

}  // namespace plum::obs
