#include "obs/metrics.hpp"

#include "util/assert.hpp"

namespace plum::obs {

void MetricsRegistry::set(const std::string& name, double value) {
  Value v;
  v.d = value;
  values_[name] = std::move(v);
}

void MetricsRegistry::set_int(const std::string& name, std::int64_t value) {
  Value v;
  v.integral = true;
  v.i = value;
  values_[name] = std::move(v);
}

void MetricsRegistry::add_sample(const std::string& name, double value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    Value v;
    v.series = true;
    v.samples_d.push_back(value);
    values_.emplace(name, std::move(v));
    return;
  }
  PLUM_ASSERT_MSG(it->second.series, "metric name already used as a scalar");
  PLUM_ASSERT_MSG(!it->second.integral, "gauge mixes int and double samples");
  it->second.samples_d.push_back(value);
}

void MetricsRegistry::add_sample_int(const std::string& name,
                                     std::int64_t value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    Value v;
    v.series = true;
    v.integral = true;
    v.samples_i.push_back(value);
    values_.emplace(name, std::move(v));
    return;
  }
  PLUM_ASSERT_MSG(it->second.series, "metric name already used as a scalar");
  PLUM_ASSERT_MSG(it->second.integral, "gauge mixes int and double samples");
  it->second.samples_i.push_back(value);
}

bool MetricsRegistry::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double MetricsRegistry::get(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end(), "unknown metric");
  PLUM_ASSERT_MSG(!it->second.series, "metric is a series; use series()");
  return it->second.integral ? static_cast<double>(it->second.i) : it->second.d;
}

bool MetricsRegistry::is_series(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second.series;
}

std::vector<double> MetricsRegistry::series(const std::string& name) const {
  const auto it = values_.find(name);
  PLUM_ASSERT_MSG(it != values_.end(), "unknown metric");
  PLUM_ASSERT_MSG(it->second.series, "metric is a scalar; use get()");
  if (!it->second.integral) return it->second.samples_d;
  std::vector<double> out;
  out.reserve(it->second.samples_i.size());
  for (const auto v : it->second.samples_i) {
    out.push_back(static_cast<double>(v));
  }
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.values_) values_[name] = v;
}

Json MetricsRegistry::to_json() const {
  Json out = Json::object();
  for (const auto& [name, v] : values_) {
    if (!v.series) {
      out.set(name, v.integral ? Json::integer(v.i) : Json::number(v.d));
      continue;
    }
    Json arr = Json::array();
    if (v.integral) {
      for (const auto s : v.samples_i) arr.push(Json::integer(s));
    } else {
      for (const auto s : v.samples_d) arr.push(Json::number(s));
    }
    out.set(name, std::move(arr));
  }
  return out;
}

}  // namespace plum::obs
