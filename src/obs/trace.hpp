#pragma once
// plum-trace: phase/superstep observability for PLUM runs.
//
// A TraceRecorder attaches to an engine as a rt::SuperstepObserver and
// collects one SuperstepRecord per superstep (per-rank StepCounters and
// wall times, merged in rank order at the barrier — the engine calls the
// observer from the coordinating thread only, so recording needs no
// locking and stays rank-safe under the parallel engine). On top of that,
// the Fig. 1 phases (solve, mark, repartition, reassign, gate, remap,
// subdivide) open named PhaseScopes; each phase captures its wall seconds,
// the modeled SP2 seconds from sim::CostModel, and the superstep/compute/
// message deltas that occurred while it was open.
//
// Two serializations:
//   to_json()             — everything, including wall-clock fields and the
//                           wall-sourced critical-path decomposition
//                           ("critical_path_wall", see obs/critical_path.hpp);
//                           feeds the Chrome trace exporter and human
//                           inspection.
//   deterministic_json()  — wall-clock fields excluded; the critical-path
//                           section ("critical_path") is sourced from the
//                           per-rank compute-unit counters. Two runs with
//                           bit-identical ledgers serialize byte-identically,
//                           which is what the Engine-vs-ParallelEngine trace
//                           tests assert.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/gate_audit.hpp"
#include "obs/json.hpp"
#include "runtime/engine.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace plum::obs {

class FlightRecorder;
class MemoryTracker;

/// Aggregate (msgs, bytes) pair for one tag or tag class.
struct CommTotals {
  std::int64_t msgs = 0;
  std::int64_t bytes = 0;

  friend bool operator==(const CommTotals&, const CommTotals&) = default;
};

/// Maps a message tag to its subsystem class for reporting. The values
/// mirror the senders' conventions: rt::detail::kCollectiveTag for
/// collectives, tag 0 for bulk element/ghost payloads (pmesh migrate +
/// finalize), 1-3 for the parallel adaption handshakes, 11/12/111 for the
/// solver halo exchange. Unknown tags render as "tag<N>" rather than
/// asserting, so traces from future subsystems stay loadable.
[[nodiscard]] std::string tag_class_name(int tag);

/// {"nranks": P, "msgs": [[...],...], "bytes": [[...],...]} — row-major
/// sender-by-receiver matrices as arrays of row arrays.
[[nodiscard]] Json comm_matrix_json(const rt::CommMatrix& m);

/// One completed (or still open) named phase. `depth` is the nesting level
/// at open time (0 = outermost), so "repartition" nested inside "gate"
/// renders as a child span.
struct PhaseRecord {
  std::string name;
  int depth = 0;
  double t_start_s = 0;   ///< wall offset from the recorder's epoch
  double wall_s = 0;      ///< filled when the phase closes
  double modeled_s = 0;   ///< sim::CostModel seconds (0 when not modeled)
  // Deltas accumulated while the phase was open:
  int supersteps = 0;
  std::int64_t compute_units = 0;
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;
  bool closed = false;
};

/// One engine superstep as seen at the barrier.
struct SuperstepRecord {
  int step = 0;            ///< Outbox::step() index within the run
  std::string phase;       ///< innermost open phase ("" outside any phase)
  std::vector<rt::StepCounters> counters;  ///< per rank, rank order
  std::vector<double> rank_seconds;        ///< per rank step-fn wall time
  double t_start_s = 0;    ///< wall offset from the recorder's epoch
  double wall_s = 0;       ///< barrier-to-barrier superstep time
};

class TraceRecorder final : public rt::SuperstepObserver {
 public:
  TraceRecorder() = default;

  // rt::SuperstepObserver — called by the engine at the superstep barrier.
  void on_superstep(int step, const std::vector<rt::StepCounters>& counters,
                    const std::vector<double>& rank_seconds,
                    double wall_seconds) override;

  /// Opens a phase; returns its index (pass to end_phase). Phases nest.
  std::size_t begin_phase(const std::string& name);
  /// Closes the innermost open phase (which must be `idx`).
  void end_phase(std::size_t idx);
  /// Attaches modeled SP2 seconds to a phase (open or closed).
  void set_modeled_seconds(std::size_t idx, double seconds);

  /// Appends one repartition-gate record (see obs/gate_audit.hpp). Called
  /// by Framework/DistFramework from the coordinating thread between
  /// supersteps, never from inside a superstep function.
  void add_gate_record(const GateRecord& rec) { gates_.push_back(rec); }

  /// Attaches (or detaches, with nullptr) a plum-scope flight recorder:
  /// begin_phase/end_phase then keep the recorder's current phase stamp in
  /// sync with the innermost open phase, so ring events carry the Fig. 1
  /// phase they happened in. The recorder is borrowed, not owned.
  void set_flight_recorder(FlightRecorder* rec) { scope_ = rec; }

  /// Attaches (or detaches, with nullptr) a plum-mem tracker: phase opens
  /// and closes keep its phase stamp in sync exactly like the flight
  /// recorder's, and both serializations embed its "plum-heap/1" section
  /// (deterministic counters in both views, the RSS gauge only in
  /// to_json()). The tracker is borrowed, not owned.
  void set_memory_tracker(MemoryTracker* mem) { mem_ = mem; }

  /// Attaches (replacing any previous) the latest depot-process telemetry
  /// (obs::depot_stats_json). Wall-clock sourced, so it renders in
  /// to_json() only — next to the comm matrix — and never in
  /// deterministic_json().
  void set_depot_telemetry(Json doc) {
    depot_ = std::move(doc);
    has_depot_ = true;
  }

  /// Attaches (replacing any previous) the current calibration document
  /// (sim::Calibration::to_json). `deterministic` marks it as derived from
  /// replayed/counted inputs only, in which case it also appears in
  /// deterministic_json(); a live wall-clock calibration shows up in
  /// to_json() alone, keeping the byte-identity contract intact.
  void set_calibration(Json doc, bool deterministic) {
    calibration_ = std::move(doc);
    has_calibration_ = true;
    calibration_deterministic_ = deterministic;
  }

  [[nodiscard]] const std::vector<PhaseRecord>& phases() const {
    return phases_;
  }
  [[nodiscard]] const std::vector<SuperstepRecord>& supersteps() const {
    return supersteps_;
  }
  /// P-by-P who-sent-to-whom totals accumulated over every observed
  /// superstep (identical to the engine ledger's comm_matrix()).
  [[nodiscard]] const rt::CommMatrix& comm_matrix() const { return comm_; }
  /// Per-tag-class totals, keyed by tag_class_name(), sorted.
  [[nodiscard]] const std::map<std::string, CommTotals>& comm_by_class() const {
    return by_class_;
  }
  [[nodiscard]] const std::vector<GateRecord>& gate_records() const {
    return gates_;
  }

  /// Drops all records and restarts the wall-clock epoch.
  void clear();

  /// Full document: {"phases": [...], "supersteps": [...]} with wall times.
  [[nodiscard]] Json to_json() const;

  /// Same structure minus every wall-clock field (phase/superstep wall
  /// seconds and per-rank seconds). Byte-identical across engines and
  /// thread counts for deterministic workloads.
  [[nodiscard]] std::string deterministic_json() const;

 private:
  [[nodiscard]] Json to_json_impl(bool include_wall) const;

  Timer epoch_;  // steady clock; offsets below are relative to this
  std::vector<PhaseRecord> phases_;
  std::vector<std::size_t> open_;  // stack of open phase indices
  std::vector<SuperstepRecord> supersteps_;
  rt::CommMatrix comm_;
  std::map<std::string, CommTotals> by_class_;
  std::vector<GateRecord> gates_;
  Json calibration_;
  bool has_calibration_ = false;
  bool calibration_deterministic_ = false;
  FlightRecorder* scope_ = nullptr;  ///< borrowed; phase-stamp feed
  MemoryTracker* mem_ = nullptr;     ///< borrowed; phase stamps + heap section
  Json depot_;                       ///< latest depot telemetry (full view)
  bool has_depot_ = false;
};

/// RAII wrapper for TraceRecorder phases:
///
///   { obs::PhaseScope ph(trace, "repartition");
///     ... run the phase ...
///     ph.set_modeled_seconds(cm.partition_seconds(...)); }
///
/// A null recorder makes the scope a no-op, so call sites need no guards.
class PhaseScope {
 public:
  PhaseScope(TraceRecorder* rec, const std::string& name)
      : rec_(rec), idx_(rec ? rec->begin_phase(name) : 0) {}
  PhaseScope(TraceRecorder& rec, const std::string& name)
      : PhaseScope(&rec, name) {}
  ~PhaseScope() {
    if (rec_) rec_->end_phase(idx_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  void set_modeled_seconds(double seconds) {
    if (rec_) rec_->set_modeled_seconds(idx_, seconds);
  }

 private:
  TraceRecorder* rec_;
  std::size_t idx_;
};

}  // namespace plum::obs
