#include "obs/memory.hpp"

#include "obs/json.hpp"
#include "util/rss.hpp"

namespace plum::obs {

namespace {

Json stats_json(const MemStats& s) {
  Json j = Json::object();
  j.set("allocs", Json::integer(s.allocs));
  j.set("frees", Json::integer(s.frees));
  j.set("bytes", Json::integer(s.bytes_requested));
  j.set("peak_live", Json::integer(s.peak_live_bytes));
  return j;
}

std::string check_stats(const Json& s, const char* where) {
  if (!s.is_object()) return std::string(where) + ": not an object";
  for (const char* key : {"allocs", "frees", "bytes", "peak_live"}) {
    const Json* v = s.find(key);
    if (v == nullptr || !v->is_number()) {
      return std::string(where) + ": missing numeric \"" + key + "\"";
    }
    if (v->as_int() < 0) {
      return std::string(where) + ": negative \"" + key + "\"";
    }
  }
  return "";
}

}  // namespace

Json rss_json() {
  const util::RssSample rss = util::read_rss();
  Json j = Json::object();
  j.set("vm_rss_bytes", Json::integer(rss.vm_rss_bytes));
  j.set("vm_hwm_bytes", Json::integer(rss.vm_hwm_bytes));
  return j;
}

Json MemoryTracker::heap_json(bool include_wall) const {
  Json j = Json::object();
  j.set("schema", Json::str("plum-heap/1"));
  j.set("nranks", Json::integer(static_cast<std::int64_t>(nranks_)));
  Json phases = Json::array();
  for (const std::string& name : phase_names_) phases.push(Json::str(name));
  j.set("phases", std::move(phases));
  Json rows = Json::array();
  for (std::size_t row = 0; row < rows_.size(); ++row) {
    const RowState& r = rows_[row];
    Json rj = Json::object();
    // The host row renders as rank -1, after the real ranks.
    const bool host = row == static_cast<std::size_t>(nranks_);
    rj.set("rank", Json::integer(host ? -1 : static_cast<std::int64_t>(row)));
    Json per_phase = Json::array();
    for (std::size_t p = 0; p < phase_names_.size(); ++p) {
      per_phase.push(
          stats_json(p < r.by_phase.size() ? r.by_phase[p] : MemStats{}));
    }
    rj.set("phases", std::move(per_phase));
    rj.set("unphased", stats_json(r.unphased));
    rj.set("live_bytes", Json::integer(r.live_bytes));
    rows.push(std::move(rj));
  }
  j.set("rows", std::move(rows));
  if (include_wall) j.set("rss", rss_json());
  return j;
}

Json MemoryTracker::to_json() const { return heap_json(true); }

Json MemoryTracker::deterministic_json() const { return heap_json(false); }

std::string validate_heap_section(const Json& heap) {
  if (!heap.is_object()) return "heap: not an object";
  const Json* schema = heap.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "plum-heap/1") {
    return "heap: schema is not \"plum-heap/1\"";
  }
  const Json* nranks = heap.find("nranks");
  if (nranks == nullptr || !nranks->is_number() || nranks->as_int() < 1) {
    return "heap: missing positive \"nranks\"";
  }
  const Json* phases = heap.find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return "heap: missing \"phases\" array";
  }
  for (std::size_t i = 0; i < phases->size(); ++i) {
    if (!phases->at(i).is_string()) return "heap: non-string phase name";
  }
  const Json* rows = heap.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return "heap: missing \"rows\" array";
  }
  // One row per rank plus the host row, ranks first, host (-1) last.
  const auto p = static_cast<std::size_t>(nranks->as_int());
  if (rows->size() != p + 1) {
    return "heap: rows count != nranks + 1";
  }
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const Json& row = rows->at(i);
    if (!row.is_object()) return "heap: row is not an object";
    const Json* rank = row.find("rank");
    const std::int64_t want =
        i == p ? -1 : static_cast<std::int64_t>(i);
    if (rank == nullptr || !rank->is_number() || rank->as_int() != want) {
      return "heap: row rank out of order";
    }
    const Json* per_phase = row.find("phases");
    if (per_phase == nullptr || !per_phase->is_array() ||
        per_phase->size() != phases->size()) {
      return "heap: row phase stats do not align with phase names";
    }
    for (std::size_t j = 0; j < per_phase->size(); ++j) {
      const std::string err = check_stats(per_phase->at(j), "heap: phase cell");
      if (!err.empty()) return err;
    }
    const Json* unphased = row.find("unphased");
    if (unphased == nullptr) return "heap: row missing \"unphased\"";
    const std::string err = check_stats(*unphased, "heap: unphased cell");
    if (!err.empty()) return err;
    const Json* live = row.find("live_bytes");
    if (live == nullptr || !live->is_number()) {
      return "heap: row missing numeric \"live_bytes\"";
    }
  }
  const Json* rss = heap.find("rss");
  if (rss != nullptr) {
    if (!rss->is_object()) return "heap: \"rss\" is not an object";
    for (const char* key : {"vm_rss_bytes", "vm_hwm_bytes"}) {
      const Json* v = rss->find(key);
      if (v == nullptr || !v->is_number()) {
        return std::string("heap: rss missing numeric \"") + key + "\"";
      }
    }
  }
  return "";
}

}  // namespace plum::obs
