#pragma once
// Chrome trace-event exporter: renders a TraceRecorder as the JSON object
// format understood by chrome://tracing and https://ui.perfetto.dev —
// {"traceEvents": [...]} with "ph":"X" complete events (ts/dur in
// microseconds). Phases land on tid 0 ("phases"); each rank's superstep
// spans land on tid rank+1 ("rank r"), followed by an explicit "wait"
// slice from the rank's own finish to the critical (slowest) rank's — so
// the per-rank load imbalance the paper's balancer removes is directly
// visible: stragglers are the lanes with no wait slices.

#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace plum::obs {

/// Builds the trace-event document in memory.
[[nodiscard]] Json chrome_trace_json(const TraceRecorder& rec,
                                     const std::string& process_name);

/// Writes chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const TraceRecorder& rec,
                        const std::string& process_name,
                        const std::string& path);

}  // namespace plum::obs
