#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace plum::obs {

// --- construction -------------------------------------------------------------

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  PLUM_ASSERT(kind_ == Kind::kObject);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  PLUM_ASSERT(kind_ == Kind::kArray);
  arr_.push_back(std::move(value));
  return *this;
}

// --- inspection ---------------------------------------------------------------

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  PLUM_ASSERT(kind_ == Kind::kArray && i < arr_.size());
  return arr_[i];
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  PLUM_ASSERT(kind_ == Kind::kObject);
  return obj_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
  return 0;
}

double Json::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return 0;
}

// --- serialization ------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  // Shortest round-trip representation: deterministic for identical bits.
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: append_int(out, int_); return;
    case Kind::kDouble: append_double(out, double_); return;
    case Kind::kString: out += json_escape(str_); return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        out += json_escape(obj_[i].first);
        out += indent >= 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parsing ------------------------------------------------------------------

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos;
    }
  }

  bool literal(const char* word, Json value, Json* out) {
    for (const char* p = word; *p; ++p, ++pos) {
      if (at_end() || peek() != *p) return fail("invalid literal");
    }
    *out = std::move(value);
    return true;
  }

  bool parse_string(std::string* out) {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos;
    std::string s;
    while (!at_end() && peek() != '"') {
      char c = text[pos++];
      if (c != '\\') {
        s += c;
        continue;
      }
      if (at_end()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through unpaired — good enough for our machine-written files).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (at_end()) return fail("unterminated string");
    ++pos;  // closing quote
    *out = std::move(s);
    return true;
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    bool integral = true;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                         peek() == 'e' || peek() == 'E' || peek() == '+' ||
                         peek() == '-')) {
      if (peek() == '.' || peek() == 'e' || peek() == 'E') integral = false;
      ++pos;
    }
    const std::string tok = text.substr(start, pos - start);
    if (tok.empty() || tok == "-") return fail("expected number");
    if (integral) {
      std::int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        *out = Json::integer(v);
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      return fail("malformed number");
    }
    *out = Json::number(d);
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n': return literal("null", Json::null(), out);
      case 't': return literal("true", Json::boolean(true), out);
      case 'f': return literal("false", Json::boolean(false), out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json::str(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        Json arr = Json::array();
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
          *out = std::move(arr);
          return true;
        }
        for (;;) {
          Json elem;
          if (!parse_value(&elem, depth + 1)) return false;
          arr.push(std::move(elem));
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            *out = std::move(arr);
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        Json obj = Json::object();
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
          *out = std::move(obj);
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (at_end() || peek() != ':') return fail("expected ':'");
          ++pos;
          Json val;
          if (!parse_value(&val, depth + 1)) return false;
          obj.set(key, std::move(val));
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            *out = std::move(obj);
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: return parse_number(out);
    }
  }
};

}  // namespace

bool Json::parse(const std::string& text, Json* out, std::string* error) {
  Parser p{text, 0, {}};
  Json v;
  if (!p.parse_value(&v, 0)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error) *error = "trailing garbage at byte " + std::to_string(p.pos);
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace plum::obs
