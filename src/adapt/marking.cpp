#include "adapt/marking.hpp"

#include <deque>

#include "util/assert.hpp"

namespace plum::adapt {

Index MarkingResult::predicted_new_elements(const mesh::TetMesh& m) const {
  Index total = 0;
  for (Index t = 0; t < m.num_elements(); ++t) {
    const auto& el = m.element(t);
    if (!el.alive || !el.is_leaf()) continue;
    total += static_cast<Index>(children_of(t));
  }
  return total;
}

MarkingResult propagate_marks(const mesh::TetMesh& mesh,
                              const std::vector<char>& seed_marks) {
  const Index ne = mesh.num_edges();
  const Index nt = mesh.num_elements();
  PLUM_ASSERT(static_cast<Index>(seed_marks.size()) == ne);

  MarkingResult out;
  out.edge_marked.assign(static_cast<std::size_t>(ne), 0);
  out.pattern.assign(static_cast<std::size_t>(nt), 0);

  // Accept seed marks only on edges of the current computational mesh.
  for (Index e = 0; e < ne; ++e) {
    if (seed_marks[e] && !mesh.edge_elements(e).empty()) {
      out.edge_marked[e] = 1;
    }
  }

  // Worklist of elements whose pattern may have become invalid. An edge
  // marking affects exactly the elements sharing it, so propagation follows
  // e2elem lists ("these lists eliminate extensive searches").
  std::deque<Index> work;
  std::vector<char> queued(static_cast<std::size_t>(nt), 0);
  auto enqueue_edge_elements = [&](Index e) {
    for (Index t : mesh.edge_elements(e)) {
      if (!queued[t]) {
        queued[t] = 1;
        work.push_back(t);
      }
    }
  };
  for (Index e = 0; e < ne; ++e) {
    if (out.edge_marked[e]) enqueue_edge_elements(e);
  }

  // In the parallel setting each drain of the worklist is one communication
  // round; we count equivalent rounds so the distributed version and the
  // cost model can report the same quantity.
  int rounds = 0;
  while (!work.empty()) {
    ++rounds;
    std::deque<Index> current;
    current.swap(work);
    for (Index t : current) queued[t] = 0;
    while (!current.empty()) {
      const Index t = current.front();
      current.pop_front();
      const auto& el = mesh.element(t);
      PLUM_ASSERT(el.alive && el.is_leaf());

      Pattern p = 0;
      for (int k = 0; k < kTetEdges; ++k) {
        if (out.edge_marked[el.edges[k]]) p |= static_cast<Pattern>(1u << k);
      }
      const Pattern up = upgrade_pattern(p);
      out.pattern[t] = up;
      if (up == p) continue;
      for (int k = 0; k < kTetEdges; ++k) {
        const Pattern bit = static_cast<Pattern>(1u << k);
        if ((up & bit) && !(p & bit)) {
          out.edge_marked[el.edges[k]] = 1;
          enqueue_edge_elements(el.edges[k]);
        }
      }
    }
  }
  out.propagation_rounds = rounds;

  // Final sweep: patterns for untouched elements + validity check.
  for (Index t = 0; t < nt; ++t) {
    const auto& el = mesh.element(t);
    if (!el.alive || !el.is_leaf()) continue;
    Pattern p = 0;
    for (int k = 0; k < kTetEdges; ++k) {
      if (out.edge_marked[el.edges[k]]) p |= static_cast<Pattern>(1u << k);
    }
    PLUM_ASSERT_MSG(classify_pattern(p).valid,
                    "upgrade propagation left an invalid pattern");
    out.pattern[t] = p;
  }

  for (Index e = 0; e < ne; ++e) {
    if (out.edge_marked[e]) out.marked_edges.push_back(e);
  }
  return out;
}

}  // namespace plum::adapt
