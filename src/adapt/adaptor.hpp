#pragma once
// MeshAdaptor — the 3D_TAG facade. Exposes the two-phase refinement split
// (marking, then subdivision) that the load balancer exploits: after
// mark(), the post-refinement dual-graph weights are exactly predictable,
// so remapping can run on the small pre-refinement mesh (paper §4.6).

#include <vector>

#include "adapt/coarsen.hpp"
#include "adapt/error_indicator.hpp"
#include "adapt/marking.hpp"
#include "adapt/refine.hpp"
#include "mesh/tet_mesh.hpp"
#include "util/timer.hpp"

namespace plum::adapt {

/// Predicted dual-graph weights as if the pending subdivision had already
/// happened — what the load balancer repartitions on.
struct PredictedWeights {
  std::vector<Weight> wcomp;
  std::vector<Weight> wremap;
};

class MeshAdaptor {
 public:
  explicit MeshAdaptor(mesh::TetMesh* mesh) : mesh_(mesh) {
    PLUM_ASSERT(mesh != nullptr);
  }

  /// Marking phase: propagates `seed_marks` to valid patterns. Stores the
  /// result for the subsequent refine() and weight prediction.
  const MarkingResult& mark(const std::vector<char>& seed_marks);

  /// Convenience: marks the top `fraction` of active edges by `err`.
  const MarkingResult& mark_fraction(const std::vector<double>& err,
                                     double fraction);

  /// Dual weights of the initial mesh adjusted "as though subdivision has
  /// already taken place" (paper §4.6). Valid after mark().
  [[nodiscard]] PredictedWeights predicted_weights() const;

  /// Subdivision phase for the pending marks. `scratch` arena-backs the
  /// pass-local leaf snapshot (plum-mem); default = plain heap, uncounted.
  RefineStats refine(const obs::MemScratch& scratch = {});

  /// Coarsening (invalidates any pending marking — ids change). The hook
  /// semantics are those of coarsen_mesh's on_compaction.
  CoarsenStats coarsen(
      const std::vector<char>& coarsen_marks,
      const std::function<void(const std::vector<Index>&)>& on_compaction =
          {});

  [[nodiscard]] const MarkingResult& last_marking() const { return marks_; }
  [[nodiscard]] bool has_pending_marks() const { return has_marks_; }
  [[nodiscard]] mesh::TetMesh& mesh() { return *mesh_; }

  /// Wall-clock accounting per phase.
  PhaseTimer mark_timer;
  PhaseTimer refine_timer;
  PhaseTimer coarsen_timer;

 private:
  mesh::TetMesh* mesh_;
  MarkingResult marks_;
  bool has_marks_ = false;
};

}  // namespace plum::adapt
