#pragma once
// Geometry-based edge-marking strategies. The paper's results focus on
// solution-based marking, but its companion study ([1] in the paper)
// investigates "several other edge-marking strategies based on geometry";
// these are the standard ones: refine everything inside a sphere, a box,
// or within a distance of a plane (e.g. a rotor disk or a shock plane).
// All mark only active (leaf) edges, like the error-indicator markers.

#include <vector>

#include "mesh/tet_mesh.hpp"

namespace plum::adapt {

/// Marks active edges whose midpoint lies inside the sphere.
std::vector<char> mark_sphere(const mesh::TetMesh& mesh,
                              const mesh::Vec3& center, double radius);

/// Marks active edges whose midpoint lies inside the axis-aligned box.
std::vector<char> mark_box(const mesh::TetMesh& mesh, const mesh::Vec3& lo,
                           const mesh::Vec3& hi);

/// Marks active edges whose midpoint lies within `distance` of the plane
/// through `point` with normal `normal`.
std::vector<char> mark_slab(const mesh::TetMesh& mesh,
                            const mesh::Vec3& point,
                            const mesh::Vec3& normal, double distance);

/// Marks active edges longer than `length` (uniform resolution control).
std::vector<char> mark_longer_than(const mesh::TetMesh& mesh, double length);

}  // namespace plum::adapt
