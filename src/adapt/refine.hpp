#pragma once
// Subdivision phase (paper §3): bisects every marked edge and replaces each
// targeted element by its 2 / 4 / 8 children, then subdivides boundary
// faces to match. Requires a MarkingResult whose patterns are all valid
// (i.e. propagate_marks already ran).

#include "adapt/marking.hpp"
#include "obs/memory.hpp"

namespace plum::adapt {

struct RefineStats {
  Index edges_bisected = 0;
  Index elements_refined = 0;
  Index children_created = 0;
  Index bfaces_refined = 0;
  /// Work units (children created) — the subdivision-phase load metric the
  /// remap-before-refinement strategy balances.
  [[nodiscard]] Index work_units() const { return children_created; }
};

/// `scratch` (optional) arena-backs the subdivision pass's leaf-id
/// snapshot and attributes its churn (plum-mem).
RefineStats refine_mesh(mesh::TetMesh& mesh, const MarkingResult& marks,
                        const obs::MemScratch& scratch = {});

}  // namespace plum::adapt
