#include "adapt/refine.hpp"

#include <array>

#include "util/assert.hpp"

namespace plum::adapt {

namespace {

using mesh::TetMesh;

/// Midpoint vertex of local edge k of element t (edge must be bisected).
Index mid_of(const TetMesh& m, Index t, int k) {
  const Index e = m.element(t).edges[k];
  const Index mid = m.edge(e).mid;
  PLUM_ASSERT(mid != kInvalidIndex);
  return mid;
}

void subdivide_1to2(TetMesh& m, Index t, int edge_k) {
  const auto v = m.element(t).verts;
  const int a = mesh::kEdgeVerts[edge_k][0];
  const int b = mesh::kEdgeVerts[edge_k][1];
  // The two locals not on the split edge.
  std::array<int, 2> cd{};
  int n = 0;
  for (int i = 0; i < 4; ++i) {
    if (i != a && i != b) cd[n++] = i;
  }
  const Index mid = mid_of(m, t, edge_k);
  m.add_child_element(t, {mid, v[cd[0]], v[cd[1]], v[a]});
  m.add_child_element(t, {mid, v[cd[0]], v[cd[1]], v[b]});
}

void subdivide_1to4(TetMesh& m, Index t, int face_f) {
  const auto v = m.element(t).verts;
  const auto& fv = mesh::kFaceVerts[face_f];  // the fully marked face
  const Index apex = v[face_f];               // face f is opposite vertex f
  const Index p = v[fv[0]], q = v[fv[1]], r = v[fv[2]];
  const Index mpq = mid_of(m, t, mesh::local_edge_between(fv[0], fv[1]));
  const Index mqr = mid_of(m, t, mesh::local_edge_between(fv[1], fv[2]));
  const Index mpr = mid_of(m, t, mesh::local_edge_between(fv[0], fv[2]));
  m.add_child_element(t, {p, mpq, mpr, apex});
  m.add_child_element(t, {q, mpq, mqr, apex});
  m.add_child_element(t, {r, mpr, mqr, apex});
  m.add_child_element(t, {mpq, mqr, mpr, apex});
}

void subdivide_1to8(TetMesh& m, Index t) {
  const auto v = m.element(t).verts;
  // Midpoints indexed like kEdgeVerts: m01,m02,m03,m12,m13,m23.
  std::array<Index, 6> mm{};
  for (int k = 0; k < kTetEdges; ++k) mm[k] = mid_of(m, t, k);
  const Index m01 = mm[0], m02 = mm[1], m03 = mm[2], m12 = mm[3],
              m13 = mm[4], m23 = mm[5];

  // Four corner tetrahedra.
  m.add_child_element(t, {v[0], m01, m02, m03});
  m.add_child_element(t, {v[1], m01, m12, m13});
  m.add_child_element(t, {v[2], m02, m12, m23});
  m.add_child_element(t, {v[3], m03, m13, m23});

  // Interior octahedron {m01,m02,m03,m12,m13,m23}: split by the shortest of
  // the three diagonals (keeps element quality bounded under repeated
  // refinement). Deterministic: lengths are exact midpoint arithmetic, ties
  // resolved by diagonal order.
  struct Diag {
    Index a, b;        // the diagonal
    Index e0, e1, e2, e3;  // equatorial cycle around it
  };
  const std::array<Diag, 3> diags = {{
      {m01, m23, m02, m03, m13, m12},
      {m02, m13, m01, m03, m23, m12},
      {m03, m12, m01, m02, m23, m13},
  }};
  auto len2 = [&](Index a, Index b) {
    const auto d = m.vertex(a).pos - m.vertex(b).pos;
    return dot(d, d);
  };
  int best = 0;
  for (int i = 1; i < 3; ++i) {
    if (len2(diags[i].a, diags[i].b) < len2(diags[best].a, diags[best].b)) {
      best = i;
    }
  }
  const Diag& d = diags[best];
  const std::array<Index, 4> eq = {d.e0, d.e1, d.e2, d.e3};
  for (int i = 0; i < 4; ++i) {
    m.add_child_element(t, {d.a, d.b, eq[i], eq[(i + 1) % 4]});
  }
}

/// Subdivides a leaf boundary face whose edges were bisected this round.
/// Valid triangle patterns are 1 or 3 bisected edges — a direct consequence
/// of the element patterns being valid (each tet face carries 0/1/3 marks).
Index subdivide_bface(TetMesh& m, Index f) {
  const auto bf = m.bface(f);  // copy: adding children reallocates
  std::array<Index, 3> mids{kInvalidIndex, kInvalidIndex, kInvalidIndex};
  int bisected = 0;
  for (int k = 0; k < 3; ++k) {
    const auto& e = m.edge(bf.edges[k]);
    if (!e.is_leaf()) {
      mids[k] = e.mid;
      ++bisected;
    }
  }
  if (bisected == 0) return 0;
  PLUM_ASSERT_MSG(bisected == 1 || bisected == 3,
                  "boundary face with 2 bisected edges");

  if (bisected == 1) {
    int k = 0;
    while (mids[k] == kInvalidIndex) ++k;
    const Index a = bf.verts[k], b = bf.verts[(k + 1) % 3],
                c = bf.verts[(k + 2) % 3];
    m.add_child_bface(f, {a, mids[k], c});
    m.add_child_bface(f, {mids[k], b, c});
    return 2;
  }
  const Index a = bf.verts[0], b = bf.verts[1], c = bf.verts[2];
  const Index mab = mids[0], mbc = mids[1], mca = mids[2];
  m.add_child_bface(f, {a, mab, mca});
  m.add_child_bface(f, {b, mbc, mab});
  m.add_child_bface(f, {c, mca, mbc});
  m.add_child_bface(f, {mab, mbc, mca});
  return 4;
}

}  // namespace

RefineStats refine_mesh(mesh::TetMesh& mesh, const MarkingResult& marks,
                        const obs::MemScratch& scratch) {
  RefineStats stats;

  // 1. Bisect every marked edge (once, globally shared).
  for (Index e : marks.marked_edges) {
    if (mesh.edge(e).is_leaf()) {
      mesh.bisect_edge(e);
      ++stats.edges_bisected;
    }
  }

  // 2. Subdivide each targeted element independently — after marking, "each
  //    element is independently subdivided based on its binary pattern".
  //    The leaf-id snapshot must be taken up front (adding children grows
  //    the element table); it dies with this pass, so it stages through the
  //    plum-mem arena instead of mesh-side heap.
  // plum-scale: scratch -- subdivision-pass leaf snapshot, arena staging
  obs::TrackedVec<Index> snapshot{obs::TrackingAllocator<Index>{scratch}};
  snapshot.reserve(static_cast<std::size_t>(mesh.num_elements()));
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    if (mesh.element(t).alive && mesh.element(t).is_leaf()) {
      snapshot.push_back(t);
    }
  }
  for (Index t : snapshot) {
    const Pattern p = marks.pattern[t];
    const PatternClass pc = classify_pattern(p);
    PLUM_ASSERT(pc.valid);
    if (pc.type == SubdivType::kNone) continue;

    mesh.remove_from_leaf_lists(t);
    switch (pc.type) {
      case SubdivType::kOneToTwo: subdivide_1to2(mesh, t, pc.edge); break;
      case SubdivType::kOneToFour: subdivide_1to4(mesh, t, pc.face); break;
      case SubdivType::kOneToEight: subdivide_1to8(mesh, t); break;
      case SubdivType::kNone: break;
    }
    mesh.element(t).subdiv_type = static_cast<std::int8_t>(pc.type);
    ++stats.elements_refined;
    stats.children_created +=
        static_cast<Index>(mesh.element(t).num_children);
  }

  // 3. Keep the boundary triangulation conforming.
  const Index nf = mesh.num_bfaces();
  for (Index f = 0; f < nf; ++f) {
    if (!mesh.bface(f).alive || !mesh.bface(f).is_leaf()) continue;
    if (subdivide_bface(mesh, f) > 0) ++stats.bfaces_refined;
  }
  return stats;
}

}  // namespace plum::adapt
