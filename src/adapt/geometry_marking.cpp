#include "adapt/geometry_marking.hpp"

namespace plum::adapt {

namespace {

using mesh::Vec3;

template <typename Pred>
std::vector<char> mark_if(const mesh::TetMesh& mesh, Pred pred) {
  std::vector<char> marks(static_cast<std::size_t>(mesh.num_edges()), 0);
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    if (mesh.edge_elements(e).empty()) continue;
    const auto& ed = mesh.edge(e);
    const Vec3 mid =
        midpoint(mesh.vertex(ed.v0).pos, mesh.vertex(ed.v1).pos);
    if (pred(e, mid)) marks[static_cast<std::size_t>(e)] = 1;
  }
  return marks;
}

}  // namespace

std::vector<char> mark_sphere(const mesh::TetMesh& mesh, const Vec3& center,
                              double radius) {
  const double r2 = radius * radius;
  return mark_if(mesh, [&](Index, const Vec3& mid) {
    const Vec3 d = mid - center;
    return dot(d, d) < r2;
  });
}

std::vector<char> mark_box(const mesh::TetMesh& mesh, const Vec3& lo,
                           const Vec3& hi) {
  return mark_if(mesh, [&](Index, const Vec3& m) {
    return m.x >= lo.x && m.x <= hi.x && m.y >= lo.y && m.y <= hi.y &&
           m.z >= lo.z && m.z <= hi.z;
  });
}

std::vector<char> mark_slab(const mesh::TetMesh& mesh, const Vec3& point,
                            const Vec3& normal, double distance) {
  const Vec3 n = normalized(normal);
  return mark_if(mesh, [&](Index, const Vec3& m) {
    return std::abs(dot(m - point, n)) <= distance;
  });
}

std::vector<char> mark_longer_than(const mesh::TetMesh& mesh, double length) {
  return mark_if(mesh, [&](Index e, const Vec3&) {
    return mesh.edge_length(e) > length;
  });
}

}  // namespace plum::adapt
