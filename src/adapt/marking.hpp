#pragma once
// Edge-marking phase with pattern-upgrade propagation (paper §3).
//
// Marking is pure bookkeeping: the grid does not change. That separation is
// what lets the load balancer remap data *before* subdivision (paper §4.6)
// — the predicted post-refinement weights are available here.

#include <vector>

#include "adapt/patterns.hpp"
#include "mesh/tet_mesh.hpp"

namespace plum::adapt {

struct MarkingResult {
  /// Final per-edge refinement marks after upgrade propagation (indexed by
  /// edge id; only leaf edges of active elements can be set).
  std::vector<char> edge_marked;
  /// Final valid pattern per element (indexed by element id; only active
  /// leaves are meaningful).
  std::vector<Pattern> pattern;
  /// Number of upgrade sweeps until the global fixpoint.
  int propagation_rounds = 0;
  /// Marked edges, in id order.
  std::vector<Index> marked_edges;

  /// Exact prediction of the subdivided mesh (paper: "it is possible to
  /// exactly predict the new mesh before actually performing the
  /// refinement step").
  [[nodiscard]] Index predicted_new_elements(const mesh::TetMesh& m) const;
  /// Predicted number of leaf elements each active element will turn into.
  [[nodiscard]] int children_of(Index elem) const {
    return num_children(classify_pattern(pattern[elem]).type);
  }
};

/// Runs upgrade propagation from the initial `seed_marks` (per edge id) to
/// the global fixpoint where every active element has a valid pattern.
/// Marks on non-leaf or unused edges are ignored.
MarkingResult propagate_marks(const mesh::TetMesh& mesh,
                              const std::vector<char>& seed_marks);

}  // namespace plum::adapt
