#include "adapt/error_indicator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace plum::adapt {

std::vector<double> edge_error(const mesh::TetMesh& mesh,
                               const std::vector<double>& vertex_field,
                               double length_power) {
  PLUM_ASSERT(static_cast<Index>(vertex_field.size()) ==
              mesh.num_vertices());
  std::vector<double> err(static_cast<std::size_t>(mesh.num_edges()), 0.0);
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    if (mesh.edge_elements(e).empty()) continue;  // not in the active mesh
    const auto& ed = mesh.edge(e);
    const double jump = std::abs(vertex_field[static_cast<std::size_t>(ed.v1)] -
                                 vertex_field[static_cast<std::size_t>(ed.v0)]);
    err[static_cast<std::size_t>(e)] =
        jump * std::pow(mesh.edge_length(e), length_power);
  }
  return err;
}

std::vector<char> mark_above(const mesh::TetMesh& mesh,
                             const std::vector<double>& err, double upper) {
  std::vector<char> marks(err.size(), 0);
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    if (!mesh.edge_elements(e).empty() &&
        err[static_cast<std::size_t>(e)] > upper) {
      marks[static_cast<std::size_t>(e)] = 1;
    }
  }
  return marks;
}

std::vector<char> mark_below(const mesh::TetMesh& mesh,
                             const std::vector<double>& err, double lower) {
  std::vector<char> marks(err.size(), 0);
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    if (!mesh.edge_elements(e).empty() &&
        err[static_cast<std::size_t>(e)] < lower) {
      marks[static_cast<std::size_t>(e)] = 1;
    }
  }
  return marks;
}

std::vector<char> mark_top_fraction(const mesh::TetMesh& mesh,
                                    const std::vector<double>& err,
                                    double fraction) {
  PLUM_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  std::vector<Index> active;
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    if (!mesh.edge_elements(e).empty()) active.push_back(e);
  }
  const auto want = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(active.size())));
  std::vector<char> marks(err.size(), 0);
  if (want == 0) return marks;

  // Highest error first; ties by id keep runs reproducible.
  std::sort(active.begin(), active.end(), [&](Index a, Index b) {
    const double ea = err[static_cast<std::size_t>(a)];
    const double eb = err[static_cast<std::size_t>(b)];
    return ea != eb ? ea > eb : a < b;
  });
  for (std::size_t i = 0; i < want && i < active.size(); ++i) {
    marks[static_cast<std::size_t>(active[i])] = 1;
  }
  return marks;
}

}  // namespace plum::adapt
