#include "adapt/adaptor.hpp"

namespace plum::adapt {

const MarkingResult& MeshAdaptor::mark(const std::vector<char>& seed_marks) {
  mark_timer.begin();
  marks_ = propagate_marks(*mesh_, seed_marks);
  has_marks_ = true;
  mark_timer.end();
  return marks_;
}

const MarkingResult& MeshAdaptor::mark_fraction(const std::vector<double>& err,
                                                double fraction) {
  return mark(mark_top_fraction(*mesh_, err, fraction));
}

PredictedWeights MeshAdaptor::predicted_weights() const {
  PLUM_ASSERT_MSG(has_marks_, "predicted_weights requires a pending mark()");
  const mesh::RootWeights current = mesh_->root_weights();
  PredictedWeights w;
  w.wcomp = current.wcomp;
  w.wremap = current.wremap;
  // Each targeted leaf becomes children_of(t) leaves: the root's leaf count
  // grows by (children - 1) and its tree size by children (the parent stays
  // in the tree).
  for (Index t = 0; t < mesh_->num_elements(); ++t) {
    const auto& el = mesh_->element(t);
    if (!el.alive || !el.is_leaf()) continue;
    const int kids = marks_.children_of(t);
    if (kids <= 1) continue;
    const auto root = static_cast<std::size_t>(el.root);
    w.wcomp[root] += kids - 1;
    w.wremap[root] += kids;
  }
  return w;
}

RefineStats MeshAdaptor::refine(const obs::MemScratch& scratch) {
  PLUM_ASSERT_MSG(has_marks_, "refine requires a pending mark()");
  refine_timer.begin();
  const RefineStats stats = refine_mesh(*mesh_, marks_, scratch);
  refine_timer.end();
  has_marks_ = false;
  return stats;
}

CoarsenStats MeshAdaptor::coarsen(
    const std::vector<char>& coarsen_marks,
    const std::function<void(const std::vector<Index>&)>& on_compaction) {
  coarsen_timer.begin();
  const CoarsenStats stats = coarsen_mesh(*mesh_, coarsen_marks, on_compaction);
  coarsen_timer.end();
  has_marks_ = false;  // compaction renumbered everything
  return stats;
}

}  // namespace plum::adapt
