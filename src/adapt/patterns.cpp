#include "adapt/patterns.hpp"

#include <bit>

#include "util/assert.hpp"

namespace plum::adapt {

namespace {

/// Bitmask of the three edges of local face f.
constexpr Pattern face_mask(int f) {
  Pattern m = 0;
  for (int e : mesh::kFaceEdges[f]) m |= static_cast<Pattern>(1u << e);
  return m;
}

constexpr std::array<Pattern, kTetFaces> kFaceMasks = {
    face_mask(0), face_mask(1), face_mask(2), face_mask(3)};

}  // namespace

PatternClass classify_pattern(Pattern p) {
  PatternClass out;
  const int bits = std::popcount(static_cast<unsigned>(p));
  if (bits == 0) {
    out = {SubdivType::kNone, -1, -1, true};
  } else if (bits == 1) {
    out = {SubdivType::kOneToTwo, std::countr_zero(static_cast<unsigned>(p)),
           -1, true};
  } else if (bits == 3) {
    for (int f = 0; f < kTetFaces; ++f) {
      if (p == kFaceMasks[f]) {
        out = {SubdivType::kOneToFour, -1, f, true};
        break;
      }
    }
  } else if (bits == 6) {
    out = {SubdivType::kOneToEight, -1, -1, true};
  }
  return out;
}

Pattern upgrade_pattern(Pattern p) {
  if (classify_pattern(p).valid) return p;
  // If one face contains every marked edge, completing that face gives the
  // minimal valid pattern (two edges sharing a vertex lie in exactly one
  // common face, so the choice is unique when it exists).
  for (const Pattern fm : kFaceMasks) {
    if ((p & ~fm) == 0) return fm;
  }
  return 0b111111;
}

int num_children(SubdivType t) {
  switch (t) {
    case SubdivType::kNone: return 1;
    case SubdivType::kOneToTwo: return 2;
    case SubdivType::kOneToFour: return 4;
    case SubdivType::kOneToEight: return 8;
  }
  PLUM_ASSERT(false);
  return 0;
}

}  // namespace plum::adapt
