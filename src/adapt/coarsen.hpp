#pragma once
// Coarsening phase (paper §3).
//
// "If a child element has any edge marked for coarsening, this element and
// its siblings are removed and their parent is reinstated. [...] The
// parents are then subdivided based on their new patterns by invoking the
// mesh refinement procedure."
//
// Constraints honored (paper §3 / ref [4]):
//  - edges cannot be coarsened beyond the initial mesh;
//  - edges are coarsened in reverse refinement order (deepest level first;
//    a sibling group with refined descendants is skipped this round);
//  - an edge coarsens only if its bisection sibling is also targeted.

#include <functional>
#include <vector>

#include "mesh/tet_mesh.hpp"

namespace plum::adapt {

struct CoarsenStats {
  Index groups_removed = 0;     ///< sibling groups deleted
  Index elements_removed = 0;   ///< total child elements deleted
  Index parents_reinstated = 0;
  Index edges_uncoarsened = 0;  ///< bisections undone
  Index resubdivided_children = 0;  ///< children recreated by the re-refine
  /// Vertex renumbering of the compaction (new id -> old id); per-vertex
  /// solution arrays must be permuted with this.
  std::vector<Index> vertex_new_to_old;
};

/// Coarsens per `coarsen_marks` (per edge id), purges and compacts the
/// mesh, then re-runs refinement so partially-coarsened neighborhoods end
/// in a valid conforming state. All entity ids may change (compaction)
/// except initial-mesh entities.
///
/// `on_compaction(vertex_new_to_old)` fires right after the compaction and
/// *before* the conformity re-refinement: per-vertex solution arrays must
/// be permuted there, because the re-refinement's bisection hooks
/// interpolate using post-compaction vertex ids.
CoarsenStats coarsen_mesh(
    mesh::TetMesh& mesh, const std::vector<char>& coarsen_marks,
    const std::function<void(const std::vector<Index>&)>& on_compaction = {});

}  // namespace plum::adapt
