#pragma once
// Per-edge error indicators computed from a vertex solution field, and the
// threshold machinery that turns them into refinement / coarsening targets
// (paper §3: "edges whose error values exceed a specified upper threshold
// are targeted for subdivision; edges whose error values lie below another
// lower threshold are targeted for removal").

#include <vector>

#include "mesh/tet_mesh.hpp"

namespace plum::adapt {

/// err(e) = |u(v1) - u(v0)| * length(e)^length_power over active edges
/// (0 elsewhere). length_power=1 biases toward long under-resolved edges.
std::vector<double> edge_error(const mesh::TetMesh& mesh,
                               const std::vector<double>& vertex_field,
                               double length_power = 1.0);

/// Refinement marks from an absolute upper threshold.
std::vector<char> mark_above(const mesh::TetMesh& mesh,
                             const std::vector<double>& err, double upper);

/// Coarsening marks from an absolute lower threshold.
std::vector<char> mark_below(const mesh::TetMesh& mesh,
                             const std::vector<double>& err, double lower);

/// Marks the top `fraction` of active edges by error — how the paper's
/// Real_1/2/3 strategies target 5%, 33% and 60% of the initial edges.
/// Deterministic tie-break by edge id.
std::vector<char> mark_top_fraction(const mesh::TetMesh& mesh,
                                    const std::vector<double>& err,
                                    double fraction);

}  // namespace plum::adapt
