#include "adapt/coarsen.hpp"

#include <algorithm>

#include "adapt/marking.hpp"
#include "adapt/refine.hpp"
#include "util/assert.hpp"

namespace plum::adapt {

namespace {

using mesh::TetMesh;

/// Applies the sibling rule: a bisected parent edge "uncoarsens" only when
/// both its children are leaves and both are targeted.
std::vector<char> effective_marks(const TetMesh& m,
                                  const std::vector<char>& marks) {
  std::vector<char> eff(marks.size(), 0);
  for (Index e = 0; e < m.num_edges(); ++e) {
    const auto& ed = m.edge(e);
    if (!ed.alive || ed.is_leaf()) continue;
    const Index c0 = ed.child[0], c1 = ed.child[1];
    if (m.edge(c0).is_leaf() && m.edge(c1).is_leaf() && marks[c0] &&
        marks[c1]) {
      eff[c0] = eff[c1] = 1;
    }
  }
  // Marks on interior subdivision edges (no parent) pass through: removing
  // them simply dissolves the sibling group that created them.
  for (Index e = 0; e < m.num_edges(); ++e) {
    if (marks[e] && m.edge(e).alive && m.edge(e).parent == kInvalidIndex &&
        m.edge(e).level > 0 && m.edge(e).is_leaf()) {
      eff[e] = 1;
    }
  }
  return eff;
}

}  // namespace

CoarsenStats coarsen_mesh(
    TetMesh& mesh, const std::vector<char>& marks_in,
    const std::function<void(const std::vector<Index>&)>& on_compaction) {
  PLUM_ASSERT(static_cast<Index>(marks_in.size()) == mesh.num_edges());
  CoarsenStats stats;
  const std::vector<char> marks = effective_marks(mesh, marks_in);

  // --- 1. Remove sibling groups, deepest level first -----------------------
  std::int8_t max_level = 0;
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    max_level = std::max(max_level, mesh.element(t).level);
  }

  for (int level = max_level; level >= 1; --level) {
    // Parents whose children include a coarsen-marked edge.
    std::vector<Index> doomed_parents;
    for (Index t = 0; t < mesh.num_elements(); ++t) {
      const auto& el = mesh.element(t);
      if (!el.alive || !el.is_leaf() || el.level != level) continue;
      bool hit = false;
      for (Index e : el.edges) {
        if (marks[e] && mesh.edge(e).alive) {
          hit = true;
          break;
        }
      }
      if (hit) doomed_parents.push_back(el.parent);
    }
    std::sort(doomed_parents.begin(), doomed_parents.end());
    doomed_parents.erase(
        std::unique(doomed_parents.begin(), doomed_parents.end()),
        doomed_parents.end());

    for (Index p : doomed_parents) {
      auto& par = mesh.element(p);
      PLUM_ASSERT(par.alive && !par.is_leaf());
      // Reverse-order constraint: skip if any sibling is refined deeper.
      bool all_leaves = true;
      for (int c = 0; c < par.num_children; ++c) {
        if (!mesh.element(par.first_child + c).is_leaf()) {
          all_leaves = false;
          break;
        }
      }
      if (!all_leaves) continue;

      for (int c = 0; c < par.num_children; ++c) {
        const Index child = par.first_child + c;
        mesh.remove_from_leaf_lists(child);
        mesh.element(child).alive = false;
        ++stats.elements_removed;
      }
      par.first_child = kInvalidIndex;
      par.num_children = 0;
      par.subdiv_type = 0;
      mesh.add_to_leaf_lists(p);
      ++stats.groups_removed;
      ++stats.parents_reinstated;
    }
  }

  // --- 2. Purge now-unreferenced edges / vertices / boundary faces ---------
  // Reference counts over *all* alive elements (parents kept in the forest
  // still pin their six edges).
  std::vector<Index> edge_refs(static_cast<std::size_t>(mesh.num_edges()), 0);
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    const auto& el = mesh.element(t);
    if (!el.alive) continue;
    for (Index e : el.edges) ++edge_refs[static_cast<std::size_t>(e)];
  }
  // Deepest-first so a dying child can release its parent's bisection.
  std::vector<Index> edge_order(static_cast<std::size_t>(mesh.num_edges()));
  for (Index e = 0; e < mesh.num_edges(); ++e) edge_order[e] = e;
  std::sort(edge_order.begin(), edge_order.end(), [&](Index a, Index b) {
    return mesh.edge(a).level > mesh.edge(b).level;
  });
  for (Index e : edge_order) {
    auto& ed = mesh.edge(e);
    if (!ed.alive || ed.level == 0) continue;
    const bool children_alive =
        !ed.is_leaf() &&
        (mesh.edge(ed.child[0]).alive || mesh.edge(ed.child[1]).alive);
    if (edge_refs[static_cast<std::size_t>(e)] == 0 && !children_alive) {
      ed.alive = false;
      if (ed.parent != kInvalidIndex) {
        // Count each undone bisection once (via its first child).
        if (mesh.edge(ed.parent).child[0] == e) ++stats.edges_uncoarsened;
      }
    }
  }
  // Vertices referenced by no alive edge die (alive elements' vertices are
  // always endpoints of their alive edges, so edge refs suffice).
  std::vector<char> vert_used(static_cast<std::size_t>(mesh.num_vertices()),
                              0);
  for (Index e = 0; e < mesh.num_edges(); ++e) {
    const auto& ed = mesh.edge(e);
    if (!ed.alive) continue;
    vert_used[static_cast<std::size_t>(ed.v0)] = 1;
    vert_used[static_cast<std::size_t>(ed.v1)] = 1;
    if (ed.mid != kInvalidIndex && !ed.is_leaf() &&
        (mesh.edge(ed.child[0]).alive || mesh.edge(ed.child[1]).alive)) {
      vert_used[static_cast<std::size_t>(ed.mid)] = 1;
    }
  }
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    if (!vert_used[static_cast<std::size_t>(v)]) mesh.vertex(v).alive = false;
  }
  // Boundary faces: any face (leaf or interior node of the face tree) whose
  // edges died has had its whole element neighborhood coarsened away — it
  // dies together with all its siblings and descendants, reinstating the
  // ancestor face whose edges survive.
  for (Index f = 0; f < mesh.num_bfaces(); ++f) {
    auto& bf = mesh.bface(f);
    if (!bf.alive) continue;
    for (Index e : bf.edges) {
      if (!mesh.edge(e).alive) {
        bf.alive = false;
        break;
      }
    }
  }

  // --- 3. Compact ("objects are renumbered due to compaction") -------------
  stats.vertex_new_to_old = mesh.purge_and_compact();
  if (on_compaction) on_compaction(stats.vertex_new_to_old);

  // --- 4. Re-refine: reinstated parents whose edges are still bisected get
  //        subdivided again ("the refinement routine is then invoked to
  //        generate a valid mesh from the vertices left after coarsening").
  std::vector<char> remark(static_cast<std::size_t>(mesh.num_edges()), 0);
  bool any = false;
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    const auto& el = mesh.element(t);
    if (!el.alive || !el.is_leaf()) continue;
    for (Index e : el.edges) {
      if (!mesh.edge(e).is_leaf()) {
        remark[static_cast<std::size_t>(e)] = 1;
        any = true;
      }
    }
  }
  if (any) {
    const MarkingResult marks2 = propagate_marks(mesh, remark);
    const RefineStats rs = refine_mesh(mesh, marks2);
    stats.resubdivided_children = rs.children_created;
  }
  return stats;
}

}  // namespace plum::adapt
