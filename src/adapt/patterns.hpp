#pragma once
// Edge-marking patterns (paper §3).
//
// "The edge markings for each element are then combined to form a 6-bit
// pattern. Elements are continuously upgraded to valid patterns
// corresponding to the three allowed subdivision types until none of the
// patterns show any change."
//
// Valid patterns: no edge marked; exactly one edge (1:2 bisection); exactly
// the three edges of one face (1:4); all six edges (1:8 isotropic).

#include <cstdint>

#include "mesh/entities.hpp"

namespace plum::adapt {

using Pattern = std::uint8_t;  ///< bit k set = local edge k marked

enum class SubdivType : std::int8_t {
  kNone = 0,
  kOneToTwo = 2,
  kOneToFour = 4,
  kOneToEight = 8,
};

struct PatternClass {
  SubdivType type = SubdivType::kNone;
  int edge = -1;  ///< the bisected local edge (1:2 only)
  int face = -1;  ///< the fully marked local face (1:4 only)
  bool valid = false;
};

/// Classifies a 6-bit pattern against the three allowed subdivision types.
PatternClass classify_pattern(Pattern p);

/// Smallest valid superset of `p` — the upgrade step. If all marked edges
/// lie within one face the face is completed (1:4); otherwise all six edges
/// are marked (1:8). Idempotent on valid patterns.
Pattern upgrade_pattern(Pattern p);

/// Number of children the pattern's subdivision produces (1 for kNone).
int num_children(SubdivType t);

}  // namespace plum::adapt
