#include "util/log.hpp"

#include <cstdio>

namespace plum {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[plum %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace plum
