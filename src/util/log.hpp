#pragma once
// Minimal leveled logging to stderr. Off by default above `warn` so tests
// and benches stay quiet; benches flip to `info` for progress lines.

#include <cstdarg>

namespace plum {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace plum

#define PLUM_LOG_INFO(...) ::plum::logf(::plum::LogLevel::kInfo, __VA_ARGS__)
#define PLUM_LOG_WARN(...) ::plum::logf(::plum::LogLevel::kWarn, __VA_ARGS__)
#define PLUM_LOG_DEBUG(...) ::plum::logf(::plum::LogLevel::kDebug, __VA_ARGS__)
