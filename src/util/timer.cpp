#include "util/timer.hpp"

// Header-only today; this TU anchors the library and keeps the option of
// adding platform-specific high-resolution counters without touching users.
