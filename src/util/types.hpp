#pragma once
// Fundamental index and id types shared across all plum subsystems.
//
// Mesh entities (vertices, edges, elements, faces) and graph vertices are
// addressed with 32-bit indices: the paper's largest grid is ~392k edges,
// and the dual graph is bounded by the *initial* mesh size by design
// (DESIGN.md #4), so 32 bits leave three orders of magnitude of headroom
// while halving the memory traffic of adjacency structures.

#include <cstdint>
#include <cstddef>
#include <limits>

namespace plum {

using Index = std::int32_t;   ///< Local index of a mesh/graph entity.
using GlobalIndex = std::int64_t;  ///< Globally unique id across ranks.
using Rank = std::int32_t;    ///< Logical processor number.
using Weight = std::int64_t;  ///< Integer weight (Wcomp / Wremap sums).

/// Sentinel for "no entity" / "unassigned".
inline constexpr Index kInvalidIndex = -1;
inline constexpr GlobalIndex kInvalidGlobal = -1;
inline constexpr Rank kNoRank = -1;

/// Number of edges / faces / vertices of a tetrahedron.
inline constexpr int kTetEdges = 6;
inline constexpr int kTetFaces = 4;
inline constexpr int kTetVerts = 4;

}  // namespace plum
