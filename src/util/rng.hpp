#pragma once
// Deterministic, seedable PRNG (xoshiro256**). All randomized pieces of the
// library (matching tie-breaks, synthetic workloads, property-test inputs)
// draw from this so every run and every test is bit-reproducible.

#include <cstdint>

#include "util/assert.hpp"

namespace plum {

/// xoshiro256** by Blackman & Vigna (public domain reference constants).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) with Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    PLUM_ASSERT(bound > 0);
    // Simple modulo is fine here: bounds are tiny relative to 2^64, and the
    // bias (< bound/2^64) is far below anything our tests could observe.
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PLUM_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace plum
