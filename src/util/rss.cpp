#include "util/rss.hpp"

#include <cstdio>
#include <string>

namespace plum::util {

namespace {

/// Parses the "<digits> kB" tail of a VmRSS/VmHWM line. Returns 0 on any
/// malformed input rather than asserting: procfs formats drift and a
/// missing gauge must never kill a run.
std::int64_t parse_kb_value(std::string_view rest) {
  std::size_t i = 0;
  while (i < rest.size() && (rest[i] == ' ' || rest[i] == '\t')) ++i;
  std::int64_t kb = 0;
  bool any = false;
  while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
    kb = kb * 10 + (rest[i] - '0');
    any = true;
    ++i;
  }
  return any ? kb * 1024 : 0;
}

}  // namespace

RssSample parse_proc_status(std::string_view text) {
  RssSample out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    if (line.rfind("VmRSS:", 0) == 0) {
      out.vm_rss_bytes = parse_kb_value(line.substr(6));
    } else if (line.rfind("VmHWM:", 0) == 0) {
      out.vm_hwm_bytes = parse_kb_value(line.substr(6));
    }
    pos = eol + 1;
  }
  return out;
}

RssSample read_rss() {
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return RssSample{};
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return parse_proc_status(text);
}

}  // namespace plum::util
