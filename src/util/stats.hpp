#pragma once
// Small numeric helpers for load statistics (imbalance factors, maxima).

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace plum {

/// Sum of a vector of arithmetic values.
template <typename T>
[[nodiscard]] T vec_sum(const std::vector<T>& v) {
  return std::accumulate(v.begin(), v.end(), T{});
}

/// Maximum element; requires non-empty input.
template <typename T>
[[nodiscard]] T vec_max(const std::vector<T>& v) {
  PLUM_ASSERT(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

/// Load imbalance = max / mean. 1.0 is perfectly balanced.
/// Returns 1.0 for an all-zero load vector (an empty machine is balanced).
template <typename T>
[[nodiscard]] double imbalance(const std::vector<T>& loads) {
  PLUM_ASSERT(!loads.empty());
  const double sum = static_cast<double>(vec_sum(loads));
  if (sum == 0) return 1.0;
  const double mean = sum / static_cast<double>(loads.size());
  return static_cast<double>(vec_max(loads)) / mean;
}

}  // namespace plum
