#pragma once
// Always-on invariant checking. Unlike <cassert> these fire in release
// builds too: the adaption/remapping data structures are intricate enough
// that silent corruption is far more expensive than the branch.

#include <cstdio>
#include <cstdlib>

namespace plum::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "plum assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace plum::detail

#define PLUM_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::plum::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
  } while (0)

#define PLUM_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::plum::detail::assert_fail(#expr, __FILE__, __LINE__, msg);         \
  } while (0)
