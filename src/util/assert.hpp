#pragma once
// Always-on invariant checking. Unlike <cassert> these fire in release
// builds too: the adaption/remapping data structures are intricate enough
// that silent corruption is far more expensive than the branch.
//
// Crash forensics: assert_fail() invokes an optional process-wide abort
// hook exactly once before abort(). obs::install_postmortem() uses it to
// flush the flight-recorder rings and depot telemetry to a
// POSTMORTEM_<name>.json document, so a failed PLUM_ASSERT (including the
// pipe transport's rank-death path) leaves evidence behind instead of
// destroying it. Callers with extra context (e.g. a dead depot child's
// captured stderr) attach it via note_crash() before asserting; the hook
// reads it back through crash_notes().

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace plum::detail {

/// Everything the failing assertion knows, handed to the abort hook.
struct AbortInfo {
  const char* expr = nullptr;
  const char* file = nullptr;
  int line = 0;
  const char* msg = nullptr;  ///< may be null
};

using AbortHook = void (*)(const AbortInfo&);

/// Process-wide abort hook slot (header-only storage).
inline AbortHook& abort_hook_slot() {
  static AbortHook hook = nullptr;
  return hook;
}

/// Installs (or clears, with nullptr) the hook run once before abort().
/// Returns the previous hook so scoped installers can restore it.
inline AbortHook set_abort_hook(AbortHook hook) {
  AbortHook& slot = abort_hook_slot();
  const AbortHook prev = slot;
  slot = hook;
  return prev;
}

/// Free-form key -> text notes attached to the next abort (e.g. the dead
/// depot child's captured stderr). Host-side only; not thread-safe against
/// concurrent note_crash() calls, which is fine because notes are written
/// on the coordinating thread immediately before the assert fires.
inline std::map<std::string, std::string>& crash_notes() {
  static std::map<std::string, std::string> notes;
  return notes;
}

inline void note_crash(const std::string& key, std::string text) {
  crash_notes()[key] = std::move(text);
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "plum assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  // Run the postmortem hook at most once, even if the dump itself asserts.
  static std::atomic<bool> dumping{false};
  if (!dumping.exchange(true)) {
    if (const AbortHook hook = abort_hook_slot()) {
      hook(AbortInfo{expr, file, line, msg});
    }
  }
  std::abort();
}

}  // namespace plum::detail

#define PLUM_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::plum::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
  } while (0)

#define PLUM_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::plum::detail::assert_fail(#expr, __FILE__, __LINE__, msg);         \
  } while (0)
