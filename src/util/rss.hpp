#pragma once
// Resident-set-size sampling from /proc/self/status. Lives in util (not
// obs) because both the observability layer (host RSS gauges in the trace)
// and the runtime's pipe depot children (DepotStats heap fields) need it,
// and plum_runtime must not depend on plum_obs.
//
// RSS numbers are wall-class observables: they depend on the allocator,
// the kernel, and whatever else the process did. Everything here is
// excluded from deterministic views by the layers that embed it.

#include <cstdint>
#include <string_view>

namespace plum::util {

/// One sample of the process's resident memory, in bytes. Zero fields mean
/// the corresponding line was absent (non-Linux or unreadable procfs).
struct RssSample {
  std::int64_t vm_rss_bytes = 0;  ///< VmRSS: current resident set
  std::int64_t vm_hwm_bytes = 0;  ///< VmHWM: peak resident set ("high water")
};

/// Parses the text of a /proc/<pid>/status file (exposed separately so the
/// parser is unit-testable without procfs).
[[nodiscard]] RssSample parse_proc_status(std::string_view text);

/// Reads /proc/self/status. Returns a zero sample if it cannot be read.
[[nodiscard]] RssSample read_rss();

}  // namespace plum::util
