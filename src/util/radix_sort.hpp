#pragma once
// LSD radix sort on 64-bit keys. The paper's heuristic reassignment
// algorithm (§4.4) sorts similarity-matrix entries in descending order with
// a radix sort to stay within its O(E) bound; we provide the same tool.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace plum {

/// Sorts `items` ascending by `key(item)` (a uint64). Stable.
template <typename T, typename KeyFn>
void radix_sort_by_key(std::vector<T>& items, KeyFn key) {
  constexpr int kBits = 8;
  constexpr int kBuckets = 1 << kBits;
  constexpr std::uint64_t kMask = kBuckets - 1;

  std::vector<T> scratch(items.size());
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * kBits;
    std::array<std::size_t, kBuckets> count{};
    bool any_nonzero = false;
    for (const T& it : items) {
      const std::uint64_t k = (key(it) >> shift) & kMask;
      any_nonzero |= (k != 0);
      ++count[k];
    }
    // All remaining digits zero once an entire pass lands in bucket 0.
    if (!any_nonzero && count[0] == items.size()) {
      if (pass == 0) continue;  // keys may still have higher digits
      break;
    }
    std::size_t offset = 0;
    std::array<std::size_t, kBuckets> start{};
    for (int b = 0; b < kBuckets; ++b) {
      start[b] = offset;
      offset += count[b];
    }
    for (T& it : items) scratch[start[(key(it) >> shift) & kMask]++] = it;
    items.swap(scratch);
  }
}

/// Sorts descending by key (the order the greedy mapper consumes entries).
/// Ascending sort + reverse: complementing keys would set the high bits and
/// force all eight radix passes even for small keys.
template <typename T, typename KeyFn>
void radix_sort_descending(std::vector<T>& items, KeyFn key) {
  radix_sort_by_key(items, key);
  std::reverse(items.begin(), items.end());
}

}  // namespace plum
