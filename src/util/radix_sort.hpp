#pragma once
// LSD radix sort on 64-bit keys. The paper's heuristic reassignment
// algorithm (§4.4) sorts similarity-matrix entries in descending order with
// a radix sort to stay within its O(E) bound; we provide the same tool.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace plum {

/// Sorts `items` ascending by `key(item)` (a uint64). Stable.
template <typename T, typename KeyFn>
void radix_sort_by_key(std::vector<T>& items, KeyFn key) {
  constexpr int kBits = 8;
  constexpr int kBuckets = 1 << kBits;
  constexpr std::uint64_t kMask = kBuckets - 1;

  std::vector<T> scratch(items.size());
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * kBits;
    std::array<std::size_t, kBuckets> count{};
    // Early exit must test the *remaining* (current and higher) digits, not
    // just the current one: a pass whose digit is all zero can still be
    // followed by nonzero higher digits (e.g. keys that are multiples of
    // 256). Once every key's remaining bits are zero the items are already
    // fully ordered by the processed digits, so we stop — for an all-zero
    // input that is a single counting pass with no scatter.
    bool any_remaining = false;
    for (const T& it : items) {
      const std::uint64_t rest = key(it) >> shift;
      any_remaining |= (rest != 0);
      ++count[rest & kMask];
    }
    if (!any_remaining) break;
    // Current digit all zero (higher digits pending): the scatter would be
    // an identity permutation, so skip straight to the next pass.
    if (count[0] == items.size()) continue;
    std::size_t offset = 0;
    std::array<std::size_t, kBuckets> start{};
    for (int b = 0; b < kBuckets; ++b) {
      start[b] = offset;
      offset += count[b];
    }
    for (T& it : items) scratch[start[(key(it) >> shift) & kMask]++] = it;
    items.swap(scratch);
  }
}

/// Sorts descending by key (the order the greedy mapper consumes entries).
/// Stable: equal keys keep their original relative order, matching the
/// paper's §4.4 stable-sort pseudocode — the greedy mapper consumes tied
/// similarity entries in enumeration order, so assignments cannot depend on
/// how the entry list was built. Implemented as reverse + stable ascending
/// sort + reverse (a reversed stable ascending sort of the reversed input
/// is a stable descending sort); complementing keys instead would set the
/// high bits and force all eight radix passes even for small keys.
template <typename T, typename KeyFn>
void radix_sort_descending(std::vector<T>& items, KeyFn key) {
  std::reverse(items.begin(), items.end());
  radix_sort_by_key(items, key);
  std::reverse(items.begin(), items.end());
}

}  // namespace plum
