#pragma once
// Wall-clock timing used for the genuinely-measured results (e.g. Table 2
// reassignment times are real wall-clock of our matchers, as in the paper).

#include <chrono>
#include <string>

namespace plum {

/// Monotonic stopwatch. start() resets; seconds() reads without stopping.
class Timer {
 public:
  Timer() { start(); }

  void start() { t0_ = Clock::now(); }

  /// Elapsed seconds since the last start().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0_;
};

/// Accumulates named phase timings (adaption / partitioning / remapping...).
class PhaseTimer {
 public:
  void begin() { timer_.start(); }

  /// Ends the current measurement and adds it to `total_`.
  double end() {
    const double s = timer_.seconds();
    total_ += s;
    ++count_;
    return s;
  }

  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] long count() const { return count_; }

  void reset() {
    total_ = 0;
    count_ = 0;
  }

 private:
  Timer timer_;
  double total_ = 0;
  long count_ = 0;
};

}  // namespace plum
