#include "solver/dual_metrics.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace plum::solver {

using mesh::Vec3;

std::vector<Index> DualMetrics::active_vertices() const {
  std::vector<Index> out;
  for (Index v = 0; v < static_cast<Index>(cell_volume.size()); ++v) {
    if (cell_volume[static_cast<std::size_t>(v)] > 0) out.push_back(v);
  }
  return out;
}

DualMetrics build_dual_metrics(const mesh::TetMesh& mesh) {
  DualMetrics m;
  const Index nv = mesh.num_vertices();
  const Index ne = mesh.num_edges();
  m.cell_volume.assign(static_cast<std::size_t>(nv), 0.0);
  m.boundary_area.assign(static_cast<std::size_t>(nv), Vec3{});
  m.min_edge_length.assign(static_cast<std::size_t>(nv),
                           std::numeric_limits<double>::max());

  // Active edges and a dense slot map for accumulation.
  std::vector<Index> slot(static_cast<std::size_t>(ne), kInvalidIndex);
  for (Index e = 0; e < ne; ++e) {
    if (mesh.edge_elements(e).empty()) continue;
    slot[static_cast<std::size_t>(e)] = static_cast<Index>(m.edges.size());
    m.edges.push_back(e);
    const double len = mesh.edge_length(e);
    for (Index v : {mesh.edge(e).v0, mesh.edge(e).v1}) {
      m.min_edge_length[static_cast<std::size_t>(v)] =
          std::min(m.min_edge_length[static_cast<std::size_t>(v)], len);
    }
  }
  m.edge_area.assign(m.edges.size(), Vec3{});

  // Per leaf tet: volumes and dual-face contributions.
  for (Index t = 0; t < mesh.num_elements(); ++t) {
    const auto& el = mesh.element(t);
    if (!el.alive || !el.is_leaf()) continue;

    const Vec3 p[4] = {
        mesh.vertex(el.verts[0]).pos, mesh.vertex(el.verts[1]).pos,
        mesh.vertex(el.verts[2]).pos, mesh.vertex(el.verts[3]).pos};
    const double vol = mesh.element_volume(t);
    PLUM_ASSERT(vol > 0);
    for (Index v : el.verts) {
      m.cell_volume[static_cast<std::size_t>(v)] += vol / 4.0;
    }
    const Vec3 cT = (p[0] + p[1] + p[2] + p[3]) / 4.0;

    // Face centroids, face f opposite local vertex f.
    Vec3 cF[4];
    for (int f = 0; f < kTetFaces; ++f) {
      cF[f] = (p[mesh::kFaceVerts[f][0]] + p[mesh::kFaceVerts[f][1]] +
               p[mesh::kFaceVerts[f][2]]) /
              3.0;
    }

    for (int k = 0; k < kTetEdges; ++k) {
      const int a = mesh::kEdgeVerts[k][0];
      const int b = mesh::kEdgeVerts[k][1];
      const Vec3 mid = mesh::midpoint(p[a], p[b]);
      // The two faces containing edge (a,b) are those NOT opposite a or b.
      int shared[2];
      int n = 0;
      for (int f = 0; f < kTetFaces; ++f) {
        if (f != a && f != b) shared[n++] = f;
      }
      // Two triangles (mid, cF, cT), each oriented along b - a before
      // summing (their raw normals can disagree).
      const Vec3 dir = p[b] - p[a];
      Vec3 tri0 = cross(cF[shared[0]] - mid, cT - mid) * 0.5;
      if (dot(tri0, dir) < 0) tri0 = tri0 * -1.0;
      Vec3 tri1 = cross(cF[shared[1]] - mid, cT - mid) * 0.5;
      if (dot(tri1, dir) < 0) tri1 = tri1 * -1.0;
      Vec3 area = tri0 + tri1;

      const Index e = el.edges[k];
      const Index s = slot[static_cast<std::size_t>(e)];
      PLUM_ASSERT(s != kInvalidIndex);
      // Flip to the edge's canonical v0 -> v1 direction.
      const bool canonical = mesh.edge(e).v0 == el.verts[a];
      m.edge_area[static_cast<std::size_t>(s)] +=
          canonical ? area : area * -1.0;
    }
  }

  // Boundary closure from leaf boundary faces.
  for (Index f = 0; f < mesh.num_bfaces(); ++f) {
    const auto& bf = mesh.bface(f);
    if (!bf.alive || !bf.is_leaf()) continue;
    const Vec3 a = mesh.vertex(bf.verts[0]).pos;
    const Vec3 b = mesh.vertex(bf.verts[1]).pos;
    const Vec3 c = mesh.vertex(bf.verts[2]).pos;
    Vec3 area = cross(b - a, c - a) * 0.5;
    // Orient outward: away from the centroid of the adjacent element (the
    // edge-sharing element that actually contains all three face vertices).
    const auto& owners = mesh.edge_elements(bf.edges[0]);
    Index owner = kInvalidIndex;
    for (Index t : owners) {
      const auto& vs = mesh.element(t).verts;
      int hits = 0;
      for (Index fv : bf.verts) {
        for (Index tv : vs) hits += (tv == fv);
      }
      if (hits == 3) {
        owner = t;
        break;
      }
    }
    PLUM_ASSERT_MSG(owner != kInvalidIndex, "boundary face without element");
    const Vec3 inward = mesh.element_centroid(owner) - (a + b + c) / 3.0;
    if (dot(area, inward) > 0) area = area * -1.0;
    for (Index v : bf.verts) {
      m.boundary_area[static_cast<std::size_t>(v)] += area / 3.0;
    }
  }
  return m;
}

}  // namespace plum::solver
