#include "solver/euler.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace plum::solver {

using mesh::Vec3;

EulerSolver::EulerSolver(mesh::TetMesh* mesh, EulerOptions opt)
    : mesh_(mesh), opt_(opt) {
  PLUM_ASSERT(mesh != nullptr);
  u_.assign(static_cast<std::size_t>(mesh_->num_vertices()),
            State{1.0, 0.0, 0.0, 0.0, 1.0 / (opt_.gamma - 1.0)});
  rebuild();
}

void EulerSolver::rebuild(const std::vector<Index>& vertex_remap) {
  if (!vertex_remap.empty()) remap_solution(vertex_remap);
  u_.resize(static_cast<std::size_t>(mesh_->num_vertices()),
            State{1.0, 0.0, 0.0, 0.0, 1.0 / (opt_.gamma - 1.0)});
  metrics_ = build_dual_metrics(*mesh_);
}

void EulerSolver::remap_solution(const std::vector<Index>& vertex_new_to_old) {
  std::vector<State> nu(vertex_new_to_old.size(),
                        State{1.0, 0.0, 0.0, 0.0, 1.0 / (opt_.gamma - 1.0)});
  for (std::size_t v = 0; v < vertex_new_to_old.size(); ++v) {
    if (vertex_new_to_old[v] != kInvalidIndex) {
      nu[v] = u_[static_cast<std::size_t>(vertex_new_to_old[v])];
    }
  }
  u_ = std::move(nu);
}

double EulerSolver::pressure(const State& s) const {
  const double rho = s[0];
  const double ke = 0.5 * (s[1] * s[1] + s[2] * s[2] + s[3] * s[3]) / rho;
  return (opt_.gamma - 1.0) * (s[4] - ke);
}

double EulerSolver::max_wave_speed(const State& s) const {
  const double rho = std::max(s[0], 1e-12);
  const double vel =
      std::sqrt(s[1] * s[1] + s[2] * s[2] + s[3] * s[3]) / rho;
  const double p = std::max(pressure(s), 1e-12);
  return vel + std::sqrt(opt_.gamma * p / rho);
}

namespace {

/// Physical Euler flux projected on a direction n (not normalized; the
/// magnitude carries the interface area).
State flux_dot_n(const State& s, const Vec3& n, double p) {
  const double rho = s[0];
  const Vec3 vel{s[1] / rho, s[2] / rho, s[3] / rho};
  const double vn = dot(vel, n);
  return State{
      rho * vn,
      s[1] * vn + p * n.x,
      s[2] * vn + p * n.y,
      s[3] * vn + p * n.z,
      (s[4] + p) * vn,
  };
}

}  // namespace

std::vector<std::array<Vec3, kNumVars>> EulerSolver::nodal_gradients(
    const std::vector<State>& u) const {
  std::vector<std::array<Vec3, kNumVars>> grad(u.size());
  for (std::size_t k = 0; k < metrics_.edges.size(); ++k) {
    const Index e = metrics_.edges[k];
    const Index a = mesh_->edge(e).v0;
    const Index b = mesh_->edge(e).v1;
    const Vec3 n = metrics_.edge_area[k];  // oriented a -> b
    for (int c = 0; c < kNumVars; ++c) {
      // Green-Gauss with the closure identity folded in:
      // grad_a += (u_b - u_a)/2 * n_out(a), and symmetrically for b.
      const double half_jump = 0.5 * (u[static_cast<std::size_t>(b)][c] -
                                      u[static_cast<std::size_t>(a)][c]);
      grad[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] +=
          n * half_jump;
      grad[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)] +=
          n * half_jump;  // -(-n) * half_jump: outward from b is -n
    }
  }
  for (std::size_t v = 0; v < grad.size(); ++v) {
    const double vol = metrics_.cell_volume[v];
    if (vol <= 0) continue;
    for (int c = 0; c < kNumVars; ++c) {
      grad[v][static_cast<std::size_t>(c)] *= 1.0 / vol;
    }
  }
  return grad;
}

namespace {

/// minmod: 0 on sign disagreement, else the smaller-magnitude slope.
double minmod(double a, double b) {
  if (a * b <= 0) return 0;
  return std::abs(a) < std::abs(b) ? a : b;
}

}  // namespace

void EulerSolver::compute_residual(const std::vector<State>& u,
                                   std::vector<State>& res) const {
  res.assign(u.size(), State{});

  std::vector<std::array<Vec3, kNumVars>> grad;
  if (opt_.second_order) grad = nodal_gradients(u);

  // Interior fluxes: one pass over active edges (Rusanov).
  for (std::size_t k = 0; k < metrics_.edges.size(); ++k) {
    const Index e = metrics_.edges[k];
    const Index a = mesh_->edge(e).v0;
    const Index b = mesh_->edge(e).v1;
    const Vec3 n = metrics_.edge_area[k];  // oriented a -> b
    const double area = norm(n);
    if (area <= 0) continue;

    State ua = u[static_cast<std::size_t>(a)];
    State ub = u[static_cast<std::size_t>(b)];
    if (opt_.second_order) {
      // Limited MUSCL extrapolation to the interface (edge midpoint).
      const Vec3 dab =
          mesh_->vertex(b).pos - mesh_->vertex(a).pos;
      for (int c = 0; c < kNumVars; ++c) {
        const double edge_jump = ub[c] - ua[c];
        const double sa =
            dot(grad[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)],
                dab);
        const double sb =
            dot(grad[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)],
                dab);
        ua[c] += 0.5 * minmod(sa, edge_jump);
        ub[c] -= 0.5 * minmod(sb, edge_jump);
      }
      // Guard positivity: fall back to first order on a bad extrapolation.
      if (ua[0] <= 0 || ub[0] <= 0 || pressure(ua) <= 0 ||
          pressure(ub) <= 0) {
        ua = u[static_cast<std::size_t>(a)];
        ub = u[static_cast<std::size_t>(b)];
      }
    }
    const State fa = flux_dot_n(ua, n, pressure(ua));
    const State fb = flux_dot_n(ub, n, pressure(ub));
    const double lam =
        std::max(max_wave_speed(ua), max_wave_speed(ub)) * area;
    for (int c = 0; c < kNumVars; ++c) {
      const double f = 0.5 * (fa[c] + fb[c]) - 0.5 * lam * (ub[c] - ua[c]);
      res[static_cast<std::size_t>(a)][c] -= f;
      res[static_cast<std::size_t>(b)][c] += f;
    }
  }

  // Slip-wall closure: only the pressure term crosses the boundary.
  for (Index v = 0; v < static_cast<Index>(u.size()); ++v) {
    const Vec3 nb = metrics_.boundary_area[static_cast<std::size_t>(v)];
    if (nb.x == 0 && nb.y == 0 && nb.z == 0) continue;
    const double p = pressure(u[static_cast<std::size_t>(v)]);
    res[static_cast<std::size_t>(v)][1] -= p * nb.x;
    res[static_cast<std::size_t>(v)][2] -= p * nb.y;
    res[static_cast<std::size_t>(v)][3] -= p * nb.z;
  }
}

StepStats EulerSolver::step() {
  const auto active = metrics_.active_vertices();

  // CFL-limited dt over active vertices.
  double dt = std::numeric_limits<double>::max();
  for (Index v : active) {
    const double h = metrics_.min_edge_length[static_cast<std::size_t>(v)];
    const double c = max_wave_speed(u_[static_cast<std::size_t>(v)]);
    dt = std::min(dt, opt_.cfl * h / std::max(c, 1e-12));
  }

  // RK2 (midpoint): u1 = u + dt/2 * R(u)/V; u  = u + dt * R(u1)/V.
  std::vector<State> res;
  compute_residual(u_, res);
  std::vector<State> u1 = u_;
  for (Index v : active) {
    const double inv_vol =
        1.0 / metrics_.cell_volume[static_cast<std::size_t>(v)];
    for (int c = 0; c < kNumVars; ++c) {
      u1[static_cast<std::size_t>(v)][c] +=
          0.5 * dt * res[static_cast<std::size_t>(v)][c] * inv_vol;
    }
  }
  compute_residual(u1, res);
  for (Index v : active) {
    const double inv_vol =
        1.0 / metrics_.cell_volume[static_cast<std::size_t>(v)];
    for (int c = 0; c < kNumVars; ++c) {
      u_[static_cast<std::size_t>(v)][c] +=
          dt * res[static_cast<std::size_t>(v)][c] * inv_vol;
    }
  }

  StepStats s;
  s.dt = dt;
  s.edge_flux_evals = 2 * static_cast<std::int64_t>(metrics_.edges.size());
  return s;
}

std::int64_t EulerSolver::run(int nsteps) {
  std::int64_t work = 0;
  for (int i = 0; i < nsteps; ++i) work += step().edge_flux_evals;
  return work;
}

std::vector<double> EulerSolver::density_field() const {
  std::vector<double> rho(u_.size(), 0.0);
  for (std::size_t v = 0; v < u_.size(); ++v) rho[v] = u_[v][0];
  return rho;
}

State EulerSolver::totals() const {
  State t{};
  for (Index v = 0; v < static_cast<Index>(u_.size()); ++v) {
    const double vol = metrics_.cell_volume[static_cast<std::size_t>(v)];
    for (int c = 0; c < kNumVars; ++c) {
      t[c] += vol * u_[static_cast<std::size_t>(v)][c];
    }
  }
  return t;
}

void EulerSolver::interpolate_midpoint(Index edge, Index mid) {
  const Index a = mesh_->edge(edge).v0;
  const Index b = mesh_->edge(edge).v1;
  if (static_cast<std::size_t>(mid) >= u_.size()) {
    u_.resize(static_cast<std::size_t>(mid) + 1,
              State{1.0, 0.0, 0.0, 0.0, 1.0 / (opt_.gamma - 1.0)});
  }
  for (int c = 0; c < kNumVars; ++c) {
    u_[static_cast<std::size_t>(mid)][c] =
        0.5 * (u_[static_cast<std::size_t>(a)][c] +
               u_[static_cast<std::size_t>(b)][c]);
  }
}

}  // namespace plum::solver
