#pragma once
// Initial conditions for the Euler substrate. The blast case plays the role
// of the paper's rotor acoustics problem: a strong localized feature whose
// motion concentrates the error indicator in a subregion of the domain,
// which is exactly what drives nontrivial load imbalance.

#include "solver/euler.hpp"

namespace plum::solver {

struct BlastSpec {
  mesh::Vec3 center{0.5, 0.5, 0.5};
  double radius = 0.15;
  double inner_pressure = 10.0;
  double outer_pressure = 1.0;
  double density = 1.0;
  double gamma = 1.4;
};

/// Spherical high-pressure region (Sod-like radial blast).
void init_blast(const mesh::TetMesh& mesh, std::vector<State>& u,
                const BlastSpec& spec = {});

struct PulseSpec {
  mesh::Vec3 center{0.3, 0.5, 0.5};
  double width = 0.12;
  double amplitude = 0.3;
  double gamma = 1.4;
};

/// Smooth Gaussian density/pressure pulse (acoustic benchmark).
void init_pulse(const mesh::TetMesh& mesh, std::vector<State>& u,
                const PulseSpec& spec = {});

/// Uniform quiescent state.
void init_uniform(const mesh::TetMesh& mesh, std::vector<State>& u,
                  double rho = 1.0, double p = 1.0, double gamma = 1.4);

}  // namespace plum::solver
