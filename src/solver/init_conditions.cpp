#include "solver/init_conditions.hpp"

#include <cmath>

namespace plum::solver {

namespace {

State quiescent(double rho, double p, double gamma) {
  return State{rho, 0.0, 0.0, 0.0, p / (gamma - 1.0)};
}

}  // namespace

void init_blast(const mesh::TetMesh& mesh, std::vector<State>& u,
                const BlastSpec& spec) {
  u.assign(static_cast<std::size_t>(mesh.num_vertices()),
           quiescent(spec.density, spec.outer_pressure, spec.gamma));
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    const auto d = mesh.vertex(v).pos - spec.center;
    if (norm(d) < spec.radius) {
      u[static_cast<std::size_t>(v)] =
          quiescent(spec.density, spec.inner_pressure, spec.gamma);
    }
  }
}

void init_pulse(const mesh::TetMesh& mesh, std::vector<State>& u,
                const PulseSpec& spec) {
  u.assign(static_cast<std::size_t>(mesh.num_vertices()),
           quiescent(1.0, 1.0, spec.gamma));
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    const auto d = mesh.vertex(v).pos - spec.center;
    const double r2 = dot(d, d);
    const double bump =
        spec.amplitude * std::exp(-r2 / (2.0 * spec.width * spec.width));
    u[static_cast<std::size_t>(v)] =
        quiescent(1.0 + bump, 1.0 + spec.gamma * bump, spec.gamma);
  }
}

void init_uniform(const mesh::TetMesh& mesh, std::vector<State>& u,
                  double rho, double p, double gamma) {
  u.assign(static_cast<std::size_t>(mesh.num_vertices()),
           quiescent(rho, p, gamma));
}

}  // namespace plum::solver
