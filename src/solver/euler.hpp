#pragma once
// Edge-based vertex-centered finite-volume solver for the 3D compressible
// Euler equations — the flow-solver substrate of the framework (paper §2).
//
// Scheme: Rusanov (local Lax-Friedrichs) fluxes over median-dual interfaces
// accumulated in a single loop over active edges (the edge-based structure
// that makes the solver "particularly compatible with our mesh adaption
// procedure"), slip-wall boundary closure, explicit 2-stage Runge-Kutta in
// time with a CFL-limited step.
//
// Substitution note (DESIGN.md §3): the paper runs a rotor-blade hover case;
// any solution with localized features drives the same adaption/load-balance
// machinery, so the examples use a spherical blast (see init_conditions).

#include <array>
#include <vector>

#include "solver/dual_metrics.hpp"

namespace plum::solver {

inline constexpr int kNumVars = 5;  ///< rho, rho*u, rho*v, rho*w, E
using State = std::array<double, kNumVars>;

struct EulerOptions {
  double gamma = 1.4;
  double cfl = 0.4;
  /// Piecewise-linear reconstruction (paper §2): Green-Gauss nodal
  /// gradients + minmod-limited MUSCL extrapolation at the dual interfaces.
  /// false = first-order (the parallel solver always runs first-order).
  bool second_order = false;
};

struct StepStats {
  double dt = 0;
  std::int64_t edge_flux_evals = 0;  ///< work units of the iteration
};

class EulerSolver {
 public:
  /// Binds to `mesh`'s current computational mesh. Call rebuild() after any
  /// adaption; the per-vertex solution array survives (it is indexed by
  /// vertex id and interpolated through TetMesh::on_bisect).
  explicit EulerSolver(mesh::TetMesh* mesh, EulerOptions opt = {});

  /// Re-derives dual metrics after refinement/coarsening. `vertex_remap`
  /// (new size, old index per new vertex or kInvalidIndex) must be supplied
  /// after coarsening compaction; pass {} if vertex ids are unchanged.
  void rebuild(const std::vector<Index>& vertex_remap = {});

  /// Permutes only the solution array (no metric rebuild) — the coarsening
  /// on_compaction hook, fired before the conformity re-refinement.
  void remap_solution(const std::vector<Index>& vertex_new_to_old);

  /// One explicit RK2 step at the CFL-limited dt; returns work stats.
  StepStats step();

  /// Runs n steps; returns accumulated edge-flux work.
  std::int64_t run(int nsteps);

  [[nodiscard]] const std::vector<State>& solution() const { return u_; }
  std::vector<State>& solution() { return u_; }

  /// Density per vertex — the field the error indicator consumes.
  [[nodiscard]] std::vector<double> density_field() const;

  /// Total mass / momentum / energy over the dual cells (conservation).
  [[nodiscard]] State totals() const;

  /// Interpolation hook body: mid = (a + b) / 2 (paper §3). Exposed so the
  /// framework can register it on TetMesh::on_bisect.
  void interpolate_midpoint(Index edge, Index mid);

  [[nodiscard]] const DualMetrics& metrics() const { return metrics_; }

  /// Pressure from a conserved state (unit test hook).
  [[nodiscard]] double pressure(const State& s) const;

  /// Green-Gauss nodal gradients of all conserved variables over the dual
  /// cells (public for tests; recomputed per residual when second_order).
  [[nodiscard]] std::vector<std::array<mesh::Vec3, kNumVars>>
  nodal_gradients(const std::vector<State>& u) const;

 private:
  void compute_residual(const std::vector<State>& u,
                        std::vector<State>& res) const;
  [[nodiscard]] double max_wave_speed(const State& s) const;

  mesh::TetMesh* mesh_;
  EulerOptions opt_;
  DualMetrics metrics_;
  std::vector<State> u_;  ///< conserved state per vertex id
};

}  // namespace plum::solver
