#pragma once
// Median-dual metrics for a vertex-centered edge-based finite-volume scheme
// (the data layout of the paper's Euler solver, §2: unknowns at vertices,
// fluxes across nonoverlapping polyhedral control volumes, edge-based
// loops).
//
// For each active edge (a,b) the dual interface between control volumes a
// and b is a polygon stitched from, per incident tet: two triangles
// (edge-midpoint, face-centroid, tet-centroid). We accumulate its directed
// area (oriented a -> b). Control volumes are the median-dual cells:
// V_a = sum over incident tets of |T| / 4. Boundary closure: each boundary
// triangle contributes area/3 to each of its vertices' boundary normals.

#include <vector>

#include "mesh/tet_mesh.hpp"

namespace plum::solver {

struct DualMetrics {
  /// Active edge list (edges with at least one leaf element).
  std::vector<Index> edges;
  /// Directed dual-face area per active edge, oriented v0 -> v1.
  std::vector<mesh::Vec3> edge_area;
  /// Median-dual volume per vertex (0 for inactive vertices).
  std::vector<double> cell_volume;
  /// Outward boundary-normal area per vertex (closure of the dual surface).
  std::vector<mesh::Vec3> boundary_area;
  /// Shortest incident active-edge length per vertex (CFL estimate).
  std::vector<double> min_edge_length;

  /// Vertices with nonzero dual volume (the solver's unknowns).
  [[nodiscard]] std::vector<Index> active_vertices() const;
};

/// Builds metrics over the current computational mesh (leaf elements).
DualMetrics build_dual_metrics(const mesh::TetMesh& mesh);

}  // namespace plum::solver
