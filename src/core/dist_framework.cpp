#include "core/dist_framework.hpp"

#include <algorithm>

#include "adapt/error_indicator.hpp"
#include "obs/critical_path.hpp"
#include "partition/quality.hpp"
#include "pmesh/migrate.hpp"
#include "pmesh/parallel_adapt.hpp"
#include "pmesh/parallel_coarsen.hpp"
#include "runtime/collectives.hpp"
#include "util/assert.hpp"
#include "util/rss.hpp"
#include "util/stats.hpp"

namespace plum::core {

namespace {

/// Per-rank refinement seeds: active local edges with error > threshold.
/// Shared copies mark consistently because the error field is replicated.
std::vector<std::vector<char>> threshold_marks(
    const pmesh::DistMesh& dm,
    const std::vector<std::vector<double>>& err_per_rank, double threshold) {
  // plum-scale: host-only -- host driver staging for the initial scatter, never rank-resident
  std::vector<std::vector<char>> seeds(
      static_cast<std::size_t>(dm.nranks()));
  for (Rank r = 0; r < dm.nranks(); ++r) {
    const auto& lm = dm.local(r);
    auto& s = seeds[static_cast<std::size_t>(r)];
    s.assign(static_cast<std::size_t>(lm.mesh.num_edges()), 0);
    const auto& err = err_per_rank[static_cast<std::size_t>(r)];
    for (Index e = 0; e < lm.mesh.num_edges(); ++e) {
      if (!lm.mesh.edge_elements(e).empty() &&
          err[static_cast<std::size_t>(e)] > threshold) {
        s[static_cast<std::size_t>(e)] = 1;
      }
    }
  }
  return seeds;
}

/// Per-rank error fields from the parallel solution.
std::vector<std::vector<double>> rank_errors(
    const pmesh::DistMesh& dm, const pmesh::ParallelEulerSolver& solver) {
  // plum-scale: host-only -- host driver gather of per-rank error lists
  std::vector<std::vector<double>> err(static_cast<std::size_t>(dm.nranks()));
  for (Rank r = 0; r < dm.nranks(); ++r) {
    err[static_cast<std::size_t>(r)] = adapt::edge_error(
        dm.local(r).mesh, solver.density_field(r), 1.0);
  }
  return err;
}

}  // namespace

DistFramework::DistFramework(mesh::TetMesh initial_global,
                             FrameworkOptions opt)
    : opt_(opt),
      scope_(opt_.nranks, opt_.scope_ring_capacity),
      mem_(opt_.nranks, opt_.arena_chunk_bytes) {
  PLUM_ASSERT(opt_.nranks >= 1);
  if (!opt_.replay_path.empty()) {
    std::string err;
    const bool loaded =
        sim::ReplayBook::load(opt_.replay_path, &replay_book_, &err);
    PLUM_ASSERT_MSG(loaded, "replay book failed to load");
    replay_ = true;
    opt_.calibration.enabled = true;
  }
  calib_ = sim::Calibration(opt_.machine, opt_.calibration);
  eng_ = rt::make_engine(opt_.nranks, opt_.threads, opt_.transport,
                         opt_.transport_procs);
  eng_->set_observer(&trace_);
  // plum-scope: the engine feeds the flight recorder one event per rank per
  // superstep; the trace keeps its phase stamp in sync; a failed assert
  // (including the pipe transport's rank-death path) dumps the ring.
  eng_->set_scope_sink(&scope_);
  trace_.set_flight_recorder(&scope_);
  // plum-mem: the trace's phase scopes stamp the tracker; the heap section
  // joins trace().to_json().
  trace_.set_memory_tracker(&mem_);
  obs::install_postmortem({opt_.scope_name, &scope_, &eng_->transport()});
  if (!opt_.scope_stream.empty()) {
    stream_ = std::make_unique<obs::ScopeStreamWriter>(opt_.scope_stream);
  }

  dual_ = initial_global.build_initial_dual();
  partition::MultilevelOptions popt;
  popt.nparts = opt_.nranks;
  popt.seed = opt_.seed;
  popt.scratch = mem_.host_scratch();  // serial phase: host row
  root_part_ = partition::partition(dual_, popt).part;
  mem_.reset_arenas();  // constructor scratch dies here

  dm_ = std::make_unique<pmesh::DistMesh>(initial_global, root_part_,
                                          opt_.nranks);
  rebind_solver();
}

DistFramework::~DistFramework() { obs::uninstall_postmortem(); }

void DistFramework::rebind_solver() {
  solver_ = std::make_unique<pmesh::ParallelEulerSolver>(dm_.get(), eng_.get());
  if (!states_.empty()) {
    for (Rank r = 0; r < opt_.nranks; ++r) {
      auto& dst = solver_->solution(r);
      const auto& src = states_[static_cast<std::size_t>(r)];
      PLUM_ASSERT(dst.size() == src.size());
      dst = src;
    }
  }
}

DistCycleReport DistFramework::cycle() {
  const Rank P = opt_.nranks;
  const Timer cycle_timer;  // wall_s of the plum-scope stream record
  DistCycleReport rep;
  // Scratch-memory contract: phase scratch never outlives the cycle, so
  // rewinding here makes steady-state cycles reuse-only (zero chunk traffic).
  mem_.reset_arenas();
  rep.elements_before = dm_->total_active_elements();
  const int this_cycle = cycle_index_;
  // Price this cycle with the calibrated constants; while calibration is
  // disabled the model equals the static opt_.machine, so nothing changes.
  const sim::CostModel cost_model = calib_.model();
  const sim::MachineParams& mp = cost_model.params();

  // --- 1. parallel flow solver ------------------------------------------------
  std::vector<Index> solve_epr;
  const std::size_t solve_phase = trace_.phases().size();
  const std::size_t solve_step_lo = trace_.supersteps().size();
  {
    obs::PhaseScope ph(trace_, "solve");
    solver_->run(opt_.solver_steps_per_cycle);
    solve_epr = dm_->active_elements_per_rank();
    ph.set_modeled_seconds(mp.t_iter *
                           static_cast<double>(opt_.solver_steps_per_cycle) *
                           static_cast<double>(vec_max(solve_epr)));
  }
  const std::size_t solve_step_hi = trace_.supersteps().size();

  // --- 1b. distributed coarsening phase (Fig. 1) -------------------------------
  if (opt_.coarsen_fraction > 0) {
    obs::PhaseScope ph(trace_, "coarsen");
    const auto cerr = rank_errors(*dm_, *solver_);
    // Bottom-fraction threshold over owned active edges (host quantile).
    // plum-scale: host-only -- host driver gather of owned error values
    std::vector<std::vector<double>> owned(static_cast<std::size_t>(P));
    for (Rank r = 0; r < P; ++r) {
      const auto& lm = dm_->local(r);
      for (Index e = 0; e < lm.mesh.num_edges(); ++e) {
        if (lm.mesh.edge_elements(e).empty()) continue;
        owned[static_cast<std::size_t>(r)].push_back(
            cerr[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)]);
      }
    }
    const auto g = rt::gather(*eng_, owned, 0);
    std::vector<double> all;
    for (const auto& v : g) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const auto k = static_cast<std::size_t>(
        opt_.coarsen_fraction * static_cast<double>(all.size()));
    if (k > 0 && !all.empty()) {
      const double low = all[std::min(k, all.size() - 1)];
      // plum-scale: host-only -- host driver gather of coarsen marks
      std::vector<std::vector<char>> cmarks(static_cast<std::size_t>(P));
      for (Rank r = 0; r < P; ++r) {
        const auto& lm = dm_->local(r);
        auto& cm = cmarks[static_cast<std::size_t>(r)];
        cm.assign(static_cast<std::size_t>(lm.mesh.num_edges()), 0);
        for (Index e = 0; e < lm.mesh.num_edges(); ++e) {
          if (!lm.mesh.edge_elements(e).empty() &&
              cerr[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)] <
                  low) {
            cm[static_cast<std::size_t>(e)] = 1;
          }
        }
      }
      states_.clear();
      for (Rank r = 0; r < P; ++r) states_.push_back(solver_->solution(r));
      pmesh::parallel_coarsen(*dm_, *eng_, cmarks, &states_);
      rebind_solver();
    }
  }

  // --- 2. error indicator + global marking threshold --------------------------
  // Each rank contributes the error values of the edges it owns (lowest SPL
  // rank) so the host's quantile sees every edge exactly once — the same
  // gather pattern as the similarity matrix (§4.3).
  // (err/seeds/pm outlive the phase — the remap path re-derives them — so
  // this phase uses the explicit begin/end API rather than a scope.)
  const std::size_t mark_phase = trace_.begin_phase("mark");
  auto err = rank_errors(*dm_, *solver_);
  // plum-scale: host-only -- host driver gather of owned errors
  std::vector<std::vector<double>> owned_errs(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm_->local(r);
    for (Index e = 0; e < lm.mesh.num_edges(); ++e) {
      if (lm.mesh.edge_elements(e).empty()) continue;
      auto it = lm.shared_edges.find(e);
      if (it != lm.shared_edges.end()) {
        Rank owner = r;
        for (const auto& c : it->second) owner = std::min(owner, c.rank);
        if (owner != r) continue;
      }
      owned_errs[static_cast<std::size_t>(r)].push_back(
          err[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)]);
    }
  }
  const auto gathered = rt::gather(*eng_, owned_errs, 0);
  std::vector<double> all_err;
  for (const auto& v : gathered) all_err.insert(all_err.end(), v.begin(), v.end());
  std::sort(all_err.begin(), all_err.end(), std::greater<>());
  const auto want = static_cast<std::size_t>(
      opt_.refine_fraction * static_cast<double>(all_err.size()));
  const double threshold =
      (want == 0 || all_err.empty())
          ? std::numeric_limits<double>::max()
          : all_err[std::min(want, all_err.size() - 1)];

  // --- 3. parallel marking -----------------------------------------------------
  auto seeds = threshold_marks(*dm_, err, threshold);
  auto pm = pmesh::parallel_mark(*dm_, *eng_, seeds, &mem_);
  rep.mark_comm_rounds = pm.comm_rounds;
  trace_.set_modeled_seconds(
      mark_phase, mp.t_mark * static_cast<double>(rep.elements_before) *
                      static_cast<double>(1 + pm.comm_rounds));
  trace_.end_phase(mark_phase);

  // --- 4. predicted weights gathered per global root ---------------------------
  struct RootW {
    Index groot;
    Weight wcomp_pred;
    Weight wremap_pred;
    Weight wremap_cur;
  };
  // plum-scale: host-only -- host-side gather of per-rank predicted root weights
  std::vector<std::vector<RootW>> rows(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm_->local(r);
    const auto cur = lm.mesh.root_weights();
    std::vector<RootW> mine(lm.root_global.size());
    for (std::size_t lr = 0; lr < lm.root_global.size(); ++lr) {
      mine[lr] = {lm.root_global[lr], cur.wcomp[lr], cur.wremap[lr],
                  cur.wremap[lr]};
    }
    // Growth from the pending marks.
    const auto& res = pm.per_rank[static_cast<std::size_t>(r)];
    for (Index t = 0; t < lm.mesh.num_elements(); ++t) {
      const auto& el = lm.mesh.element(t);
      if (!el.alive || !el.is_leaf()) continue;
      const int kids = res.children_of(t);
      if (kids <= 1) continue;
      mine[static_cast<std::size_t>(el.root)].wcomp_pred += kids - 1;
      mine[static_cast<std::size_t>(el.root)].wremap_pred += kids;
    }
    rows[static_cast<std::size_t>(r)] = std::move(mine);
  }
  const auto hosted = rt::gather(*eng_, rows, 0);

  const Index nroots = dual_.num_vertices();
  std::vector<Weight> wcomp_pred(static_cast<std::size_t>(nroots), 0);
  std::vector<Weight> wremap_pred(static_cast<std::size_t>(nroots), 0);
  std::vector<Weight> wremap_cur(static_cast<std::size_t>(nroots), 0);
  for (const auto& row : hosted) {
    for (const auto& rw : row) {
      wcomp_pred[static_cast<std::size_t>(rw.groot)] = rw.wcomp_pred;
      wremap_pred[static_cast<std::size_t>(rw.groot)] = rw.wremap_pred;
      wremap_cur[static_cast<std::size_t>(rw.groot)] = rw.wremap_cur;
    }
  }

  // --- 5. host-side balance gate + repartition + reassignment ------------------
  // Optional calibration feedback: scale each owner's predicted Wcomp by
  // its measured per-element solve seconds (no-op unless
  // calibration.blend_measured_weights has observed per-rank data).
  sim::blend_weights(wcomp_pred, root_part_, calib_.rank_weight_scale());
  // plum-scale: host-only -- host-side load table for the rebalance decision
  std::vector<Weight> loads_old(static_cast<std::size_t>(P), 0);
  for (Index v = 0; v < nroots; ++v) {
    loads_old[static_cast<std::size_t>(root_part_[v])] +=
        wcomp_pred[static_cast<std::size_t>(v)];
  }
  rep.imbalance_old = imbalance(loads_old);
  // Predicted weights drive both the repartitioner and the end-of-cycle
  // quality gauges, so install them unconditionally.
  dual_.set_weights(wcomp_pred, wremap_pred);

  obs::GateRecord gate_rec;
  gate_rec.cycle = this_cycle;
  gate_rec.metric = sim::cost_metric_name(opt_.metric);
  gate_rec.imbalance_old = rep.imbalance_old;

  std::size_t remap_phase = 0;
  bool have_remap_phase = false;
  if (rep.imbalance_old > opt_.imbalance_trigger) {
    rep.evaluated_repartition = true;
    obs::PhaseScope gate(trace_, "gate");
    partition::MultilevelOptions popt;
    popt.nparts = P;
    popt.seed = opt_.seed;
    popt.scratch = mem_.host_scratch();  // serial phase: host row
    partition::MultilevelResult repart;
    {
      obs::PhaseScope ph(trace_, "repartition");
      repart = partition::repartition(dual_, root_part_, popt);
      ph.set_modeled_seconds(cost_model.partition_seconds(
          nroots, static_cast<int>(repart.levels.size()), P));
    }

    const auto& move_w =
        opt_.remap_before_subdivision ? wremap_cur : wremap_pred;
    // Row-wise sparse construction, as each processor would compute and ship
    // its own similarity row (paper §4.3): the gather moves O(nonzeros)
    // cells instead of a dense P x (P*F) block, and the dense fold happens
    // here on the host.
    // plum-scale: host-only -- host-side gather of sparse similarity rows (one per rank)
    std::vector<std::vector<remap::SimilarityCell>> srows(
        static_cast<std::size_t>(P));
    for (Rank r = 0; r < P; ++r) {
      srows[static_cast<std::size_t>(r)] = remap::SimilarityMatrix::
          build_row_sparse(r, root_part_, repart.part, move_w);
    }
    const auto S = remap::SimilarityMatrix::from_sparse_rows(srows, P);
    remap::Assignment assign;
    {
      obs::PhaseScope ph(trace_, "reassign");
      assign = opt_.mapper == MapperKind::kOptimalMwbg
                   ? remap::map_optimal_mwbg(S)
               : opt_.mapper == MapperKind::kOptimalBmcm
                   ? remap::map_optimal_bmcm(S)
                   : remap::map_heuristic_greedy(S);
    }
    rep.volume = remap::evaluate_assignment(S, assign);

    // plum-scale: host-only -- host-side load table for the rebalance decision
    std::vector<Weight> loads_new(static_cast<std::size_t>(P), 0);
    partition::PartVec new_part(root_part_.size());
    for (std::size_t v = 0; v < new_part.size(); ++v) {
      new_part[v] =
          assign.part_to_proc[static_cast<std::size_t>(repart.part[v])];
      loads_new[static_cast<std::size_t>(new_part[v])] += wcomp_pred[v];
    }
    rep.imbalance_new = imbalance(loads_new);

    std::vector<Weight> growth(static_cast<std::size_t>(nroots));
    for (Index v = 0; v < nroots; ++v) {
      growth[static_cast<std::size_t>(v)] =
          wremap_pred[static_cast<std::size_t>(v)] -
          wremap_cur[static_cast<std::size_t>(v)];
    }
    // plum-scale: host-only -- host-side load tables for gain accounting
    std::vector<Weight> ref_old(static_cast<std::size_t>(P), 0),
        ref_new(static_cast<std::size_t>(P), 0);
    for (Index v = 0; v < nroots; ++v) {
      ref_old[static_cast<std::size_t>(root_part_[v])] +=
          growth[static_cast<std::size_t>(v)];
      ref_new[static_cast<std::size_t>(new_part[v])] +=
          growth[static_cast<std::size_t>(v)];
    }
    rep.gain_seconds = cost_model.computational_gain(
        vec_max(loads_old), vec_max(loads_new), vec_max(ref_old),
        vec_max(ref_new));
    rep.cost_seconds = cost_model.redistribution_cost(rep.volume, opt_.metric);

    gate_rec.evaluated = true;
    gate_rec.imbalance_new = rep.imbalance_new;
    gate_rec.gain_s = rep.gain_seconds;
    gate_rec.cost_s = rep.cost_seconds;
    gate_rec.moved_elems = opt_.metric == sim::CostMetric::kTotalV
                               ? rep.volume.total_elems
                               : rep.volume.bottleneck_elems;
    gate_rec.moved_sets = opt_.metric == sim::CostMetric::kTotalV
                              ? rep.volume.total_sets
                              : rep.volume.bottleneck_sets;
    gate_rec.predicted_move_bytes =
        cost_model.predicted_move_bytes(rep.volume, opt_.metric);

    if (cost_model.accept_remap(rep.gain_seconds, rep.cost_seconds)) {
      rep.accepted = true;
      remap_phase = trace_.phases().size();
      have_remap_phase = true;
      obs::PhaseScope ph(trace_, "remap");
      ph.set_modeled_seconds(rep.cost_seconds);
      // --- 6. migrate subtrees + solution (remap before subdivision) -------
      states_.clear();
      for (Rank r = 0; r < P; ++r) states_.push_back(solver_->solution(r));
      const auto ms = pmesh::migrate(*dm_, *eng_, new_part, &states_, &mem_);
      rep.elements_migrated = ms.elements_moved;
      root_part_ = new_part;
      rebind_solver();

      // Measured data movement: the bytes the migration really packed and
      // sent through the engine, vs the cost model's prediction.
      gate_rec.accepted = true;
      gate_rec.measured_move_bytes = vec_sum(ms.bytes_sent);
      gate_rec.drift = obs::gate_drift(gate_rec.predicted_move_bytes,
                                       gate_rec.measured_move_bytes);

      // Re-derive the marks on the new distribution (deterministic: same
      // states, same threshold => the same global mark set).
      err = rank_errors(*dm_, *solver_);
      seeds = threshold_marks(*dm_, err, threshold);
      pm = pmesh::parallel_mark(*dm_, *eng_, seeds, &mem_);
    }
  }
  trace_.add_gate_record(gate_rec);

  // --- live paper-metric gauges (one sample per series per cycle) -----------
  double cycle_imbalance = 0;  // also stamped on the plum-scope record
  {
    const auto q = partition::evaluate_quality(dual_, root_part_, P);
    cycle_imbalance = q.imbalance;
    metrics_.add_sample("imbalance", q.imbalance);
    metrics_.add_sample_int("edge_cut", q.edge_cut);
    for (const auto& [name, value] : remap::volume_fields(rep.volume)) {
      metrics_.add_sample_int(name, value);
    }
  }
  ++cycle_index_;

  // --- 7. parallel subdivision ---------------------------------------------------
  // Braced so the phase closes before the end-of-cycle histogram sampling.
  const std::size_t subdivide_phase = trace_.phases().size();
  {
    obs::PhaseScope subdivide(trace_, "subdivide");
    for (Rank r = 0; r < P; ++r) {
      auto& lm = dm_->local(r);
      lm.mesh.on_bisect = [this, r](Index e, Index mid) {
        auto& u = solver_->solution(r);
        const auto& ed = dm_->local(r).mesh.edge(e);
        if (static_cast<std::size_t>(mid) >= u.size()) {
          u.resize(static_cast<std::size_t>(mid) + 1);
        }
        for (int c = 0; c < solver::kNumVars; ++c) {
          u[static_cast<std::size_t>(mid)][c] =
              0.5 * (u[static_cast<std::size_t>(ed.v0)][c] +
                     u[static_cast<std::size_t>(ed.v1)][c]);
        }
      };
    }
    const auto pf = pmesh::parallel_refine(*dm_, *eng_, pm, &mem_);
    rep.refine_work_per_rank = pf.work_per_rank;
    subdivide.set_modeled_seconds(
        mp.t_refine * static_cast<double>(vec_max(pf.work_per_rank)));
    for (Rank r = 0; r < P; ++r) dm_->local(r).mesh.on_bisect = nullptr;
  }

  // Rebind with the grown solution arrays.
  states_.clear();
  for (Rank r = 0; r < P; ++r) states_.push_back(solver_->solution(r));
  rebind_solver();

  rep.elements_after = dm_->total_active_elements();

  // --- close the loop: feed this cycle's telemetry to the calibrator --------
  // Measured wall seconds (always recorded into the replay log): the phase
  // walls plus the per-rank solve decomposition summed from the solve
  // phase's superstep records.
  const double solve_wall_s = trace_.phases()[solve_phase].wall_s;
  const double remap_wall_s =
      have_remap_phase ? trace_.phases()[remap_phase].wall_s : 0.0;
  const double subdivide_wall_s = trace_.phases()[subdivide_phase].wall_s;
  // plum-scale: host-only -- per-rank solve seconds for the calibration log
  std::vector<double> rank_solve_wall(static_cast<std::size_t>(P), 0.0);
  for (std::size_t s = solve_step_lo; s < solve_step_hi; ++s) {
    const auto& secs = trace_.supersteps()[s].rank_seconds;
    for (std::size_t r = 0; r < secs.size() && r < rank_solve_wall.size();
         ++r) {
      rank_solve_wall[r] += secs[r];
    }
  }
  if (opt_.calibration.enabled) {
    sim::CalibrationSample cs;
    cs.cycle = this_cycle;
    cs.solve_work = static_cast<std::int64_t>(opt_.solver_steps_per_cycle) *
                    vec_max(solve_epr);
    cs.refine_children = vec_max(rep.refine_work_per_rank);
    cs.rank_elements = solve_epr;
    if (replay_) {
      if (static_cast<std::size_t>(this_cycle) < replay_book_.cycles.size()) {
        const sim::ReplayCycle& bc =
            replay_book_.cycles[static_cast<std::size_t>(this_cycle)];
        cs.solve_seconds = bc.solve_seconds;
        cs.remap_seconds = bc.remap_seconds;
        cs.subdivide_seconds = bc.subdivide_seconds;
        cs.rank_solve_seconds = bc.rank_solve_seconds;
      }
      // Past the end of the book: no timing evidence this cycle; the byte
      // fit below still runs (it is counter-sourced).
    } else {
      cs.solve_seconds = solve_wall_s;
      cs.remap_seconds = remap_wall_s;
      cs.subdivide_seconds = subdivide_wall_s;
      cs.rank_solve_seconds = rank_solve_wall;
    }
    if (rep.accepted) {
      cs.remap_executed = true;
      cs.moved_elems = gate_rec.moved_elems;
      cs.moved_sets = gate_rec.moved_sets;
      cs.predicted_move_bytes = gate_rec.predicted_move_bytes;
      cs.measured_move_bytes = gate_rec.measured_move_bytes;
    }
    calib_.observe(cs);
    // Under replay the calibration document is a pure function of
    // deterministic inputs, so it joins the deterministic trace view and
    // the per-constant gauges; live calibration stays wall-only.
    trace_.set_calibration(calib_.to_json(), /*deterministic=*/replay_);
    if (replay_) {
      const sim::MachineParams& cp = calib_.params();
      metrics_.add_sample("calib_t_iter", cp.t_iter);
      metrics_.add_sample("calib_t_refine", cp.t_refine);
      metrics_.add_sample("calib_t_lat", cp.t_lat);
      metrics_.add_sample("calib_t_setup", cp.t_setup);
      metrics_.add_sample("calib_bytes_per_element",
                          calib_.model().move_bytes_per_element());
      metrics_.add_sample("calib_bytes_per_set", cp.bytes_per_set);
      metrics_.add_sample("calib_gate_margin", cp.gate_margin);
      metrics_.add_sample("calib_mean_abs_drift", calib_.mean_abs_drift());
    }
  }
  {
    sim::ReplayCycle rc;
    rc.solve_seconds = solve_wall_s;
    rc.remap_seconds = remap_wall_s;
    rc.subdivide_seconds = subdivide_wall_s;
    rc.rank_solve_seconds = std::move(rank_solve_wall);
    replay_log_.cycles.push_back(std::move(rc));
  }

  // Per-cycle fixed-bound histograms (obs/critical_path.hpp): per-rank
  // step wall seconds + counter-sourced wait fractions for every superstep
  // this cycle ran, plus the wall seconds of every phase that closed.
  obs::record_step_histograms(metrics_, trace_, &hist_step_cursor_);
  obs::record_phase_histograms(metrics_, trace_, &hist_phase_cursor_);

  // --- plum-scope: depot telemetry gauges + one live stream record ----------
  // Depot stats exist only under the pipe transport (empty otherwise). They
  // are wall-clock sourced (syscall counts, stall ns), so they fold into
  // wall-marked series and the trace's full view — never the deterministic
  // views the cross-engine byte-identity tests compare.
  const auto depot = eng_->transport().depot_stats();
  if (!depot.empty()) {
    trace_.set_depot_telemetry(obs::depot_stats_json(depot));
    rt::DepotStats sum;
    for (const auto& d : depot) {
      sum.buffered_bytes += d.buffered_bytes;
      sum.frames_in += d.frames_in;
      sum.frames_out += d.frames_out;
      sum.read_calls += d.read_calls;
      sum.write_calls += d.write_calls;
      sum.peak_buffer_bytes =
          std::max(sum.peak_buffer_bytes, d.peak_buffer_bytes);
      sum.stall_ns += d.stall_ns;
      sum.vm_rss_bytes = std::max(sum.vm_rss_bytes, d.vm_rss_bytes);
      sum.vm_hwm_bytes = std::max(sum.vm_hwm_bytes, d.vm_hwm_bytes);
    }
    metrics_.add_wall_sample_int("depot_frames_in", sum.frames_in);
    metrics_.add_wall_sample_int("depot_frames_out", sum.frames_out);
    metrics_.add_wall_sample_int("depot_read_calls", sum.read_calls);
    metrics_.add_wall_sample_int("depot_write_calls", sum.write_calls);
    metrics_.add_wall_sample_int("depot_peak_buffer_bytes",
                                 sum.peak_buffer_bytes);
    metrics_.add_wall_sample_int("depot_stall_ns", sum.stall_ns);
    // Worst depot child's resident set — wall-class, like all depot gauges.
    metrics_.add_wall_sample_int("depot_vm_rss_bytes", sum.vm_rss_bytes);
    metrics_.add_wall_sample_int("depot_vm_hwm_bytes", sum.vm_hwm_bytes);
  }
  // Coordinator resident set (plum-mem wall gauges; the deterministic heap
  // counters live in the trace's plum-heap/1 section instead).
  {
    const util::RssSample rss = util::read_rss();
    metrics_.add_wall_sample_int("vm_rss_bytes", rss.vm_rss_bytes);
    metrics_.add_wall_sample_int("vm_hwm_bytes", rss.vm_hwm_bytes);
  }
  if (stream_ != nullptr) {
    // Per-rank busy/wait over this cycle's supersteps, counter-sourced:
    // busy is the rank's compute units, wait is its distance from the
    // step's critical rank (the same decomposition as plum-path).
    const auto& steps = trace_.supersteps();
    // plum-scale: host-only -- per-rank busy fold for one stream record
    std::vector<std::int64_t> busy(static_cast<std::size_t>(P), 0);
    // plum-scale: host-only -- per-rank wait fold for one stream record
    std::vector<std::int64_t> wait(static_cast<std::size_t>(P), 0);
    for (std::size_t s = scope_step_cursor_; s < steps.size(); ++s) {
      const auto& cs = steps[s].counters;
      std::int64_t step_max = 0;
      for (const auto& c : cs) step_max = std::max(step_max, c.compute_units);
      for (std::size_t r = 0; r < cs.size() && r < busy.size(); ++r) {
        busy[r] += cs[r].compute_units;
        wait[r] += step_max - cs[r].compute_units;
      }
    }
    obs::Json rec_json = obs::Json::object();
    rec_json.set("schema", obs::Json::str("plum-scope/1"))
        .set("name", obs::Json::str(opt_.scope_name))
        .set("cycle", obs::Json::integer(this_cycle))
        .set("supersteps", obs::Json::integer(static_cast<std::int64_t>(
                               steps.size() - scope_step_cursor_)))
        .set("elements", obs::Json::integer(rep.elements_after))
        .set("imbalance", obs::Json::number(cycle_imbalance))
        .set("wall_s", obs::Json::number(cycle_timer.seconds()));
    obs::Json gate_json = obs::Json::object();
    gate_json.set("evaluated", obs::Json::boolean(rep.evaluated_repartition))
        .set("accepted", obs::Json::boolean(rep.accepted));
    rec_json.set("gate", std::move(gate_json));
    obs::Json ranks_json = obs::Json::array();
    for (Rank r = 0; r < P; ++r) {
      obs::Json rj = obs::Json::object();
      rj.set("rank", obs::Json::integer(r))
          .set("busy", obs::Json::integer(busy[static_cast<std::size_t>(r)]))
          .set("wait", obs::Json::integer(wait[static_cast<std::size_t>(r)]))
          .set("live_bytes",
               obs::Json::integer(mem_.live_bytes(static_cast<int>(r))));
      ranks_json.push(std::move(rj));
    }
    rec_json.set("ranks", std::move(ranks_json));
    // Coordinator RSS for plum-top's live memory column (wall-class).
    rec_json.set("rss", obs::rss_json());
    if (!depot.empty()) rec_json.set("depot", obs::depot_stats_json(depot));
    stream_->append(rec_json);
  }
  scope_step_cursor_ = trace_.supersteps().size();
  return rep;
}

}  // namespace plum::core
