#include "core/framework.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "obs/critical_path.hpp"
#include "partition/quality.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace plum::core {

namespace {

/// Per-processor sums of `weights` under `part` composed with an optional
/// partition->processor map.
std::vector<Weight> proc_sums(const partition::PartVec& part,
                              const std::vector<Weight>& weights,
                              Rank nprocs,
                              const std::vector<Rank>* part_to_proc) {
  // plum-scale: host-only -- sequential PLUM driver load table
  std::vector<Weight> loads(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t v = 0; v < part.size(); ++v) {
    const Rank p = part_to_proc
                       ? (*part_to_proc)[static_cast<std::size_t>(part[v])]
                       : part[v];
    loads[static_cast<std::size_t>(p)] += weights[v];
  }
  return loads;
}

remap::Assignment run_mapper(MapperKind kind,
                             const remap::SimilarityMatrix& S, double alpha,
                             double beta) {
  switch (kind) {
    case MapperKind::kHeuristicGreedy: return remap::map_heuristic_greedy(S);
    case MapperKind::kOptimalMwbg: return remap::map_optimal_mwbg(S);
    case MapperKind::kOptimalBmcm:
      return remap::map_optimal_bmcm(S, alpha, beta);
  }
  PLUM_ASSERT(false);
  return {};
}

}  // namespace

Framework::Framework(mesh::TetMesh mesh, FrameworkOptions opt)
    : opt_(opt),
      mesh_(std::make_unique<mesh::TetMesh>(std::move(mesh))),
      mem_(opt.nranks, opt.arena_chunk_bytes) {
  PLUM_ASSERT(opt_.nranks >= 1);
  PLUM_ASSERT(opt_.partitions_per_proc >= 1);
  // Phase stamps follow the trace scopes; the heap section joins
  // trace().to_json().
  trace_.set_memory_tracker(&mem_);
  if (!opt_.replay_path.empty()) {
    std::string err;
    const bool loaded =
        sim::ReplayBook::load(opt_.replay_path, &replay_book_, &err);
    PLUM_ASSERT_MSG(loaded, "replay book failed to load");
    replay_ = true;
    opt_.calibration.enabled = true;
  }
  calib_ = sim::Calibration(opt_.machine, opt_.calibration);

  solver_ = std::make_unique<solver::EulerSolver>(mesh_.get());
  adaptor_ = std::make_unique<adapt::MeshAdaptor>(mesh_.get());
  mesh_->on_bisect = [this](Index e, Index mid) {
    solver_->interpolate_midpoint(e, mid);
  };

  dual_ = mesh_->build_initial_dual();
  const auto w = mesh_->root_weights();
  dual_.set_weights(w.wcomp, w.wremap);

  partition::MultilevelOptions popt;
  popt.nparts = opt_.nranks;  // initial mapping: one partition per processor
  popt.seed = opt_.seed;
  popt.scratch = mem_.host_scratch();  // serial phase: host row
  root_part_ = partition::partition(dual_, popt).part;
  mem_.reset_arenas();  // constructor scratch dies here
}

std::vector<Weight> Framework::processor_loads() const {
  const auto w = mesh_->root_weights();
  return proc_sums(root_part_, w.wcomp, opt_.nranks, nullptr);
}

CycleReport Framework::cycle() {
  CycleReport rep;
  // Scratch-memory contract: phase scratch never outlives the cycle, so
  // rewinding here makes steady-state cycles reuse-only (zero chunk traffic).
  mem_.reset_arenas();
  rep.elements_before = mesh_->num_active_elements();
  const int this_cycle = cycle_index_;
  // Price this cycle with the calibrated constants; while calibration is
  // disabled the model equals the static opt_.machine, so nothing changes.
  const sim::CostModel cm = calib_.model();
  const sim::MachineParams& mp = cm.params();

  // --- 1. flow solver -------------------------------------------------------
  Weight solve_wmax = 0;
  const std::size_t solve_phase = trace_.phases().size();
  {
    obs::PhaseScope ph(trace_, "solve");
    rep.solver_work = solver_->run(opt_.solver_steps_per_cycle);
    // Modeled SP2 time: iterations on the bottleneck processor.
    solve_wmax = vec_max(processor_loads());
    ph.set_modeled_seconds(mp.t_iter *
                           static_cast<double>(opt_.solver_steps_per_cycle) *
                           static_cast<double>(solve_wmax));
  }

  // --- 1b. coarsening phase (Fig. 1: the old mesh shrinks before the
  //         refinement bookkeeping; compaction renumbers everything, so the
  //         solver state follows the vertex map) -----------------------------
  if (opt_.coarsen_fraction > 0) {
    obs::PhaseScope ph(trace_, "coarsen");
    const auto cerr_field =
        adapt::edge_error(*mesh_, solver_->density_field(), 1.0);
    // Lowest-error fraction: invert the ranking used for refinement.
    std::vector<double> neg(cerr_field.size());
    for (std::size_t e = 0; e < neg.size(); ++e) neg[e] = -cerr_field[e];
    const auto cmarks =
        adapt::mark_top_fraction(*mesh_, neg, opt_.coarsen_fraction);
    const Index before = mesh_->num_active_elements();
    adaptor_->coarsen(cmarks, [this](const std::vector<Index>& map) {
      solver_->remap_solution(map);
    });
    solver_->rebuild();
    rep.elements_coarsened = before - mesh_->num_active_elements();
  }

  // --- 2. edge marking from the flow solution -------------------------------
  {
    obs::PhaseScope ph(trace_, "mark");
    const auto err = adapt::edge_error(*mesh_, solver_->density_field(), 1.0);
    const auto& marks = adaptor_->mark_fraction(err, opt_.refine_fraction);
    rep.mark_propagation_rounds = marks.propagation_rounds;
    // One marking sweep plus one per propagation round.
    ph.set_modeled_seconds(
        mp.t_mark * static_cast<double>(mesh_->num_active_elements()) *
        static_cast<double>(1 + marks.propagation_rounds));
  }

  // --- 3. balance evaluation on the *predicted* weights ----------------------
  const auto current = mesh_->root_weights();
  const auto predicted = adaptor_->predicted_weights();
  // Optional calibration feedback: scale each owner's predicted Wcomp by
  // its measured per-element solve seconds (no-op unless
  // calibration.blend_measured_weights has observed per-rank data).
  auto wcomp_bal = predicted.wcomp;
  sim::blend_weights(wcomp_bal, root_part_, calib_.rank_weight_scale());
  // Predicted weights drive both the repartitioner (below) and the
  // end-of-cycle quality gauges, so install them unconditionally.
  dual_.set_weights(wcomp_bal, predicted.wremap);
  const auto loads_old = proc_sums(root_part_, wcomp_bal, opt_.nranks, nullptr);
  rep.imbalance_old = imbalance(loads_old);
  rep.wmax_old = vec_max(loads_old);

  obs::GateRecord gate_rec;
  gate_rec.cycle = this_cycle;
  gate_rec.metric = sim::cost_metric_name(opt_.metric);
  gate_rec.imbalance_old = rep.imbalance_old;

  std::size_t remap_phase = 0;
  bool have_remap_phase = false;
  if (rep.imbalance_old > opt_.imbalance_trigger) {
    rep.evaluated_repartition = true;
    obs::PhaseScope gate(trace_, "gate");

    // --- 4. repartition the dual graph (warm start, paper §4.2) ------------
    partition::MultilevelOptions popt;
    popt.nparts = opt_.nranks * opt_.partitions_per_proc;
    popt.seed = opt_.seed;
    popt.scratch = mem_.host_scratch();  // serial phase: host row
    partition::MultilevelResult repart;
    {
      obs::PhaseScope ph(trace_, "repartition");
      // Warm start only applies when partition count matches the current
      // mapping's granularity (F = 1); otherwise partition from scratch.
      repart = opt_.partitions_per_proc == 1
                   ? partition::repartition(dual_, root_part_, popt)
                   : partition::partition(dual_, popt);
      ph.set_modeled_seconds(cm.partition_seconds(
          dual_.num_vertices(), static_cast<int>(repart.levels.size()),
          opt_.nranks));
    }
    rep.used_previous_partition = repart.used_previous;

    // --- 5. processor reassignment (similarity matrix + mapper) ------------
    // Remap-before moves the current (small) trees; remap-after would move
    // the post-subdivision trees.
    const auto& move_w =
        opt_.remap_before_subdivision ? current.wremap : predicted.wremap;
    const auto S = remap::SimilarityMatrix::build(
        root_part_, repart.part, move_w, opt_.nranks, popt.nparts);
    remap::Assignment assign;
    {
      obs::PhaseScope ph(trace_, "reassign");
      assign = run_mapper(opt_.mapper, S, opt_.machine.alpha,
                          opt_.machine.beta);
    }
    rep.mapper_seconds = assign.solve_seconds;
    rep.volume = remap::evaluate_assignment(S, assign, opt_.machine.alpha,
                                            opt_.machine.beta);

    // --- 6. gain vs cost gate (paper §4.5 / §4.6) ---------------------------
    const auto loads_new =
        proc_sums(repart.part, wcomp_bal, opt_.nranks, &assign.part_to_proc);
    rep.imbalance_new = imbalance(loads_new);
    rep.wmax_new = vec_max(loads_new);

    // Subdivision work per processor = predicted growth of the trees.
    std::vector<Weight> growth(current.wremap.size());
    for (std::size_t v = 0; v < growth.size(); ++v) {
      growth[v] = predicted.wremap[v] - current.wremap[v];
    }
    const Weight ref_old =
        vec_max(proc_sums(root_part_, growth, opt_.nranks, nullptr));
    const Weight ref_new = vec_max(
        proc_sums(repart.part, growth, opt_.nranks, &assign.part_to_proc));

    rep.gain_seconds =
        cm.computational_gain(rep.wmax_old, rep.wmax_new, ref_old, ref_new);
    rep.cost_seconds = cm.redistribution_cost(rep.volume, opt_.metric);

    gate_rec.evaluated = true;
    gate_rec.imbalance_new = rep.imbalance_new;
    gate_rec.gain_s = rep.gain_seconds;
    gate_rec.cost_s = rep.cost_seconds;
    gate_rec.moved_elems = opt_.metric == sim::CostMetric::kTotalV
                               ? rep.volume.total_elems
                               : rep.volume.bottleneck_elems;
    gate_rec.moved_sets = opt_.metric == sim::CostMetric::kTotalV
                              ? rep.volume.total_sets
                              : rep.volume.bottleneck_sets;
    gate_rec.predicted_move_bytes =
        cm.predicted_move_bytes(rep.volume, opt_.metric);

    if (cm.accept_remap(rep.gain_seconds, rep.cost_seconds)) {
      rep.accepted = true;
      // --- 7. remap: install the new element->processor ownership ---------
      remap_phase = trace_.phases().size();
      have_remap_phase = true;
      obs::PhaseScope ph(trace_, "remap");
      ph.set_modeled_seconds(rep.cost_seconds);
      // Measured data movement: this framework keeps everything in one
      // address space, so "moved" is the remap weight of every root whose
      // owner changed plus one framing header per (old, new) owner pair, in
      // the same bytes the *static* machine constants price — the ground
      // truth a calibrated prediction is judged against (matches the
      // prediction exactly under TotalV while uncalibrated; diverges under
      // MaxV, which prices only the bottleneck processor).
      Weight moved_w = 0;
      std::set<std::pair<Rank, Rank>> moved_pairs;
      for (std::size_t v = 0; v < root_part_.size(); ++v) {
        const Rank owner =
            assign.part_to_proc[static_cast<std::size_t>(repart.part[v])];
        if (owner != root_part_[v]) {
          moved_w += move_w[v];
          moved_pairs.insert({root_part_[v], owner});
        }
        root_part_[v] = owner;
      }
      gate_rec.accepted = true;
      gate_rec.measured_move_bytes =
          static_cast<std::int64_t>(opt_.machine.words_per_element) * moved_w *
              8 +
          std::llround(opt_.machine.bytes_per_set *
                       static_cast<double>(moved_pairs.size()));
      gate_rec.drift = obs::gate_drift(gate_rec.predicted_move_bytes,
                                       gate_rec.measured_move_bytes);
    }
  }
  trace_.add_gate_record(gate_rec);

  // --- live paper-metric gauges (one sample per series per cycle) -----------
  {
    const auto q = partition::evaluate_quality(dual_, root_part_, opt_.nranks);
    metrics_.add_sample("imbalance", q.imbalance);
    metrics_.add_sample_int("edge_cut", q.edge_cut);
    for (const auto& [name, value] : remap::volume_fields(rep.volume)) {
      metrics_.add_sample_int(name, value);
    }
  }
  ++cycle_index_;

  // --- 8. subdivision ---------------------------------------------------------
  Weight refine_bottleneck = 0;
  const std::size_t subdivide_phase = trace_.phases().size();
  {
    obs::PhaseScope ph(trace_, "subdivide");
    adaptor_->refine(mem_.host_scratch());
    solver_->rebuild();
    // Modeled SP2 time: bottleneck processor's tree growth under the final
    // ownership (matches the gate's ref_old/ref_new arithmetic).
    std::vector<Weight> growth(current.wremap.size());
    for (std::size_t v = 0; v < growth.size(); ++v) {
      growth[v] = predicted.wremap[v] - current.wremap[v];
    }
    refine_bottleneck =
        vec_max(proc_sums(root_part_, growth, opt_.nranks, nullptr));
    ph.set_modeled_seconds(mp.t_refine *
                           static_cast<double>(refine_bottleneck));
  }
  rep.elements_after = mesh_->num_active_elements();

  // --- close the loop: feed this cycle's telemetry to the calibrator --------
  // Seconds come from the replay book (deterministic) or the wall clock
  // (live); the work and byte terms are deterministic counters either way.
  const double solve_wall_s = trace_.phases()[solve_phase].wall_s;
  const double remap_wall_s =
      have_remap_phase ? trace_.phases()[remap_phase].wall_s : 0.0;
  const double subdivide_wall_s = trace_.phases()[subdivide_phase].wall_s;
  if (opt_.calibration.enabled) {
    sim::CalibrationSample cs;
    cs.cycle = this_cycle;
    cs.solve_work = static_cast<std::int64_t>(opt_.solver_steps_per_cycle) *
                    solve_wmax;
    cs.refine_children = refine_bottleneck;
    if (replay_) {
      if (static_cast<std::size_t>(this_cycle) < replay_book_.cycles.size()) {
        const sim::ReplayCycle& bc =
            replay_book_.cycles[static_cast<std::size_t>(this_cycle)];
        cs.solve_seconds = bc.solve_seconds;
        cs.remap_seconds = bc.remap_seconds;
        cs.subdivide_seconds = bc.subdivide_seconds;
        cs.rank_solve_seconds = bc.rank_solve_seconds;
      }
      // Past the end of the book: no timing evidence this cycle; the byte
      // fit below still runs (it is counter-sourced).
    } else {
      cs.solve_seconds = solve_wall_s;
      cs.remap_seconds = remap_wall_s;
      cs.subdivide_seconds = subdivide_wall_s;
    }
    if (rep.accepted) {
      cs.remap_executed = true;
      cs.moved_elems = gate_rec.moved_elems;
      cs.moved_sets = gate_rec.moved_sets;
      cs.predicted_move_bytes = gate_rec.predicted_move_bytes;
      cs.measured_move_bytes = gate_rec.measured_move_bytes;
    }
    calib_.observe(cs);
    // The calibration document joins the trace; under replay it is a pure
    // function of deterministic inputs, so it may enter the deterministic
    // view (and the per-constant gauges below) without breaking the
    // cross-engine byte-identity contract.
    trace_.set_calibration(calib_.to_json(), /*deterministic=*/replay_);
    if (replay_) {
      const sim::MachineParams& cp = calib_.params();
      metrics_.add_sample("calib_t_iter", cp.t_iter);
      metrics_.add_sample("calib_t_refine", cp.t_refine);
      metrics_.add_sample("calib_t_lat", cp.t_lat);
      metrics_.add_sample("calib_t_setup", cp.t_setup);
      metrics_.add_sample("calib_bytes_per_element",
                          calib_.model().move_bytes_per_element());
      metrics_.add_sample("calib_bytes_per_set", cp.bytes_per_set);
      metrics_.add_sample("calib_gate_margin", cp.gate_margin);
      metrics_.add_sample("calib_mean_abs_drift", calib_.mean_abs_drift());
    }
  }
  // Record this cycle into the replay log regardless: any instrumented run
  // can hand its measured book to a later deterministic replay.
  {
    sim::ReplayCycle rc;
    rc.solve_seconds = solve_wall_s;
    rc.remap_seconds = remap_wall_s;
    rc.subdivide_seconds = subdivide_wall_s;
    replay_log_.cycles.push_back(std::move(rc));
  }

  // Per-cycle fixed-bound histogram: wall seconds of every phase closed
  // this cycle (this framework runs in one address space, so there are no
  // per-rank superstep records to decompose — DistFramework adds those).
  obs::record_phase_histograms(metrics_, trace_, &hist_phase_cursor_);
  return rep;
}

std::vector<CycleReport> Framework::run(int cycles) {
  std::vector<CycleReport> out;
  out.reserve(static_cast<std::size_t>(cycles));
  for (int i = 0; i < cycles; ++i) out.push_back(cycle());
  return out;
}

}  // namespace plum::core
