#pragma once
// Fully distributed framework driver — the paper's Fig. 1 loop with every
// phase running on the distributed substrate:
//
//   parallel flow solver (owner-computes fluxes, SPL residual exchange)
//   -> local error indicator + global threshold (quantile agreed via the
//      host, the only serial step, as in the paper's similarity gather)
//   -> parallel edge marking with cross-partition propagation
//   -> per-rank predicted weights gathered to the host
//   -> host: repartition the initial-mesh dual + processor reassignment
//      + gain/cost gate (§4.2-4.6)
//   -> accepted: migrate subtrees + solution (remap before subdivision)
//   -> parallel refinement with SPL repair
//
// Complements core::Framework (the single-address-space driver used by the
// figure benches): everything here moves through the BSP engine, so the
// ledger records the true communication pattern of one adaption cycle.

#include <memory>

#include "core/framework.hpp"
#include "obs/scope.hpp"
#include "pmesh/dist_mesh.hpp"
#include "pmesh/parallel_solver.hpp"

namespace plum::core {

struct DistCycleReport {
  Index elements_before = 0;
  Index elements_after = 0;
  int mark_comm_rounds = 0;
  bool evaluated_repartition = false;
  bool accepted = false;
  double imbalance_old = 0;
  double imbalance_new = 0;
  double gain_seconds = 0;
  double cost_seconds = 0;
  remap::RemapVolume volume;
  std::int64_t elements_migrated = 0;
  /// Subdivision work per rank (children created) — balanced when the
  /// remap-before-subdivision path accepted.
  std::vector<Index> refine_work_per_rank;
};

class DistFramework {
 public:
  DistFramework(mesh::TetMesh initial_global, FrameworkOptions opt);
  ~DistFramework();
  // Move-only, like the engine it owns. NB the engine's observer/sink and
  // the postmortem hook hold addresses into this object, so a framework
  // may only be moved before use (the factory-return pattern; in practice
  // NRVO elides even that).
  DistFramework(DistFramework&&) = default;
  DistFramework& operator=(DistFramework&&) = delete;

  DistCycleReport cycle();

  [[nodiscard]] pmesh::DistMesh& dist_mesh() { return *dm_; }
  [[nodiscard]] rt::Engine& engine() { return *eng_; }
  [[nodiscard]] pmesh::ParallelEulerSolver& solver() { return *solver_; }
  [[nodiscard]] const partition::PartVec& root_partition() const {
    return root_part_;
  }
  /// Per-rank active element counts (the solver load balance achieved).
  [[nodiscard]] std::vector<Index> elements_per_rank() const {
    return dm_->active_elements_per_rank();
  }

  /// plum-trace recorder. Attached to the engine as a SuperstepObserver at
  /// construction, so it holds one SuperstepRecord per engine superstep
  /// (per-rank counters + wall times) in addition to the Fig. 1 phase
  /// scopes opened by cycle().
  [[nodiscard]] obs::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const obs::TraceRecorder& trace() const { return trace_; }

  /// Live paper-metric gauges, one sample per cycle per series ("imbalance",
  /// "edge_cut", remap_* volume breakdown) — same names as core::Framework
  /// and the bench reports — plus the per-cycle fixed-bound histograms
  /// "rank_step_seconds" (wall-clock; omitted from the registry's
  /// deterministic view), "rank_wait_fraction" (counter-sourced,
  /// deterministic), and "phase_wall_seconds" (see obs/critical_path.hpp).
  /// Host-side only; see obs/metrics.hpp.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// plum-scope flight recorder: a fixed-capacity per-rank event ring the
  /// engine feeds as a rt::RankScopeSink (one event per rank per
  /// superstep, overwrite-oldest). Always on; a failed PLUM_ASSERT —
  /// including the pipe transport's rank-death path — flushes its last-N
  /// events per rank to POSTMORTEM_<scope_name>.json before aborting.
  [[nodiscard]] obs::FlightRecorder& scope() { return scope_; }
  [[nodiscard]] const obs::FlightRecorder& scope() const { return scope_; }

  /// plum-mem tracker: per-rank/per-phase allocation counters and the
  /// per-row scratch arenas the hot phases allocate through (HEM match and
  /// KL-FM refine on the host row; mark/migrate/refine staging on the rank
  /// rows, written by the claiming worker). The plum-heap/1 section of
  /// trace().to_json() is byte-identical across engines, thread counts,
  /// and transports.
  [[nodiscard]] obs::MemoryTracker& memory() { return mem_; }
  [[nodiscard]] const obs::MemoryTracker& memory() const { return mem_; }

  /// The online calibrator (sim/calibration.hpp); see core::Framework.
  [[nodiscard]] const sim::Calibration& calibration() const { return calib_; }

  /// Timing book recorded by this run (one entry per cycle, with the
  /// per-rank solve decomposition); feed it back through
  /// FrameworkOptions::replay_path for deterministic replay.
  [[nodiscard]] const sim::ReplayBook& replay_log() const {
    return replay_log_;
  }

 private:
  /// Rebinds the parallel solver to the current distribution, keeping the
  /// per-rank states in `states_`.
  void rebind_solver();

  FrameworkOptions opt_;
  // Declared before eng_: the engine holds raw observer/sink pointers to
  // the recorders, so both must be destroyed after the engine.
  obs::TraceRecorder trace_;
  obs::FlightRecorder scope_;
  obs::MemoryTracker mem_;  ///< rank rows written inside supersteps
  std::unique_ptr<rt::Engine> eng_;
  std::unique_ptr<obs::ScopeStreamWriter> stream_;  ///< opt_.scope_stream
  std::unique_ptr<pmesh::DistMesh> dm_;
  std::unique_ptr<pmesh::ParallelEulerSolver> solver_;
  std::vector<std::vector<solver::State>> states_;
  graph::Csr dual_;  ///< dual of the initial global mesh (host side)
  partition::PartVec root_part_;  ///< global initial element -> rank
  obs::MetricsRegistry metrics_;
  sim::Calibration calib_;
  sim::ReplayBook replay_book_;  ///< loaded from opt_.replay_path
  bool replay_ = false;
  sim::ReplayBook replay_log_;   ///< measured book recorded this run
  int cycle_index_ = 0;  ///< cycles completed; keys the gate-audit records
  // First trace_ superstep/phase not yet sampled into the per-cycle
  // histograms (obs::record_step_histograms / record_phase_histograms).
  std::size_t hist_step_cursor_ = 0;
  std::size_t hist_phase_cursor_ = 0;
  /// First trace_ superstep not yet folded into a plum-scope/1 stream
  /// record (per-rank busy/wait are summed over [cursor, end) per cycle).
  std::size_t scope_step_cursor_ = 0;
};

}  // namespace plum::core
