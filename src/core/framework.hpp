#pragma once
// The PLUM framework driver — the paper's Fig. 1 loop.
//
//   flow solver -> edge marking (error indicator) -> balance evaluation ->
//   [repartition -> processor reassignment -> gain/cost gate -> remap] ->
//   subdivision -> resume solver.
//
// The two-phase refinement split is what makes the "remap before
// subdivision" optimization possible: after mark(), the post-refinement
// dual-graph weights are exactly known, so the repartitioner balances the
// *future* mesh while the remapper moves only the *current* (smaller) one.

#include <cstdint>
#include <memory>
#include <string>

#include "adapt/adaptor.hpp"
#include "mesh/tet_mesh.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/multilevel.hpp"
#include "remap/mapping.hpp"
#include "remap/volume.hpp"
#include "runtime/transport.hpp"
#include "sim/calibration.hpp"
#include "sim/machine.hpp"
#include "solver/euler.hpp"

namespace plum::core {

enum class MapperKind { kHeuristicGreedy, kOptimalMwbg, kOptimalBmcm };

struct FrameworkOptions {
  Rank nranks = 8;
  Rank partitions_per_proc = 1;  ///< the paper's F
  /// Repartition when predicted post-refinement imbalance exceeds this.
  double imbalance_trigger = 1.15;
  MapperKind mapper = MapperKind::kHeuristicGreedy;
  sim::CostMetric metric = sim::CostMetric::kTotalV;
  /// Remap on the pre-subdivision mesh (paper §4.6) vs after refinement.
  bool remap_before_subdivision = true;
  /// Fraction of active edges marked for refinement per adaption.
  double refine_fraction = 0.05;
  /// Fraction of active edges (lowest error) targeted for coarsening before
  /// each refinement (0 disables the coarsening phase of Fig. 1).
  double coarsen_fraction = 0.0;
  int solver_steps_per_cycle = 20;
  sim::MachineParams machine;
  std::uint64_t seed = 12345;
  /// Worker threads for the BSP engine (DistFramework only): 1 = the
  /// sequential reference engine, 0 = one worker per hardware core, N > 1 =
  /// a ParallelEngine with N workers. Results are bit-identical across all
  /// settings (see runtime/engine.hpp's determinism contract).
  int threads = 1;
  /// Message fabric for the BSP engine (DistFramework only): kInProc moves
  /// messages in-memory; kPipe routes every payload through child rank-group
  /// processes over socketpairs. Bit-identical results either way (see
  /// runtime/transport.hpp's delivery contract).
  rt::TransportKind transport = rt::TransportKind::kInProc;
  /// Child processes for the pipe transport (0 = transport default).
  int transport_procs = 0;
  /// Online cost-model calibration (sim/calibration.hpp). Disabled by
  /// default: a live calibration consumes wall-clock phase timings, which
  /// are real but nondeterministic; deterministic runs use replay_path.
  sim::CalibrationOptions calibration;
  /// Path to a plum-replay/1 timing book. Non-empty switches the cycle
  /// loop to deterministic replay: calibration reads the book's seconds
  /// instead of the wall clock (and implies calibration.enabled), so every
  /// calibrated constant — and everything it prices — is byte-identical
  /// across engines, thread counts, and transports.
  std::string replay_path;
  /// Run name stamped on plum-scope/1 stream records and used for the
  /// crash postmortem file (POSTMORTEM_<scope_name>.json).
  std::string scope_name = "plum";
  /// Per-rank capacity of the always-on flight-recorder ring
  /// (obs::FlightRecorder; DistFramework only). Oldest events are
  /// overwritten, so this bounds both memory and postmortem size.
  int scope_ring_capacity = 256;
  /// Non-empty: append one plum-scope/1 NDJSON record per cycle to this
  /// file (per-rank busy/wait, gate verdict, imbalance, depot gauges).
  /// tools/plum-top tails it for a live view. DistFramework only.
  std::string scope_stream;
  /// Chunk size of the per-row plum-mem scratch arenas (obs::MemoryTracker).
  /// Phase scratch buffers (HEM matching, KL-FM refine, remap staging,
  /// subdivision snapshots) bump-allocate from these; smaller chunks stress
  /// the overflow path, larger ones amortize chunk requests.
  std::size_t arena_chunk_bytes = obs::Arena::kDefaultChunkBytes;
};

/// Everything one solve->adapt->balance cycle measured or decided.
struct CycleReport {
  Index elements_before = 0;
  Index elements_after = 0;
  Index elements_coarsened = 0;  ///< removed by the coarsening phase
  int mark_propagation_rounds = 0;

  bool evaluated_repartition = false;  ///< trigger fired
  bool accepted = false;               ///< remap executed
  bool used_previous_partition = false;

  double imbalance_old = 0;  ///< predicted wcomp imbalance, old partitions
  double imbalance_new = 0;  ///< after repartitioning + reassignment
  Weight wmax_old = 0;
  Weight wmax_new = 0;

  double gain_seconds = 0;
  double cost_seconds = 0;
  double mapper_seconds = 0;
  remap::RemapVolume volume;

  std::int64_t solver_work = 0;  ///< edge flux evaluations this cycle
};

class Framework {
 public:
  Framework(mesh::TetMesh mesh, FrameworkOptions opt);

  /// One full Fig. 1 cycle.
  CycleReport cycle();

  /// Runs n cycles; returns the reports.
  std::vector<CycleReport> run(int cycles);

  [[nodiscard]] const mesh::TetMesh& mesh() const { return *mesh_; }
  [[nodiscard]] mesh::TetMesh& mesh() { return *mesh_; }
  [[nodiscard]] solver::EulerSolver& solver() { return *solver_; }
  /// Current processor of each initial-mesh element (dual-graph vertex).
  [[nodiscard]] const partition::PartVec& root_partition() const {
    return root_part_;
  }
  [[nodiscard]] const graph::Csr& dual() const { return dual_; }
  [[nodiscard]] const FrameworkOptions& options() const { return opt_; }

  /// Per-processor solver load (current wcomp) under the current partition.
  [[nodiscard]] std::vector<Weight> processor_loads() const;

  /// plum-trace recorder: every cycle() wraps the Fig. 1 phases in named
  /// scopes (solve, coarsen, mark, gate/repartition/reassign/remap,
  /// subdivide) with wall seconds and sim::CostModel modeled seconds.
  [[nodiscard]] obs::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const obs::TraceRecorder& trace() const { return trace_; }

  /// Live paper-metric gauges: every cycle() appends one sample per series
  /// — "imbalance" (load-imbalance factor under the predicted weights),
  /// "edge_cut", and the remap::volume_fields() breakdown
  /// (remap_total_elems ... remap_max_sent_or_recv, zero on cycles whose
  /// gate never fired) — plus one fixed-bound histogram sample per closed
  /// phase ("phase_wall_seconds", see obs/critical_path.hpp). Recorded
  /// host-side between supersteps; never write to this from inside a
  /// superstep lambda (see obs/metrics.hpp).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// plum-mem tracker: per-phase allocation counters plus the per-row
  /// scratch arenas the hot phases (HEM match, KL-FM refine, remap staging,
  /// subdivision snapshots) allocate from. Its plum-heap/1 profile joins
  /// trace().to_json(); the deterministic view is byte-identical across
  /// engines, thread counts, and transports.
  [[nodiscard]] obs::MemoryTracker& memory() { return mem_; }
  [[nodiscard]] const obs::MemoryTracker& memory() const { return mem_; }

  /// The online calibrator (sim/calibration.hpp). Holds the static machine
  /// constants while calibration is disabled; under replay it is the
  /// deterministic control loop the gate prices with.
  [[nodiscard]] const sim::Calibration& calibration() const { return calib_; }

  /// Timing book recorded by this run, one entry per completed cycle. Save
  /// it (sim::ReplayBook::save) and feed it back through
  /// FrameworkOptions::replay_path to replay this run's calibration
  /// deterministically.
  [[nodiscard]] const sim::ReplayBook& replay_log() const {
    return replay_log_;
  }

 private:
  FrameworkOptions opt_;
  // unique_ptr: the solver and adaptor hold stable pointers to the mesh.
  std::unique_ptr<mesh::TetMesh> mesh_;
  std::unique_ptr<solver::EulerSolver> solver_;
  std::unique_ptr<adapt::MeshAdaptor> adaptor_;
  graph::Csr dual_;
  partition::PartVec root_part_;  ///< initial element -> processor
  obs::TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
  obs::MemoryTracker mem_;
  sim::Calibration calib_;
  sim::ReplayBook replay_book_;  ///< loaded from opt_.replay_path
  bool replay_ = false;
  sim::ReplayBook replay_log_;   ///< measured book recorded this run
  int cycle_index_ = 0;  ///< cycles completed; keys the gate-audit records
  /// First trace_ phase not yet sampled into the phase-seconds histogram.
  std::size_t hist_phase_cursor_ = 0;
};

}  // namespace plum::core
