#include "pmesh/parallel_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/collectives.hpp"
#include "util/assert.hpp"

namespace plum::pmesh {

using mesh::Vec3;
using solver::State;

namespace {

constexpr int kTagMetric = 11;
constexpr int kTagResidual = 12;

struct VertScalarMsg {
  Index local_id;  ///< receiver-local vertex id
  double volume;
  double min_len;
  Vec3 boundary_area;
};

struct EdgeAreaMsg {
  Index local_id;  ///< receiver-local edge id
  Vec3 area;       ///< sender's partial, oriented sender v0 -> v1
  Index your_v0;   ///< receiver-local id of the sender's v0 (orientation)
};

struct ResidualMsg {
  Index local_id;
  State partial;
};

Rank min_rank(Rank self, const std::vector<SharedCopy>& spl) {
  Rank m = self;
  for (const auto& c : spl) m = std::min(m, c.rank);
  return m;
}

}  // namespace

ParallelEulerSolver::ParallelEulerSolver(DistMesh* dm, rt::Engine* eng,
                                         solver::EulerOptions opt)
    : dm_(dm), eng_(eng), opt_(opt) {
  PLUM_ASSERT(dm != nullptr && eng != nullptr);
  const Rank P = dm_->nranks();
  // plum-scale: dist(P) -- the in-process harness keeps one solver state per simulated rank
  metrics_.resize(static_cast<std::size_t>(P));
  // plum-scale: dist(P) -- the in-process harness keeps one solver state per simulated rank
  edge_owned_.resize(static_cast<std::size_t>(P));
  // plum-scale: dist(P) -- the in-process harness keeps one solver state per simulated rank
  vert_owned_.resize(static_cast<std::size_t>(P));
  // plum-scale: dist(P) -- the in-process harness keeps one solver state per simulated rank
  u_.resize(static_cast<std::size_t>(P));

  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm_->local(r);
    metrics_[static_cast<std::size_t>(r)] =
        solver::build_dual_metrics(lm.mesh);
    u_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(lm.mesh.num_vertices()),
        State{1.0, 0.0, 0.0, 0.0, 1.0 / (opt_.gamma - 1.0)});

    auto& eo = edge_owned_[static_cast<std::size_t>(r)];
    eo.assign(static_cast<std::size_t>(lm.mesh.num_edges()), 1);
    for (const auto& [e, spl] : lm.shared_edges) {
      eo[static_cast<std::size_t>(e)] = (min_rank(r, spl) == r);
    }
    auto& vo = vert_owned_[static_cast<std::size_t>(r)];
    vo.assign(static_cast<std::size_t>(lm.mesh.num_vertices()), 1);
    for (const auto& [v, spl] : lm.shared_verts) {
      vo[static_cast<std::size_t>(v)] = (min_rank(r, spl) == r);
    }
  }
  exchange_setup();
}

void ParallelEulerSolver::exchange_setup() {
  const Rank P = dm_->nranks();

  // Slot lookup: local edge id -> metrics slot, per rank.
  // plum-scale: dist(P) -- per-destination slot maps used to stage the halo exchange
  std::vector<std::vector<Index>> slot(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    const auto& m = metrics_[static_cast<std::size_t>(r)];
    slot[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(dm_->local(r).mesh.num_edges()),
        kInvalidIndex);
    for (std::size_t k = 0; k < m.edges.size(); ++k) {
      slot[static_cast<std::size_t>(r)][static_cast<std::size_t>(m.edges[k])] =
          static_cast<Index>(k);
    }
  }

  eng_->run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& out) {
    const auto& lm = dm_->local(r);
    auto& m = metrics_[static_cast<std::size_t>(r)];

    if (out.step() == 0) {
      // Send partial vertex quantities and partial edge areas to copies.
      // plum-scale: dist(P) -- per-destination staging buckets for vertex scalars
      std::vector<std::vector<VertScalarMsg>> vout(static_cast<std::size_t>(P));
      for (const auto& [v, spl] : lm.shared_verts) {
        for (const auto& c : spl) {
          vout[static_cast<std::size_t>(c.rank)].push_back(
              {c.remote_id, m.cell_volume[static_cast<std::size_t>(v)],
               m.min_edge_length[static_cast<std::size_t>(v)],
               m.boundary_area[static_cast<std::size_t>(v)]});
        }
      }
      // plum-scale: dist(P) -- per-destination staging buckets for edge areas
      std::vector<std::vector<EdgeAreaMsg>> eout(static_cast<std::size_t>(P));
      for (const auto& [e, spl] : lm.shared_edges) {
        const Index s = slot[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)];
        if (s == kInvalidIndex) continue;  // not active locally
        const Index v0 = lm.mesh.edge(e).v0;
        for (const auto& c : spl) {
          // Receiver-local id of our v0, for orientation agreement.
          Index v0_on_peer = kInvalidIndex;
          auto it = lm.shared_verts.find(v0);
          PLUM_ASSERT(it != lm.shared_verts.end());
          for (const auto& vc : it->second) {
            if (vc.rank == c.rank) v0_on_peer = vc.remote_id;
          }
          PLUM_ASSERT(v0_on_peer != kInvalidIndex);
          eout[static_cast<std::size_t>(c.rank)].push_back(
              {c.remote_id, m.edge_area[static_cast<std::size_t>(s)],
               v0_on_peer});
        }
      }
      for (Rank q = 0; q < P; ++q) {
        if (!vout[static_cast<std::size_t>(q)].empty()) {
          out.send_vec(q, kTagMetric, vout[static_cast<std::size_t>(q)]);
        }
        if (!eout[static_cast<std::size_t>(q)].empty()) {
          out.send_vec(q, kTagMetric + 100, eout[static_cast<std::size_t>(q)]);
        }
      }
      return true;
    }

    for (const auto* msg : inbox.with_tag(kTagMetric)) {
      for (const auto& rec : rt::unpack<VertScalarMsg>(*msg)) {
        m.cell_volume[static_cast<std::size_t>(rec.local_id)] += rec.volume;
        m.min_edge_length[static_cast<std::size_t>(rec.local_id)] = std::min(
            m.min_edge_length[static_cast<std::size_t>(rec.local_id)],
            rec.min_len);
        m.boundary_area[static_cast<std::size_t>(rec.local_id)] +=
            rec.boundary_area;
      }
    }
    for (const auto* msg : inbox.with_tag(kTagMetric + 100)) {
      for (const auto& rec : rt::unpack<EdgeAreaMsg>(*msg)) {
        const Index s =
            slot[static_cast<std::size_t>(r)][static_cast<std::size_t>(rec.local_id)];
        PLUM_ASSERT_MSG(s != kInvalidIndex,
                        "peer active edge inactive locally");
        const bool aligned =
            dm_->local(r).mesh.edge(rec.local_id).v0 == rec.your_v0;
        m.edge_area[static_cast<std::size_t>(s)] +=
            aligned ? rec.area : rec.area * -1.0;
      }
    }
    return false;
  });
}

double ParallelEulerSolver::pressure(const State& s) const {
  const double rho = s[0];
  const double ke = 0.5 * (s[1] * s[1] + s[2] * s[2] + s[3] * s[3]) / rho;
  return (opt_.gamma - 1.0) * (s[4] - ke);
}

double ParallelEulerSolver::max_wave_speed(const State& s) const {
  const double rho = std::max(s[0], 1e-12);
  const double vel = std::sqrt(s[1] * s[1] + s[2] * s[2] + s[3] * s[3]) / rho;
  const double p = std::max(pressure(s), 1e-12);
  return vel + std::sqrt(opt_.gamma * p / rho);
}

void ParallelEulerSolver::exchange_residuals(
    std::vector<std::vector<State>>& res) {
  const Rank P = dm_->nranks();
  eng_->run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& out) {
    const auto& lm = dm_->local(r);
    if (out.step() == 0) {
      // plum-scale: dist(P) -- per-destination staging buckets for residual messages
      std::vector<std::vector<ResidualMsg>> outgoing(
          static_cast<std::size_t>(P));
      for (const auto& [v, spl] : lm.shared_verts) {
        for (const auto& c : spl) {
          outgoing[static_cast<std::size_t>(c.rank)].push_back(
              {c.remote_id,
               res[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]});
        }
      }
      for (Rank q = 0; q < P; ++q) {
        if (!outgoing[static_cast<std::size_t>(q)].empty()) {
          out.send_vec(q, kTagResidual, outgoing[static_cast<std::size_t>(q)]);
        }
      }
      return true;
    }
    // Deterministic accumulation: sort contributions by (sender, id).
    for (const auto* msg : inbox.with_tag(kTagResidual)) {
      for (const auto& rec : rt::unpack<ResidualMsg>(*msg)) {
        auto& acc =
            res[static_cast<std::size_t>(r)][static_cast<std::size_t>(rec.local_id)];
        for (int c = 0; c < solver::kNumVars; ++c) acc[c] += rec.partial[c];
      }
    }
    return false;
  });
}

ParallelEulerSolver::StepInfo ParallelEulerSolver::step() {
  const Rank P = dm_->nranks();
  StepInfo info;
  // plum-scale: host-only -- per-rank flux-eval counters for the step report
  info.edge_flux_evals.assign(static_cast<std::size_t>(P), 0);

  // --- global CFL dt ---------------------------------------------------------
  // plum-scale: host-only -- per-rank dt candidates reduced host-side to the global dt
  std::vector<double> local_dt(static_cast<std::size_t>(P),
                               std::numeric_limits<double>::max());
  for (Rank r = 0; r < P; ++r) {
    const auto& m = metrics_[static_cast<std::size_t>(r)];
    for (Index v : m.active_vertices()) {
      const double h = m.min_edge_length[static_cast<std::size_t>(v)];
      const double c =
          max_wave_speed(u_[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]);
      local_dt[static_cast<std::size_t>(r)] =
          std::min(local_dt[static_cast<std::size_t>(r)],
                   opt_.cfl * h / std::max(c, 1e-12));
    }
  }
  const double dt = rt::allreduce(
      *eng_, local_dt, [](double a, double b) { return std::min(a, b); },
      std::numeric_limits<double>::max());
  info.dt = dt;

  auto compute_residual = [&](const std::vector<std::vector<State>>& u,
                              std::vector<std::vector<State>>& res) {
    for (Rank r = 0; r < P; ++r) {
      const auto& lm = dm_->local(r);
      const auto& m = metrics_[static_cast<std::size_t>(r)];
      auto& rr = res[static_cast<std::size_t>(r)];
      rr.assign(u[static_cast<std::size_t>(r)].size(), State{});
      const auto& uu = u[static_cast<std::size_t>(r)];

      for (std::size_t k = 0; k < m.edges.size(); ++k) {
        const Index e = m.edges[k];
        if (!edge_owned_[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)]) {
          continue;  // a peer computes this flux
        }
        const Index a = lm.mesh.edge(e).v0;
        const Index b = lm.mesh.edge(e).v1;
        const Vec3 n = m.edge_area[static_cast<std::size_t>(k)];
        const double area = norm(n);
        if (area <= 0) continue;
        const State& ua = uu[static_cast<std::size_t>(a)];
        const State& ub = uu[static_cast<std::size_t>(b)];
        const double pa = pressure(ua), pb = pressure(ub);
        const Vec3 va{ua[1] / ua[0], ua[2] / ua[0], ua[3] / ua[0]};
        const Vec3 vb{ub[1] / ub[0], ub[2] / ub[0], ub[3] / ub[0]};
        const double vna = dot(va, n), vnb = dot(vb, n);
        const State fa{ua[0] * vna, ua[1] * vna + pa * n.x,
                       ua[2] * vna + pa * n.y, ua[3] * vna + pa * n.z,
                       (ua[4] + pa) * vna};
        const State fb{ub[0] * vnb, ub[1] * vnb + pb * n.x,
                       ub[2] * vnb + pb * n.y, ub[3] * vnb + pb * n.z,
                       (ub[4] + pb) * vnb};
        const double lam =
            std::max(max_wave_speed(ua), max_wave_speed(ub)) * area;
        for (int c = 0; c < solver::kNumVars; ++c) {
          const double f = 0.5 * (fa[c] + fb[c]) - 0.5 * lam * (ub[c] - ua[c]);
          rr[static_cast<std::size_t>(a)][c] -= f;
          rr[static_cast<std::size_t>(b)][c] += f;
        }
        ++info.edge_flux_evals[static_cast<std::size_t>(r)];
      }
    }
    // Sum partial residuals of shared vertices across copies.
    exchange_residuals(res);
    // Boundary closure after the exchange: every copy adds the same full
    // term locally, so it is counted once in each copy's (identical) total.
    for (Rank r = 0; r < P; ++r) {
      const auto& m = metrics_[static_cast<std::size_t>(r)];
      auto& rr = res[static_cast<std::size_t>(r)];
      const auto& uu = u[static_cast<std::size_t>(r)];
      for (std::size_t v = 0; v < rr.size(); ++v) {
        const Vec3 nb = m.boundary_area[v];
        if (nb.x == 0 && nb.y == 0 && nb.z == 0) continue;
        const double p = pressure(uu[v]);
        rr[v][1] -= p * nb.x;
        rr[v][2] -= p * nb.y;
        rr[v][3] -= p * nb.z;
      }
    }
  };

  // --- RK2 --------------------------------------------------------------------
  // plum-scale: dist(P) -- the harness keeps one residual vector per simulated rank
  std::vector<std::vector<State>> res(static_cast<std::size_t>(P));
  compute_residual(u_, res);
  std::vector<std::vector<State>> u1 = u_;
  for (Rank r = 0; r < P; ++r) {
    const auto& m = metrics_[static_cast<std::size_t>(r)];
    for (Index v : m.active_vertices()) {
      const double inv_vol = 1.0 / m.cell_volume[static_cast<std::size_t>(v)];
      for (int c = 0; c < solver::kNumVars; ++c) {
        u1[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)][c] +=
            0.5 * dt *
            res[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)][c] *
            inv_vol;
      }
    }
  }
  compute_residual(u1, res);
  for (Rank r = 0; r < P; ++r) {
    const auto& m = metrics_[static_cast<std::size_t>(r)];
    for (Index v : m.active_vertices()) {
      const double inv_vol = 1.0 / m.cell_volume[static_cast<std::size_t>(v)];
      for (int c = 0; c < solver::kNumVars; ++c) {
        u_[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)][c] +=
            dt *
            res[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)][c] *
            inv_vol;
      }
    }
  }
  return info;
}

void ParallelEulerSolver::run(int nsteps) {
  for (int i = 0; i < nsteps; ++i) step();
}

State ParallelEulerSolver::totals() const {
  State t{};
  for (Rank r = 0; r < dm_->nranks(); ++r) {
    const auto& m = metrics_[static_cast<std::size_t>(r)];
    for (Index v = 0; v < static_cast<Index>(u_[static_cast<std::size_t>(r)].size());
         ++v) {
      if (!vert_owned_[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]) {
        continue;  // counted by the owner
      }
      const double vol = m.cell_volume[static_cast<std::size_t>(v)];
      for (int c = 0; c < solver::kNumVars; ++c) {
        t[c] += vol *
                u_[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)][c];
      }
    }
  }
  return t;
}

std::vector<double> ParallelEulerSolver::density_field(Rank r) const {
  const auto& uu = u_[static_cast<std::size_t>(r)];
  std::vector<double> rho(uu.size());
  for (std::size_t v = 0; v < uu.size(); ++v) rho[v] = uu[v][0];
  return rho;
}

void ParallelEulerSolver::validate_replication() const {
  for (Rank r = 0; r < dm_->nranks(); ++r) {
    for (const auto& [v, spl] : dm_->local(r).shared_verts) {
      for (const auto& c : spl) {
        const auto& a = u_[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
        const auto& b = u_[static_cast<std::size_t>(c.rank)]
                          [static_cast<std::size_t>(c.remote_id)];
        for (int k = 0; k < solver::kNumVars; ++k) {
          PLUM_ASSERT_MSG(std::abs(a[k] - b[k]) <= 1e-11,
                          "shared vertex state diverged across ranks");
        }
      }
    }
  }
}

}  // namespace plum::pmesh
