#pragma once
// Distributed-memory Euler solver over a DistMesh — the parallel flow
// solver of the framework (paper §2 runs it on the same partitions the
// load balancer maintains; its per-processor cost is what Wcomp models).
//
// Scheme identical to solver::EulerSolver, parallelized the standard way
// for vertex-centered edge-based codes:
//   setup:  every copy of a shared edge/vertex assembles the *global*
//           metric quantities (dual-face areas, cell volumes, boundary
//           closure, CFL lengths) by exchanging partial sums over the SPLs;
//   step:   each edge's flux is computed by its owner rank only; partial
//           residuals of shared vertices are summed across copies (one
//           exchange per residual evaluation, two per RK2 step); the time
//           update then runs redundantly on every copy, which keeps shared
//           vertex states bit-replicated without a broadcast.
//
// The result matches the serial solver on the gathered mesh up to
// floating-point summation order.

#include "pmesh/dist_mesh.hpp"
#include "solver/dual_metrics.hpp"
#include "solver/euler.hpp"

namespace plum::pmesh {

class ParallelEulerSolver {
 public:
  ParallelEulerSolver(DistMesh* dm, rt::Engine* eng,
                      solver::EulerOptions opt = {});

  /// One RK2 step at the global CFL dt; returns dt and per-rank flux work.
  struct StepInfo {
    double dt = 0;
    std::vector<std::int64_t> edge_flux_evals;  ///< per rank
  };
  StepInfo step();

  void run(int nsteps);

  /// Per-rank conserved states (indexed by local vertex id).
  [[nodiscard]] const std::vector<solver::State>& solution(Rank r) const {
    return u_[static_cast<std::size_t>(r)];
  }
  std::vector<solver::State>& solution(Rank r) {
    return u_[static_cast<std::size_t>(r)];
  }

  /// Global totals (mass/momentum/energy), each dual cell counted once.
  [[nodiscard]] solver::State totals() const;

  /// Per-rank density field (for the local error indicator).
  [[nodiscard]] std::vector<double> density_field(Rank r) const;

  /// Checks that every shared vertex holds identical states on all copies.
  void validate_replication() const;

 private:
  void exchange_setup();
  void exchange_residuals(std::vector<std::vector<solver::State>>& res);

  DistMesh* dm_;
  rt::Engine* eng_;
  solver::EulerOptions opt_;

  // Per-rank solver state.
  std::vector<solver::DualMetrics> metrics_;   ///< globalized quantities
  std::vector<std::vector<char>> edge_owned_;  ///< flux responsibility
  std::vector<std::vector<char>> vert_owned_;  ///< for global reductions
  std::vector<std::vector<solver::State>> u_;

  [[nodiscard]] double pressure(const solver::State& s) const;
  [[nodiscard]] double max_wave_speed(const solver::State& s) const;
};

}  // namespace plum::pmesh
