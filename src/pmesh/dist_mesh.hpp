#pragma once
// Distributed tetrahedral mesh (paper §3, distributed-memory 3D_TAG).
//
// Each logical rank owns the initial-mesh elements its partition assigns to
// it, plus their whole refinement subtrees (descendants follow their root —
// that is also why Wremap counts the full tree). Vertices and edges on
// partition boundaries are replicated on every sharing rank; each shared
// object carries a shared-processor list (SPL) with the *remote local ids*
// of its copies, which is what messages address ("a list of shared
// processors is also generated for each shared object").
//
// Construction distributes a (possibly already adapted) global mesh. After
// that, the parallel marking / refinement algorithms (parallel_adapt.hpp)
// mutate only the per-rank local meshes and keep the SPL maps consistent
// through explicit messages. Data migration is performed by redistributing
// from the global mirror (DESIGN.md §3 documents this substitution); its
// traffic volumes are charged from the real subtree sizes.

#include <map>
#include <vector>

#include "mesh/tet_mesh.hpp"
#include "partition/quality.hpp"
#include "runtime/engine.hpp"

namespace plum::pmesh {

/// One (rank, remote local id) entry of a shared object's SPL.
struct SharedCopy {
  Rank rank = kNoRank;
  Index remote_id = kInvalidIndex;
};

/// SPL map: local id -> copies on other ranks. Deliberately an *ordered*
/// map: the parallel adaption and solver range-for these maps to build
/// Outbox::send batches, so the iteration order is part of the engine
/// determinism contract (runtime/engine.hpp) — an unordered_map here made
/// message payload order depend on the standard library's hashing.
/// plum-lint's `unordered-iteration` check enforces this.
using SplMap = std::map<Index, std::vector<SharedCopy>>;

/// Per-rank piece of the distributed mesh.
struct LocalMesh {
  mesh::TetMesh mesh;

  /// Local root element -> global initial-element id (dual graph vertex).
  std::vector<Index> root_global;

  /// Construction-time global ids (local id -> id in the source global
  /// mesh). Entities created by later parallel adaption have no entry;
  /// their cross-rank identity lives purely in the SPL maps.
  std::vector<Index> vert_global;
  std::vector<Index> edge_global;

  /// SPLs; only boundary objects appear. Keys iterate in ascending local
  /// id so every traversal (message building, validation) is deterministic.
  // plum-scale: dist(P) -- keyed by global id but holds only this rank's shared-boundary entries, O(cut) not O(N)
  SplMap shared_verts;
  // plum-scale: dist(P) -- keyed by global id but holds only this rank's shared-boundary entries, O(cut) not O(N)
  SplMap shared_edges;

  [[nodiscard]] bool vert_is_shared(Index v) const {
    return shared_verts.count(v) > 0;
  }
  [[nodiscard]] bool edge_is_shared(Index e) const {
    return shared_edges.count(e) > 0;
  }
};

class DistMesh {
 public:
  /// Distributes `global` over `nranks` ranks: initial element t goes to
  /// root_part[t]; descendants follow. `global` may be pre-adapted.
  DistMesh(const mesh::TetMesh& global, const partition::PartVec& root_part,
           Rank nranks);

  [[nodiscard]] Rank nranks() const {
    return static_cast<Rank>(locals_.size());
  }
  [[nodiscard]] LocalMesh& local(Rank r) {
    return locals_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const LocalMesh& local(Rank r) const {
    return locals_[static_cast<std::size_t>(r)];
  }

  /// Sum over ranks of active local elements (shared objects make vertex /
  /// edge sums exceed the global counts; elements are never replicated).
  [[nodiscard]] Index total_active_elements() const;

  /// Per-rank active leaf element counts — the solver load vector.
  [[nodiscard]] std::vector<Index> active_elements_per_rank() const;

  /// Extra storage fraction of the parallel version: replicated shared
  /// objects / total local objects (paper: "less than 10%").
  [[nodiscard]] double shared_object_fraction() const;

  /// Checks SPL symmetry (i's entry for j mirrors j's entry for i) and that
  /// shared edges/vertices have identical geometry on every copy.
  void validate() const;

 private:
  std::vector<LocalMesh> locals_;
};

}  // namespace plum::pmesh
