#pragma once
// Data remapping / element migration (paper §4.6): physically move every
// initial-mesh element whose processor assignment changed — together with
// its whole refinement subtree ("all descendants of the root element must
// move with it") — and rebuild the per-rank local meshes and SPLs.
//
// The byte traffic charged to the engine is computed from the *real* local
// subtree sizes (elements, their vertices/edges and boundary faces at the
// serialized record sizes), so Fig. 5-style remap costs come from measured
// volumes. The structural rebuild itself reuses the finalization gather +
// redistribution path (DESIGN.md §3 documents this substitution for the
// pack/unpack plumbing).

#include "obs/memory.hpp"
#include "pmesh/dist_mesh.hpp"
#include "solver/euler.hpp"

namespace plum::pmesh {

/// Framing/setup bytes charged once per (sender, receiver) message set: the
/// pack header a real exchange carries per peer (counts, ids, sizes). Keep
/// sim::MachineParams::bytes_per_set equal to this so the cost model's
/// predicted bytes match the migration accounting (pinned by
/// test_calibration).
inline constexpr std::int64_t kSetFramingBytes = 96;

struct MigrateStats {
  /// Initial-mesh elements (roots) that changed processor.
  Index roots_moved = 0;
  /// Adapted-mesh elements moved (sum of moved subtree sizes) — the
  /// quantity Wremap predicts.
  std::int64_t elements_moved = 0;
  /// Nonzero (sender, receiver) message sets — the N the cost model's
  /// per-set terms price.
  int sets_moved = 0;
  /// Bytes each rank packed/sent, per-set framing included (charged to the
  /// engine ledger too).
  std::vector<std::int64_t> bytes_sent;
  std::vector<std::int64_t> bytes_received;
};

/// Moves ownership per `new_root_part` (indexed by *global* initial-element
/// id) and replaces `dm` with the redistributed mesh. Traffic is charged on
/// `eng`. If `states` is non-null it holds one per-vertex solution vector
/// per rank (aligned with the old local meshes) and is rewritten to follow
/// the new distribution — the "all necessary data is appropriately
/// redistributed" of the paper's Fig. 1. A non-null `mem` arena-backs the
/// per-destination pack staging tables (host measuring pass on the host
/// row, the superstep's staging on each rank's row) and attributes their
/// churn to the open phase.
MigrateStats migrate(DistMesh& dm, rt::Engine& eng,
                     const partition::PartVec& new_root_part,
                     std::vector<std::vector<solver::State>>* states =
                         nullptr,
                     obs::MemoryTracker* mem = nullptr);

}  // namespace plum::pmesh
