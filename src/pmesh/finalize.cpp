#include "pmesh/finalize.hpp"

#include <algorithm>
#include <functional>

#include "runtime/collectives.hpp"
#include "util/assert.hpp"

namespace plum::pmesh {

namespace {

/// Owner of a shared object: the lowest rank holding a copy.
Rank owner_of(Rank self, const std::vector<SharedCopy>* spl) {
  Rank owner = self;
  if (spl) {
    for (const auto& c : *spl) owner = std::min(owner, c.rank);
  }
  return owner;
}

struct GidMsg {
  Index local_id;  ///< receiver-local id
  Index gid;
};

/// Assigns dense global ids to vertices or edges: owners number their
/// objects (two passes for edges so level-0 edges occupy the global
/// prefix), then push the ids to the other copies through the engine.
/// `is_first_class(r, i)` selects pass-one objects; pass nullptr for a
/// single pass.
std::vector<std::vector<Index>> number_objects(
    const DistMesh& dm, rt::Engine& eng,
    const std::function<Index(Rank)>& count_of,
    const std::function<const std::vector<SharedCopy>*(Rank, Index)>& spl_of,
    const std::function<bool(Rank, Index)>& in_first_pass) {
  const Rank P = dm.nranks();
  // plum-scale: host-only -- host-side gather of per-rank global ids during finalize
  std::vector<std::vector<Index>> gid(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    gid[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(count_of(r)), kInvalidIndex);
  }

  // Owned counts per rank per pass -> exclusive prefix offsets.
  Index next = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (Rank r = 0; r < P; ++r) {
      const Index n = count_of(r);
      for (Index i = 0; i < n; ++i) {
        if (owner_of(r, spl_of(r, i)) != r) continue;
        const bool first = in_first_pass(r, i);
        if ((pass == 0) != first) continue;
        gid[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] = next++;
      }
    }
  }

  // Push ids to non-owning copies (one superstep of GidMsg batches).
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& out) {
    if (out.step() == 0) {
      // plum-scale: dist(P) -- per-destination staging buckets; headers O(P), payload O(messages)
      std::vector<std::vector<GidMsg>> outgoing(static_cast<std::size_t>(P));
      const Index n = count_of(r);
      for (Index i = 0; i < n; ++i) {
        const auto* spl = spl_of(r, i);
        if (!spl || owner_of(r, spl) != r) continue;
        for (const auto& c : *spl) {
          outgoing[static_cast<std::size_t>(c.rank)].push_back(
              {c.remote_id,
               gid[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]});
        }
      }
      for (Rank q = 0; q < P; ++q) {
        if (!outgoing[static_cast<std::size_t>(q)].empty()) {
          out.send_vec(q, 0, outgoing[static_cast<std::size_t>(q)]);
        }
      }
      return true;
    }
    for (const auto& m : inbox.messages()) {
      for (const auto& msg : rt::unpack<GidMsg>(m)) {
        auto& slot = gid[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(msg.local_id)];
        PLUM_ASSERT_MSG(slot == kInvalidIndex || slot == msg.gid,
                        "conflicting global ids for a shared object");
        slot = msg.gid;
      }
    }
    return false;
  });

  for (Rank r = 0; r < P; ++r) {
    for (Index g : gid[static_cast<std::size_t>(r)]) {
      PLUM_ASSERT_MSG(g != kInvalidIndex, "object missed global numbering");
    }
  }
  return gid;
}

}  // namespace

FinalizeResult finalize_gather(const DistMesh& dm, rt::Engine& eng) {
  const Rank P = dm.nranks();
  FinalizeResult out;

  // --- vertices (single pass) ----------------------------------------------
  auto vert_spl = [&](Rank r, Index v) -> const std::vector<SharedCopy>* {
    const auto& map = dm.local(r).shared_verts;
    auto it = map.find(v);
    return it == map.end() ? nullptr : &it->second;
  };
  out.vert_global = number_objects(
      dm, eng, [&](Rank r) { return dm.local(r).mesh.num_vertices(); },
      vert_spl, [](Rank, Index) { return true; });

  // --- edges (level-0 owned edges claim the global prefix) ------------------
  auto edge_spl = [&](Rank r, Index e) -> const std::vector<SharedCopy>* {
    const auto& map = dm.local(r).shared_edges;
    auto it = map.find(e);
    return it == map.end() ? nullptr : &it->second;
  };
  out.edge_global = number_objects(
      dm, eng, [&](Rank r) { return dm.local(r).mesh.num_edges(); }, edge_spl,
      [&](Rank r, Index e) { return dm.local(r).mesh.edge(e).level == 0; });
  const auto& edge_gid = out.edge_global;

  // --- elements (never shared; level-0 first, preserving per-rank order) ----
  // plum-scale: host-only -- the gathered final mesh lives on the host
  out.elem_global.resize(static_cast<std::size_t>(P));
  Index next_elem = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (Rank r = 0; r < P; ++r) {
      const auto& lm = dm.local(r).mesh;
      auto& eg = out.elem_global[static_cast<std::size_t>(r)];
      eg.resize(static_cast<std::size_t>(lm.num_elements()), kInvalidIndex);
      for (Index t = 0; t < lm.num_elements(); ++t) {
        const bool init = lm.element(t).level == 0;
        if ((pass == 0) == init) {
          eg[static_cast<std::size_t>(t)] = next_elem++;
        }
      }
    }
  }

  // --- boundary faces (local; simple per-rank offsets) ----------------------
  // plum-scale: host-only -- host-side prefix-offset table for the gathered mesh
  std::vector<Index> bface_offset(static_cast<std::size_t>(P) + 1, 0);
  for (Rank r = 0; r < P; ++r) {
    bface_offset[static_cast<std::size_t>(r) + 1] =
        bface_offset[static_cast<std::size_t>(r)] +
        dm.local(r).mesh.num_bfaces();
  }

  // --- the host gathers and concatenates ------------------------------------
  // (One rank-0 assembly; charge the traffic as a gather of each rank's
  //  owned records.)
  Index total_verts = 0, total_edges = 0, total_elems = 0;
  Index init_elems = 0;
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r).mesh;
    total_elems += lm.num_elements();
    init_elems += lm.num_initial_elements();
    for (Index v = 0; v < lm.num_vertices(); ++v) {
      total_verts += (owner_of(r, vert_spl(r, v)) == r);
    }
    for (Index e = 0; e < lm.num_edges(); ++e) {
      total_edges += (owner_of(r, edge_spl(r, e)) == r);
    }
  }
  // Shared edges are owned once, but their level-0 subset still forms the
  // prefix; recompute the true count of distinct initial edges.
  Index distinct_init_edges = 0;
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r).mesh;
    for (Index e = 0; e < lm.num_edges(); ++e) {
      if (lm.edge(e).level == 0 && owner_of(r, edge_spl(r, e)) == r) {
        ++distinct_init_edges;
      }
    }
  }

  std::vector<mesh::Vertex> gverts(static_cast<std::size_t>(total_verts));
  std::vector<mesh::Edge> gedges(static_cast<std::size_t>(total_edges));
  std::vector<mesh::Element> gelems(static_cast<std::size_t>(total_elems));
  std::vector<mesh::BFace> gbfaces(
      static_cast<std::size_t>(bface_offset[static_cast<std::size_t>(P)]));

  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r).mesh;
    const auto& vg = out.vert_global[static_cast<std::size_t>(r)];
    const auto& egd = edge_gid[static_cast<std::size_t>(r)];
    const auto& tg = out.elem_global[static_cast<std::size_t>(r)];
    auto fmap = [&](Index f) {
      return f == kInvalidIndex
                 ? kInvalidIndex
                 : bface_offset[static_cast<std::size_t>(r)] + f;
    };

    for (Index v = 0; v < lm.num_vertices(); ++v) {
      if (owner_of(r, vert_spl(r, v)) == r) {
        gverts[static_cast<std::size_t>(vg[v])] = lm.vertex(v);
      }
    }
    for (Index e = 0; e < lm.num_edges(); ++e) {
      if (owner_of(r, edge_spl(r, e)) != r) continue;
      mesh::Edge ed = lm.edge(e);
      ed.v0 = vg[ed.v0];
      ed.v1 = vg[ed.v1];
      if (ed.v0 > ed.v1) std::swap(ed.v0, ed.v1);
      if (ed.mid != kInvalidIndex) ed.mid = vg[ed.mid];
      if (ed.parent != kInvalidIndex) ed.parent = egd[ed.parent];
      for (auto& c : ed.child) {
        if (c != kInvalidIndex) c = egd[c];
      }
      gedges[static_cast<std::size_t>(egd[e])] = ed;
    }
    for (Index t = 0; t < lm.num_elements(); ++t) {
      mesh::Element el = lm.element(t);
      for (auto& v : el.verts) v = vg[v];
      for (auto& e : el.edges) e = egd[e];
      if (el.parent != kInvalidIndex) el.parent = tg[el.parent];
      if (el.first_child != kInvalidIndex) el.first_child = tg[el.first_child];
      el.root = tg[el.root];
      gelems[static_cast<std::size_t>(tg[t])] = el;
    }
    for (Index f = 0; f < lm.num_bfaces(); ++f) {
      mesh::BFace bf = lm.bface(f);
      for (auto& v : bf.verts) v = vg[v];
      for (auto& e : bf.edges) e = egd[e];
      bf.parent = fmap(bf.parent);
      for (auto& c : bf.child) c = fmap(c);
      gbfaces[static_cast<std::size_t>(fmap(f))] = bf;
    }
  }

  // Children of one parent must stay contiguous: per-rank relative order is
  // preserved by the two-pass numbering, and children are never level 0.
  out.global = mesh::TetMesh::assemble(std::move(gverts), std::move(gedges),
                                       std::move(gelems), std::move(gbfaces),
                                       init_elems, distinct_init_edges);
  return out;
}

}  // namespace plum::pmesh
