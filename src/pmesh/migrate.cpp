#include "pmesh/migrate.hpp"

#include "pmesh/finalize.hpp"
#include "util/assert.hpp"

namespace plum::pmesh {

namespace {

// Serialized record sizes (what a pack buffer would carry per object).
constexpr std::int64_t kElemBytes = sizeof(mesh::Element);
constexpr std::int64_t kVertBytes = sizeof(mesh::Vertex);
constexpr std::int64_t kEdgeBytes = sizeof(mesh::Edge);

}  // namespace

MigrateStats migrate(DistMesh& dm, rt::Engine& eng,
                     const partition::PartVec& new_root_part,
                     std::vector<std::vector<solver::State>>* states,
                     obs::MemoryTracker* mem) {
  const Rank P = dm.nranks();
  MigrateStats stats;
  // plum-scale: host-only -- migration statistics table for the report, not rank-resident
  stats.bytes_sent.assign(static_cast<std::size_t>(P), 0);
  // plum-scale: host-only -- migration statistics table for the report, not rank-resident
  stats.bytes_received.assign(static_cast<std::size_t>(P), 0);

  // --- measure what each rank must pack --------------------------------------
  // For every local root whose assignment moved away: the subtree elements,
  // plus (upper bound on) the vertices/edges referenced by them, plus one
  // framing header per (sender, receiver) set actually exchanged.
  const obs::MemScratch host_ms =
      mem != nullptr ? mem->host_scratch() : obs::MemScratch{};
  for (Rank r = 0; r < P; ++r) {
    const LocalMesh& lm = dm.local(r);
    const auto weights = lm.mesh.root_weights();
    // plum-scale: scratch -- per-destination pack sizes, arena staging
    obs::TrackedVec<std::int64_t> per_dest(
        static_cast<std::size_t>(P), 0,
        obs::TrackingAllocator<std::int64_t>{host_ms});
    for (Index lr = 0; lr < static_cast<Index>(lm.root_global.size()); ++lr) {
      const Index groot = lm.root_global[static_cast<std::size_t>(lr)];
      const Rank dest = new_root_part[static_cast<std::size_t>(groot)];
      if (dest == r) continue;
      const std::int64_t subtree =
          weights.wremap[static_cast<std::size_t>(lr)];
      ++stats.roots_moved;
      stats.elements_moved += subtree;
      // Per element: the record itself + ~4 vertices and ~6 edges shared
      // among neighbors (amortized factor 1/2 each, a realistic pack mix).
      per_dest[static_cast<std::size_t>(dest)] +=
          subtree * (kElemBytes + 2 * kVertBytes + 3 * kEdgeBytes);
    }
    for (Rank q = 0; q < P; ++q) {
      if (per_dest[static_cast<std::size_t>(q)] == 0) continue;
      const std::int64_t bytes =
          per_dest[static_cast<std::size_t>(q)] + kSetFramingBytes;
      ++stats.sets_moved;
      stats.bytes_sent[static_cast<std::size_t>(r)] += bytes;
      stats.bytes_received[static_cast<std::size_t>(q)] += bytes;
    }
  }

  // --- charge the traffic through the engine ---------------------------------
  // A single superstep (every rank returns false): the ledger records the
  // sends; the payload itself is reconstructed below, not delivered.
  eng.run([&](Rank r, const rt::Inbox&, rt::Outbox& out) {
    // One logical message per destination with the measured payload size.
    // (Payload content is reconstructed below; the ledger only needs size.)
    // The claiming worker stages through its own rank's scratch row —
    // rank-indexed arenas/taps, the rank_seconds_ ownership rule.
    const obs::MemScratch ms =
        mem != nullptr ? mem->scratch(r) : obs::MemScratch{};
    // plum-scale: scratch -- per-destination pack staging, arena-backed
    obs::TrackedVec<std::int64_t> per_dest(
        static_cast<std::size_t>(P), 0,
        obs::TrackingAllocator<std::int64_t>{ms});
    const LocalMesh& lm = dm.local(r);
    const auto weights = lm.mesh.root_weights();
    for (Index lr = 0; lr < static_cast<Index>(lm.root_global.size()); ++lr) {
      const Index groot = lm.root_global[static_cast<std::size_t>(lr)];
      const Rank dest = new_root_part[static_cast<std::size_t>(groot)];
      if (dest == r) continue;
      per_dest[static_cast<std::size_t>(dest)] +=
          weights.wremap[static_cast<std::size_t>(lr)] *
          (kElemBytes + 2 * kVertBytes + 3 * kEdgeBytes);
    }
    for (Rank q = 0; q < P; ++q) {
      const std::int64_t bytes = per_dest[static_cast<std::size_t>(q)];
      if (bytes > 0) {
        // Payload + the per-set framing header, matching the measured
        // stats above so the ledger and MigrateStats agree byte-for-byte.
        out.send(q, 0,
                 std::vector<std::byte>(
                     static_cast<std::size_t>(bytes + kSetFramingBytes)));
      }
    }
    return false;
  });

  // --- rebuild the distributed mesh under the new ownership ------------------
  const auto fin = finalize_gather(dm, eng);

  // Solution transfer rides the same gather: assemble the global field from
  // each vertex copy (copies are replicated, so any copy's value works).
  std::vector<solver::State> global_state;
  if (states) {
    global_state.resize(static_cast<std::size_t>(fin.global.num_vertices()));
    for (Rank r = 0; r < P; ++r) {
      const auto& vg = fin.vert_global[static_cast<std::size_t>(r)];
      const auto& su = (*states)[static_cast<std::size_t>(r)];
      PLUM_ASSERT(su.size() == vg.size());
      for (std::size_t v = 0; v < vg.size(); ++v) {
        global_state[static_cast<std::size_t>(vg[v])] = su[v];
      }
    }
  }
  // finalize_gather renumbered initial elements; recover the new-partition
  // entry of each gathered root through the old global ids.
  partition::PartVec gathered_part(
      static_cast<std::size_t>(fin.global.num_initial_elements()), kNoRank);
  for (Rank r = 0; r < P; ++r) {
    const LocalMesh& lm = dm.local(r);
    for (Index lr = 0; lr < static_cast<Index>(lm.root_global.size()); ++lr) {
      const Index old_gid = lm.root_global[static_cast<std::size_t>(lr)];
      const Index new_gid =
          fin.elem_global[static_cast<std::size_t>(r)][static_cast<std::size_t>(lr)];
      gathered_part[static_cast<std::size_t>(new_gid)] =
          new_root_part[static_cast<std::size_t>(old_gid)];
    }
  }
  DistMesh rebuilt(fin.global, gathered_part, P);
  // Root ids changed with the gather; translate root_global back to the
  // caller's original numbering so dual-graph bookkeeping stays stable.
  std::vector<Index> new_to_orig(
      static_cast<std::size_t>(fin.global.num_initial_elements()),
      kInvalidIndex);
  for (Rank r = 0; r < P; ++r) {
    const LocalMesh& lm = dm.local(r);
    for (Index lr = 0; lr < static_cast<Index>(lm.root_global.size()); ++lr) {
      new_to_orig[static_cast<std::size_t>(
          fin.elem_global[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(lr)])] =
          lm.root_global[static_cast<std::size_t>(lr)];
    }
  }
  for (Rank r = 0; r < P; ++r) {
    for (auto& g : rebuilt.local(r).root_global) {
      g = new_to_orig[static_cast<std::size_t>(g)];
      PLUM_ASSERT(g != kInvalidIndex);
    }
  }
  if (states) {
    // plum-scale: dist(P) -- one migration state per simulated rank in the in-process harness
    states->assign(static_cast<std::size_t>(P), {});
    for (Rank r = 0; r < P; ++r) {
      const auto& vg = rebuilt.local(r).vert_global;  // gathered-space ids
      auto& su = (*states)[static_cast<std::size_t>(r)];
      su.resize(vg.size());
      for (std::size_t v = 0; v < vg.size(); ++v) {
        su[v] = global_state[static_cast<std::size_t>(vg[v])];
      }
    }
  }
  dm = std::move(rebuilt);
  return stats;
}

}  // namespace plum::pmesh
