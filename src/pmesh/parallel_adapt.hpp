#pragma once
// Parallel mesh adaption over the distributed mesh (paper §3, "execution
// phase"): every rank runs the serial 3D_TAG kernels on its local region
// while explicit messages keep the shared-edge markings and the SPLs of
// newly created boundary objects globally consistent.
//
//  - parallel_mark: local pattern-upgrade propagation; after each sweep the
//    newly marked local copies of shared edges are sent to every rank in
//    their SPL; repeats until global quiescence ("the process may continue
//    for several iterations, and edge markings could propagate back and
//    forth across partitions").
//  - parallel_refine: local subdivision per the final patterns, then the
//    post-processing phase that assigns shared-processor information to new
//    boundary objects: children/midpoints of bisected shared edges inherit
//    the SPL; face-crossing edges are matched by exchanging their (shared)
//    endpoint correspondences.

#include <vector>

#include "adapt/marking.hpp"
#include "adapt/refine.hpp"
#include "obs/memory.hpp"
#include "pmesh/dist_mesh.hpp"

namespace plum::pmesh {

struct ParallelMarkResult {
  /// Per-rank final MarkingResult on the local mesh.
  std::vector<adapt::MarkingResult> per_rank;
  /// Number of cross-partition propagation rounds (communication steps).
  int comm_rounds = 0;
  /// Total shared-edge mark notifications exchanged.
  std::int64_t marks_exchanged = 0;
};

/// Runs distributed marking from per-rank seed marks (indexed by local edge
/// id). The engine's ledger accumulates the traffic. A non-null `mem`
/// arena-backs each rank's per-destination mark staging buckets through
/// that rank's scratch row (plum-mem ownership rule).
ParallelMarkResult parallel_mark(
    DistMesh& dm, rt::Engine& eng,
    const std::vector<std::vector<char>>& seed_marks,
    obs::MemoryTracker* mem = nullptr);

struct ParallelRefineResult {
  std::vector<adapt::RefineStats> per_rank;
  /// Subdivision work units (children created) per rank — the load whose
  /// balance the remap-before-refinement strategy improves (Fig. 4).
  std::vector<Index> work_per_rank;
  /// New shared-object records created in the post-processing phase.
  std::int64_t new_shared_edges = 0;
  std::int64_t new_shared_verts = 0;
};

/// Subdivides every rank's local mesh per `marks` (from parallel_mark) and
/// repairs the SPL maps for objects created on partition boundaries. A
/// non-null `mem` arena-backs the subdivision snapshots and the
/// post-processing staging buckets per rank row.
ParallelRefineResult parallel_refine(DistMesh& dm, rt::Engine& eng,
                                     const ParallelMarkResult& marks,
                                     obs::MemoryTracker* mem = nullptr);

}  // namespace plum::pmesh
