#include "pmesh/parallel_adapt.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace plum::pmesh {

namespace {

constexpr int kTagMark = 1;
constexpr int kTagBisect = 2;
constexpr int kTagFaceEdge = 3;

/// Mark notification: "your local edge `edge` is now marked".
struct MarkMsg {
  Index edge;
};

/// Bisection notification for a shared edge (phase 1 of SPL repair).
struct BisectMsg {
  Index your_edge;     ///< receiver-local id of the shared edge
  Index my_v0_on_you;  ///< receiver-local id of *my* canonical v0
  Index my_child0;     ///< my child containing my v0
  Index my_child1;
  Index my_mid;
};

/// Face-crossing edge announcement (phase 2): both endpoints are shared
/// with the receiver; it owns the twin edge iff find_edge succeeds.
struct FaceEdgeMsg {
  Index your_v0;  ///< receiver-local endpoint ids
  Index your_v1;
  Index my_edge;
};

/// Receiver-local id of vertex `v` on rank `q`, or kInvalidIndex.
Index vert_on(const LocalMesh& lm, Index v, Rank q) {
  auto it = lm.shared_verts.find(v);
  if (it == lm.shared_verts.end()) return kInvalidIndex;
  for (const auto& c : it->second) {
    if (c.rank == q) return c.remote_id;
  }
  return kInvalidIndex;
}

void add_shared(SplMap& map, Index local, Rank rank, Index remote) {
  auto& spl = map[local];
  for (const auto& c : spl) {
    if (c.rank == rank && c.remote_id == remote) return;  // idempotent
  }
  spl.push_back({rank, remote});
}

}  // namespace

ParallelMarkResult parallel_mark(
    DistMesh& dm, rt::Engine& eng,
    const std::vector<std::vector<char>>& seed_marks,
    obs::MemoryTracker* mem) {
  const Rank P = dm.nranks();
  PLUM_ASSERT(static_cast<Rank>(seed_marks.size()) == P);

  ParallelMarkResult out;
  // plum-scale: dist(P) -- driver output: one refinement summary per rank
  out.per_rank.resize(static_cast<std::size_t>(P));

  // Per-rank accumulated seeds and the set of shared marks already sent.
  std::vector<std::vector<char>> seeds = seed_marks;
  // plum-scale: dist(P) -- per-destination dedup marks for mark-propagation sends
  std::vector<std::vector<char>> sent(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    seeds[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(dm.local(r).mesh.num_edges()), 0);
    sent[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(dm.local(r).mesh.num_edges()), 0);
  }

  // Rank-safe program: rank r touches only its own slots of seeds / sent /
  // out.per_rank / exchanged, so both engines run it identically.
  // plum-scale: dist(P) -- per-peer exchange counters for the comm ledger
  std::vector<std::int64_t> exchanged(static_cast<std::size_t>(P), 0);
  const int steps_before = eng.ledger().num_supersteps();
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    LocalMesh& lm = dm.local(r);
    auto& my_seeds = seeds[static_cast<std::size_t>(r)];

    // Absorb cross-partition marks.
    bool new_input = outbox.step() == 0;  // first round: initial seeds
    for (const auto* m : inbox.with_tag(kTagMark)) {
      for (const auto& rec : rt::unpack<MarkMsg>(*m)) {
        if (!my_seeds[static_cast<std::size_t>(rec.edge)]) {
          my_seeds[static_cast<std::size_t>(rec.edge)] = 1;
          new_input = true;
        }
      }
    }
    if (!new_input) return false;

    // Local propagation to a fixpoint; charge one unit per local element
    // re-examined (the serial kernel does the same work).
    auto& result = out.per_rank[static_cast<std::size_t>(r)];
    result = adapt::propagate_marks(lm.mesh, my_seeds);
    outbox.charge(lm.mesh.num_active_elements());

    // Marks may have grown beyond the seeds; fold back so the next round
    // starts from the fixpoint.
    my_seeds = result.edge_marked;

    // Send newly marked shared-edge copies to their SPL ranks. The
    // claiming worker stages through its own rank's scratch row.
    const obs::MemScratch ms =
        mem != nullptr ? mem->scratch(r) : obs::MemScratch{};
    // plum-scale: scratch -- per-destination mark staging buckets, arena-backed
    obs::TrackedVec<obs::TrackedVec<MarkMsg>> outgoing(
        static_cast<std::size_t>(P),
        obs::TrackedVec<MarkMsg>{obs::TrackingAllocator<MarkMsg>{ms}},
        obs::TrackingAllocator<obs::TrackedVec<MarkMsg>>{ms});
    auto& my_sent = sent[static_cast<std::size_t>(r)];
    bool sent_any = false;
    for (Index e : result.marked_edges) {
      if (my_sent[static_cast<std::size_t>(e)]) continue;
      my_sent[static_cast<std::size_t>(e)] = 1;
      auto it = lm.shared_edges.find(e);
      if (it == lm.shared_edges.end()) continue;
      for (const auto& copy : it->second) {
        outgoing[static_cast<std::size_t>(copy.rank)].push_back(
            {copy.remote_id});
        ++exchanged[static_cast<std::size_t>(r)];
        sent_any = true;
      }
    }
    for (Rank q = 0; q < P; ++q) {
      if (!outgoing[static_cast<std::size_t>(q)].empty()) {
        outbox.send_vec(q, kTagMark, outgoing[static_cast<std::size_t>(q)]);
      }
    }
    return sent_any;
  });
  out.comm_rounds = eng.ledger().num_supersteps() - steps_before;
  for (Rank r = 0; r < P; ++r) {
    out.marks_exchanged += exchanged[static_cast<std::size_t>(r)];
  }

  // Ranks that never re-ran after the last absorb still hold a fixpoint
  // result; ranks that never had marks need an (empty) result too.
  for (Rank r = 0; r < P; ++r) {
    auto& res = out.per_rank[static_cast<std::size_t>(r)];
    if (res.edge_marked.empty()) {
      res = adapt::propagate_marks(dm.local(r).mesh,
                                   seeds[static_cast<std::size_t>(r)]);
    }
  }
  return out;
}

ParallelRefineResult parallel_refine(DistMesh& dm, rt::Engine& eng,
                                     const ParallelMarkResult& marks,
                                     obs::MemoryTracker* mem) {
  const Rank P = dm.nranks();
  ParallelRefineResult out;
  // plum-scale: dist(P) -- driver output: one adaptation summary per rank
  out.per_rank.resize(static_cast<std::size_t>(P));
  // plum-scale: dist(P) -- driver output: per-rank work accounting
  out.work_per_rank.assign(static_cast<std::size_t>(P), 0);

  // plum-scale: host-only -- driver snapshot of pre-adaptation sizes for the report
  std::vector<Index> old_ne(static_cast<std::size_t>(P));
  // Iterated below to build BisectMsg batches: must stay an ordered map so
  // the message payload order matches the sequential engine bit for bit.
  // plum-scale: host-only -- driver snapshot of edge-split maps for the report
  std::vector<SplMap> old_edge_spl(static_cast<std::size_t>(P));

  // --- local subdivision ----------------------------------------------------
  for (Rank r = 0; r < P; ++r) {
    LocalMesh& lm = dm.local(r);
    old_ne[static_cast<std::size_t>(r)] = lm.mesh.num_edges();
    old_edge_spl[static_cast<std::size_t>(r)] = lm.shared_edges;
    auto& stats = out.per_rank[static_cast<std::size_t>(r)];
    // Serial host loop, but rank-attributed: rank r's subdivision snapshot
    // stages through rank r's scratch row (no superstep is open here, so
    // the host may write any row without racing a claiming worker).
    stats = adapt::refine_mesh(
        lm.mesh, marks.per_rank[static_cast<std::size_t>(r)],
        mem != nullptr ? mem->scratch(r) : obs::MemScratch{});
    out.work_per_rank[static_cast<std::size_t>(r)] = stats.work_units();
  }

  // Per-rank tallies of new shared-object records (summed after the runs;
  // a shared counter would race under the parallel engine).
  // plum-scale: host-only -- driver accounting of created entities for the report
  std::vector<std::int64_t> new_edges(static_cast<std::size_t>(P), 0);
  // plum-scale: host-only -- driver accounting of created entities for the report
  std::vector<std::int64_t> new_verts(static_cast<std::size_t>(P), 0);

  // --- post-processing phase 1: bisected shared edges ------------------------
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    LocalMesh& lm = dm.local(r);

    if (outbox.step() == 0) {
      outbox.charge(out.work_per_rank[static_cast<std::size_t>(r)]);
      const obs::MemScratch ms =
          mem != nullptr ? mem->scratch(r) : obs::MemScratch{};
      // plum-scale: scratch -- per-destination bisect staging, arena-backed
      obs::TrackedVec<obs::TrackedVec<BisectMsg>> outgoing(
          static_cast<std::size_t>(P),
          obs::TrackedVec<BisectMsg>{obs::TrackingAllocator<BisectMsg>{ms}},
          obs::TrackingAllocator<obs::TrackedVec<BisectMsg>>{ms});
      for (const auto& [e, spl] : old_edge_spl[static_cast<std::size_t>(r)]) {
        const auto& ed = lm.mesh.edge(e);
        // Bisected this round: children are fresh edge ids.
        if (ed.is_leaf() ||
            ed.child[0] < old_ne[static_cast<std::size_t>(r)]) {
          continue;
        }
        for (const auto& copy : spl) {
          const Index v0_on_peer = vert_on(lm, ed.v0, copy.rank);
          PLUM_ASSERT_MSG(v0_on_peer != kInvalidIndex,
                          "shared edge endpoint not shared");
          outgoing[static_cast<std::size_t>(copy.rank)].push_back(
              {copy.remote_id, v0_on_peer, ed.child[0], ed.child[1], ed.mid});
        }
      }
      for (Rank q = 0; q < P; ++q) {
        if (!outgoing[static_cast<std::size_t>(q)].empty()) {
          outbox.send_vec(q, kTagBisect, outgoing[static_cast<std::size_t>(q)]);
        }
      }
      return true;  // one more step to receive
    }

    for (const auto* m : inbox.with_tag(kTagBisect)) {
      for (const auto& msg : rt::unpack<BisectMsg>(*m)) {
        const auto& ed = lm.mesh.edge(msg.your_edge);
        PLUM_ASSERT_MSG(!ed.is_leaf(),
                        "peer bisected a shared edge we did not");
        // Pair children by which one touches the corresponded endpoint.
        const bool aligned = ed.v0 == msg.my_v0_on_you;
        const Index my_c0 = ed.child[0];
        const Index my_c1 = ed.child[1];
        add_shared(lm.shared_edges, my_c0, m->from,
                   aligned ? msg.my_child0 : msg.my_child1);
        add_shared(lm.shared_edges, my_c1, m->from,
                   aligned ? msg.my_child1 : msg.my_child0);
        add_shared(lm.shared_verts, ed.mid, m->from, msg.my_mid);
        new_edges[static_cast<std::size_t>(r)] += 2;
        ++new_verts[static_cast<std::size_t>(r)];
      }
    }
    return false;
  });

  // --- post-processing phase 2: face-crossing edges --------------------------
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    LocalMesh& lm = dm.local(r);

    if (outbox.step() == 0) {
      const obs::MemScratch ms =
          mem != nullptr ? mem->scratch(r) : obs::MemScratch{};
      // plum-scale: scratch -- per-destination face-edge staging, arena-backed
      obs::TrackedVec<obs::TrackedVec<FaceEdgeMsg>> outgoing(
          static_cast<std::size_t>(P),
          obs::TrackedVec<FaceEdgeMsg>{
              obs::TrackingAllocator<FaceEdgeMsg>{ms}},
          obs::TrackingAllocator<obs::TrackedVec<FaceEdgeMsg>>{ms});
      for (Index e = old_ne[static_cast<std::size_t>(r)];
           e < lm.mesh.num_edges(); ++e) {
        const auto& ed = lm.mesh.edge(e);
        if (ed.parent != kInvalidIndex) continue;  // child edges: phase 1
        // Candidate ranks: those sharing both endpoints.
        auto it0 = lm.shared_verts.find(ed.v0);
        auto it1 = lm.shared_verts.find(ed.v1);
        if (it0 == lm.shared_verts.end() || it1 == lm.shared_verts.end()) {
          continue;
        }
        for (const auto& c0 : it0->second) {
          for (const auto& c1 : it1->second) {
            if (c0.rank != c1.rank) continue;
            outgoing[static_cast<std::size_t>(c0.rank)].push_back(
                {c0.remote_id, c1.remote_id, e});
          }
        }
      }
      for (Rank q = 0; q < P; ++q) {
        if (!outgoing[static_cast<std::size_t>(q)].empty()) {
          outbox.send_vec(q, kTagFaceEdge,
                          outgoing[static_cast<std::size_t>(q)]);
        }
      }
      return true;
    }

    for (const auto* m : inbox.with_tag(kTagFaceEdge)) {
      for (const auto& msg : rt::unpack<FaceEdgeMsg>(*m)) {
        const Index mine = lm.mesh.find_edge(msg.your_v0, msg.your_v1);
        if (mine == kInvalidIndex) continue;  // not shared with the sender
        add_shared(lm.shared_edges, mine, m->from, msg.my_edge);
        ++new_edges[static_cast<std::size_t>(r)];
      }
    }
    return false;
  });

  for (Rank r = 0; r < P; ++r) {
    out.new_shared_edges += new_edges[static_cast<std::size_t>(r)];
    out.new_shared_verts += new_verts[static_cast<std::size_t>(r)];
  }
  return out;
}

}  // namespace plum::pmesh
