#include "pmesh/parallel_coarsen.hpp"

#include "pmesh/finalize.hpp"
#include "util/assert.hpp"

namespace plum::pmesh {

ParallelCoarsenResult parallel_coarsen(
    DistMesh& dm, rt::Engine& eng,
    const std::vector<std::vector<char>>& marks,
    std::vector<std::vector<solver::State>>* states) {
  const Rank P = dm.nranks();
  PLUM_ASSERT(static_cast<Rank>(marks.size()) == P);

  ParallelCoarsenResult out;
  out.elements_before = dm.total_active_elements();

  // --- gather (global numbering travels through the engine) ------------------
  auto fin = finalize_gather(dm, eng);

  // Translate per-rank marks to the gathered edge numbering.
  std::vector<char> gmarks(static_cast<std::size_t>(fin.global.num_edges()),
                           0);
  for (Rank r = 0; r < P; ++r) {
    const auto& eg = fin.edge_global[static_cast<std::size_t>(r)];
    const auto& mk = marks[static_cast<std::size_t>(r)];
    PLUM_ASSERT(mk.size() == eg.size());
    for (std::size_t e = 0; e < eg.size(); ++e) {
      if (mk[e]) gmarks[static_cast<std::size_t>(eg[e])] = 1;
    }
  }

  // Assemble the global solution (copies are replicated).
  std::vector<solver::State> gstate;
  if (states) {
    gstate.resize(static_cast<std::size_t>(fin.global.num_vertices()));
    for (Rank r = 0; r < P; ++r) {
      const auto& vg = fin.vert_global[static_cast<std::size_t>(r)];
      const auto& su = (*states)[static_cast<std::size_t>(r)];
      PLUM_ASSERT(su.size() == vg.size());
      for (std::size_t v = 0; v < vg.size(); ++v) {
        gstate[static_cast<std::size_t>(vg[v])] = su[v];
      }
    }
    // The conformity re-refinement may bisect edges; interpolate.
    fin.global.on_bisect = [&](Index e, Index mid) {
      const auto& ed = fin.global.edge(e);
      if (static_cast<std::size_t>(mid) >= gstate.size()) {
        gstate.resize(static_cast<std::size_t>(mid) + 1);
      }
      for (int c = 0; c < solver::kNumVars; ++c) {
        gstate[static_cast<std::size_t>(mid)][c] =
            0.5 * (gstate[static_cast<std::size_t>(ed.v0)][c] +
                   gstate[static_cast<std::size_t>(ed.v1)][c]);
      }
    };
  }

  // --- serial coarsening kernel on the host -----------------------------------
  // Root ownership before coarsening (gathered numbering; stable through
  // compaction because initial elements are never removed).
  partition::PartVec gathered_part(
      static_cast<std::size_t>(fin.global.num_initial_elements()), kNoRank);
  std::vector<Index> orig_root(
      static_cast<std::size_t>(fin.global.num_initial_elements()),
      kInvalidIndex);
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r);
    for (std::size_t lr = 0; lr < lm.root_global.size(); ++lr) {
      const Index gid =
          fin.elem_global[static_cast<std::size_t>(r)][lr];
      gathered_part[static_cast<std::size_t>(gid)] = r;
      orig_root[static_cast<std::size_t>(gid)] = lm.root_global[lr];
    }
  }

  out.stats = adapt::coarsen_mesh(
      fin.global, gmarks, [&](const std::vector<Index>& vmap) {
        if (!states) return;
        std::vector<solver::State> ns(vmap.size());
        for (std::size_t v = 0; v < vmap.size(); ++v) {
          if (vmap[v] != kInvalidIndex) {
            ns[v] = gstate[static_cast<std::size_t>(vmap[v])];
          }
        }
        gstate = std::move(ns);
      });
  fin.global.on_bisect = nullptr;

  // --- redistribute under the unchanged ownership -----------------------------
  DistMesh rebuilt(fin.global, gathered_part, P);
  for (Rank r = 0; r < P; ++r) {
    for (auto& g : rebuilt.local(r).root_global) {
      g = orig_root[static_cast<std::size_t>(g)];
      PLUM_ASSERT(g != kInvalidIndex);
    }
  }
  if (states) {
    // plum-scale: dist(P) -- one coarsening state per simulated rank in the in-process harness
    states->assign(static_cast<std::size_t>(P), {});
    for (Rank r = 0; r < P; ++r) {
      const auto& vg = rebuilt.local(r).vert_global;
      auto& su = (*states)[static_cast<std::size_t>(r)];
      su.resize(vg.size());
      for (std::size_t v = 0; v < vg.size(); ++v) {
        su[v] = gstate[static_cast<std::size_t>(vg[v])];
      }
    }
  }
  dm = std::move(rebuilt);
  out.elements_after = dm.total_active_elements();
  return out;
}

}  // namespace plum::pmesh
