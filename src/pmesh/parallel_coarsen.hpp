#pragma once
// Distributed coarsening phase (the Coarsening box of the paper's Fig. 1).
//
// Coarsening compacts and renumbers every array, which would invalidate all
// SPL bookkeeping in place; the paper's own finalization phase exists
// precisely because some operations need a global view. We take that route:
// gather the distributed mesh on the host (finalize_gather), run the serial
// coarsening kernel with its full constraint set there, and redistribute
// under the unchanged root ownership — per-vertex solutions ride along and
// are re-interpolated where the conformity re-refinement bisects edges.
// DESIGN.md §3 records this substitution; the marking and refinement
// phases, which dominate adaption cost, stay fully distributed.

#include "adapt/coarsen.hpp"
#include "pmesh/dist_mesh.hpp"
#include "solver/euler.hpp"

namespace plum::pmesh {

struct ParallelCoarsenResult {
  adapt::CoarsenStats stats;          ///< of the serial kernel on the host
  Index elements_before = 0;
  Index elements_after = 0;
};

/// Coarsens per `marks` (per-rank, local edge ids; copies of shared edges
/// may be marked on any rank) and replaces `dm` with the redistributed
/// result. `states` (optional) follows the data as in migrate().
ParallelCoarsenResult parallel_coarsen(
    DistMesh& dm, rt::Engine& eng,
    const std::vector<std::vector<char>>& marks,
    std::vector<std::vector<solver::State>>* states = nullptr);

}  // namespace plum::pmesh
