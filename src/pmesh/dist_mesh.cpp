#include "pmesh/dist_mesh.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace plum::pmesh {

using mesh::TetMesh;

DistMesh::DistMesh(const TetMesh& global, const partition::PartVec& root_part,
                   Rank nranks) {
  PLUM_ASSERT(static_cast<Index>(root_part.size()) ==
              global.num_initial_elements());
  // plum-scale: dist(P) -- the in-process harness hosts one LocalMesh per simulated rank
  locals_.resize(static_cast<std::size_t>(nranks));

  // Rank of every element = rank of its root; of every boundary face = rank
  // of its adjacent element tree.
  const Index nt = global.num_elements();
  std::vector<Rank> elem_rank(static_cast<std::size_t>(nt), kNoRank);
  for (Index t = 0; t < nt; ++t) {
    const auto& el = global.element(t);
    if (el.alive) elem_rank[static_cast<std::size_t>(t)] = root_part[el.root];
  }
  std::vector<Rank> bface_rank(static_cast<std::size_t>(global.num_bfaces()),
                               kNoRank);
  for (Index f = 0; f < global.num_bfaces(); ++f) {
    const auto& bf = global.bface(f);
    if (!bf.alive || !bf.is_leaf()) continue;
    // Owner: the leaf element containing all three face vertices.
    Index owner = kInvalidIndex;
    for (Index t : global.edge_elements(bf.edges[0])) {
      const auto& vs = global.element(t).verts;
      int hits = 0;
      for (Index fv : bf.verts) {
        for (Index tv : vs) hits += (tv == fv);
      }
      if (hits == 3) {
        owner = t;
        break;
      }
    }
    PLUM_ASSERT(owner != kInvalidIndex);
    bface_rank[static_cast<std::size_t>(f)] =
        elem_rank[static_cast<std::size_t>(owner)];
  }
  // Interior bface-tree nodes inherit from any child (children are deeper
  // ids, so a reverse sweep sees children first).
  for (Index f = global.num_bfaces() - 1; f >= 0; --f) {
    const auto& bf = global.bface(f);
    if (!bf.alive || bf.is_leaf()) continue;
    PLUM_ASSERT(bf.child[0] != kInvalidIndex);
    bface_rank[static_cast<std::size_t>(f)] =
        bface_rank[static_cast<std::size_t>(bf.child[0])];
  }

  // Per-global-entity local ids per rank (kInvalidIndex = not present).
  const Index nv = global.num_vertices();
  const Index ne = global.num_edges();
  // plum-scale: host-only -- construction-time scatter map, built once on the host
  std::vector<std::vector<Index>> vmap(
      static_cast<std::size_t>(nranks),
      std::vector<Index>(static_cast<std::size_t>(nv), kInvalidIndex));
  // plum-scale: host-only -- construction-time scatter map, built once on the host
  std::vector<std::vector<Index>> emap(
      static_cast<std::size_t>(nranks),
      std::vector<Index>(static_cast<std::size_t>(ne), kInvalidIndex));

  for (Rank r = 0; r < nranks; ++r) {
    LocalMesh& lm = locals_[static_cast<std::size_t>(r)];

    // --- select elements (global order => contiguous sibling groups) ------
    std::vector<Index> tmap(static_cast<std::size_t>(nt), kInvalidIndex);
    std::vector<Index> sel_elems;
    for (Index t = 0; t < nt; ++t) {
      if (elem_rank[static_cast<std::size_t>(t)] == r) {
        tmap[static_cast<std::size_t>(t)] =
            static_cast<Index>(sel_elems.size());
        sel_elems.push_back(t);
      }
    }

    // --- vertices & edges referenced by those elements ---------------------
    auto& vm = vmap[static_cast<std::size_t>(r)];
    auto& em = emap[static_cast<std::size_t>(r)];
    std::vector<Index> sel_verts, sel_edges;
    auto touch_vert = [&](Index v) {
      if (vm[static_cast<std::size_t>(v)] == kInvalidIndex) {
        vm[static_cast<std::size_t>(v)] = -2;  // mark; number later in order
      }
    };
    auto touch_edge = [&](Index e) {
      if (em[static_cast<std::size_t>(e)] == kInvalidIndex) {
        em[static_cast<std::size_t>(e)] = -2;
      }
    };
    for (Index t : sel_elems) {
      for (Index v : global.element(t).verts) touch_vert(v);
      for (Index e : global.element(t).edges) touch_edge(e);
    }
    // Midpoints of included bisected edges (endpoints of child edges that
    // are themselves included when the children's elements are included).
    for (Index e = 0; e < ne; ++e) {
      if (em[static_cast<std::size_t>(e)] == -2) {
        touch_vert(global.edge(e).v0);
        touch_vert(global.edge(e).v1);
      }
    }
    for (Index v = 0; v < nv; ++v) {
      if (vm[static_cast<std::size_t>(v)] == -2) {
        vm[static_cast<std::size_t>(v)] = static_cast<Index>(sel_verts.size());
        sel_verts.push_back(v);
      }
    }
    for (Index e = 0; e < ne; ++e) {
      if (em[static_cast<std::size_t>(e)] == -2) {
        em[static_cast<std::size_t>(e)] = static_cast<Index>(sel_edges.size());
        sel_edges.push_back(e);
      }
    }

    // --- boundary faces -----------------------------------------------------
    std::vector<Index> fmap(static_cast<std::size_t>(global.num_bfaces()),
                            kInvalidIndex);
    std::vector<Index> sel_bfaces;
    for (Index f = 0; f < global.num_bfaces(); ++f) {
      if (bface_rank[static_cast<std::size_t>(f)] == r) {
        fmap[static_cast<std::size_t>(f)] =
            static_cast<Index>(sel_bfaces.size());
        sel_bfaces.push_back(f);
      }
    }

    // --- build localized records -------------------------------------------
    auto loc = [](const std::vector<Index>& map, Index id) {
      return id == kInvalidIndex ? kInvalidIndex : map[static_cast<std::size_t>(id)];
    };

    std::vector<mesh::Vertex> lverts;
    lverts.reserve(sel_verts.size());
    for (Index v : sel_verts) lverts.push_back(global.vertex(v));

    std::vector<mesh::Edge> ledges;
    ledges.reserve(sel_edges.size());
    Index n_init_edges = 0;
    for (Index e : sel_edges) {
      mesh::Edge ed = global.edge(e);
      ed.v0 = vm[static_cast<std::size_t>(ed.v0)];
      ed.v1 = vm[static_cast<std::size_t>(ed.v1)];
      if (ed.v0 > ed.v1) std::swap(ed.v0, ed.v1);
      ed.parent = loc(em, ed.parent);
      // Children present only if the bisection's elements live here.
      const Index c0 = loc(em, ed.child[0]);
      const Index c1 = loc(em, ed.child[1]);
      if (c0 != kInvalidIndex && c1 != kInvalidIndex) {
        ed.child = {c0, c1};
        ed.mid = vm[static_cast<std::size_t>(ed.mid)];
        PLUM_ASSERT(ed.mid != kInvalidIndex);
      } else {
        ed.child = {kInvalidIndex, kInvalidIndex};
        ed.mid = kInvalidIndex;
      }
      if (ed.level == 0) ++n_init_edges;
      ledges.push_back(ed);
    }

    std::vector<mesh::Element> lelems;
    lelems.reserve(sel_elems.size());
    Index n_init_elems = 0;
    for (Index t : sel_elems) {
      mesh::Element el = global.element(t);
      for (auto& v : el.verts) v = vm[static_cast<std::size_t>(v)];
      for (auto& e : el.edges) e = em[static_cast<std::size_t>(e)];
      el.parent = loc(tmap, el.parent);
      el.first_child = loc(tmap, el.first_child);
      el.root = tmap[static_cast<std::size_t>(el.root)];
      PLUM_ASSERT(el.root != kInvalidIndex);
      if (el.level == 0) {
        ++n_init_elems;
        lm.root_global.push_back(t);
      }
      lelems.push_back(el);
    }

    std::vector<mesh::BFace> lbfaces;
    lbfaces.reserve(sel_bfaces.size());
    for (Index f : sel_bfaces) {
      mesh::BFace bf = global.bface(f);
      for (auto& v : bf.verts) v = vm[static_cast<std::size_t>(v)];
      for (auto& e : bf.edges) e = em[static_cast<std::size_t>(e)];
      bf.parent = loc(fmap, bf.parent);
      for (auto& c : bf.child) c = loc(fmap, c);
      lbfaces.push_back(bf);
    }

    lm.mesh = TetMesh::assemble(std::move(lverts), std::move(ledges),
                                std::move(lelems), std::move(lbfaces),
                                n_init_elems, n_init_edges);
    lm.vert_global = sel_verts;
    lm.edge_global = sel_edges;
  }

  // --- SPLs: invert the per-rank maps --------------------------------------
  for (Index v = 0; v < nv; ++v) {
    std::vector<SharedCopy> copies;
    for (Rank r = 0; r < nranks; ++r) {
      const Index lid = vmap[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
      if (lid != kInvalidIndex) copies.push_back({r, lid});
    }
    if (copies.size() < 2) continue;
    for (const auto& me : copies) {
      auto& spl = locals_[static_cast<std::size_t>(me.rank)]
                      .shared_verts[me.remote_id];
      for (const auto& other : copies) {
        if (other.rank != me.rank) spl.push_back(other);
      }
    }
  }
  for (Index e = 0; e < ne; ++e) {
    std::vector<SharedCopy> copies;
    for (Rank r = 0; r < nranks; ++r) {
      const Index lid = emap[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)];
      if (lid != kInvalidIndex) copies.push_back({r, lid});
    }
    if (copies.size() < 2) continue;
    for (const auto& me : copies) {
      auto& spl = locals_[static_cast<std::size_t>(me.rank)]
                      .shared_edges[me.remote_id];
      for (const auto& other : copies) {
        if (other.rank != me.rank) spl.push_back(other);
      }
    }
  }
}

Index DistMesh::total_active_elements() const {
  Index sum = 0;
  for (const auto& lm : locals_) sum += lm.mesh.num_active_elements();
  return sum;
}

std::vector<Index> DistMesh::active_elements_per_rank() const {
  std::vector<Index> out;
  out.reserve(locals_.size());
  for (const auto& lm : locals_) out.push_back(lm.mesh.num_active_elements());
  return out;
}

double DistMesh::shared_object_fraction() const {
  std::int64_t shared = 0, total = 0;
  for (const auto& lm : locals_) {
    shared += static_cast<std::int64_t>(lm.shared_verts.size()) +
              static_cast<std::int64_t>(lm.shared_edges.size());
    total += lm.mesh.num_vertices() + lm.mesh.num_edges();
  }
  return total == 0 ? 0.0 : static_cast<double>(shared) /
                                static_cast<double>(total);
}

void DistMesh::validate() const {
  for (Rank r = 0; r < nranks(); ++r) {
    const LocalMesh& lm = local(r);
    lm.mesh.validate();
    for (const auto& [lid, spl] : lm.shared_edges) {
      for (const auto& copy : spl) {
        const LocalMesh& other = local(copy.rank);
        // Symmetry: the copy's SPL must point back at us.
        auto it = other.shared_edges.find(copy.remote_id);
        PLUM_ASSERT_MSG(it != other.shared_edges.end(), "asymmetric edge SPL");
        const bool back = std::any_of(
            it->second.begin(), it->second.end(), [&](const SharedCopy& c) {
              return c.rank == r && c.remote_id == lid;
            });
        PLUM_ASSERT_MSG(back, "edge SPL does not mirror");
        // Geometry agreement.
        const auto& ea = lm.mesh.edge(lid);
        const auto& eb = other.mesh.edge(copy.remote_id);
        const auto pa0 = lm.mesh.vertex(ea.v0).pos;
        const auto pb0 = other.mesh.vertex(eb.v0).pos;
        const auto pa1 = lm.mesh.vertex(ea.v1).pos;
        const auto pb1 = other.mesh.vertex(eb.v1).pos;
        const bool same = (norm(pa0 - pb0) + norm(pa1 - pb1) < 1e-12) ||
                          (norm(pa0 - pb1) + norm(pa1 - pb0) < 1e-12);
        PLUM_ASSERT_MSG(same, "shared edge geometry mismatch");
      }
    }
    for (const auto& [lid, spl] : lm.shared_verts) {
      for (const auto& copy : spl) {
        const LocalMesh& other = local(copy.rank);
        auto it = other.shared_verts.find(copy.remote_id);
        PLUM_ASSERT_MSG(it != other.shared_verts.end(),
                        "asymmetric vertex SPL");
        const auto pa = lm.mesh.vertex(lid).pos;
        const auto pb = other.mesh.vertex(copy.remote_id).pos;
        PLUM_ASSERT_MSG(norm(pa - pb) < 1e-12,
                        "shared vertex geometry mismatch");
      }
    }
  }
}

}  // namespace plum::pmesh
