#pragma once
// Finalization phase (paper §3): "connecting individual subgrids into one
// global mesh. Each local object is first assigned a unique global number.
// All processors then update their local data structures accordingly.
// Finally, a gather operation is performed by a host processor to
// concatenate the local data structures into a global mesh."
//
// Global numbers are agreed upon without any geometry matching: every
// shared object is owned by the lowest rank in its SPL; owners number their
// objects densely (prefix offsets over ranks), then push the numbers to the
// other copies through the BSP engine. The host assembles the result and
// can hand it straight to post-processing (visualization, restarts).

#include "pmesh/dist_mesh.hpp"

namespace plum::pmesh {

struct FinalizeResult {
  mesh::TetMesh global;  ///< the concatenated mesh (host view)
  /// Per-rank maps local id -> global id (what "update their local data
  /// structures" produces on every processor).
  std::vector<std::vector<Index>> vert_global;
  std::vector<std::vector<Index>> edge_global;
  std::vector<std::vector<Index>> elem_global;
};

/// Gathers `dm` into one global mesh on the host. The engine's ledger picks
/// up the numbering messages and the final concatenation traffic.
FinalizeResult finalize_gather(const DistMesh& dm, rt::Engine& eng);

}  // namespace plum::pmesh
