#pragma once
// ProcGroup: the pipe transport's process launcher.
//
// Spawns one child OS process per rank group, each connected to the
// coordinating (parent) process by a SOCK_STREAM socketpair. A child runs a
// caller-supplied loop over its socket fd and then _exit()s — it never
// returns into the parent's code (no atexit handlers, no test harness
// teardown, no flushing of inherited stdio buffers).
//
// Lifecycle and failure discipline:
//   - children are forked in the constructor, sequentially; each child
//     closes the sockets of its earlier siblings so the parent's end of a
//     socket is held by exactly one process, making peer death observable
//     as EOF/EPIPE on the parent side;
//   - alive(g) probes a child non-blockingly (waitpid WNOHANG), which is
//     how the transport turns an unexpected exit into a named diagnostic
//     ("rank group g died") instead of a hang;
//   - each child's stderr (fd 2) is redirected into a per-child pipe whose
//     read end the parent keeps; drain_stderr(g) collects whatever the
//     child has written so far, so a dying depot's last words survive into
//     the rank-death abort message and the postmortem document instead of
//     being lost to the parent's terminal (or dropped under ctest);
//   - the destructor closes all sockets and reaps every child; callers
//     wanting a clean shutdown send their own protocol message first.
//
// fork() from a process that already runs ParallelEngine worker threads is
// safe here because the children only execute the caller's loop function,
// which by contract touches nothing but its own buffers and the socket fd
// (glibc reinitializes its allocator locks across fork).

#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace plum::rt {

class ProcGroup {
 public:
  /// Runs in the child with (group index, socket fd); when it returns the
  /// child _exit(0)s. Must not touch any parent-owned resource.
  using ChildMain = std::function<void(int group, int fd)>;

  ProcGroup(int ngroups, const ChildMain& child_main);
  ~ProcGroup();
  ProcGroup(const ProcGroup&) = delete;
  ProcGroup& operator=(const ProcGroup&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(pids_.size()); }
  /// Parent-side socket fd for group g.
  [[nodiscard]] int fd(int group) const;
  /// Child pid for group g (tests use it to simulate rank death).
  [[nodiscard]] pid_t pid(int group) const;

  /// Non-blocking liveness probe: false once the child has exited (reaped
  /// lazily here). A dead group can never become alive again.
  [[nodiscard]] bool alive(int group);

  /// Everything group g has written to stderr so far (accumulated across
  /// calls; non-blocking, never waits for the child). Safe to call on a
  /// dead group — the pipe read end survives the child.
  [[nodiscard]] const std::string& drain_stderr(int group);

 private:
  std::vector<pid_t> pids_;   // -1 once reaped
  std::vector<int> fds_;      // parent ends; -1 once closed
  std::vector<int> err_fds_;  // stderr pipe read ends; -1 once closed
  std::vector<std::string> err_text_;  // accumulated child stderr per group
};

}  // namespace plum::rt
