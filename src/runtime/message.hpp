#pragma once
// Typed message buffers for the BSP runtime.
//
// The paper's codes are C/C++ + MPI; our portable stand-in keeps MPI's
// programming model (explicit sends, per-rank address spaces, collective
// phases) while running P logical ranks inside one process. Payloads are
// byte buffers with pack/unpack helpers for trivially-copyable records, so
// rank-local state can only cross rank boundaries through an explicit,
// countable message — exactly the property the cost model needs.

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace plum::rt {

struct Message {
  Rank from = kNoRank;
  int tag = 0;
  std::vector<std::byte> bytes;

  [[nodiscard]] std::size_t size_bytes() const { return bytes.size(); }
};

/// Serializes a span of trivially-copyable records into a message payload.
template <typename T>
std::vector<std::byte> pack(std::span<const T> items) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(items.size_bytes());
  if (!items.empty()) std::memcpy(out.data(), items.data(), items.size_bytes());
  return out;
}

template <typename T, typename Alloc>
std::vector<std::byte> pack(const std::vector<T, Alloc>& items) {
  // Allocator-generic so arena-backed staging buckets (obs::TrackedVec)
  // pack exactly like plain vectors.
  return pack(std::span<const T>(items.data(), items.size()));
}

/// Deserializes a payload produced by pack<T>.
template <typename T>
std::vector<T> unpack(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  PLUM_ASSERT_MSG(bytes.size() % sizeof(T) == 0, "payload size mismatch");
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

template <typename T>
std::vector<T> unpack(const Message& m) {
  return unpack<T>(std::span<const std::byte>(m.bytes));
}

}  // namespace plum::rt
