#pragma once
// Wire format for the pipe transport: length-prefixed frames.
//
// Every message that crosses a process boundary is one frame — a fixed
// little-endian header followed by the payload bytes:
//
//   offset  size  field
//        0     4  magic       (kFrameMagic, catches stream desync)
//        4     4  from        (sender rank; kCtrlRank for control frames)
//        8     4  to          (receiver rank / control opcode operand)
//       12     4  tag         (message tag, or a CtrlOp for control frames)
//       16     4  payload_len (bytes that follow)
//
// The codec is deliberately stream-oriented: FrameDecoder consumes
// arbitrary chunkings of the byte stream (split headers, coalesced frames,
// one-byte-at-a-time) and re-emits whole frames, because pipe/socket reads
// deliver whatever the kernel has buffered, never "one frame". write_all /
// read_some wrap the raw fd calls with EINTR/short-transfer handling; they
// are the only place the transport layer touches a file descriptor.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace plum::rt {

inline constexpr std::uint32_t kFrameMagic = 0x504c4d46u;  // "PLMF"
inline constexpr std::size_t kFrameHeaderBytes = 20;

/// Sender id used by transport-internal control frames; never a valid rank.
inline constexpr Rank kCtrlRank = -1;

/// Control opcodes carried in the `tag` field of control frames.
enum class CtrlOp : int {
  kDeliver = 1,    ///< coordinator -> group: stream buffered frames back
  kDone = 2,       ///< group -> coordinator: delivery finished
  kShutdown = 3,   ///< coordinator -> group: exit cleanly
  kTelemetry = 4,  ///< group -> coordinator: DepotStats payload, sent once
                   ///< per barrier immediately before kDone
};

/// Depot-child self-accounting, piggybacked on the delivery stream as one
/// kTelemetry control frame per barrier (plum-scope depot telemetry). All
/// counters are cumulative since the child forked, except buffered_bytes
/// (bytes held at the instant of the Deliver command) and stall_ns (time
/// blocked in read() waiting for the coordinator).
struct DepotStats {
  std::int64_t buffered_bytes = 0;    ///< held frame bytes at Deliver time
  std::int64_t frames_in = 0;         ///< frames decoded from the coordinator
  std::int64_t frames_out = 0;        ///< frames streamed back
  std::int64_t read_calls = 0;        ///< read() syscalls issued
  std::int64_t write_calls = 0;       ///< write() syscalls issued
  std::int64_t peak_buffer_bytes = 0; ///< high-water mark of held bytes
  std::int64_t stall_ns = 0;          ///< ns blocked in read() between frames
  std::int64_t vm_rss_bytes = 0;      ///< child VmRSS at Deliver time (plum-mem)
  std::int64_t vm_hwm_bytes = 0;      ///< child peak RSS (VmHWM)

  friend bool operator==(const DepotStats&, const DepotStats&) = default;
};

struct Frame {
  Rank from = kNoRank;
  Rank to = kNoRank;
  int tag = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] bool is_control() const { return from == kCtrlRank; }

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Appends the encoded frame (header + payload) to `out`.
void encode_frame(const Frame& f, std::vector<std::byte>* out);

/// Convenience: encodes a payload-free control frame.
void encode_control(CtrlOp op, Rank operand, std::vector<std::byte>* out);

/// Appends a kTelemetry control frame carrying `stats` (9 LE int64s).
void encode_telemetry(const DepotStats& stats, std::vector<std::byte>* out);

/// Decodes a kTelemetry control frame's payload. Returns false unless `f`
/// is a well-formed telemetry frame.
bool decode_telemetry(const Frame& f, DepotStats* out);

/// Incremental decoder. Feed it arbitrary chunks of the byte stream; poll
/// next() for completed frames. Any header whose magic does not match is a
/// stream-corruption bug and fails hard.
class FrameDecoder {
 public:
  /// Appends a chunk of raw stream bytes.
  void feed(std::span<const std::byte> chunk);

  /// Extracts the next complete frame into *out. Returns false when the
  /// buffered bytes do not yet hold a whole frame.
  bool next(Frame* out);

  /// True when a frame prefix is buffered but incomplete (useful for
  /// detecting a peer that died mid-frame).
  [[nodiscard]] bool mid_frame() const { return !buf_.empty(); }

  /// Bytes currently buffered (resident decoder state).
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;  // unconsumed stream bytes, front-compacted
};

/// Writes exactly n bytes to fd, retrying on EINTR and short writes, and
/// suppressing SIGPIPE where the fd supports it (socket send). Returns
/// false when the peer is gone (EPIPE/ECONNRESET) or on any other error.
bool write_all(int fd, const std::byte* data, std::size_t n);

/// Reads up to n bytes. Returns >0 bytes read, 0 on EOF (peer closed), -1
/// on error. Retries EINTR internally.
std::ptrdiff_t read_some(int fd, std::byte* data, std::size_t n);

}  // namespace plum::rt
