#include "runtime/engine.hpp"

#include <algorithm>

namespace plum::rt {

std::int64_t Ledger::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& step : steps) {
    for (const auto& c : step) sum += c.bytes_sent;
  }
  return sum;
}

std::int64_t Ledger::max_rank_compute() const {
  if (steps.empty()) return 0;
  const std::size_t nranks = steps.front().size();
  std::int64_t best = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    std::int64_t sum = 0;
    for (const auto& step : steps) sum += step[r].compute_units;
    best = std::max(best, sum);
  }
  return best;
}

bool Engine::superstep(
    const std::function<bool(Rank, const Inbox&, Outbox&)>& fn) {
  // Swap out the queues filled by the previous superstep; sends made during
  // this step land in fresh queues and are only visible next step.
  std::vector<std::vector<Message>> delivering(
      static_cast<std::size_t>(nranks_));
  delivering.swap(pending_);

  std::vector<StepCounters> counters(static_cast<std::size_t>(nranks_));
  bool any_continue = false;
  for (Rank r = 0; r < nranks_; ++r) {
    Inbox inbox(std::move(delivering[static_cast<std::size_t>(r)]));
    Outbox outbox(r, nranks_, &pending_,
                  &counters[static_cast<std::size_t>(r)]);
    any_continue |= fn(r, inbox, outbox);
  }
  ledger_.steps.push_back(std::move(counters));
  return any_continue;
}

void Engine::run(const std::function<bool(Rank, const Inbox&, Outbox&)>& fn,
                 int max_steps) {
  for (int s = 0; s < max_steps; ++s) {
    if (!superstep(fn)) return;
  }
  PLUM_ASSERT_MSG(false, "BSP program did not terminate within max_steps");
}

}  // namespace plum::rt
