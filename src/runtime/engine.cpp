#include "runtime/engine.hpp"

#include <algorithm>
#include <iterator>

#include "util/timer.hpp"

namespace plum::rt {

namespace {

// Per-superstep send/receive conservation: for every receiver q, the sum of
// the senders' comm-cell rows destined to q must equal what actually landed
// in q's queue this step, both in message count and in bytes. Both engines
// check this at the barrier, where `delivered[q]` holds exactly the messages
// posted to q during the step that just finished.
void check_send_receive_conservation(
    const std::vector<StepCounters>& counters,
    const std::vector<std::vector<Message>>& delivered) {
  const std::size_t nranks = delivered.size();
  // plum-scale: host-only -- conservation audit over the final ledger, report-time only
  std::vector<std::int64_t> claimed_msgs(nranks, 0);
  // plum-scale: host-only -- conservation audit over the final ledger, report-time only
  std::vector<std::int64_t> claimed_bytes(nranks, 0);
  for (const auto& c : counters) {
    for (const auto& cell : c.sends) {
      claimed_msgs[static_cast<std::size_t>(cell.to)] += cell.msgs;
      claimed_bytes[static_cast<std::size_t>(cell.to)] += cell.bytes;
    }
  }
  for (std::size_t q = 0; q < nranks; ++q) {
    std::int64_t got_bytes = 0;
    for (const auto& m : delivered[q]) {
      got_bytes += static_cast<std::int64_t>(m.bytes.size());
    }
    PLUM_ASSERT_MSG(
        claimed_msgs[q] == static_cast<std::int64_t>(delivered[q].size()),
        "superstep conservation violated: sender rows != receiver msg count");
    PLUM_ASSERT_MSG(
        claimed_bytes[q] == got_bytes,
        "superstep conservation violated: sender rows != receiver bytes");
  }
}

}  // namespace

namespace {

/// The cell for receiver `to` in a sorted sparse row, or nullptr.
const CommMatrixCell* find_cell(const std::vector<CommMatrixCell>& row,
                                Rank to) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const CommMatrixCell& c, Rank t) { return c.to < t; });
  if (it == row.end() || it->to != to) return nullptr;
  return &*it;
}

}  // namespace

void CommMatrix::resize(Rank n) {
  PLUM_ASSERT(n >= nranks);
  if (n == nranks) return;
  nranks = n;
  // plum-scale: dist(P) -- row headers only; each row holds O(degree) cells, total O(P*degree)
  rows.resize(static_cast<std::size_t>(n));
}

void CommMatrix::accumulate(const std::vector<StepCounters>& counters) {
  const auto n = static_cast<Rank>(counters.size());
  if (n > nranks) resize(n);
  for (std::size_t r = 0; r < counters.size(); ++r) {
    for (const auto& cell : counters[r].sends) {
      auto& row = rows[r];
      const auto it = std::lower_bound(
          row.begin(), row.end(), cell.to,
          [](const CommMatrixCell& c, Rank t) { return c.to < t; });
      if (it != row.end() && it->to == cell.to) {
        it->msgs += cell.msgs;
        it->bytes += cell.bytes;
      } else {
        row.insert(it, CommMatrixCell{cell.to, cell.msgs, cell.bytes});
      }
    }
  }
}

std::int64_t CommMatrix::msgs_at(Rank from, Rank to) const {
  PLUM_ASSERT(from >= 0 && from < nranks && to >= 0 && to < nranks);
  const CommMatrixCell* c = find_cell(rows[static_cast<std::size_t>(from)], to);
  return c ? c->msgs : 0;
}

std::int64_t CommMatrix::bytes_at(Rank from, Rank to) const {
  PLUM_ASSERT(from >= 0 && from < nranks && to >= 0 && to < nranks);
  const CommMatrixCell* c = find_cell(rows[static_cast<std::size_t>(from)], to);
  return c ? c->bytes : 0;
}

std::int64_t CommMatrix::row_bytes(Rank from) const {
  PLUM_ASSERT(from >= 0 && from < nranks);
  std::int64_t sum = 0;
  for (const auto& c : rows[static_cast<std::size_t>(from)]) sum += c.bytes;
  return sum;
}

std::int64_t CommMatrix::col_bytes(Rank to) const {
  PLUM_ASSERT(to >= 0 && to < nranks);
  std::int64_t sum = 0;
  for (const auto& row : rows) {
    if (const CommMatrixCell* c = find_cell(row, to)) sum += c->bytes;
  }
  return sum;
}

std::int64_t CommMatrix::total_msgs() const {
  std::int64_t sum = 0;
  for (const auto& row : rows) {
    for (const auto& c : row) sum += c.msgs;
  }
  return sum;
}

std::int64_t CommMatrix::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& row : rows) {
    for (const auto& c : row) sum += c.bytes;
  }
  return sum;
}

const std::vector<CommMatrixCell>& CommMatrix::row(Rank from) const {
  PLUM_ASSERT(from >= 0 && from < nranks);
  return rows[static_cast<std::size_t>(from)];
}

std::int64_t CommMatrix::resident_cells() const {
  std::int64_t cells = 0;
  for (const auto& row : rows) cells += static_cast<std::int64_t>(row.size());
  return cells;
}

std::int64_t CommMatrix::resident_bytes() const {
  return resident_cells() * static_cast<std::int64_t>(sizeof(CommMatrixCell)) +
         static_cast<std::int64_t>(rows.size()) *
             static_cast<std::int64_t>(sizeof(std::vector<CommMatrixCell>));
}

std::int64_t Ledger::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& step : steps) {
    for (const auto& c : step) sum += c.bytes_sent;
  }
  return sum;
}

std::int64_t Ledger::max_rank_compute() const {
  if (steps.empty()) return 0;
  const std::size_t nranks = steps.front().size();
  std::int64_t best = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    std::int64_t sum = 0;
    for (const auto& step : steps) sum += step[r].compute_units;
    best = std::max(best, sum);
  }
  return best;
}

CommMatrix Ledger::comm_matrix() const {
  CommMatrix m;
  for (const auto& step : steps) m.accumulate(step);
  return m;
}

bool Engine::superstep(const StepFn& fn) {
  // Swap out the queues filled by the previous superstep; sends made during
  // this step land in fresh queues and are only visible next step.
  std::vector<std::vector<Message>> delivering(
      static_cast<std::size_t>(nranks_));
  delivering.swap(pending_);

  const int step = run_step_++;
  std::vector<StepCounters> counters(static_cast<std::size_t>(nranks_));
  std::vector<SendQueue> out_queues(static_cast<std::size_t>(nranks_));
  std::vector<double> rank_seconds;
  if (observer_) rank_seconds.assign(static_cast<std::size_t>(nranks_), 0.0);
  Timer wall;
  bool any_continue = false;
  const bool timed = observer_ != nullptr || scope_sink_ != nullptr;
  for (Rank r = 0; r < nranks_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    Inbox inbox(std::move(delivering[ur]));
    Outbox outbox(r, nranks_, step, &out_queues[ur], &counters[ur]);
    if (timed) {
      Timer t;
      any_continue |= fn(r, inbox, outbox);
      const double s = t.seconds();
      if (observer_) rank_seconds[ur] = s;
      if (scope_sink_) {
        scope_sink_->record_rank_step(
            step, r, counters[ur], static_cast<std::int64_t>(s * 1e9));
      }
    } else {
      any_continue |= fn(r, inbox, outbox);
    }
  }
  // Superstep barrier: the transport merges the per-sender queues into the
  // next step's inboxes in (sender rank, program order) order.
  transport_->exchange(out_queues, pending_);
  check_send_receive_conservation(counters, pending_);
  if (observer_) {
    observer_->on_superstep(step, counters, rank_seconds, wall.seconds());
  }
  ledger_.steps.push_back(std::move(counters));
  return any_continue;
}

void Engine::run(const StepFn& fn, int max_steps) {
  run_step_ = 0;
  for (int s = 0; s < max_steps; ++s) {
    if (!superstep(fn)) return;
  }
  PLUM_ASSERT_MSG(false, "BSP program did not terminate within max_steps");
}

ParallelEngine::ParallelEngine(Rank nranks, int num_threads,
                               std::unique_ptr<Transport> transport)
    : Engine(nranks, std::move(transport)) {
  int n = num_threads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  n = std::min(n, static_cast<int>(nranks));
  // plum-scale: host-only -- worker threads of the in-process engine, capped by hardware concurrency
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelEngine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    // Claim ranks off the shared cursor until the superstep is drained.
    Rank claimed = 0;
    for (;;) {
      const Rank r = next_rank_.fetch_add(1, std::memory_order_relaxed);
      if (r >= nranks_) break;
      const auto ur = static_cast<std::size_t>(r);
      Inbox inbox(std::move((*delivering_)[ur]));
      Outbox outbox(r, nranks_, step_index_, &(*out_queues_)[ur],
                    &(*counters_)[ur]);
      if (rank_seconds_ != nullptr || scope_sink_ != nullptr) {
        Timer t;
        (*want_more_)[ur] = (*fn_)(r, inbox, outbox) ? 1 : 0;
        const double s = t.seconds();
        if (rank_seconds_ != nullptr) (*rank_seconds_)[ur] = s;
        // Rank-safe by the sink contract: this worker claimed rank r, so
        // the sink call may only touch rank-r-owned slots.
        if (scope_sink_ != nullptr) {
          scope_sink_->record_rank_step(step_index_, r, (*counters_)[ur],
                                        static_cast<std::int64_t>(s * 1e9));
        }
      } else {
        (*want_more_)[ur] = (*fn_)(r, inbox, outbox) ? 1 : 0;
      }
      ++claimed;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ranks_done_ += claimed;
      if (ranks_done_ == nranks_) cv_done_.notify_one();
    }
  }
}

bool ParallelEngine::superstep(const StepFn& fn) {
  const int step = run_step_++;
  std::vector<std::vector<Message>> delivering(
      static_cast<std::size_t>(nranks_));
  delivering.swap(pending_);

  std::vector<SendQueue> out_queues(static_cast<std::size_t>(nranks_));
  std::vector<StepCounters> counters(static_cast<std::size_t>(nranks_));
  std::vector<char> want_more(static_cast<std::size_t>(nranks_), 0);
  std::vector<double> rank_seconds;
  if (observer_) rank_seconds.assign(static_cast<std::size_t>(nranks_), 0.0);
  Timer wall;

  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    delivering_ = &delivering;
    out_queues_ = &out_queues;
    counters_ = &counters;
    want_more_ = &want_more;
    rank_seconds_ = observer_ ? &rank_seconds : nullptr;
    step_index_ = step;
    ranks_done_ = 0;
    next_rank_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return ranks_done_ == nranks_; });
  }

  // Superstep barrier: the transport merges the private per-sender queues
  // into the next step's inboxes in sender-rank order. The sequential
  // engine delivers in exactly this order (ranks run 0..P-1, sends append
  // in program order), so inbox contents are identical between the engines
  // — and, by the transport contract, between transports.
  transport_->exchange(out_queues, pending_);
  check_send_receive_conservation(counters, pending_);
  if (observer_) {
    observer_->on_superstep(step, counters, rank_seconds, wall.seconds());
  }
  ledger_.steps.push_back(std::move(counters));
  bool any_continue = false;
  for (char c : want_more) any_continue |= (c != 0);
  return any_continue;
}

std::unique_ptr<Engine> make_engine(Rank nranks, int threads,
                                    TransportKind transport,
                                    int transport_procs) {
  // Construct the transport first: the pipe transport forks its rank-group
  // children, which must happen before this engine's worker threads exist.
  PipeTransportOptions popt;
  popt.nprocs = transport_procs;
  auto fabric = make_transport(transport, nranks, popt);
  if (threads == 1) return std::make_unique<Engine>(nranks, std::move(fabric));
  return std::make_unique<ParallelEngine>(nranks, threads, std::move(fabric));
}

std::unique_ptr<Engine> make_engine(Rank nranks, int threads) {
  return make_engine(nranks, threads, TransportKind::kInProc);
}

}  // namespace plum::rt
