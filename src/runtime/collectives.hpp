#pragma once
// Collective operations expressed as one-superstep BSP programs.
//
// The paper's framework uses exactly these patterns: each processor
// computes one row of the similarity matrix, a single host gathers the
// rows, solves the assignment, and scatters the answer back (§4.3). The
// helpers run on an Engine so the traffic they generate lands in the same
// ledger as everything else.

#include <vector>

#include "runtime/engine.hpp"

namespace plum::rt {

namespace detail {
inline constexpr int kCollectiveTag = -4242;
}

/// All-to-all exchange: input[r][to] is the vector rank r sends to rank
/// `to`; returns received[r][from].
template <typename T>
std::vector<std::vector<std::vector<T>>> all_to_all(
    Engine& eng, const std::vector<std::vector<std::vector<T>>>& input) {
  const Rank p = eng.nranks();
  PLUM_ASSERT(static_cast<Rank>(input.size()) == p);
  // plum-scale: dist(P) -- collective staging: one inbox per peer, O(P) headers by definition
  std::vector<std::vector<std::vector<T>>> received(
      static_cast<std::size_t>(p),
      std::vector<std::vector<T>>(static_cast<std::size_t>(p)));

  // Rank-safe: each rank writes only its own received[r] row, so the
  // program runs identically on the sequential and parallel engines.
  eng.run([&](Rank r, const Inbox& inbox, Outbox& out) {
    if (out.step() == 0) {
      const auto& mine = input[static_cast<std::size_t>(r)];
      PLUM_ASSERT(static_cast<Rank>(mine.size()) == p);
      for (Rank to = 0; to < p; ++to) {
        if (!mine[static_cast<std::size_t>(to)].empty()) {
          out.send_vec(to, detail::kCollectiveTag,
                       mine[static_cast<std::size_t>(to)]);
        }
      }
      return true;  // need one more step to receive
    }
    for (const auto& m : inbox.messages()) {
      received[static_cast<std::size_t>(r)][static_cast<std::size_t>(m.from)] =
          unpack<T>(m);
    }
    return false;
  });
  return received;
}

/// Gather per-rank vectors to `root`; result[from] valid only at the root.
template <typename T>
std::vector<std::vector<T>> gather(Engine& eng,
                                   const std::vector<std::vector<T>>& input,
                                   Rank root = 0) {
  const Rank p = eng.nranks();
  // plum-scale: dist(P) -- all-to-all staging matrix owned by the in-process transport
  std::vector<std::vector<std::vector<T>>> a2a(
      static_cast<std::size_t>(p),
      std::vector<std::vector<T>>(static_cast<std::size_t>(p)));
  for (Rank r = 0; r < p; ++r) {
    a2a[static_cast<std::size_t>(r)][static_cast<std::size_t>(root)] =
        input[static_cast<std::size_t>(r)];
  }
  auto recv = all_to_all(eng, a2a);
  return recv[static_cast<std::size_t>(root)];
}

/// Scatter from `root`: input[to] goes to rank `to`; returns what each rank
/// received.
template <typename T>
std::vector<std::vector<T>> scatter(Engine& eng,
                                    const std::vector<std::vector<T>>& input,
                                    Rank root = 0) {
  const Rank p = eng.nranks();
  // plum-scale: dist(P) -- all-to-all staging matrix owned by the in-process transport
  std::vector<std::vector<std::vector<T>>> a2a(
      static_cast<std::size_t>(p),
      std::vector<std::vector<T>>(static_cast<std::size_t>(p)));
  a2a[static_cast<std::size_t>(root)] = input;
  auto recv = all_to_all(eng, a2a);
  // plum-scale: dist(P) -- one output bucket per peer for the collective result
  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    out[static_cast<std::size_t>(r)] =
        std::move(recv[static_cast<std::size_t>(r)][static_cast<std::size_t>(root)]);
  }
  return out;
}

/// Allgather: every rank receives every rank's vector.
template <typename T>
std::vector<std::vector<T>> allgather(
    Engine& eng, const std::vector<std::vector<T>>& input) {
  const Rank p = eng.nranks();
  // plum-scale: dist(P) -- all-to-all staging matrix owned by the in-process transport
  std::vector<std::vector<std::vector<T>>> a2a(
      static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    // plum-scale: dist(P) -- per-sender row of the all-to-all staging matrix
    a2a[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(p), input[static_cast<std::size_t>(r)]);
  }
  auto recv = all_to_all(eng, a2a);
  // Flatten: result[from] identical on every rank; return rank 0's view.
  return recv[0];
}

/// Allreduce with a binary op over one value per rank.
template <typename T, typename Op>
T allreduce(Engine& eng, const std::vector<T>& per_rank, Op op, T init) {
  std::vector<std::vector<T>> wrapped;
  wrapped.reserve(per_rank.size());
  for (const T& v : per_rank) wrapped.push_back({v});
  auto all = allgather(eng, wrapped);
  T acc = init;
  for (const auto& v : all) {
    PLUM_ASSERT(v.size() == 1);
    acc = op(acc, v[0]);
  }
  return acc;
}

}  // namespace plum::rt
