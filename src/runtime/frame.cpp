#include "runtime/frame.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/assert.hpp"

namespace plum::rt {

namespace {

void put_u32(std::uint32_t v, std::vector<std::byte>* out) {
  out->push_back(static_cast<std::byte>(v & 0xff));
  out->push_back(static_cast<std::byte>((v >> 8) & 0xff));
  out->push_back(static_cast<std::byte>((v >> 16) & 0xff));
  out->push_back(static_cast<std::byte>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void encode_frame(const Frame& f, std::vector<std::byte>* out) {
  out->reserve(out->size() + kFrameHeaderBytes + f.payload.size());
  put_u32(kFrameMagic, out);
  put_u32(static_cast<std::uint32_t>(f.from), out);
  put_u32(static_cast<std::uint32_t>(f.to), out);
  put_u32(static_cast<std::uint32_t>(f.tag), out);
  put_u32(static_cast<std::uint32_t>(f.payload.size()), out);
  out->insert(out->end(), f.payload.begin(), f.payload.end());
}

void encode_control(CtrlOp op, Rank operand, std::vector<std::byte>* out) {
  Frame f;
  f.from = kCtrlRank;
  f.to = operand;
  f.tag = static_cast<int>(op);
  encode_frame(f, out);
}

namespace {

void put_i64(std::int64_t v, std::vector<std::byte>* out) {
  const auto u = static_cast<std::uint64_t>(v);
  put_u32(static_cast<std::uint32_t>(u & 0xffffffffu), out);
  put_u32(static_cast<std::uint32_t>(u >> 32), out);
}

std::int64_t get_i64(const std::byte* p) {
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(get_u32(p)) |
      (static_cast<std::uint64_t>(get_u32(p + 4)) << 32));
}

constexpr std::size_t kTelemetryPayloadBytes = 9 * 8;

}  // namespace

void encode_telemetry(const DepotStats& stats, std::vector<std::byte>* out) {
  Frame f;
  f.from = kCtrlRank;
  f.to = 0;
  f.tag = static_cast<int>(CtrlOp::kTelemetry);
  f.payload.reserve(kTelemetryPayloadBytes);
  put_i64(stats.buffered_bytes, &f.payload);
  put_i64(stats.frames_in, &f.payload);
  put_i64(stats.frames_out, &f.payload);
  put_i64(stats.read_calls, &f.payload);
  put_i64(stats.write_calls, &f.payload);
  put_i64(stats.peak_buffer_bytes, &f.payload);
  put_i64(stats.stall_ns, &f.payload);
  put_i64(stats.vm_rss_bytes, &f.payload);
  put_i64(stats.vm_hwm_bytes, &f.payload);
  encode_frame(f, out);
}

bool decode_telemetry(const Frame& f, DepotStats* out) {
  if (!f.is_control() || static_cast<CtrlOp>(f.tag) != CtrlOp::kTelemetry ||
      f.payload.size() != kTelemetryPayloadBytes) {
    return false;
  }
  const std::byte* p = f.payload.data();
  out->buffered_bytes = get_i64(p);
  out->frames_in = get_i64(p + 8);
  out->frames_out = get_i64(p + 16);
  out->read_calls = get_i64(p + 24);
  out->write_calls = get_i64(p + 32);
  out->peak_buffer_bytes = get_i64(p + 40);
  out->stall_ns = get_i64(p + 48);
  out->vm_rss_bytes = get_i64(p + 56);
  out->vm_hwm_bytes = get_i64(p + 64);
  return true;
}

void FrameDecoder::feed(std::span<const std::byte> chunk) {
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

bool FrameDecoder::next(Frame* out) {
  if (buf_.size() < kFrameHeaderBytes) return false;
  const std::byte* p = buf_.data();
  const std::uint32_t magic = get_u32(p);
  PLUM_ASSERT_MSG(magic == kFrameMagic,
                  "pipe transport: frame stream desynchronized (bad magic)");
  const std::uint32_t payload_len = get_u32(p + 16);
  const std::size_t total = kFrameHeaderBytes + payload_len;
  if (buf_.size() < total) return false;
  out->from = static_cast<Rank>(static_cast<std::int32_t>(get_u32(p + 4)));
  out->to = static_cast<Rank>(static_cast<std::int32_t>(get_u32(p + 8)));
  out->tag = static_cast<int>(static_cast<std::int32_t>(get_u32(p + 12)));
  out->payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(
                                         kFrameHeaderBytes),
                      buf_.begin() + static_cast<std::ptrdiff_t>(total));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

bool write_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // send() with MSG_NOSIGNAL turns a dead peer into EPIPE instead of a
    // process-killing SIGPIPE; falls back to write() for plain pipes.
    ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

std::ptrdiff_t read_some(int fd, std::byte* data, std::size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, data, n);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace plum::rt
