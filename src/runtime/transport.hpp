#pragma once
// Pluggable message transport for the BSP engines.
//
// The engines own *scheduling* (which thread runs which rank when); a
// Transport owns *delivery*: at every superstep barrier the engine hands it
// the per-sender outboxes and receives the next superstep's inboxes. The
// contract is exactly the determinism contract of engine.hpp, restated at
// the fabric level:
//
//   - queues[s] holds sender s's messages in program order, bucketed by
//     destination in first-send order (sparse: O(distinct destinations),
//     never an O(P) row — see the waLBerla rule below);
//   - exchange() must fill inboxes[q] with every message addressed to q,
//     ordered by sender rank and, within one sender, by program order;
//   - payload bytes must arrive bit-identical.
//
// Any implementation meeting that contract is indistinguishable to rank
// programs, ledgers, traces, and comm matrices — which is what lets the
// cross-transport determinism tests compare serialized bytes.
//
// Implementations:
//   InProcTransport — ranks share one address space; delivery is a move of
//                     the queued Message objects (the fast path, and the
//                     reference semantics everything else must match).
//   PipeTransport   — ranks are partitioned into contiguous groups, each
//                     served by a child OS process (rt::ProcGroup). Every
//                     message is encoded as a length-prefixed frame
//                     (rt::frame), written over a socketpair to the child
//                     owning the *destination* rank group, buffered there
//                     between barriers, and streamed back on delivery. All
//                     payload bytes physically leave and re-enter the
//                     coordinating process, so framing, partial reads/
//                     writes, backpressure, and peer death are exercised
//                     for real at P=64-256.
//
// Replicated-state rule (Schornbaum & Rüde): no per-rank structure in the
// transport may be O(P) or O(global mesh). Outboxes are sparse destination
// buckets, comm accounting is sparse CommCells (engine.hpp), and the pipe
// coordinator keeps O(groups) staging buffers. peak_queue_cells() exposes
// the high-water mark so tests can assert O(neighbors) residency.

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "util/types.hpp"

namespace plum::rt {

enum class TransportKind { kInProc, kPipe };

[[nodiscard]] const char* transport_kind_name(TransportKind k);
/// Parses "inproc" / "pipe" (the --transport spelling). Returns false and
/// leaves *out untouched on anything else.
bool parse_transport_kind(std::string_view s, TransportKind* out);

/// One sender's messages for one destination, in program (send) order.
struct SendBucket {
  Rank to = kNoRank;
  std::vector<Message> msgs;
};

/// One sender's per-superstep outbox: sparse destination buckets in
/// first-send order. This is the O(neighbors) replacement for the old
/// dense per-sender vector<vector<Message>> row (which was O(P) per rank,
/// O(P^2) per superstep — exactly the replicated state the extreme-scale
/// AMR literature forbids).
class SendQueue {
 public:
  void push(Rank to, Message m) {
    for (auto& b : buckets_) {
      if (b.to == to) {
        b.msgs.push_back(std::move(m));
        return;
      }
    }
    buckets_.push_back(SendBucket{to, {}});
    buckets_.back().msgs.push_back(std::move(m));
  }

  [[nodiscard]] const std::vector<SendBucket>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::vector<SendBucket>& buckets() { return buckets_; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] bool empty() const { return buckets_.empty(); }
  void clear() { buckets_.clear(); }

 private:
  std::vector<SendBucket> buckets_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const = 0;
  [[nodiscard]] const char* name() const { return transport_kind_name(kind()); }

  /// Superstep barrier: deliver queues[s] into inboxes[q] per the ordering
  /// contract above. Drains the queues. inboxes must arrive sized P with
  /// empty slots.
  virtual void exchange(std::vector<SendQueue>& queues,
                        std::vector<std::vector<Message>>& inboxes) = 0;

  /// High-water mark of total outbox buckets across all senders in one
  /// exchange — the per-superstep resident cell count. For a program whose
  /// ranks each talk to d neighbors this is <= P*d, and the O(neighbors)
  /// audit in test_runtime asserts it stays far below P^2.
  [[nodiscard]] std::size_t peak_queue_cells() const { return peak_cells_; }

  /// High-water mark of transport-internal buffer bytes resident at the
  /// end of an exchange (pipe staging/decoders; 0 for in-proc moves).
  [[nodiscard]] std::size_t peak_resident_bytes() const {
    return peak_resident_bytes_;
  }

  /// Latest per-depot-process telemetry, one entry per rank group
  /// (plum-scope). Empty for transports without depot processes; the pipe
  /// transport refreshes it at every exchange barrier from the kTelemetry
  /// frames its children piggyback on the delivery stream. Wall-clock
  /// sourced (syscall counts, stall ns) — report-only, never fed into
  /// deterministic views.
  [[nodiscard]] virtual std::vector<DepotStats> depot_stats() const {
    return {};
  }

 protected:
  /// Called by implementations at the top of exchange().
  void note_queue_usage(const std::vector<SendQueue>& queues) {
    std::size_t cells = 0;
    for (const auto& q : queues) cells += q.num_buckets();
    if (cells > peak_cells_) peak_cells_ = cells;
  }
  void note_resident_bytes(std::size_t bytes) {
    if (bytes > peak_resident_bytes_) peak_resident_bytes_ = bytes;
  }

 private:
  std::size_t peak_cells_ = 0;
  std::size_t peak_resident_bytes_ = 0;
};

/// The shared-memory reference transport: delivery is a move.
class InProcTransport final : public Transport {
 public:
  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kInProc;
  }
  void exchange(std::vector<SendQueue>& queues,
                std::vector<std::vector<Message>>& inboxes) override;
};

struct PipeTransportOptions {
  /// Child processes (rank groups). 0 picks min(kDefaultMaxProcs, nranks).
  int nprocs = 0;
};

class ProcGroup;

/// Multi-process transport: rank groups hosted by child processes behind
/// socketpair framing. See the header comment for the full protocol.
class PipeTransport final : public Transport {
 public:
  static constexpr int kDefaultMaxProcs = 8;

  explicit PipeTransport(Rank nranks, PipeTransportOptions opt = {});
  ~PipeTransport() override;

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kPipe;
  }
  void exchange(std::vector<SendQueue>& queues,
                std::vector<std::vector<Message>>& inboxes) override;

  [[nodiscard]] int nprocs() const { return ngroups_; }
  [[nodiscard]] int group_of(Rank r) const {
    return static_cast<int>((static_cast<long>(r) * ngroups_) / nranks_);
  }
  /// Test access (rank-death simulation).
  [[nodiscard]] ProcGroup& procs() { return *procs_; }

  /// One DepotStats per rank group, refreshed each exchange (see base).
  [[nodiscard]] std::vector<DepotStats> depot_stats() const override;

 private:
  class Impl;
  Rank nranks_;
  int ngroups_;
  std::unique_ptr<ProcGroup> procs_;
  std::unique_ptr<Impl> impl_;
};

std::unique_ptr<Transport> make_transport(TransportKind kind, Rank nranks,
                                          PipeTransportOptions opt = {});

}  // namespace plum::rt
