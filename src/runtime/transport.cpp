#include "runtime/transport.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>

#include <unistd.h>

#include "runtime/frame.hpp"
#include "runtime/proc_group.hpp"
#include "util/assert.hpp"
#include "util/rss.hpp"

namespace plum::rt {

const char* transport_kind_name(TransportKind k) {
  switch (k) {
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kPipe: return "pipe";
  }
  return "?";
}

bool parse_transport_kind(std::string_view s, TransportKind* out) {
  if (s == "inproc") {
    *out = TransportKind::kInProc;
    return true;
  }
  if (s == "pipe") {
    *out = TransportKind::kPipe;
    return true;
  }
  return false;
}

// --- InProcTransport ----------------------------------------------------------

void InProcTransport::exchange(std::vector<SendQueue>& queues,
                               std::vector<std::vector<Message>>& inboxes) {
  note_queue_usage(queues);
  // Sender-rank-major merge: identical order to the sequential reference
  // engine (ranks run 0..P-1, sends append in program order).
  for (auto& q : queues) {
    for (auto& b : q.buckets()) {
      auto& dst = inboxes[static_cast<std::size_t>(b.to)];
      dst.insert(dst.end(), std::make_move_iterator(b.msgs.begin()),
                 std::make_move_iterator(b.msgs.end()));
    }
    q.clear();
  }
}

// --- PipeTransport ------------------------------------------------------------

namespace {

constexpr std::size_t kIoChunk = 64 * 1024;

/// Child side: buffer every data frame between barriers; on kDeliver,
/// stream the buffer back followed by one kTelemetry frame (this depot's
/// DepotStats, piggybacked per barrier — plum-scope) and a kDone marker.
/// Touches nothing but its own vectors and the socket fd (fork-safety
/// contract of ProcGroup). The startup banner on stderr lands in the
/// ProcGroup capture pipe, so even a SIGKILLed child leaves identifiable
/// last words for the postmortem.
void depot_loop(int group, int fd) {
  std::fprintf(stderr, "plum-depot group=%d pid=%ld started\n", group,
               static_cast<long>(::getpid()));
  using SteadyClock = std::chrono::steady_clock;
  FrameDecoder dec;
  DepotStats stats;
  std::int64_t held_frames = 0;  // data frames buffered since last Deliver
  std::vector<std::byte> held;   // re-encoded data frames, arrival order
  std::vector<std::byte> chunk(kIoChunk);
  Frame f;
  for (;;) {
    const SteadyClock::time_point t0 = SteadyClock::now();
    const std::ptrdiff_t n = read_some(fd, chunk.data(), chunk.size());
    stats.stall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                          SteadyClock::now() - t0)
                          .count();
    ++stats.read_calls;
    if (n <= 0) return;  // coordinator died or closed: exit quietly
    dec.feed(std::span<const std::byte>(chunk.data(),
                                        static_cast<std::size_t>(n)));
    while (dec.next(&f)) {
      if (!f.is_control()) {
        ++stats.frames_in;
        ++held_frames;
        encode_frame(f, &held);
        const auto held_bytes = static_cast<std::int64_t>(held.size());
        if (held_bytes > stats.peak_buffer_bytes) {
          stats.peak_buffer_bytes = held_bytes;
        }
        continue;
      }
      switch (static_cast<CtrlOp>(f.tag)) {
        case CtrlOp::kDeliver: {
          stats.buffered_bytes = static_cast<std::int64_t>(held.size());
          stats.frames_out += held_frames;
          held_frames = 0;
          ++stats.write_calls;  // the write_all below
          // Sample this child's resident set right before reporting, so
          // the coordinator's depot telemetry carries per-process heap
          // gauges (wall-class; excluded from deterministic views).
          const util::RssSample rss = util::read_rss();
          stats.vm_rss_bytes = rss.vm_rss_bytes;
          stats.vm_hwm_bytes = rss.vm_hwm_bytes;
          encode_telemetry(stats, &held);
          encode_control(CtrlOp::kDone, 0, &held);
          if (!write_all(fd, held.data(), held.size())) return;
          held.clear();
          held.shrink_to_fit();
          break;
        }
        case CtrlOp::kShutdown:
          return;
        case CtrlOp::kDone:
        case CtrlOp::kTelemetry:
          return;  // protocol violation; die visibly (EOF upstream)
      }
    }
  }
}

}  // namespace

class PipeTransport::Impl {
 public:
  std::vector<std::vector<std::byte>> stage;  // per-group outgoing bytes
  std::vector<FrameDecoder> decoders;         // per-group incoming streams
  std::vector<DepotStats> depot;              // latest telemetry per group
};

PipeTransport::PipeTransport(Rank nranks, PipeTransportOptions opt)
    : nranks_(nranks) {
  PLUM_ASSERT(nranks >= 1);
  int g = opt.nprocs;
  if (g <= 0) g = kDefaultMaxProcs;
  if (g > nranks) g = static_cast<int>(nranks);
  ngroups_ = g;
  impl_ = std::make_unique<Impl>();
  impl_->stage.resize(static_cast<std::size_t>(g));
  impl_->decoders.resize(static_cast<std::size_t>(g));
  impl_->depot.resize(static_cast<std::size_t>(g));
  procs_ = std::make_unique<ProcGroup>(
      g, [](int group, int fd) { depot_loop(group, fd); });
}

PipeTransport::~PipeTransport() {
  // Best-effort clean shutdown; ProcGroup's destructor reaps regardless.
  std::vector<std::byte> bye;
  encode_control(CtrlOp::kShutdown, 0, &bye);
  for (int g = 0; g < ngroups_; ++g) {
    (void)write_all(procs_->fd(g), bye.data(), bye.size());
  }
}

void PipeTransport::exchange(std::vector<SendQueue>& queues,
                             std::vector<std::vector<Message>>& inboxes) {
  note_queue_usage(queues);
  auto& stage = impl_->stage;
  auto& decoders = impl_->decoders;
  for (auto& s : stage) s.clear();

  auto group_died = [&](int g) {
    const bool dead = !procs_->alive(g);
    if (dead) {
      // Capture the child's last words before aborting: they go into both
      // the abort message and (via the crash note) the postmortem document
      // obs::install_postmortem flushes from the abort hook.
      const std::string& err = procs_->drain_stderr(g);
      plum::detail::note_crash("dead_group", std::to_string(g));
      plum::detail::note_crash("child_stderr", err);
      std::string msg =
          "pipe transport: rank group child died mid-superstep (rank death "
          "detected; group " +
          std::to_string(g) + ")";
      if (!err.empty()) msg += "\n  child stderr:\n" + err;
      plum::detail::assert_fail("procs_->alive(g)", __FILE__, __LINE__,
                                msg.c_str());
    }
    PLUM_ASSERT_MSG(false, "pipe transport: socket error to live rank group");
  };

  // Encode every sender's buckets in sender-rank-major program order into
  // the staging buffer of the destination's group, then append the Deliver
  // command. Each receiver's ranks live in exactly one group, so replaying
  // group streams in order reproduces the inproc (sender, program) order.
  const auto p = static_cast<Rank>(queues.size());
  for (Rank s = 0; s < p; ++s) {
    for (auto& b : queues[static_cast<std::size_t>(s)].buckets()) {
      auto& out = stage[static_cast<std::size_t>(group_of(b.to))];
      for (auto& m : b.msgs) {
        Frame f;
        f.from = s;
        f.to = b.to;
        f.tag = m.tag;
        f.payload = std::move(m.bytes);
        encode_frame(f, &out);
      }
    }
    queues[static_cast<std::size_t>(s)].clear();
  }
  for (int g = 0; g < ngroups_; ++g) {
    encode_control(CtrlOp::kDeliver, 0, &stage[static_cast<std::size_t>(g)]);
    if (!write_all(procs_->fd(g), stage[static_cast<std::size_t>(g)].data(),
                   stage[static_cast<std::size_t>(g)].size())) {
      group_died(g);
    }
  }

  // Drain each group's response stream in group order. Within a group the
  // frames come back in exactly the order staged above.
  std::vector<std::byte> chunk(kIoChunk);
  Frame f;
  for (int g = 0; g < ngroups_; ++g) {
    auto& dec = decoders[static_cast<std::size_t>(g)];
    bool done = false;
    while (!done) {
      if (dec.next(&f)) {
        if (f.is_control()) {
          if (static_cast<CtrlOp>(f.tag) == CtrlOp::kTelemetry) {
            PLUM_ASSERT_MSG(
                decode_telemetry(f,
                                 &impl_->depot[static_cast<std::size_t>(g)]),
                "pipe transport: malformed telemetry frame");
            continue;
          }
          PLUM_ASSERT_MSG(static_cast<CtrlOp>(f.tag) == CtrlOp::kDone,
                          "pipe transport: unexpected control frame");
          done = true;
          continue;
        }
        inboxes[static_cast<std::size_t>(f.to)].push_back(
            Message{f.from, f.tag, std::move(f.payload)});
        continue;
      }
      const std::ptrdiff_t n =
          read_some(procs_->fd(g), chunk.data(), chunk.size());
      if (n <= 0) group_died(g);
      dec.feed(std::span<const std::byte>(chunk.data(),
                                          static_cast<std::size_t>(n)));
    }
    PLUM_ASSERT_MSG(!dec.mid_frame(),
                    "pipe transport: trailing bytes after Done marker");
  }

  std::size_t resident = 0;
  for (const auto& s : stage) resident += s.capacity();
  for (const auto& d : decoders) resident += d.buffered_bytes();
  note_resident_bytes(resident);
}

std::vector<DepotStats> PipeTransport::depot_stats() const {
  return impl_->depot;
}

std::unique_ptr<Transport> make_transport(TransportKind kind, Rank nranks,
                                          PipeTransportOptions opt) {
  switch (kind) {
    case TransportKind::kInProc: return std::make_unique<InProcTransport>();
    case TransportKind::kPipe:
      return std::make_unique<PipeTransport>(nranks, opt);
  }
  PLUM_ASSERT_MSG(false, "unknown transport kind");
  return nullptr;
}

}  // namespace plum::rt
