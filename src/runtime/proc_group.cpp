#include "runtime/proc_group.hpp"

#include <cerrno>
#include <csignal>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/assert.hpp"

namespace plum::rt {

ProcGroup::ProcGroup(int ngroups, const ChildMain& child_main) {
  PLUM_ASSERT(ngroups >= 1);
  pids_.reserve(static_cast<std::size_t>(ngroups));
  fds_.reserve(static_cast<std::size_t>(ngroups));
  err_fds_.reserve(static_cast<std::size_t>(ngroups));
  err_text_.resize(static_cast<std::size_t>(ngroups));
  for (int g = 0; g < ngroups; ++g) {
    int sv[2];
    PLUM_ASSERT_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                    "ProcGroup: socketpair failed");
    int ep[2];  // ep[0] = parent read end, ep[1] = child stderr
    PLUM_ASSERT_MSG(::pipe(ep) == 0, "ProcGroup: stderr pipe failed");
    const pid_t pid = ::fork();
    PLUM_ASSERT_MSG(pid >= 0, "ProcGroup: fork failed");
    if (pid == 0) {
      // Child: keep only our own socket end. Earlier siblings' parent-side
      // fds were inherited; close them so each parent fd has exactly one
      // peer process and death shows up as EOF.
      ::close(sv[0]);
      ::close(ep[0]);
      for (const int earlier : fds_) ::close(earlier);
      for (const int earlier : err_fds_) ::close(earlier);
      // Route this child's stderr into the capture pipe so the parent can
      // include its last words in rank-death diagnostics.
      ::dup2(ep[1], 2);
      if (ep[1] != 2) ::close(ep[1]);
      ::signal(SIGPIPE, SIG_IGN);
      child_main(g, sv[1]);
      ::close(sv[1]);
      ::_exit(0);
    }
    ::close(sv[1]);
    ::close(ep[1]);
    // Non-blocking: drain_stderr must never wait on a silent child.
    ::fcntl(ep[0], F_SETFL, ::fcntl(ep[0], F_GETFL) | O_NONBLOCK);
    pids_.push_back(pid);
    fds_.push_back(sv[0]);
    err_fds_.push_back(ep[0]);
  }
}

ProcGroup::~ProcGroup() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  for (pid_t& pid : pids_) {
    if (pid > 0) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    pid = -1;
  }
  for (int& fd : err_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

int ProcGroup::fd(int group) const {
  PLUM_ASSERT(group >= 0 && group < size());
  return fds_[static_cast<std::size_t>(group)];
}

pid_t ProcGroup::pid(int group) const {
  PLUM_ASSERT(group >= 0 && group < size());
  return pids_[static_cast<std::size_t>(group)];
}

bool ProcGroup::alive(int group) {
  PLUM_ASSERT(group >= 0 && group < size());
  pid_t& pid = pids_[static_cast<std::size_t>(group)];
  if (pid <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r == 0) return true;  // still running
  pid = -1;                 // exited (or waitpid failed): reaped, gone
  return false;
}

const std::string& ProcGroup::drain_stderr(int group) {
  PLUM_ASSERT(group >= 0 && group < size());
  const auto g = static_cast<std::size_t>(group);
  std::string& acc = err_text_[g];
  const int fd = err_fds_[g];
  if (fd < 0) return acc;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      acc.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // 0 = EOF (child gone), EAGAIN = nothing buffered right now
  }
  return acc;
}

}  // namespace plum::rt
