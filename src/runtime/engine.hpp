#pragma once
// BSP superstep engine.
//
// Algorithms are written SPMD-style: a superstep function runs once per
// logical rank, reading the messages delivered at the end of the previous
// superstep and posting new ones. The engine executes ranks sequentially
// and deterministically (rank 0, 1, ..., P-1), then routes all posted
// messages for the next superstep — the synchronous model a bulk-
// synchronous MPI code runs under, minus nondeterministic arrival order.
//
// Every send and every charge() is recorded per rank per superstep; the
// sim::CostModel converts these ledgers into SP2-style phase times, which
// is how the paper's Figs. 4-6 are reproduced from real executions.

#include <functional>
#include <vector>

#include "runtime/message.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace plum::rt {

/// Messages delivered to one rank for the current superstep.
class Inbox {
 public:
  explicit Inbox(std::vector<Message> msgs) : msgs_(std::move(msgs)) {}
  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }

  /// Messages with a specific tag, in sender-rank order.
  [[nodiscard]] std::vector<const Message*> with_tag(int tag) const {
    std::vector<const Message*> out;
    for (const auto& m : msgs_) {
      if (m.tag == tag) out.push_back(&m);
    }
    return out;
  }

 private:
  std::vector<Message> msgs_;
};

/// Per-superstep accounting for one rank.
struct StepCounters {
  std::int64_t compute_units = 0;  ///< abstract work units charged
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;
};

/// Send-side interface handed to the superstep function.
class Outbox {
 public:
  Outbox(Rank self, Rank nranks, std::vector<std::vector<Message>>* queues,
         StepCounters* counters)
      : self_(self), nranks_(nranks), queues_(queues), counters_(counters) {}

  void send(Rank to, int tag, std::vector<std::byte> bytes) {
    PLUM_ASSERT(to >= 0 && to < nranks_);
    counters_->msgs_sent += 1;
    counters_->bytes_sent += static_cast<std::int64_t>(bytes.size());
    (*queues_)[static_cast<std::size_t>(to)].push_back(
        Message{self_, tag, std::move(bytes)});
  }

  template <typename T>
  void send_vec(Rank to, int tag, const std::vector<T>& items) {
    send(to, tag, pack(items));
  }

  /// Charges abstract local work (e.g. elements touched) to this rank.
  void charge(std::int64_t units) { counters_->compute_units += units; }

  [[nodiscard]] Rank self() const { return self_; }
  [[nodiscard]] Rank nranks() const { return nranks_; }

 private:
  Rank self_;
  Rank nranks_;
  std::vector<std::vector<Message>>* queues_;
  StepCounters* counters_;
};

/// Full ledger of one engine run: counters[step][rank].
struct Ledger {
  std::vector<std::vector<StepCounters>> steps;

  [[nodiscard]] int num_supersteps() const {
    return static_cast<int>(steps.size());
  }
  /// Sum of bytes sent by all ranks over the whole run.
  [[nodiscard]] std::int64_t total_bytes() const;
  /// Max over ranks of total compute units (the bottleneck processor).
  [[nodiscard]] std::int64_t max_rank_compute() const;
};

class Engine {
 public:
  explicit Engine(Rank nranks) : nranks_(nranks) {
    PLUM_ASSERT(nranks >= 1);
    pending_.resize(static_cast<std::size_t>(nranks));
  }

  [[nodiscard]] Rank nranks() const { return nranks_; }

  /// One superstep: fn(rank, inbox, outbox) -> bool "I want another step".
  /// Returns true while any rank asked to continue (the usual loop driver).
  bool superstep(
      const std::function<bool(Rank, const Inbox&, Outbox&)>& fn);

  /// Runs supersteps until no rank wants more. `max_steps` guards against
  /// livelock in buggy programs.
  void run(const std::function<bool(Rank, const Inbox&, Outbox&)>& fn,
           int max_steps = 1 << 20);

  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_.steps.clear(); }

 private:
  Rank nranks_;
  std::vector<std::vector<Message>> pending_;  // queued for next superstep
  Ledger ledger_;
};

}  // namespace plum::rt
