#pragma once
// BSP superstep engines.
//
// Algorithms are written SPMD-style: a superstep function runs once per
// logical rank, reading the messages delivered at the end of the previous
// superstep and posting new ones. Two engines share that contract:
//
//   Engine          — the sequential reference. Ranks execute in order
//                     (rank 0, 1, ..., P-1) on the calling thread.
//   ParallelEngine  — ranks of one superstep execute concurrently on a
//                     persistent std::thread pool.
//
// Message *delivery* is delegated to a pluggable rt::Transport
// (runtime/transport.hpp): the engines fill per-sender sparse outbox
// queues and hand them to the transport at the barrier. InProcTransport
// (the default) moves the queued messages within the address space;
// PipeTransport routes every payload through child OS processes over
// length-prefixed socketpair frames. Both must deliver the identical
// (sender rank, program order) stream, so engine x transport choice never
// changes ledgers, traces, or results.
//
// Determinism contract (both engines): a rank's inbox for superstep s+1
// holds the messages posted during superstep s, ordered by sender rank and,
// within one sender, by posting order. The parallel engine guarantees this
// by giving every sender a private sparse queue (sends never contend) and
// merging the queues in sender-rank order at the superstep barrier.
// Superstep functions must therefore be *rank-safe*: rank r may
// only mutate rank-r-owned state (its inbox/outbox plus any per-rank slot
// of caller state). Under that rule the two engines produce bit-identical
// message streams, StepCounters ledgers, and floating-point results.
//
// Rank-safety is statically enforced: tools/plum-lint scans superstep
// lambdas for unguarded captured-state mutations, rank-0-guarded writes
// (the historical `if (r == 0) ++phase` bug), unordered-container
// iteration on paths that feed sends or sums, and wall-clock/entropy
// calls. It runs as the `plum_lint` ctest and as a CI job; see
// tools/plum-lint/linter.hpp and the README's "Static analysis" section.
//
// Every send and every charge() is recorded per rank per superstep; the
// sim::CostModel converts these ledgers into SP2-style phase times, which
// is how the paper's Figs. 4-6 are reproduced from real executions.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/transport.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace plum::rt {

/// Messages delivered to one rank for the current superstep.
class Inbox {
 public:
  explicit Inbox(std::vector<Message> msgs) : msgs_(std::move(msgs)) {}
  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }

  /// Messages with a specific tag, in sender-rank order.
  [[nodiscard]] std::vector<const Message*> with_tag(int tag) const {
    std::vector<const Message*> out;
    for (const auto& m : msgs_) {
      if (m.tag == tag) out.push_back(&m);
    }
    return out;
  }

 private:
  std::vector<Message> msgs_;
};

/// One (receiver, tag) cell of a sender's per-superstep communication row.
/// Cells appear in first-send order, which is deterministic because both
/// engines run bit-identical rank programs (see the contract above), so
/// ledgers still compare with plain ==.
struct CommCell {
  Rank to = kNoRank;
  int tag = 0;
  std::int64_t msgs = 0;
  std::int64_t bytes = 0;

  friend bool operator==(const CommCell&, const CommCell&) = default;
};

/// Per-superstep accounting for one rank.
struct StepCounters {
  std::int64_t compute_units = 0;  ///< abstract work units charged
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;
  /// This rank's comm-matrix row for the step, attributed per (receiver,
  /// tag). Only the owning rank appends (inside Outbox::send), so the
  /// accounting is rank-safe by construction; rows are merged at the
  /// barrier like everything else in the ledger.
  std::vector<CommCell> sends;

  void account_send(Rank to, int tag, std::int64_t nbytes) {
    for (auto& c : sends) {
      if (c.to == to && c.tag == tag) {
        c.msgs += 1;
        c.bytes += nbytes;
        return;
      }
    }
    sends.push_back(CommCell{to, tag, 1, nbytes});
  }

  friend bool operator==(const StepCounters&, const StepCounters&) = default;
};

/// Send-side interface handed to the superstep function.
class Outbox {
 public:
  Outbox(Rank self, Rank nranks, int step, SendQueue* queue,
         StepCounters* counters)
      : self_(self),
        nranks_(nranks),
        step_(step),
        queue_(queue),
        counters_(counters) {}

  void send(Rank to, int tag, std::vector<std::byte> bytes) {
    PLUM_ASSERT(to >= 0 && to < nranks_);
    const auto nbytes = static_cast<std::int64_t>(bytes.size());
    counters_->msgs_sent += 1;
    counters_->bytes_sent += nbytes;
    counters_->account_send(to, tag, nbytes);
    queue_->push(to, Message{self_, tag, std::move(bytes)});
  }

  template <typename T>
  void send_vec(Rank to, int tag, const std::vector<T>& items) {
    send(to, tag, pack(items));
  }
  // Allocator-generic overload so arena-backed staging buckets
  // (obs::TrackedVec) send exactly like plain vectors.
  template <typename T, typename Alloc>
  void send_vec(Rank to, int tag, const std::vector<T, Alloc>& items) {
    send(to, tag, pack(items));
  }

  /// Charges abstract local work (e.g. elements touched) to this rank.
  void charge(std::int64_t units) { counters_->compute_units += units; }

  [[nodiscard]] Rank self() const { return self_; }
  [[nodiscard]] Rank nranks() const { return nranks_; }

  /// 0-based superstep index since the enclosing run() began. This replaces
  /// the old "rank 0 increments a captured phase counter" idiom, which
  /// relied on sequential rank order and is a data race under the parallel
  /// engine.
  [[nodiscard]] int step() const { return step_; }

 private:
  Rank self_;
  Rank nranks_;
  int step_;
  SendQueue* queue_;  ///< this sender's sparse outbox for the superstep
  StepCounters* counters_;
};

/// Per-rank in-superstep recording hook (the plum-scope flight-recorder
/// attachment point; see src/obs/scope.hpp). record_rank_step is invoked
/// by whichever worker *claimed* rank r, immediately after the rank's step
/// function returns and before the superstep barrier — unlike
/// SuperstepObserver there is no merge step, so implementations must be
/// rank-safe themselves: a call for rank r may touch only rank-r-owned
/// slots (the rank_seconds_ pattern; per-rank rings qualify, shared
/// accumulators do not). `wall_ns` is the step function's wall time;
/// deterministic views must exclude it, exactly like the observer's
/// rank_seconds.
class RankScopeSink {
 public:
  virtual ~RankScopeSink() = default;
  virtual void record_rank_step(int step, Rank rank,
                                const StepCounters& counters,
                                std::int64_t wall_ns) = 0;
};

/// Superstep-completion hook (the plum-trace attachment point; see
/// src/obs/trace.hpp). Called once per superstep on the coordinating
/// thread at the barrier, after the per-rank counters and per-rank wall
/// times have been merged in rank order — the same pattern as the outbox
/// queues, so observers never see mid-step state and need no locking.
/// `counters[r]` / `rank_seconds[r]` describe rank r's step function;
/// `wall_seconds` is the barrier-to-barrier time of the whole superstep.
/// Everything except the wall times is deterministic across engines.
class SuperstepObserver {
 public:
  virtual ~SuperstepObserver() = default;
  virtual void on_superstep(int step, const std::vector<StepCounters>& counters,
                            const std::vector<double>& rank_seconds,
                            double wall_seconds) = 0;
};

/// One (receiver -> traffic) cell of a sender's comm-matrix row, summed
/// across tags and supersteps. Rows keep cells sorted by receiver rank, so
/// the representation is canonical and == stays a determinism witness.
struct CommMatrixCell {
  Rank to = kNoRank;
  std::int64_t msgs = 0;
  std::int64_t bytes = 0;

  friend bool operator==(const CommMatrixCell&,
                         const CommMatrixCell&) = default;
};

/// Sparse P-by-P communication matrix: rows[from] holds one cell per
/// receiver that `from` actually messaged. Resident accounting state is
/// O(P·degree), not O(P²) — the dense fold happens only at report/JSON
/// time (obs::comm_matrix_json), which is host-side output. Built from
/// StepCounters comm cells, so every invariant of the ledger carries over
/// (sum of all entries == Ledger::total_bytes()).
struct CommMatrix {
  Rank nranks = 0;
  /// One sparse row per sender, cells sorted by receiver rank: one row
  /// header per sender, O(degree) cells per row, O(P*degree) resident.
  std::vector<std::vector<CommMatrixCell>> rows;

  /// Grows the matrix to `n` ranks, preserving existing entries.
  void resize(Rank n);
  /// Adds one superstep's per-rank counters (counters[r] is row r).
  void accumulate(const std::vector<StepCounters>& counters);

  [[nodiscard]] std::int64_t msgs_at(Rank from, Rank to) const;
  [[nodiscard]] std::int64_t bytes_at(Rank from, Rank to) const;
  /// Bytes sent by `from` (row sum) / received by `to` (column sum).
  [[nodiscard]] std::int64_t row_bytes(Rank from) const;
  [[nodiscard]] std::int64_t col_bytes(Rank to) const;
  [[nodiscard]] std::int64_t total_msgs() const;
  [[nodiscard]] std::int64_t total_bytes() const;

  /// Sender `from`'s sparse row (cells sorted by receiver rank).
  [[nodiscard]] const std::vector<CommMatrixCell>& row(Rank from) const;
  /// Resident (from, to) cells — the replicated-state audit hook: a
  /// degree-bounded program must keep this O(P·degree), never O(P²).
  [[nodiscard]] std::int64_t resident_cells() const;
  /// Resident accounting bytes (cells plus per-row headers), the
  /// Transport::peak_resident_bytes()-style memory gauge.
  [[nodiscard]] std::int64_t resident_bytes() const;

  friend bool operator==(const CommMatrix&, const CommMatrix&) = default;
};

/// Full ledger of one engine run: counters[step][rank].
struct Ledger {
  std::vector<std::vector<StepCounters>> steps;

  [[nodiscard]] int num_supersteps() const {
    return static_cast<int>(steps.size());
  }
  /// Sum of bytes sent by all ranks over the whole run.
  [[nodiscard]] std::int64_t total_bytes() const;
  /// Max over ranks of total compute units (the bottleneck processor).
  [[nodiscard]] std::int64_t max_rank_compute() const;
  /// Who-sent-what-to-whom over the whole run, summed across tags.
  [[nodiscard]] CommMatrix comm_matrix() const;

  friend bool operator==(const Ledger&, const Ledger&) = default;
};

/// Sequential reference engine (also the base class: ParallelEngine only
/// replaces how the ranks of one superstep are executed).
class Engine {
 public:
  using StepFn = std::function<bool(Rank, const Inbox&, Outbox&)>;

  /// `transport` == nullptr picks the in-process reference transport.
  explicit Engine(Rank nranks, std::unique_ptr<Transport> transport = nullptr)
      : nranks_(nranks),
        transport_(transport ? std::move(transport)
                             : std::make_unique<InProcTransport>()) {
    PLUM_ASSERT(nranks >= 1);
    // plum-scale: dist(P) -- one mailbox head per simulated rank; the engine hosts all P ranks
    pending_.resize(static_cast<std::size_t>(nranks));
  }
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Rank nranks() const { return nranks_; }

  /// The delivery fabric (audit hooks, kind introspection).
  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] const Transport& transport() const { return *transport_; }

  /// One superstep: fn(rank, inbox, outbox) -> bool "I want another step".
  /// Returns true while any rank asked to continue (the usual loop driver).
  virtual bool superstep(const StepFn& fn);

  /// Runs supersteps until no rank wants more. `max_steps` guards against
  /// livelock in buggy programs. Outbox::step() restarts at 0 here.
  void run(const StepFn& fn, int max_steps = 1 << 20);

  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_.steps.clear(); }

  /// Attaches (or detaches, with nullptr) a per-superstep observer. The
  /// engine does not own it; it must outlive the runs it observes. Per-rank
  /// wall times are only measured while an observer is attached.
  void set_observer(SuperstepObserver* obs) { observer_ = obs; }
  [[nodiscard]] SuperstepObserver* observer() const { return observer_; }

  /// Attaches (or detaches, with nullptr) a per-rank scope sink. The engine
  /// does not own it; it must outlive the runs it records, and it must only
  /// be (re)attached between runs — workers read the pointer inside
  /// supersteps. Per-rank wall times are measured while a sink is attached,
  /// even without an observer.
  void set_scope_sink(RankScopeSink* sink) { scope_sink_ = sink; }
  [[nodiscard]] RankScopeSink* scope_sink() const { return scope_sink_; }

 protected:
  Rank nranks_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::vector<Message>> pending_;  // queued for next superstep
  Ledger ledger_;
  int run_step_ = 0;  // Outbox::step() of the next superstep
  SuperstepObserver* observer_ = nullptr;
  RankScopeSink* scope_sink_ = nullptr;
};

/// Runs the ranks of each superstep concurrently on a persistent thread
/// pool while preserving the sequential engine's semantics bit-for-bit
/// (see the determinism contract above).
class ParallelEngine final : public Engine {
 public:
  /// `num_threads` == 0 picks hardware_concurrency; the pool is never
  /// larger than nranks (extra workers could only idle).
  explicit ParallelEngine(Rank nranks, int num_threads = 0,
                          std::unique_ptr<Transport> transport = nullptr);
  ~ParallelEngine() override;

  bool superstep(const StepFn& fn) override;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop();

  // Per-superstep shared state, set by superstep() under mu_ before the
  // epoch bump and read by workers after they observe the new epoch.
  const StepFn* fn_ = nullptr;
  std::vector<std::vector<Message>>* delivering_ = nullptr;
  // out_queues_[sender]: each sender writes only its own sparse queue, so
  // sends never contend across threads and resident cells stay
  // O(distinct destinations), not O(P) per rank.
  std::vector<SendQueue>* out_queues_ = nullptr;
  std::vector<StepCounters>* counters_ = nullptr;
  std::vector<char>* want_more_ = nullptr;
  // Per-rank wall seconds for the observer; rank-indexed slots written by
  // whichever worker claims the rank (never contended), read at the barrier.
  // nullptr when no observer is attached.
  std::vector<double>* rank_seconds_ = nullptr;
  int step_index_ = 0;

  std::atomic<Rank> next_rank_{0};  // work-stealing rank cursor
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;  // guarded by mu_
  Rank ranks_done_ = 0;      // guarded by mu_
  bool stop_ = false;        // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Engine factory used by options-driven callers: `threads == 1` returns
/// the sequential reference engine, anything else a ParallelEngine
/// (0 = one worker per hardware core). `transport` selects the delivery
/// fabric; `transport_procs` is the pipe transport's child-process count
/// (0 = default). The transport is constructed *before* the engine so the
/// pipe children are forked before the worker pool threads start.
std::unique_ptr<Engine> make_engine(Rank nranks, int threads,
                                    TransportKind transport,
                                    int transport_procs = 0);
std::unique_ptr<Engine> make_engine(Rank nranks, int threads);

}  // namespace plum::rt
