#include "partition/initpart.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace plum::partition {

namespace {

/// Grows a region of ~target_weight inside the vertex set `pool` (vertices
/// with pool[v] == group), relabeling grown vertices to `grown`. Greedy: the
/// frontier vertex with the largest connection to the region is absorbed
/// first (gain-driven graph growing); falls back to any pool vertex when the
/// region's component is exhausted (disconnected pools).
void grow_region(const graph::Csr& g, std::vector<Rank>& pool, Rank group,
                 Rank grown, Weight target_weight, Index min_verts,
                 Index max_verts, Rng& rng) {
  const Index n = g.num_vertices();

  // Collect candidates and pick a seed.
  std::vector<Index> members;
  for (Index v = 0; v < n; ++v) {
    if (pool[v] == group) members.push_back(v);
  }
  PLUM_ASSERT(!members.empty());
  PLUM_ASSERT(min_verts >= 1 && max_verts >= min_verts);
  PLUM_ASSERT(static_cast<Index>(members.size()) >= min_verts);

  Weight grown_weight = 0;
  Index grown_verts = 0;
  std::vector<Weight> gain(static_cast<std::size_t>(n), 0);
  std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
  std::vector<Index> frontier;

  auto absorb = [&](Index v) {
    pool[v] = grown;
    grown_weight += g.wcomp(v);
    ++grown_verts;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Index u = nbrs[i];
      if (pool[u] != group) continue;
      gain[u] += wts[i];
      if (!in_frontier[u]) {
        in_frontier[u] = 1;
        frontier.push_back(u);
      }
    }
  };

  const Index seed =
      members[rng.below(static_cast<std::uint64_t>(members.size()))];
  absorb(seed);

  // Grow until the weight target is met AND the vertex floor is satisfied,
  // but never beyond the ceiling (the remainder must keep enough vertices
  // for its own parts).
  while ((grown_weight < target_weight || grown_verts < min_verts) &&
         grown_verts < max_verts) {
    // Pick the frontier vertex with maximal gain (linear scan: coarsest
    // graphs are small, and this keeps the code free of heap bookkeeping).
    Index best = kInvalidIndex;
    Weight best_gain = -1;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const Index u = frontier[i];
      if (pool[u] != group) continue;  // already absorbed
      if (gain[u] > best_gain) {
        best_gain = gain[u];
        best = u;
        best_pos = i;
      }
    }
    if (best == kInvalidIndex) {
      // Region's component exhausted; restart from any remaining vertex.
      Index fallback = kInvalidIndex;
      for (Index v : members) {
        if (pool[v] == group) {
          fallback = v;
          break;
        }
      }
      if (fallback == kInvalidIndex) break;  // pool exhausted
      absorb(fallback);
      continue;
    }
    frontier[best_pos] = frontier.back();
    frontier.pop_back();
    in_frontier[best] = 0;
    absorb(best);
  }
}

/// Recursively splits the vertices labeled `group` into parts
/// [first, first+count).
void split(const graph::Csr& g, std::vector<Rank>& label, Rank group,
           Rank first, Rank count, Rank& next_tmp, Rng& rng) {
  if (count == 1) {
    for (Index v = 0; v < g.num_vertices(); ++v) {
      if (label[v] == group) label[v] = first;
    }
    return;
  }
  const Rank half = count / 2;
  Weight group_weight = 0;
  Index group_verts = 0;
  for (Index v = 0; v < g.num_vertices(); ++v) {
    if (label[v] == group) {
      group_weight += g.wcomp(v);
      ++group_verts;
    }
  }
  PLUM_ASSERT(group_verts >= count);
  const Weight target =
      static_cast<Weight>(group_weight * static_cast<double>(half) /
                          static_cast<double>(count));

  // Grow the first half into a fresh temporary label (strictly decreasing
  // negatives, so it can never collide with `group`); the rest keeps `group`.
  const Rank tmp = next_tmp--;
  grow_region(g, label, group, tmp, target, half, group_verts - (count - half),
              rng);
  split(g, label, tmp, first, half, next_tmp, rng);
  split(g, label, group, first + half, count - half, next_tmp, rng);
}

}  // namespace

PartVec initial_partition(const graph::Csr& g, Rank nparts, Rng& rng) {
  PLUM_ASSERT(nparts >= 1);
  PLUM_ASSERT(g.num_vertices() >= nparts);
  PartVec part(static_cast<std::size_t>(g.num_vertices()), -1);
  Rank next_tmp = -2;
  split(g, part, -1, 0, nparts, next_tmp, rng);

  // Guarantee non-empty parts: steal one vertex for any empty part from the
  // largest part (can happen on tiny/disconnected coarsest graphs).
  for (;;) {
    // plum-scale: host-only -- serial host-side partitioner scratch
    std::vector<Index> counts(static_cast<std::size_t>(nparts), 0);
    for (Rank q : part) ++counts[static_cast<std::size_t>(q)];
    Rank empty = kNoRank;
    for (Rank p = 0; p < nparts; ++p) {
      if (counts[static_cast<std::size_t>(p)] == 0) {
        empty = p;
        break;
      }
    }
    if (empty == kNoRank) break;
    // Donate from the part with the most vertices (always >= 2 here since
    // |V| >= nparts and some part is empty).
    Rank donor = 0;
    for (Rank p = 0; p < nparts; ++p) {
      if (counts[static_cast<std::size_t>(p)] >
          counts[static_cast<std::size_t>(donor)]) {
        donor = p;
      }
    }
    PLUM_ASSERT(counts[static_cast<std::size_t>(donor)] >= 2);
    for (Index v = 0; v < g.num_vertices(); ++v) {
      if (part[v] == donor) {
        part[v] = empty;
        break;
      }
    }
  }
  return part;
}

}  // namespace plum::partition
