#include "partition/multilevel.hpp"

#include <algorithm>

#include "partition/hem.hpp"
#include "partition/initpart.hpp"
#include "partition/refine_kway.hpp"
#include "util/assert.hpp"

namespace plum::partition {

MultilevelResult partition(const graph::Csr& g,
                           const MultilevelOptions& opt) {
  PLUM_ASSERT(opt.nparts >= 1);
  PLUM_ASSERT(g.num_vertices() >= opt.nparts);
  Rng rng(opt.seed);

  MultilevelResult out;
  out.levels.push_back({g.num_vertices(), g.num_edges()});

  if (opt.nparts == 1) {
    out.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
    out.cut = 0;
    out.imbalance = 1.0;
    return out;
  }

  // --- Coarsening ----------------------------------------------------------
  const Index coarse_target =
      std::max<Index>(opt.coarsen_to_per_part * opt.nparts, 64);
  std::vector<graph::Csr> graphs;   // [0] = finest
  std::vector<std::vector<Index>> cmaps;
  graphs.push_back(g);
  while (graphs.back().num_vertices() > coarse_target) {
    CoarseLevel level = coarsen_hem(graphs.back(), rng, opt.scratch);
    const Index before = graphs.back().num_vertices();
    const Index after = level.graph.num_vertices();
    if (after >= before || after > static_cast<Index>(before * 0.9) ||
        after < opt.nparts) {
      break;  // diminishing returns or would under-shoot nparts
    }
    out.levels.push_back({after, level.graph.num_edges()});
    cmaps.push_back(std::move(level.cmap));
    graphs.push_back(std::move(level.graph));
  }

  // --- Initial partition on the coarsest graph ------------------------------
  PartVec part = initial_partition(graphs.back(), opt.nparts, rng);

  RefineOptions ropt;
  ropt.imbalance_tol = opt.imbalance_tol;
  ropt.max_passes = opt.refine_passes;
  refine_kway(graphs.back(), part, opt.nparts, ropt, rng,
              opt.scratch);

  // --- Uncoarsening + refinement --------------------------------------------
  for (int lvl = static_cast<int>(cmaps.size()) - 1; lvl >= 0; --lvl) {
    const auto& cmap = cmaps[static_cast<std::size_t>(lvl)];
    PartVec fine(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      fine[v] = part[static_cast<std::size_t>(cmap[v])];
    }
    part = std::move(fine);
    refine_kway(graphs[static_cast<std::size_t>(lvl)], part, opt.nparts, ropt,
                rng, opt.scratch);
  }

  PLUM_ASSERT(is_valid_partition(g, part, opt.nparts));
  out.cut = edge_cut(g, part);
  out.imbalance = load_imbalance(g, part, opt.nparts);
  out.part = std::move(part);
  return out;
}

MultilevelResult repartition(const graph::Csr& g, const PartVec& previous,
                             const MultilevelOptions& opt) {
  PLUM_ASSERT(static_cast<Index>(previous.size()) == g.num_vertices());
  Rng rng(opt.seed ^ 0x9e3779b9u);

  // Warm start: diffuse load out of overloaded parts, then polish the cut.
  PartVec part = previous;
  RefineOptions ropt;
  ropt.imbalance_tol = opt.imbalance_tol;
  ropt.max_passes = opt.refine_passes * 2;  // diffusion needs more passes
  ropt.allow_balancing_moves = true;
  refine_kway(g, part, opt.nparts, ropt, rng, opt.scratch);

  const double imb = load_imbalance(g, part, opt.nparts);
  if (imb <= 1.0 + opt.imbalance_tol + 0.02 &&
      is_valid_partition(g, part, opt.nparts)) {
    MultilevelResult out;
    out.levels.push_back({g.num_vertices(), g.num_edges()});
    out.part = std::move(part);
    out.cut = edge_cut(g, out.part);
    out.imbalance = imb;
    out.used_previous = true;
    return out;
  }
  // Diffusion failed (e.g. refinement region dwarfs one part): scratch.
  return partition(g, opt);
}

}  // namespace plum::partition
