#include "partition/refine_kway.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace plum::partition {

RefineStats refine_kway(const graph::Csr& g, PartVec& part, Rank nparts,
                        const RefineOptions& opt, Rng& rng,
                        const obs::MemScratch& scratch) {
  const Index n = g.num_vertices();
  RefineStats stats;
  stats.cut_before = edge_cut(g, part);

  const obs::TrackingAllocator<Weight> walloc{scratch};
  const obs::TrackingAllocator<Index> ialloc{scratch};
  const std::vector<Weight> loads_init = part_loads(g, part, nparts);
  // plum-scale: scratch -- pass-local load table, arena-backed
  obs::TrackedVec<Weight> loads(loads_init.begin(), loads_init.end(), walloc);
  // plum-scale: scratch -- pass-local part population counts, arena-backed
  obs::TrackedVec<Index> counts(static_cast<std::size_t>(nparts), 0, ialloc);
  for (Rank p : part) ++counts[static_cast<std::size_t>(p)];

  const Weight total = std::accumulate(loads.begin(), loads.end(), Weight{0});
  const auto max_load = static_cast<Weight>(
      (static_cast<double>(total) / nparts) * (1.0 + opt.imbalance_tol)) + 1;
  // A perfectly balanced part holds at most ceil(total/nparts). Truncating
  // division would forbid filling a receiver to the exact ceiling average,
  // walling diffusion off at at-capacity parts whenever total % nparts != 0.
  const Weight avg_ceil = (total + static_cast<Weight>(nparts) - 1) /
                          static_cast<Weight>(nparts);

  // plum-scale: scratch -- random visit order dies with the refine call
  obs::TrackedVec<Index> order(static_cast<std::size_t>(n), ialloc);
  std::iota(order.begin(), order.end(), 0);

  // Per-candidate-part connection weights, reset per vertex via a stamp.
  // The stamp holds vertex ids, so it must be Index-typed — an `int` stamp
  // would silently truncate if Index ever widened past 32 bits.
  // plum-scale: scratch -- per-part connection table, arena-backed
  obs::TrackedVec<Weight> conn(static_cast<std::size_t>(nparts), 0, walloc);
  // plum-scale: scratch -- per-part stamp table, arena-backed
  obs::TrackedVec<Index> stamp(static_cast<std::size_t>(nparts), kInvalidIndex,
                               ialloc);

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    ++stats.passes;
    // The stamps must be invalidated between passes: they hold vertex ids,
    // so on a revisit the previous pass's stamp still "matches" and conn
    // would keep accumulating — every revisited vertex would see inflated
    // connection weights and phantom cut gains.
    std::fill(stamp.begin(), stamp.end(), kInvalidIndex);
    // Fresh random order each pass avoids systematic drift.
    for (Index i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    }
    std::int64_t moves_this_pass = 0;

    for (Index v : order) {
      const Rank from = part[v];
      if (counts[static_cast<std::size_t>(from)] <= 1) continue;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.edge_weights(v);

      // Connections of v to each adjacent part.
      bool boundary = false;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Rank p = part[nbrs[i]];
        if (stamp[static_cast<std::size_t>(p)] != v) {
          stamp[static_cast<std::size_t>(p)] = v;
          conn[static_cast<std::size_t>(p)] = 0;
        }
        conn[static_cast<std::size_t>(p)] += wts[i];
        if (p != from) boundary = true;
      }
      if (!boundary) continue;

      const Weight internal = stamp[static_cast<std::size_t>(from)] == v
                                  ? conn[static_cast<std::size_t>(from)]
                                  : 0;
      const Weight wv = g.wcomp(v);
      const bool from_overloaded =
          loads[static_cast<std::size_t>(from)] > max_load;

      Rank best = kNoRank;
      Weight best_gain = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Rank to = part[nbrs[i]];
        if (to == from) continue;
        const Weight to_after = loads[static_cast<std::size_t>(to)] + wv;
        const Weight gain = conn[static_cast<std::size_t>(to)] - internal;

        // Cut-improving moves must not break balance. Balancing moves must
        // be strictly downhill, from an overloaded part or into a genuinely
        // starved one — the latter lets load diffuse *through* intermediate
        // parts that sit at capacity and wall off an overloaded part.
        const bool cut_move = gain > 0 && to_after <= max_load;
        const bool balance_move =
            opt.allow_balancing_moves &&
            to_after < loads[static_cast<std::size_t>(from)] &&
            (from_overloaded ||
             (loads[static_cast<std::size_t>(from)] > avg_ceil &&
              to_after <= avg_ceil));
        if (!cut_move && !balance_move) continue;
        if (best == kNoRank || gain > best_gain) {
          best = to;
          best_gain = gain;
        }
      }
      if (best == kNoRank) continue;

      part[v] = best;
      loads[static_cast<std::size_t>(from)] -= wv;
      loads[static_cast<std::size_t>(best)] += wv;
      --counts[static_cast<std::size_t>(from)];
      ++counts[static_cast<std::size_t>(best)];
      ++moves_this_pass;
    }
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  stats.cut_after = edge_cut(g, part);
  return stats;
}

}  // namespace plum::partition
