#include "partition/hem.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace plum::partition {

CoarseLevel coarsen_hem(const graph::Csr& g, Rng& rng,
                        const obs::MemScratch& scratch) {
  const Index n = g.num_vertices();
  const obs::TrackingAllocator<Index> alloc{scratch};
  // plum-scale: scratch -- HEM match state is phase-local arena scratch
  obs::TrackedVec<Index> match(static_cast<std::size_t>(n), kInvalidIndex,
                               alloc);

  // Random visit order decorrelates matchings across levels.
  // plum-scale: scratch -- visit permutation dies with the match pass
  obs::TrackedVec<Index> order(static_cast<std::size_t>(n), alloc);
  std::iota(order.begin(), order.end(), 0);
  for (Index i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  }

  for (Index v : order) {
    if (match[v] != kInvalidIndex) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    Index best = kInvalidIndex;
    Weight best_w = -1;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Index u = nbrs[i];
      if (match[u] != kInvalidIndex) continue;
      if (wts[i] > best_w) {
        best_w = wts[i];
        best = u;
      }
    }
    if (best == kInvalidIndex) {
      match[v] = v;  // stays single
    } else {
      match[v] = best;
      match[best] = v;
    }
  }

  // Coarse ids: the smaller endpoint of each matched pair owns the id.
  CoarseLevel out;
  out.cmap.assign(static_cast<std::size_t>(n), kInvalidIndex);
  Index nc = 0;
  for (Index v = 0; v < n; ++v) {
    if (out.cmap[v] != kInvalidIndex) continue;
    out.cmap[v] = nc;
    const Index u = match[v];
    if (u != v) out.cmap[u] = nc;
    ++nc;
  }

  // Coarse adjacency: merge parallel edges by weight.
  // plum-scale: scratch -- edge-merge staging; from_edges copies it out
  obs::TrackedVec<std::pair<Index, Index>> cedges{
      obs::TrackingAllocator<std::pair<Index, Index>>{scratch}};
  // plum-scale: scratch -- merged weights staging, same lifetime as cedges
  obs::TrackedVec<Weight> cwts{obs::TrackingAllocator<Weight>{scratch}};
  {
    using SeenEntry = std::pair<const std::uint64_t, std::size_t>;
    // plum-scale: scratch -- dedupe map is phase-local arena scratch
    // plum-lint: allow(unordered-iteration) -- dedupe index only: cedges/cwts append in the deterministic v scan order; the map is never iterated
    std::unordered_map<std::uint64_t, std::size_t, std::hash<std::uint64_t>,
                       std::equal_to<>, obs::TrackingAllocator<SeenEntry>>
        seen{obs::TrackingAllocator<SeenEntry>{scratch}};
    for (Index v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      const auto wts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Index cu = out.cmap[v], cw = out.cmap[nbrs[i]];
        if (cu >= cw) continue;  // dedupe: count each fine edge once
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cu))
             << 32) |
            static_cast<std::uint32_t>(cw);
        auto it = seen.find(key);
        if (it == seen.end()) {
          seen.emplace(key, cedges.size());
          cedges.emplace_back(cu, cw);
          cwts.push_back(wts[i]);
        } else {
          cwts[it->second] += wts[i];
        }
      }
    }
  }
  out.graph = graph::Csr::from_edges(nc, cedges, cwts);

  // Vertex weights add under contraction.
  std::vector<Weight> wcomp(static_cast<std::size_t>(nc), 0);
  std::vector<Weight> wremap(static_cast<std::size_t>(nc), 0);
  for (Index v = 0; v < n; ++v) {
    wcomp[static_cast<std::size_t>(out.cmap[v])] += g.wcomp(v);
    wremap[static_cast<std::size_t>(out.cmap[v])] += g.wremap(v);
  }
  out.graph.set_weights(std::move(wcomp), std::move(wremap));
  return out;
}

}  // namespace plum::partition
