#include "partition/quality.hpp"

#include "util/stats.hpp"

namespace plum::partition {

Weight edge_cut(const graph::Csr& g, const PartVec& part) {
  Weight cut = 0;
  for (Index v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part[v] < part[nbrs[i]]) cut += wts[i];  // count each edge once
    }
  }
  return cut;
}

std::vector<Weight> part_loads(const graph::Csr& g, const PartVec& part,
                               Rank nparts) {
  // plum-scale: host-only -- host-side partition-quality report scratch
  std::vector<Weight> loads(static_cast<std::size_t>(nparts), 0);
  for (Index v = 0; v < g.num_vertices(); ++v) {
    loads[static_cast<std::size_t>(part[v])] += g.wcomp(v);
  }
  return loads;
}

double load_imbalance(const graph::Csr& g, const PartVec& part, Rank nparts) {
  return imbalance(part_loads(g, part, nparts));
}

QualityReport evaluate_quality(const graph::Csr& g, const PartVec& part,
                               Rank nparts) {
  QualityReport q;
  q.edge_cut = edge_cut(g, part);
  q.loads = part_loads(g, part, nparts);
  q.imbalance = imbalance(q.loads);
  return q;
}

bool is_valid_partition(const graph::Csr& g, const PartVec& part,
                        Rank nparts) {
  if (static_cast<Index>(part.size()) != g.num_vertices()) return false;
  // plum-scale: host-only -- host-side partition-quality report scratch
  std::vector<char> seen(static_cast<std::size_t>(nparts), 0);
  for (Rank p : part) {
    if (p < 0 || p >= nparts) return false;
    seen[static_cast<std::size_t>(p)] = 1;
  }
  for (char s : seen) {
    if (!s) return false;
  }
  return true;
}

}  // namespace plum::partition
