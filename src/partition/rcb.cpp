#include "partition/rcb.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace plum::partition {

namespace {

double coord(const mesh::Vec3& p, int axis) {
  switch (axis) {
    case 0: return p.x;
    case 1: return p.y;
    default: return p.z;
  }
}

void rcb_split(const std::vector<mesh::Vec3>& pts,
               const std::vector<Weight>& w, std::vector<Index>& ids,
               std::size_t lo, std::size_t hi, Rank first, Rank count,
               PartVec& part) {
  if (count == 1) {
    for (std::size_t i = lo; i < hi; ++i) part[ids[i]] = first;
    return;
  }
  // Longest axis of the bounding box of this block.
  mesh::Vec3 mn = pts[ids[lo]], mx = pts[ids[lo]];
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& p = pts[ids[i]];
    mn = {std::min(mn.x, p.x), std::min(mn.y, p.y), std::min(mn.z, p.z)};
    mx = {std::max(mx.x, p.x), std::max(mx.y, p.y), std::max(mx.z, p.z)};
  }
  const mesh::Vec3 ext = mx - mn;
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > coord(ext, axis)) axis = 2;

  std::sort(ids.begin() + static_cast<std::ptrdiff_t>(lo),
            ids.begin() + static_cast<std::ptrdiff_t>(hi),
            [&](Index a, Index b) {
              const double ca = coord(pts[a], axis), cb = coord(pts[b], axis);
              return ca != cb ? ca < cb : a < b;
            });

  // Weighted median at the first-half target. Each side must keep at least
  // as many points as parts it will receive.
  const Rank half = count / 2;
  Weight block = 0;
  for (std::size_t i = lo; i < hi; ++i) block += w[ids[i]];
  const auto target = static_cast<Weight>(
      block * static_cast<double>(half) / static_cast<double>(count));

  std::size_t cutpos = lo;
  Weight acc = 0;
  while (cutpos < hi && acc < target) acc += w[ids[cutpos++]];
  cutpos = std::clamp(cutpos, lo + static_cast<std::size_t>(half),
                      hi - static_cast<std::size_t>(count - half));

  rcb_split(pts, w, ids, lo, cutpos, first, half, part);
  rcb_split(pts, w, ids, cutpos, hi, first + half, count - half, part);
}

}  // namespace

PartVec rcb_partition(const std::vector<mesh::Vec3>& points,
                      const std::vector<Weight>& weights, Rank nparts) {
  const auto n = static_cast<Index>(points.size());
  PLUM_ASSERT(nparts >= 1 && n >= nparts);
  std::vector<Weight> w = weights;
  if (w.empty()) w.assign(static_cast<std::size_t>(n), 1);
  PLUM_ASSERT(static_cast<Index>(w.size()) == n);

  std::vector<Index> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  PartVec part(static_cast<std::size_t>(n), kNoRank);
  rcb_split(points, w, ids, 0, static_cast<std::size_t>(n), 0, nparts, part);
  return part;
}

}  // namespace plum::partition
