#pragma once
// Recursive coordinate bisection — the classical geometric baseline the
// graph-based repartitioner is compared against in the ablation benches.
// Splits along the longest axis at the weighted median, recursively.

#include "mesh/vec3.hpp"
#include "partition/quality.hpp"

namespace plum::partition {

/// Partitions `n = points.size()` weighted points into nparts spatial
/// blocks. Weight balance on `weights` (unit if empty).
PartVec rcb_partition(const std::vector<mesh::Vec3>& points,
                      const std::vector<Weight>& weights, Rank nparts);

}  // namespace plum::partition
