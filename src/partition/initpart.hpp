#pragma once
// Initial partitioning of the coarsest graph: greedy graph growing (GGGP)
// recursive bisection — "applies a greedy graph growing algorithm for
// partitioning the coarsest graph" (paper §4.2).

#include "partition/quality.hpp"
#include "util/rng.hpp"

namespace plum::partition {

/// Partitions `g` into `nparts` parts by recursive greedy graph growing.
/// Weights balanced on wcomp; deterministic for a given rng state.
PartVec initial_partition(const graph::Csr& g, Rank nparts, Rng& rng);

}  // namespace plum::partition
