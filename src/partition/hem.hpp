#pragma once
// Heavy-edge-matching coarsening (one multilevel level). "MeTiS reduces the
// size of the graph by collapsing vertices and edges using a heavy edge
// matching scheme" (paper §4.2) — matched pairs merge into one coarse
// vertex; both vertex weights add; parallel edges between coarse vertices
// merge with summed weights.

#include <vector>

#include "graph/csr.hpp"
#include "obs/memory.hpp"
#include "util/rng.hpp"

namespace plum::partition {

struct CoarseLevel {
  graph::Csr graph;            ///< the coarser graph
  std::vector<Index> cmap;     ///< fine vertex -> coarse vertex
};

/// One HEM pass: visits vertices in a seeded random order; each unmatched
/// vertex matches its heaviest-edge unmatched neighbor (or stays single).
/// `scratch` (optional) backs the matching's phase-local buffers with a
/// plum-mem arena and attributes their churn; the result never aliases
/// arena memory.
CoarseLevel coarsen_hem(const graph::Csr& g, Rng& rng,
                        const obs::MemScratch& scratch = {});

}  // namespace plum::partition
