#pragma once
// Multilevel k-way graph partitioner (our from-scratch stand-in for the
// "alpha version of parallel MeTiS" of paper §4.2).
//
// partition():   HEM coarsening -> GGGP recursive bisection on the coarsest
//                graph -> uncoarsening with greedy k-way boundary refinement.
// repartition(): uses the previous partition as the initial guess (the
//                property of parallel MeTiS the paper highlights, because it
//                shrinks the remapping volume); falls back to a scratch
//                partition when diffusion cannot restore balance.
//
// Level statistics are recorded so the SP2 machine model can estimate what
// the *parallel* partitioner's execution time would be (DESIGN.md §3).

#include <vector>

#include "obs/memory.hpp"
#include "partition/quality.hpp"
#include "util/rng.hpp"

namespace plum::partition {

struct MultilevelOptions {
  Rank nparts = 2;
  double imbalance_tol = 0.05;
  /// Coarsening stops at max(coarsen_to_per_part * nparts, 64) vertices or
  /// when a level shrinks by < 10%.
  Index coarsen_to_per_part = 15;
  int refine_passes = 8;
  std::uint64_t seed = 12345;
  /// Optional plum-mem scratch bundle threaded down to coarsen_hem and
  /// refine_kway so their phase-local buffers are arena-backed and their
  /// churn is attributed. Empty (the default) means plain heap, uncounted.
  obs::MemScratch scratch{};
};

struct LevelStat {
  Index num_vertices = 0;
  std::int64_t num_edges = 0;
};

struct MultilevelResult {
  PartVec part;
  Weight cut = 0;
  double imbalance = 0;
  std::vector<LevelStat> levels;   ///< finest..coarsest
  bool used_previous = false;      ///< repartition kept the warm start
};

MultilevelResult partition(const graph::Csr& g, const MultilevelOptions& opt);

/// Repartition with warm start from `previous` (same graph, new weights).
MultilevelResult repartition(const graph::Csr& g, const PartVec& previous,
                             const MultilevelOptions& opt);

}  // namespace plum::partition
