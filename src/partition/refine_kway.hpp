#pragma once
// Greedy k-way boundary refinement — the uncoarsening-phase "combination of
// boundary greedy and Kernighan-Lin refinement" (paper §4.2). Boundary
// vertices move to the adjacent part with the best cut gain, subject to a
// balance constraint; negative-gain moves are only taken to fix imbalance.

#include "obs/memory.hpp"
#include "partition/quality.hpp"
#include "util/rng.hpp"

namespace plum::partition {

struct RefineOptions {
  double imbalance_tol = 0.05;  ///< max part load <= (1+tol) * mean
  int max_passes = 8;
  /// When true, moves that worsen the cut are allowed from overloaded parts
  /// (load diffusion) — what makes warm-start repartitioning converge.
  bool allow_balancing_moves = true;
};

struct RefineStats {
  int passes = 0;
  std::int64_t moves = 0;
  Weight cut_before = 0;
  Weight cut_after = 0;
};

/// Refines `part` in place. Never empties a part. `scratch` (optional)
/// backs the KL-FM pass buffers (loads, counts, order, connection/stamp
/// tables) with a plum-mem arena and attributes their churn.
RefineStats refine_kway(const graph::Csr& g, PartVec& part, Rank nparts,
                        const RefineOptions& opt, Rng& rng,
                        const obs::MemScratch& scratch = {});

}  // namespace plum::partition
