#pragma once
// Partition quality metrics: edge cut (communication volume proxy) and load
// imbalance (max part weight / mean part weight).

#include <vector>

#include "graph/csr.hpp"

namespace plum::partition {

/// part[v] in [0, nparts) for every vertex.
using PartVec = std::vector<Rank>;

/// Sum of edge weights crossing part boundaries (each edge counted once).
Weight edge_cut(const graph::Csr& g, const PartVec& part);

/// Per-part total wcomp.
std::vector<Weight> part_loads(const graph::Csr& g, const PartVec& part,
                               Rank nparts);

/// max load / mean load; 1.0 = perfect.
double load_imbalance(const graph::Csr& g, const PartVec& part, Rank nparts);

/// True if every part id is within range and every part is non-empty.
bool is_valid_partition(const graph::Csr& g, const PartVec& part,
                        Rank nparts);

/// Bundled partition-quality snapshot, computed once per Framework cycle
/// for the live gauges (and by benches, so both emit identical fields).
struct QualityReport {
  Weight edge_cut = 0;         ///< paper's communication-volume proxy
  double imbalance = 1.0;      ///< load-imbalance factor (max/mean)
  std::vector<Weight> loads;   ///< per-part total wcomp
};

/// edge_cut + load_imbalance + part_loads in one pass over the inputs.
QualityReport evaluate_quality(const graph::Csr& g, const PartVec& part,
                               Rank nparts);

}  // namespace plum::partition
