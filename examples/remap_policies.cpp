// Processor-reassignment policies side by side (paper §4.4, Fig. 2): build
// a similarity matrix from a real repartitioning, then map new partitions
// to processors with the optimal MWBG, the greedy heuristic, and the
// optimal BMCM algorithms, printing the matrix and the movement metrics
// each policy induces.

#include <cstdio>
#include <iostream>

#include "adapt/adaptor.hpp"
#include "io/table.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/multilevel.hpp"
#include "remap/mapping.hpp"
#include "remap/volume.hpp"
#include "solver/euler.hpp"
#include "solver/init_conditions.hpp"

int main() {
  using namespace plum;
  constexpr Rank kProcs = 4;

  // A real workload: blast-driven marking on a small box, then a
  // repartitioning of the dual graph with the predicted weights.
  auto mesh = mesh::make_box_mesh(mesh::small_box(6));
  solver::EulerSolver solver(&mesh);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(mesh, solver.solution(), blast);
  solver.run(20);

  adapt::MeshAdaptor adaptor(&mesh);
  const auto err = adapt::edge_error(mesh, solver.density_field());
  adaptor.mark_fraction(err, 0.08);

  auto dual = mesh.build_initial_dual();
  partition::MultilevelOptions popt;
  popt.nparts = kProcs;
  const auto old_part = partition::partition(dual, popt).part;

  const auto predicted = adaptor.predicted_weights();
  dual.set_weights(predicted.wcomp, predicted.wremap);
  const auto new_part = partition::repartition(dual, old_part, popt).part;

  // Remap-before-subdivision: what moves is the *current* tree (1 element
  // per root at the first adaption).
  const auto current = mesh.root_weights();
  const auto S = remap::SimilarityMatrix::build(old_part, new_part,
                                                current.wremap, kProcs, kProcs);
  io::print_similarity(std::cout, S);

  io::Table table({"mapper", "objective", "Ctotal", "Ntotal", "Cmax", "Nmax",
                   "max(sent,recv)", "solve_ms"});
  struct Row {
    const char* name;
    remap::Assignment assign;
  };
  const Row rows[] = {
      {"OptMWBG (TotalV)", remap::map_optimal_mwbg(S)},
      {"HeuMWBG (TotalV)", remap::map_heuristic_greedy(S)},
      {"OptBMCM (MaxV)", remap::map_optimal_bmcm(S)},
      {"identity", remap::map_identity(S)},
  };
  for (const auto& row : rows) {
    const auto vol = remap::evaluate_assignment(S, row.assign);
    table.add_row({row.name, io::Table::fmt(std::int64_t{row.assign.objective}),
                   io::Table::fmt(std::int64_t{vol.total_elems}),
                   io::Table::fmt(std::int64_t{vol.total_sets}),
                   io::Table::fmt(std::int64_t{vol.bottleneck_elems}),
                   io::Table::fmt(std::int64_t{vol.bottleneck_sets}),
                   io::Table::fmt(std::int64_t{vol.max_sent_or_recv}),
                   io::Table::fmt(row.assign.solve_seconds * 1e3, 4)});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nNote: OptMWBG maximizes retained weight (min total movement);\n"
      "OptBMCM minimizes the bottleneck processor's traffic instead;\n"
      "the greedy heuristic is within 2x of OptMWBG by the paper's Theorem 1\n"
      "and is the one PLUM runs in production (Table 2 shows why: ~10x faster).\n");

  // Assignment detail for the winning policy.
  const auto heu = remap::map_heuristic_greedy(S);
  std::printf("\ngreedy assignment with retained entries highlighted:\n");
  io::print_similarity(std::cout, S, &heu.part_to_proc);
  return 0;
}
