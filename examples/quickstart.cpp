// Quickstart: the whole framework in ~40 lines.
//
// Builds a tetrahedral box mesh, puts a blast in it, and runs three
// solve -> mark -> load-balance -> refine cycles, printing what the load
// balancer decided each time.

#include <cstdio>

#include "core/framework.hpp"
#include "mesh/box_mesh.hpp"
#include "solver/init_conditions.hpp"

int main() {
  using namespace plum;

  // 1. An initial mesh: 6*8^3 = 3072 tetrahedra in the unit box.
  auto mesh = mesh::make_box_mesh(mesh::small_box(8));

  // 2. Framework: 8 logical processors, remap-before-subdivision (the
  //    paper's optimization), greedy reassignment, TotalV cost metric.
  core::FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.05;     // adapt the worst 5% of edges per cycle
  opt.imbalance_trigger = 1.10;   // repartition when predicted imbalance >10%
  core::Framework fw(std::move(mesh), opt);

  // 3. A localized flow feature to chase.
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(fw.mesh(), fw.solver().solution(), blast);

  // 4. Run adaption cycles.
  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto r = fw.cycle();
    std::printf(
        "cycle %d: %6d -> %6d elements | predicted imbalance %.3f%s",
        cycle, r.elements_before, r.elements_after, r.imbalance_old,
        r.evaluated_repartition ? "" : " (balanced, no repartition)\n");
    if (r.evaluated_repartition) {
      std::printf(" -> %.3f | moved %lld elements | %s (gain %.3fs vs cost %.3fs)\n",
                  r.imbalance_new,
                  static_cast<long long>(r.volume.total_elems),
                  r.accepted ? "remap ACCEPTED" : "remap rejected",
                  r.gain_seconds, r.cost_seconds);
    }
  }
  std::printf("final mesh: %d elements, solver dofs: %d\n",
              fw.mesh().num_active_elements(), fw.mesh().num_vertices());
  return 0;
}
