// Restart workflow (paper §3's global-view snapshot use case): run a few
// adaption cycles, write the full adapted state (mesh + refinement forest +
// solution) to disk, read it back into a fresh process state, and continue
// the computation — including coarsening back below the snapshot's level,
// which only works because the forest was preserved.

#include <cstdio>

#include "adapt/adaptor.hpp"
#include "io/snapshot.hpp"
#include "mesh/box_mesh.hpp"
#include "solver/euler.hpp"
#include "solver/init_conditions.hpp"

int main() {
  using namespace plum;
  const char* path = "blast_restart.plum-snap";

  // --- phase 1: run and snapshot --------------------------------------------
  {
    auto mesh = mesh::make_box_mesh(mesh::small_box(6));
    solver::EulerSolver solver(&mesh);
    solver::BlastSpec blast;
    blast.radius = 0.2;
    solver::init_blast(mesh, solver.solution(), blast);
    mesh.on_bisect = [&](Index e, Index mid) {
      solver.interpolate_midpoint(e, mid);
    };

    adapt::MeshAdaptor adaptor(&mesh);
    for (int cycle = 0; cycle < 2; ++cycle) {
      solver.run(10);
      const auto err = adapt::edge_error(mesh, solver.density_field());
      adaptor.mark_fraction(err, 0.05);
      adaptor.refine();
      solver.rebuild();
    }
    io::write_snapshot_file(path, mesh, solver.solution());
    std::printf("phase 1: adapted to %d elements, snapshot written to %s\n",
                mesh.num_active_elements(), path);
  }

  // --- phase 2: restart and continue -----------------------------------------
  {
    auto snap = io::read_snapshot_file(path);
    snap.mesh.validate();
    std::printf("phase 2: restarted with %d elements, %zu solution dofs\n",
                snap.mesh.num_active_elements(), snap.solution.size());

    solver::EulerSolver solver(&snap.mesh);
    solver.solution() = snap.solution;
    solver.rebuild();
    snap.mesh.on_bisect = [&](Index e, Index mid) {
      solver.interpolate_midpoint(e, mid);
    };

    // Keep computing...
    solver.run(10);

    // ...and coarsen the quiet half of the domain — possible only because
    // the snapshot carried the refinement forest.
    adapt::MeshAdaptor adaptor(&snap.mesh);
    std::vector<char> cm(static_cast<std::size_t>(snap.mesh.num_edges()), 0);
    for (Index e = 0; e < snap.mesh.num_edges(); ++e) {
      const auto& ed = snap.mesh.edge(e);
      if (snap.mesh.edge_elements(e).empty()) continue;
      if (snap.mesh.vertex(ed.v0).pos.x > 0.7 &&
          snap.mesh.vertex(ed.v1).pos.x > 0.7) {
        cm[static_cast<std::size_t>(e)] = 1;
      }
    }
    const Index before = snap.mesh.num_active_elements();
    const auto stats = adaptor.coarsen(
        cm, [&](const std::vector<Index>& map) { solver.remap_solution(map); });
    solver.rebuild();
    snap.mesh.validate();
    std::printf(
        "phase 2: coarsened %d -> %d elements (%d sibling groups removed), "
        "solver still conservative: mass %.6f\n",
        before, snap.mesh.num_active_elements(), stats.groups_removed,
        solver.totals()[0]);
  }
  std::printf("restart workflow OK\n");
  return 0;
}
