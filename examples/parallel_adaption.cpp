// Distributed-memory mesh adaption demo (paper §3): distribute a mesh over
// 6 logical ranks, mark edges around a blast front on each rank's local
// region, let the marking propagate across partition boundaries, subdivide
// locally, and show the shared-object bookkeeping (SPLs) stay consistent.

#include <cstdio>

#include "adapt/error_indicator.hpp"
#include "io/table.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/multilevel.hpp"
#include "pmesh/dist_mesh.hpp"
#include "pmesh/parallel_adapt.hpp"
#include "solver/euler.hpp"
#include "solver/init_conditions.hpp"

#include <iostream>

int main() {
  using namespace plum;
  constexpr Rank kRanks = 6;

  auto global = mesh::make_box_mesh(mesh::small_box(8));
  solver::EulerSolver solver(&global);
  solver::BlastSpec blast;
  blast.radius = 0.25;
  solver::init_blast(global, solver.solution(), blast);
  solver.run(15);

  // Partition the dual graph and distribute.
  auto dual = global.build_initial_dual();
  partition::MultilevelOptions popt;
  popt.nparts = kRanks;
  const auto part = partition::partition(dual, popt).part;
  pmesh::DistMesh dm(global, part, kRanks);
  dm.validate();
  std::printf("distributed %d elements over %d ranks; shared-object fraction %.1f%%\n",
              global.num_active_elements(), kRanks,
              100.0 * dm.shared_object_fraction());

  // Error-driven marks, localized to each rank's region via the global ids.
  const auto err = adapt::edge_error(global, solver.density_field());
  const auto gmarks = adapt::mark_top_fraction(global, err, 0.06);
  std::vector<std::vector<char>> seeds(kRanks);
  for (Rank r = 0; r < kRanks; ++r) {
    const auto& lm = dm.local(r);
    seeds[r].assign(static_cast<std::size_t>(lm.mesh.num_edges()), 0);
    for (Index e = 0; e < static_cast<Index>(lm.edge_global.size()); ++e) {
      if (gmarks[static_cast<std::size_t>(lm.edge_global[e])]) seeds[r][e] = 1;
    }
  }

  // Parallel marking + refinement.
  rt::Engine eng(kRanks);
  const auto pm = pmesh::parallel_mark(dm, eng, seeds);
  const auto pf = pmesh::parallel_refine(dm, eng, pm);
  dm.validate();

  std::printf("marking converged in %d cross-partition rounds, %lld shared-edge notifications\n",
              pm.comm_rounds, static_cast<long long>(pm.marks_exchanged));
  std::printf("post-refinement SPL repair created %lld shared edges, %lld shared vertices\n\n",
              static_cast<long long>(pf.new_shared_edges),
              static_cast<long long>(pf.new_shared_verts));

  io::Table table({"rank", "elements", "work(children)", "shared edges",
                   "shared verts"});
  for (Rank r = 0; r < kRanks; ++r) {
    table.add_row({io::Table::fmt(std::int64_t{r}),
                   io::Table::fmt(std::int64_t{dm.local(r).mesh.num_active_elements()}),
                   io::Table::fmt(std::int64_t{pf.work_per_rank[r]}),
                   io::Table::fmt(std::int64_t(dm.local(r).shared_edges.size())),
                   io::Table::fmt(std::int64_t(dm.local(r).shared_verts.size()))});
  }
  table.print(std::cout);
  std::printf("\ntotal active elements across ranks: %d (SPLs validated)\n",
              dm.total_active_elements());
  return 0;
}
