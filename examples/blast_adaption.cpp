// Blast-driven adaptive simulation (the domain scenario standing in for the
// paper's rotor acoustics case): a spherical blast expands through the box;
// every cycle the mesh refines around the moving front, the load balancer
// keeps the 16 processors busy, and the adapted mesh + density field +
// partition are dumped to VTK for inspection.

#include <cstdio>

#include "core/framework.hpp"
#include "io/vtk.hpp"
#include "mesh/box_mesh.hpp"
#include "mesh/quality.hpp"
#include "solver/init_conditions.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace plum;
  const bool write_files = argc > 1 && std::string(argv[1]) == "--vtk";

  auto mesh = mesh::make_box_mesh(mesh::small_box(10));

  core::FrameworkOptions opt;
  opt.nranks = 16;
  opt.refine_fraction = 0.04;
  opt.imbalance_trigger = 1.10;
  opt.solver_steps_per_cycle = 30;
  opt.mapper = core::MapperKind::kHeuristicGreedy;
  core::Framework fw(std::move(mesh), opt);

  solver::BlastSpec blast;
  blast.center = {0.35, 0.35, 0.35};
  blast.radius = 0.15;
  blast.inner_pressure = 20.0;
  solver::init_blast(fw.mesh(), fw.solver().solution(), blast);

  std::printf("%5s %9s %9s %7s %9s %9s %8s\n", "cycle", "elems", "verts",
              "imb", "moved", "decision", "quality");
  for (int cycle = 0; cycle < 4; ++cycle) {
    const auto r = fw.cycle();
    const auto q = mesh::mesh_quality(fw.mesh());
    std::printf("%5d %9d %9d %7.3f %9lld %9s %8.3f\n", cycle,
                r.elements_after, fw.mesh().num_vertices(), r.imbalance_old,
                static_cast<long long>(r.volume.total_elems),
                r.accepted ? "remap" : (r.evaluated_repartition ? "reject" : "skip"),
                q.min);

    if (write_files) {
      io::VtkFields fields;
      fields.vertex_scalar = fw.solver().density_field();
      fields.root_partition = fw.root_partition();
      io::write_vtk_file("blast_cycle" + std::to_string(cycle) + ".vtk",
                         fw.mesh(), fields);
    }
  }

  const auto loads = fw.processor_loads();
  std::printf("final processor loads: imbalance %.3f (max %lld, mean %lld)\n",
              imbalance(loads), static_cast<long long>(vec_max(loads)),
              static_cast<long long>(vec_sum(loads) / 16));
  fw.mesh().validate();
  std::printf("mesh validated OK%s\n",
              write_files ? ", VTK files written" : " (pass --vtk to dump files)");
  return 0;
}
