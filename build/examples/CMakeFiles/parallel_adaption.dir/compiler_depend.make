# Empty compiler generated dependencies file for parallel_adaption.
# This may be replaced when dependencies are built.
