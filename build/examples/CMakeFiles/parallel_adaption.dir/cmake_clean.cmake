file(REMOVE_RECURSE
  "CMakeFiles/parallel_adaption.dir/parallel_adaption.cpp.o"
  "CMakeFiles/parallel_adaption.dir/parallel_adaption.cpp.o.d"
  "parallel_adaption"
  "parallel_adaption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_adaption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
