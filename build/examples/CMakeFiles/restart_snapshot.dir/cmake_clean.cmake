file(REMOVE_RECURSE
  "CMakeFiles/restart_snapshot.dir/restart_snapshot.cpp.o"
  "CMakeFiles/restart_snapshot.dir/restart_snapshot.cpp.o.d"
  "restart_snapshot"
  "restart_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
