# Empty dependencies file for restart_snapshot.
# This may be replaced when dependencies are built.
