file(REMOVE_RECURSE
  "CMakeFiles/blast_adaption.dir/blast_adaption.cpp.o"
  "CMakeFiles/blast_adaption.dir/blast_adaption.cpp.o.d"
  "blast_adaption"
  "blast_adaption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_adaption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
