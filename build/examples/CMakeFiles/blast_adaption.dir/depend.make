# Empty dependencies file for blast_adaption.
# This may be replaced when dependencies are built.
