# Empty dependencies file for remap_policies.
# This may be replaced when dependencies are built.
