file(REMOVE_RECURSE
  "CMakeFiles/remap_policies.dir/remap_policies.cpp.o"
  "CMakeFiles/remap_policies.dir/remap_policies.cpp.o.d"
  "remap_policies"
  "remap_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remap_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
