# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("graph")
subdirs("runtime")
subdirs("mesh")
subdirs("adapt")
subdirs("solver")
subdirs("partition")
subdirs("remap")
subdirs("pmesh")
subdirs("sim")
subdirs("io")
subdirs("core")
