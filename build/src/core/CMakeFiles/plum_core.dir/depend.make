# Empty dependencies file for plum_core.
# This may be replaced when dependencies are built.
