file(REMOVE_RECURSE
  "libplum_core.a"
)
