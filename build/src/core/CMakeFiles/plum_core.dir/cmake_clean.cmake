file(REMOVE_RECURSE
  "CMakeFiles/plum_core.dir/dist_framework.cpp.o"
  "CMakeFiles/plum_core.dir/dist_framework.cpp.o.d"
  "CMakeFiles/plum_core.dir/framework.cpp.o"
  "CMakeFiles/plum_core.dir/framework.cpp.o.d"
  "libplum_core.a"
  "libplum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
