file(REMOVE_RECURSE
  "libplum_graph.a"
)
