# Empty dependencies file for plum_graph.
# This may be replaced when dependencies are built.
