file(REMOVE_RECURSE
  "CMakeFiles/plum_graph.dir/coloring.cpp.o"
  "CMakeFiles/plum_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/plum_graph.dir/connect.cpp.o"
  "CMakeFiles/plum_graph.dir/connect.cpp.o.d"
  "CMakeFiles/plum_graph.dir/csr.cpp.o"
  "CMakeFiles/plum_graph.dir/csr.cpp.o.d"
  "CMakeFiles/plum_graph.dir/dual.cpp.o"
  "CMakeFiles/plum_graph.dir/dual.cpp.o.d"
  "libplum_graph.a"
  "libplum_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
