
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coloring.cpp" "src/graph/CMakeFiles/plum_graph.dir/coloring.cpp.o" "gcc" "src/graph/CMakeFiles/plum_graph.dir/coloring.cpp.o.d"
  "/root/repo/src/graph/connect.cpp" "src/graph/CMakeFiles/plum_graph.dir/connect.cpp.o" "gcc" "src/graph/CMakeFiles/plum_graph.dir/connect.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/plum_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/plum_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/dual.cpp" "src/graph/CMakeFiles/plum_graph.dir/dual.cpp.o" "gcc" "src/graph/CMakeFiles/plum_graph.dir/dual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
