file(REMOVE_RECURSE
  "libplum_remap.a"
)
