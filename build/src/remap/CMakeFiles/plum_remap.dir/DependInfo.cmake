
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remap/bmcm.cpp" "src/remap/CMakeFiles/plum_remap.dir/bmcm.cpp.o" "gcc" "src/remap/CMakeFiles/plum_remap.dir/bmcm.cpp.o.d"
  "/root/repo/src/remap/greedy.cpp" "src/remap/CMakeFiles/plum_remap.dir/greedy.cpp.o" "gcc" "src/remap/CMakeFiles/plum_remap.dir/greedy.cpp.o.d"
  "/root/repo/src/remap/mwbg.cpp" "src/remap/CMakeFiles/plum_remap.dir/mwbg.cpp.o" "gcc" "src/remap/CMakeFiles/plum_remap.dir/mwbg.cpp.o.d"
  "/root/repo/src/remap/similarity.cpp" "src/remap/CMakeFiles/plum_remap.dir/similarity.cpp.o" "gcc" "src/remap/CMakeFiles/plum_remap.dir/similarity.cpp.o.d"
  "/root/repo/src/remap/volume.cpp" "src/remap/CMakeFiles/plum_remap.dir/volume.cpp.o" "gcc" "src/remap/CMakeFiles/plum_remap.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/plum_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
