# Empty dependencies file for plum_remap.
# This may be replaced when dependencies are built.
