file(REMOVE_RECURSE
  "CMakeFiles/plum_remap.dir/bmcm.cpp.o"
  "CMakeFiles/plum_remap.dir/bmcm.cpp.o.d"
  "CMakeFiles/plum_remap.dir/greedy.cpp.o"
  "CMakeFiles/plum_remap.dir/greedy.cpp.o.d"
  "CMakeFiles/plum_remap.dir/mwbg.cpp.o"
  "CMakeFiles/plum_remap.dir/mwbg.cpp.o.d"
  "CMakeFiles/plum_remap.dir/similarity.cpp.o"
  "CMakeFiles/plum_remap.dir/similarity.cpp.o.d"
  "CMakeFiles/plum_remap.dir/volume.cpp.o"
  "CMakeFiles/plum_remap.dir/volume.cpp.o.d"
  "libplum_remap.a"
  "libplum_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
