file(REMOVE_RECURSE
  "libplum_adapt.a"
)
