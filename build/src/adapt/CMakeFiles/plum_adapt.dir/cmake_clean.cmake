file(REMOVE_RECURSE
  "CMakeFiles/plum_adapt.dir/adaptor.cpp.o"
  "CMakeFiles/plum_adapt.dir/adaptor.cpp.o.d"
  "CMakeFiles/plum_adapt.dir/coarsen.cpp.o"
  "CMakeFiles/plum_adapt.dir/coarsen.cpp.o.d"
  "CMakeFiles/plum_adapt.dir/error_indicator.cpp.o"
  "CMakeFiles/plum_adapt.dir/error_indicator.cpp.o.d"
  "CMakeFiles/plum_adapt.dir/geometry_marking.cpp.o"
  "CMakeFiles/plum_adapt.dir/geometry_marking.cpp.o.d"
  "CMakeFiles/plum_adapt.dir/marking.cpp.o"
  "CMakeFiles/plum_adapt.dir/marking.cpp.o.d"
  "CMakeFiles/plum_adapt.dir/patterns.cpp.o"
  "CMakeFiles/plum_adapt.dir/patterns.cpp.o.d"
  "CMakeFiles/plum_adapt.dir/refine.cpp.o"
  "CMakeFiles/plum_adapt.dir/refine.cpp.o.d"
  "libplum_adapt.a"
  "libplum_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
