# Empty compiler generated dependencies file for plum_io.
# This may be replaced when dependencies are built.
