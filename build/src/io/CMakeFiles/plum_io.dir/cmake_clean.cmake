file(REMOVE_RECURSE
  "CMakeFiles/plum_io.dir/mesh_io.cpp.o"
  "CMakeFiles/plum_io.dir/mesh_io.cpp.o.d"
  "CMakeFiles/plum_io.dir/snapshot.cpp.o"
  "CMakeFiles/plum_io.dir/snapshot.cpp.o.d"
  "CMakeFiles/plum_io.dir/table.cpp.o"
  "CMakeFiles/plum_io.dir/table.cpp.o.d"
  "CMakeFiles/plum_io.dir/vtk.cpp.o"
  "CMakeFiles/plum_io.dir/vtk.cpp.o.d"
  "libplum_io.a"
  "libplum_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
