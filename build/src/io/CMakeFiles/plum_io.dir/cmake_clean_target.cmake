file(REMOVE_RECURSE
  "libplum_io.a"
)
