file(REMOVE_RECURSE
  "CMakeFiles/plum_pmesh.dir/dist_mesh.cpp.o"
  "CMakeFiles/plum_pmesh.dir/dist_mesh.cpp.o.d"
  "CMakeFiles/plum_pmesh.dir/finalize.cpp.o"
  "CMakeFiles/plum_pmesh.dir/finalize.cpp.o.d"
  "CMakeFiles/plum_pmesh.dir/migrate.cpp.o"
  "CMakeFiles/plum_pmesh.dir/migrate.cpp.o.d"
  "CMakeFiles/plum_pmesh.dir/parallel_adapt.cpp.o"
  "CMakeFiles/plum_pmesh.dir/parallel_adapt.cpp.o.d"
  "CMakeFiles/plum_pmesh.dir/parallel_coarsen.cpp.o"
  "CMakeFiles/plum_pmesh.dir/parallel_coarsen.cpp.o.d"
  "CMakeFiles/plum_pmesh.dir/parallel_solver.cpp.o"
  "CMakeFiles/plum_pmesh.dir/parallel_solver.cpp.o.d"
  "libplum_pmesh.a"
  "libplum_pmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_pmesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
