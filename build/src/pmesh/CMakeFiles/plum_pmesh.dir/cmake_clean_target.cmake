file(REMOVE_RECURSE
  "libplum_pmesh.a"
)
