
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmesh/dist_mesh.cpp" "src/pmesh/CMakeFiles/plum_pmesh.dir/dist_mesh.cpp.o" "gcc" "src/pmesh/CMakeFiles/plum_pmesh.dir/dist_mesh.cpp.o.d"
  "/root/repo/src/pmesh/finalize.cpp" "src/pmesh/CMakeFiles/plum_pmesh.dir/finalize.cpp.o" "gcc" "src/pmesh/CMakeFiles/plum_pmesh.dir/finalize.cpp.o.d"
  "/root/repo/src/pmesh/migrate.cpp" "src/pmesh/CMakeFiles/plum_pmesh.dir/migrate.cpp.o" "gcc" "src/pmesh/CMakeFiles/plum_pmesh.dir/migrate.cpp.o.d"
  "/root/repo/src/pmesh/parallel_adapt.cpp" "src/pmesh/CMakeFiles/plum_pmesh.dir/parallel_adapt.cpp.o" "gcc" "src/pmesh/CMakeFiles/plum_pmesh.dir/parallel_adapt.cpp.o.d"
  "/root/repo/src/pmesh/parallel_coarsen.cpp" "src/pmesh/CMakeFiles/plum_pmesh.dir/parallel_coarsen.cpp.o" "gcc" "src/pmesh/CMakeFiles/plum_pmesh.dir/parallel_coarsen.cpp.o.d"
  "/root/repo/src/pmesh/parallel_solver.cpp" "src/pmesh/CMakeFiles/plum_pmesh.dir/parallel_solver.cpp.o" "gcc" "src/pmesh/CMakeFiles/plum_pmesh.dir/parallel_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/plum_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/plum_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/plum_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/plum_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/plum_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/plum_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
