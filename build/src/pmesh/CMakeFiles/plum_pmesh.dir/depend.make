# Empty dependencies file for plum_pmesh.
# This may be replaced when dependencies are built.
