file(REMOVE_RECURSE
  "CMakeFiles/plum_mesh.dir/box_mesh.cpp.o"
  "CMakeFiles/plum_mesh.dir/box_mesh.cpp.o.d"
  "CMakeFiles/plum_mesh.dir/quality.cpp.o"
  "CMakeFiles/plum_mesh.dir/quality.cpp.o.d"
  "CMakeFiles/plum_mesh.dir/tet_mesh.cpp.o"
  "CMakeFiles/plum_mesh.dir/tet_mesh.cpp.o.d"
  "libplum_mesh.a"
  "libplum_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
