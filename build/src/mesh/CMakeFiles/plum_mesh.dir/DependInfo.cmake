
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/box_mesh.cpp" "src/mesh/CMakeFiles/plum_mesh.dir/box_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/plum_mesh.dir/box_mesh.cpp.o.d"
  "/root/repo/src/mesh/quality.cpp" "src/mesh/CMakeFiles/plum_mesh.dir/quality.cpp.o" "gcc" "src/mesh/CMakeFiles/plum_mesh.dir/quality.cpp.o.d"
  "/root/repo/src/mesh/tet_mesh.cpp" "src/mesh/CMakeFiles/plum_mesh.dir/tet_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/plum_mesh.dir/tet_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/plum_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
