file(REMOVE_RECURSE
  "libplum_mesh.a"
)
