file(REMOVE_RECURSE
  "libplum_solver.a"
)
