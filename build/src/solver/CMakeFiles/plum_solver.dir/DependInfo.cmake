
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/dual_metrics.cpp" "src/solver/CMakeFiles/plum_solver.dir/dual_metrics.cpp.o" "gcc" "src/solver/CMakeFiles/plum_solver.dir/dual_metrics.cpp.o.d"
  "/root/repo/src/solver/euler.cpp" "src/solver/CMakeFiles/plum_solver.dir/euler.cpp.o" "gcc" "src/solver/CMakeFiles/plum_solver.dir/euler.cpp.o.d"
  "/root/repo/src/solver/init_conditions.cpp" "src/solver/CMakeFiles/plum_solver.dir/init_conditions.cpp.o" "gcc" "src/solver/CMakeFiles/plum_solver.dir/init_conditions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/plum_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/plum_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
