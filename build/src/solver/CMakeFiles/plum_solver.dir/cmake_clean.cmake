file(REMOVE_RECURSE
  "CMakeFiles/plum_solver.dir/dual_metrics.cpp.o"
  "CMakeFiles/plum_solver.dir/dual_metrics.cpp.o.d"
  "CMakeFiles/plum_solver.dir/euler.cpp.o"
  "CMakeFiles/plum_solver.dir/euler.cpp.o.d"
  "CMakeFiles/plum_solver.dir/init_conditions.cpp.o"
  "CMakeFiles/plum_solver.dir/init_conditions.cpp.o.d"
  "libplum_solver.a"
  "libplum_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
