# Empty dependencies file for plum_solver.
# This may be replaced when dependencies are built.
