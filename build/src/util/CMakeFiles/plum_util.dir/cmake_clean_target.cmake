file(REMOVE_RECURSE
  "libplum_util.a"
)
