file(REMOVE_RECURSE
  "CMakeFiles/plum_util.dir/log.cpp.o"
  "CMakeFiles/plum_util.dir/log.cpp.o.d"
  "CMakeFiles/plum_util.dir/timer.cpp.o"
  "CMakeFiles/plum_util.dir/timer.cpp.o.d"
  "libplum_util.a"
  "libplum_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
