# Empty dependencies file for plum_util.
# This may be replaced when dependencies are built.
