file(REMOVE_RECURSE
  "CMakeFiles/plum_sim.dir/machine.cpp.o"
  "CMakeFiles/plum_sim.dir/machine.cpp.o.d"
  "libplum_sim.a"
  "libplum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
