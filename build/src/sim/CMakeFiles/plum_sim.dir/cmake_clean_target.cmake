file(REMOVE_RECURSE
  "libplum_sim.a"
)
