# Empty dependencies file for plum_sim.
# This may be replaced when dependencies are built.
