file(REMOVE_RECURSE
  "CMakeFiles/plum_partition.dir/hem.cpp.o"
  "CMakeFiles/plum_partition.dir/hem.cpp.o.d"
  "CMakeFiles/plum_partition.dir/initpart.cpp.o"
  "CMakeFiles/plum_partition.dir/initpart.cpp.o.d"
  "CMakeFiles/plum_partition.dir/multilevel.cpp.o"
  "CMakeFiles/plum_partition.dir/multilevel.cpp.o.d"
  "CMakeFiles/plum_partition.dir/quality.cpp.o"
  "CMakeFiles/plum_partition.dir/quality.cpp.o.d"
  "CMakeFiles/plum_partition.dir/rcb.cpp.o"
  "CMakeFiles/plum_partition.dir/rcb.cpp.o.d"
  "CMakeFiles/plum_partition.dir/refine_kway.cpp.o"
  "CMakeFiles/plum_partition.dir/refine_kway.cpp.o.d"
  "libplum_partition.a"
  "libplum_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
