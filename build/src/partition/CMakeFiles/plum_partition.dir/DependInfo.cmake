
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/hem.cpp" "src/partition/CMakeFiles/plum_partition.dir/hem.cpp.o" "gcc" "src/partition/CMakeFiles/plum_partition.dir/hem.cpp.o.d"
  "/root/repo/src/partition/initpart.cpp" "src/partition/CMakeFiles/plum_partition.dir/initpart.cpp.o" "gcc" "src/partition/CMakeFiles/plum_partition.dir/initpart.cpp.o.d"
  "/root/repo/src/partition/multilevel.cpp" "src/partition/CMakeFiles/plum_partition.dir/multilevel.cpp.o" "gcc" "src/partition/CMakeFiles/plum_partition.dir/multilevel.cpp.o.d"
  "/root/repo/src/partition/quality.cpp" "src/partition/CMakeFiles/plum_partition.dir/quality.cpp.o" "gcc" "src/partition/CMakeFiles/plum_partition.dir/quality.cpp.o.d"
  "/root/repo/src/partition/rcb.cpp" "src/partition/CMakeFiles/plum_partition.dir/rcb.cpp.o" "gcc" "src/partition/CMakeFiles/plum_partition.dir/rcb.cpp.o.d"
  "/root/repo/src/partition/refine_kway.cpp" "src/partition/CMakeFiles/plum_partition.dir/refine_kway.cpp.o" "gcc" "src/partition/CMakeFiles/plum_partition.dir/refine_kway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/plum_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
