# Empty dependencies file for plum_partition.
# This may be replaced when dependencies are built.
