# Empty dependencies file for plum_runtime.
# This may be replaced when dependencies are built.
