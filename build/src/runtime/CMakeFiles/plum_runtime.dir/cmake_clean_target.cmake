file(REMOVE_RECURSE
  "libplum_runtime.a"
)
