file(REMOVE_RECURSE
  "CMakeFiles/plum_runtime.dir/engine.cpp.o"
  "CMakeFiles/plum_runtime.dir/engine.cpp.o.d"
  "libplum_runtime.a"
  "libplum_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plum_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
