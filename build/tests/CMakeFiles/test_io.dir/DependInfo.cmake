
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/test_io.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/test_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/plum_io.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/plum_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/remap/CMakeFiles/plum_remap.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/plum_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/plum_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
