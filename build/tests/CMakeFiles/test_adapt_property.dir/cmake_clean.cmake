file(REMOVE_RECURSE
  "CMakeFiles/test_adapt_property.dir/test_adapt_property.cpp.o"
  "CMakeFiles/test_adapt_property.dir/test_adapt_property.cpp.o.d"
  "test_adapt_property"
  "test_adapt_property.pdb"
  "test_adapt_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapt_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
