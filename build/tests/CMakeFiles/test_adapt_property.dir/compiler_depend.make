# Empty compiler generated dependencies file for test_adapt_property.
# This may be replaced when dependencies are built.
