file(REMOVE_RECURSE
  "CMakeFiles/test_dist_framework.dir/test_dist_framework.cpp.o"
  "CMakeFiles/test_dist_framework.dir/test_dist_framework.cpp.o.d"
  "test_dist_framework"
  "test_dist_framework.pdb"
  "test_dist_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
