# Empty dependencies file for test_dist_framework.
# This may be replaced when dependencies are built.
