file(REMOVE_RECURSE
  "CMakeFiles/test_pmesh.dir/test_pmesh.cpp.o"
  "CMakeFiles/test_pmesh.dir/test_pmesh.cpp.o.d"
  "test_pmesh"
  "test_pmesh.pdb"
  "test_pmesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
