# Empty compiler generated dependencies file for test_pmesh.
# This may be replaced when dependencies are built.
