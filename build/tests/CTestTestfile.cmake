# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_adapt[1]_include.cmake")
include("/root/repo/build/tests/test_adapt_property[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_remap[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_pmesh[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_solver[1]_include.cmake")
include("/root/repo/build/tests/test_dist_framework[1]_include.cmake")
