// plum-diff, the bench regression gate: a report self-diffs clean (exit
// status 0), any deterministic perturbation breaches (exit status 1), wall
// metrics never gate, per-metric thresholds loosen exactly one metric, and
// the directory mode pairs BENCH_*.json files and flags missing ones.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "diff.hpp"
#include "obs/json.hpp"

namespace plum {
namespace {

using diff::DiffResult;
using diff::Options;
using obs::Json;

/// A plum-bench/2 report with one run exercising every compared section:
/// scalar/int/series/histogram metrics, phases, comm matrix, gate audit,
/// and the critical-path document.
Json report() {
  Json hist = Json::object();
  hist.set("histogram", Json::boolean(true))
      .set("wall", Json::boolean(false))
      .set("count", Json::integer(4))
      .set("max", Json::number(0.5))
      .set("p50", Json::number(0.1))
      .set("p95", Json::number(0.5))
      .set("bounds", Json::array().push(Json::number(0.1)).push(
                         Json::number(1.0)))
      .set("counts", Json::array()
                         .push(Json::integer(3))
                         .push(Json::integer(1))
                         .push(Json::integer(0)));
  Json wall_hist = Json::object();
  wall_hist.set("histogram", Json::boolean(true))
      .set("wall", Json::boolean(true))
      .set("count", Json::integer(2))
      .set("max", Json::number(0.25))
      .set("p50", Json::number(0.01))
      .set("p95", Json::number(0.1))
      .set("bounds", Json::array().push(Json::number(0.1)))
      .set("counts",
           Json::array().push(Json::integer(1)).push(Json::integer(1)));

  Json metrics = Json::object();
  metrics.set("imbalance_new", Json::number(1.05))
      .set("msgs_sent", Json::integer(1234))
      .set("wall_s", Json::number(0.125))
      .set("imbalance", Json::array().push(Json::number(1.5)).push(
                            Json::number(1.05)))
      .set("rank_wait_fraction", std::move(hist))
      .set("rank_step_seconds", std::move(wall_hist));

  Json phase = Json::object();
  phase.set("name", Json::str("solve"))
      .set("wall_s", Json::number(0.5))
      .set("modeled_s", Json::number(0.25))
      .set("supersteps", Json::integer(6));

  auto row = [](std::int64_t a, std::int64_t b) {
    return Json::array().push(Json::integer(a)).push(Json::integer(b));
  };
  Json cm = Json::object();
  cm.set("nranks", Json::integer(2))
      .set("msgs", Json::array().push(row(0, 3)).push(row(2, 0)))
      .set("bytes", Json::array().push(row(0, 24)).push(row(16, 0)));

  Json gate = Json::object();
  gate.set("cycle", Json::integer(0))
      .set("evaluated", Json::boolean(true))
      .set("accepted", Json::boolean(true))
      .set("metric", Json::str("TotalV"))
      .set("imbalance_old", Json::number(1.4))
      .set("imbalance_new", Json::number(1.05))
      .set("gain_s", Json::number(0.5))
      .set("cost_s", Json::number(0.1))
      .set("predicted_move_bytes", Json::integer(100))
      .set("measured_move_bytes", Json::integer(110))
      .set("drift", Json::number(0.1));

  Json cp = Json::object();
  cp.set("source", Json::str("counters"))
      .set("critical_total", Json::number(6.0))
      .set("busy_total", Json::number(12.0))
      .set("wait_total", Json::number(6.0))
      .set("wait_fraction", Json::number(1.0 / 3.0));
  Json rank0 = Json::object();
  rank0.set("rank", Json::integer(0))
      .set("busy", Json::number(2.0))
      .set("wait", Json::number(4.0))
      .set("wait_fraction", Json::number(2.0 / 3.0))
      .set("steps_critical", Json::integer(0));
  cp.set("ranks", Json::array().push(std::move(rank0)))
      .set("phases", Json::array())
      .set("steps", Json::array());

  Json run = Json::object();
  run.set("case", Json::str("box8"))
      .set("P", Json::integer(4))
      .set("metrics", std::move(metrics))
      .set("phases", Json::array().push(std::move(phase)))
      .set("comm_matrix", std::move(cm))
      .set("gate_audit", Json::array().push(std::move(gate)))
      .set("critical_path", std::move(cp));

  Json doc = Json::object();
  doc.set("schema", Json::str("plum-bench/2"))
      .set("bench", Json::str("bench_distributed"))
      .set("runs", Json::array().push(std::move(run)));
  return doc;
}

/// Returns the run's metrics object for mutation, then reassembles the doc.
Json with_metric(Json doc, const std::string& name, Json value) {
  Json run = doc.find("runs")->at(0);
  Json metrics = *run.find("metrics");
  metrics.set(name, std::move(value));
  run.set("metrics", std::move(metrics));
  doc.set("runs", Json::array().push(std::move(run)));
  return doc;
}

TEST(PlumDiff, SelfDiffIsCleanAndExitsZero) {
  const Json doc = report();
  const DiffResult r = diff::diff_reports(doc, doc, Options{});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.breaches, 0);
  EXPECT_TRUE(r.deltas.empty());
  EXPECT_GT(r.compared, 10);
  EXPECT_EQ(diff::exit_status(r), 0);
}

TEST(PlumDiff, PerturbedIntegerMetricBreaches) {
  const Json base = report();
  const Json cur = with_metric(base, "msgs_sent", Json::integer(1235));
  const DiffResult r = diff::diff_reports(base, cur, Options{});
  EXPECT_EQ(r.breaches, 1) << diff::exit_status(r);
  EXPECT_EQ(diff::exit_status(r), 1);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_TRUE(r.deltas[0].breach);
  EXPECT_NE(r.deltas[0].where.find("msgs_sent"), std::string::npos);
}

TEST(PlumDiff, DeterministicDoubleUsesRelativeTolerance) {
  const Json base = report();
  // Drift far beyond 1e-9: breach.
  const DiffResult tight = diff::diff_reports(
      base, with_metric(base, "imbalance_new", Json::number(1.06)),
      Options{});
  EXPECT_EQ(diff::exit_status(tight), 1);
  // Same drift with a per-metric threshold of 5%: clean, still reported.
  Options loose;
  loose.metric_tol["imbalance_new"] = 0.05;
  const DiffResult ok = diff::diff_reports(
      base, with_metric(base, "imbalance_new", Json::number(1.06)), loose);
  EXPECT_EQ(diff::exit_status(ok), 0);
  ASSERT_EQ(ok.deltas.size(), 1u);
  EXPECT_FALSE(ok.deltas[0].breach);
}

TEST(PlumDiff, WallClockMetricsNeverGate) {
  const Json base = report();
  // wall_s doubles; the wall histogram's count changes: both report-only.
  Json cur = with_metric(base, "wall_s", Json::number(0.25));
  Json wall_hist = *cur.find("runs")->at(0).find("metrics")->find(
      "rank_step_seconds");
  wall_hist.set("count", Json::integer(99)).set("max", Json::number(9.0));
  cur = with_metric(std::move(cur), "rank_step_seconds",
                    std::move(wall_hist));
  const DiffResult r = diff::diff_reports(base, cur, Options{});
  EXPECT_EQ(r.breaches, 0);
  EXPECT_EQ(diff::exit_status(r), 0);
  EXPECT_GE(r.deltas.size(), 2u);  // the drifts still show in the table
  for (const auto& d : r.deltas) EXPECT_TRUE(d.wall) << d.where;
}

TEST(PlumDiff, MissingRunMetricAndSeriesLengthAreBreaches) {
  const Json base = report();
  {
    // Metric vanished.
    Json cur = base;
    Json run = cur.find("runs")->at(0);
    Json metrics = Json::object();
    for (const auto& [name, v] : run.find("metrics")->items()) {
      if (name != "msgs_sent") metrics.set(name, v);
    }
    run.set("metrics", std::move(metrics));
    cur.set("runs", Json::array().push(std::move(run)));
    EXPECT_EQ(diff::exit_status(diff::diff_reports(base, cur, Options{})),
              1);
    // Symmetric: a new metric without a baseline also breaches.
    EXPECT_EQ(diff::exit_status(diff::diff_reports(cur, base, Options{})),
              1);
  }
  {
    // Gauge series length changed (a cycle went missing).
    Json cur = with_metric(
        base, "imbalance", Json::array().push(Json::number(1.5)));
    const DiffResult r = diff::diff_reports(base, cur, Options{});
    EXPECT_EQ(diff::exit_status(r), 1);
    ASSERT_FALSE(r.deltas.empty());
    EXPECT_NE(r.deltas[0].where.find("imbalance.len"), std::string::npos);
  }
  {
    // Whole run vanished.
    Json cur = base;
    Json run = cur.find("runs")->at(0);
    run.set("P", Json::integer(8));  // different key -> old run missing
    cur.set("runs", Json::array().push(std::move(run)));
    EXPECT_EQ(diff::exit_status(diff::diff_reports(base, cur, Options{})),
              1);
  }
}

TEST(PlumDiff, CriticalPathAndCommMatrixGate) {
  const Json base = report();
  {
    Json cur = base;
    Json run = cur.find("runs")->at(0);
    Json cp = *run.find("critical_path");
    cp.set("wait_total", Json::number(7.0));
    run.set("critical_path", std::move(cp));
    cur.set("runs", Json::array().push(std::move(run)));
    EXPECT_EQ(diff::exit_status(diff::diff_reports(base, cur, Options{})),
              1);
  }
  {
    Json cur = base;
    Json run = cur.find("runs")->at(0);
    Json cm = *run.find("comm_matrix");
    auto row = [](std::int64_t a, std::int64_t b) {
      return Json::array().push(Json::integer(a)).push(Json::integer(b));
    };
    cm.set("bytes", Json::array().push(row(0, 32)).push(row(16, 0)));
    run.set("comm_matrix", std::move(cm));
    cur.set("runs", Json::array().push(std::move(run)));
    const DiffResult r = diff::diff_reports(base, cur, Options{});
    EXPECT_EQ(diff::exit_status(r), 1);
    ASSERT_FALSE(r.deltas.empty());
    EXPECT_NE(r.deltas[0].where.find("comm_matrix.bytes"),
              std::string::npos);
  }
}

TEST(PlumDiff, InvalidReportIsAnErrorNotABreach) {
  const Json base = report();
  Json bad = Json::object();
  bad.set("schema", Json::str("plum-bench/2"));  // missing bench/runs
  const DiffResult r = diff::diff_reports(base, bad, Options{});
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(diff::exit_status(r), 2);
}

TEST(PlumDiff, DirectoryModePairsByFilenameAndFlagsMissing) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(testing::TempDir()) / "plum_diff_dirs_test";
  const fs::path bdir = root / "base";
  const fs::path cdir = root / "cur";
  fs::remove_all(root);
  fs::create_directories(bdir);
  fs::create_directories(cdir);
  const auto write = [](const fs::path& p, const Json& doc) {
    std::ofstream out(p);
    out << doc.dump(2) << '\n';
    ASSERT_TRUE(out.good()) << p;
  };

  const Json doc = report();
  write(bdir / "BENCH_bench_distributed.json", doc);
  write(cdir / "BENCH_bench_distributed.json", doc);
  // Non-BENCH files are ignored by the pairing.
  write(cdir / "RUN_bench_distributed.json", doc);

  DiffResult r =
      diff::diff_dirs(bdir.string(), cdir.string(), Options{});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(diff::exit_status(r), 0);

  // A baseline with no current counterpart breaches; so does the reverse.
  write(bdir / "BENCH_bench_fig4.json", doc);
  r = diff::diff_dirs(bdir.string(), cdir.string(), Options{});
  EXPECT_EQ(diff::exit_status(r), 1);
  write(cdir / "BENCH_bench_fig4.json", doc);
  write(cdir / "BENCH_bench_fig5.json", doc);
  r = diff::diff_dirs(bdir.string(), cdir.string(), Options{});
  EXPECT_EQ(diff::exit_status(r), 1);

  // The delta table renders without crashing (smoke, to a scratch file).
  const fs::path table = root / "table.txt";
  std::FILE* out = std::fopen(table.string().c_str(), "w");
  ASSERT_NE(out, nullptr);
  diff::print_delta_table(r, out);
  std::fclose(out);
  EXPECT_GT(fs::file_size(table), 0u);
  fs::remove_all(root);
}

}  // namespace
}  // namespace plum
