// Unit tests for src/adapt: pattern classification/upgrade, marking
// propagation, 1:2 / 1:4 / 1:8 subdivision, boundary faces, coarsening,
// predicted weights, error indicators.

#include <gtest/gtest.h>

#include <cmath>

#include "adapt/adaptor.hpp"
#include "adapt/geometry_marking.hpp"
#include "mesh/box_mesh.hpp"
#include "mesh/quality.hpp"

namespace plum::adapt {
namespace {

using mesh::TetMesh;

TetMesh single_tet() {
  std::vector<mesh::Vec3> v = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<Index, 4>> t = {{0, 1, 2, 3}};
  return TetMesh::from_cells(v, t);
}

std::vector<char> mark_edges(const TetMesh& m,
                             std::initializer_list<Index> ids) {
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  for (Index e : ids) marks[static_cast<std::size_t>(e)] = 1;
  return marks;
}

// --- patterns ---------------------------------------------------------------

TEST(Patterns, ClassifyValid) {
  EXPECT_EQ(classify_pattern(0).type, SubdivType::kNone);
  EXPECT_TRUE(classify_pattern(0).valid);

  const auto one = classify_pattern(0b000100);
  EXPECT_EQ(one.type, SubdivType::kOneToTwo);
  EXPECT_EQ(one.edge, 2);

  // Face 3 = edges {0,1,3}.
  const auto four = classify_pattern(0b001011);
  EXPECT_EQ(four.type, SubdivType::kOneToFour);
  EXPECT_EQ(four.face, 3);

  EXPECT_EQ(classify_pattern(0b111111).type, SubdivType::kOneToEight);
}

TEST(Patterns, ClassifyInvalid) {
  EXPECT_FALSE(classify_pattern(0b000011).valid);   // 2 edges
  EXPECT_FALSE(classify_pattern(0b011110).valid);   // 4 edges
  EXPECT_FALSE(classify_pattern(0b100011).valid);   // 3 edges, not a face
}

TEST(Patterns, UpgradeTwoEdgesSharingFace) {
  // Edges 0 (0-1) and 1 (0-2) lie in face 3 = {0,1,3}... edges {0,1} share
  // vertex 0 and both lie in face {0,1,2} whose edge set is {0,1,3}.
  const Pattern up = upgrade_pattern(0b000011);
  EXPECT_EQ(up, 0b001011);  // completed to face 3's mask
  EXPECT_TRUE(classify_pattern(up).valid);
}

TEST(Patterns, UpgradeOppositeEdgesGoesIsotropic) {
  // Edge 0 = (0,1), edge 5 = (2,3): no common face.
  EXPECT_EQ(upgrade_pattern(0b100001), 0b111111);
}

TEST(Patterns, UpgradeIdempotentOnValid) {
  for (unsigned p = 0; p < 64; ++p) {
    const auto pat = static_cast<Pattern>(p);
    if (classify_pattern(pat).valid) {
      EXPECT_EQ(upgrade_pattern(pat), pat);
    }
  }
}

TEST(Patterns, UpgradeAlwaysProducesValid) {
  for (unsigned p = 0; p < 64; ++p) {
    EXPECT_TRUE(classify_pattern(upgrade_pattern(static_cast<Pattern>(p))).valid)
        << "pattern " << p;
  }
}

TEST(Patterns, NumChildren) {
  EXPECT_EQ(num_children(SubdivType::kNone), 1);
  EXPECT_EQ(num_children(SubdivType::kOneToTwo), 2);
  EXPECT_EQ(num_children(SubdivType::kOneToFour), 4);
  EXPECT_EQ(num_children(SubdivType::kOneToEight), 8);
}

// --- marking ----------------------------------------------------------------

TEST(Marking, SingleEdgeGivesOneToTwo) {
  const auto m = single_tet();
  const auto res = propagate_marks(m, mark_edges(m, {0}));
  EXPECT_EQ(classify_pattern(res.pattern[0]).type, SubdivType::kOneToTwo);
  EXPECT_EQ(res.marked_edges.size(), 1u);
}

TEST(Marking, AllEdgesGivesOneToEight) {
  const auto m = single_tet();
  const auto res = propagate_marks(m, mark_edges(m, {0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(classify_pattern(res.pattern[0]).type, SubdivType::kOneToEight);
}

TEST(Marking, PropagatesAcrossElements) {
  // Two tets sharing a face; marking two adjacent edges of one face forces
  // a 1:4 upgrade whose marks the neighbor must also absorb.
  std::vector<mesh::Vec3> v = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  std::vector<std::array<Index, 4>> t = {{0, 1, 2, 3}, {1, 2, 3, 4}};
  const auto m = TetMesh::from_cells(v, t);
  // Mark two edges of the shared face {1,2,3}.
  const Index e12 = m.find_edge(1, 2);
  const Index e13 = m.find_edge(1, 3);
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  marks[e12] = marks[e13] = 1;
  const auto res = propagate_marks(m, marks);
  EXPECT_TRUE(res.edge_marked[m.find_edge(2, 3)]);  // face completed
  EXPECT_TRUE(classify_pattern(res.pattern[0]).valid);
  EXPECT_TRUE(classify_pattern(res.pattern[1]).valid);
  EXPECT_GE(res.propagation_rounds, 1);
}

TEST(Marking, PredictsNewElementCount) {
  const auto m = single_tet();
  const auto res = propagate_marks(m, mark_edges(m, {0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(res.predicted_new_elements(m), 8);
}

TEST(Marking, IgnoresMarksOnUnusedEdges) {
  auto m = single_tet();
  // Refine fully, then mark a (now interior-tree) parent edge.
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  ad.refine();
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  marks[0] = 1;  // edge 0 is bisected, no longer in active mesh
  const auto res = propagate_marks(m, marks);
  EXPECT_TRUE(res.marked_edges.empty());
}

// --- refinement -------------------------------------------------------------

TEST(Refine, OneToTwoProducesTwoChildren) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0}));
  const auto stats = ad.refine();
  m.validate();
  EXPECT_EQ(stats.elements_refined, 1);
  EXPECT_EQ(stats.children_created, 2);
  EXPECT_EQ(m.num_active_elements(), 2);
  EXPECT_NEAR(m.total_volume(), 1.0 / 6.0, 1e-12);
}

TEST(Refine, OneToFourProducesFourChildren) {
  auto m = single_tet();
  // Mark all edges of face {1,2,3}: edges (1,2),(1,3),(2,3).
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  marks[m.find_edge(1, 2)] = 1;
  marks[m.find_edge(1, 3)] = 1;
  marks[m.find_edge(2, 3)] = 1;
  MeshAdaptor ad(&m);
  const auto& res = ad.mark(marks);
  EXPECT_EQ(classify_pattern(res.pattern[0]).type, SubdivType::kOneToFour);
  const auto stats = ad.refine();
  m.validate();
  EXPECT_EQ(stats.children_created, 4);
  EXPECT_EQ(m.num_active_elements(), 4);
  EXPECT_NEAR(m.total_volume(), 1.0 / 6.0, 1e-12);
}

TEST(Refine, OneToEightProducesEightChildren) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  const auto stats = ad.refine();
  m.validate();
  EXPECT_EQ(stats.children_created, 8);
  EXPECT_EQ(m.num_active_elements(), 8);
  EXPECT_NEAR(m.total_volume(), 1.0 / 6.0, 1e-12);
  // All children equal volume for isotropic split of any tet.
  for (Index t = 1; t <= 8; ++t) {
    EXPECT_NEAR(m.element_volume(t), 1.0 / 48.0, 1e-12);
  }
}

TEST(Refine, BoundaryFacesFollowElements) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  ad.refine();
  // Isotropic: each of the 4 boundary faces splits 1:4.
  EXPECT_EQ(m.num_active_bfaces(), 16);
}

TEST(Refine, SolutionHookFiresPerBisection) {
  auto m = single_tet();
  int fired = 0;
  m.on_bisect = [&](Index, Index) { ++fired; };
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  ad.refine();
  EXPECT_EQ(fired, 6);
}

TEST(Refine, RepeatedRefinementKeepsQuality) {
  auto m = make_box_mesh(mesh::small_box(1));
  MeshAdaptor ad(&m);
  for (int round = 0; round < 3; ++round) {
    std::vector<char> all(static_cast<std::size_t>(m.num_edges()), 1);
    ad.mark(all);
    ad.refine();
  }
  m.validate();
  EXPECT_EQ(m.num_active_elements(), 6 * 8 * 8 * 8);
  // Shortest-diagonal octahedron split keeps quality bounded away from 0.
  EXPECT_GT(mesh::mesh_quality(m).min, 0.1);
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-9);
}

TEST(Refine, ConformingAfterLocalizedMarks) {
  auto m = make_box_mesh(mesh::small_box(2));
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0}));
  ad.refine();
  m.validate();
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-12);
}

// --- predicted weights -------------------------------------------------------

TEST(PredictedWeights, MatchActualAfterRefine) {
  auto m = make_box_mesh(mesh::small_box(2));
  MeshAdaptor ad(&m);
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  for (Index e = 0; e < m.num_edges(); e += 7) marks[e] = 1;
  ad.mark(marks);
  const auto predicted = ad.predicted_weights();
  ad.refine();
  const auto actual = m.root_weights();
  EXPECT_EQ(predicted.wcomp, actual.wcomp);
  EXPECT_EQ(predicted.wremap, actual.wremap);
}

// --- coarsening ---------------------------------------------------------------

TEST(Coarsen, UndoesUniformRefinement) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  ad.refine();
  ASSERT_EQ(m.num_active_elements(), 8);

  // Target every leaf edge for coarsening.
  std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 1);
  const auto stats = ad.coarsen(cm);
  m.validate();
  EXPECT_EQ(stats.groups_removed, 1);
  EXPECT_EQ(m.num_active_elements(), 1);
  EXPECT_EQ(m.num_vertices(), 4);  // midpoints purged
  EXPECT_EQ(m.num_edges(), 6);
  EXPECT_EQ(m.num_active_bfaces(), 4);
  EXPECT_NEAR(m.total_volume(), 1.0 / 6.0, 1e-12);
}

TEST(Coarsen, CannotCoarsenInitialMesh) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 1);
  const auto stats = ad.coarsen(cm);
  EXPECT_EQ(stats.groups_removed, 0);
  EXPECT_EQ(m.num_active_elements(), 1);
}

TEST(Coarsen, SiblingRuleBlocksLonelyMark) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  ad.refine();
  // Mark exactly one child of one bisected parent edge: sibling rule and
  // the interior-edge passthrough must both decline.
  std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 0);
  const Index parent_children0 = m.edge(0).child[0];
  cm[static_cast<std::size_t>(parent_children0)] = 1;
  const auto stats = ad.coarsen(cm);
  EXPECT_EQ(stats.groups_removed, 0);
  EXPECT_EQ(m.num_active_elements(), 8);
}

TEST(Coarsen, PartialCoarseningStaysConforming) {
  auto m = make_box_mesh(mesh::small_box(2));
  MeshAdaptor ad(&m);
  std::vector<char> all(static_cast<std::size_t>(m.num_edges()), 1);
  ad.mark(all);
  ad.refine();
  const Index refined_elems = m.num_active_elements();

  // Coarsen only edges in the z < 0.5 half.
  std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 0);
  for (Index e = 0; e < m.num_edges(); ++e) {
    const auto& ed = m.edge(e);
    if (!ed.is_leaf()) continue;
    const double z0 = m.vertex(ed.v0).pos.z;
    const double z1 = m.vertex(ed.v1).pos.z;
    if (z0 < 0.5 && z1 < 0.5) cm[e] = 1;
  }
  ad.coarsen(cm);
  m.validate();
  EXPECT_LT(m.num_active_elements(), refined_elems);
  EXPECT_GT(m.num_active_elements(), 6 * 8);
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-9);
}

TEST(Coarsen, RefineCoarsenCycleIsStable) {
  auto m = make_box_mesh(mesh::small_box(1));
  MeshAdaptor ad(&m);
  for (int round = 0; round < 3; ++round) {
    std::vector<char> all(static_cast<std::size_t>(m.num_edges()), 1);
    ad.mark(all);
    ad.refine();
    std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 1);
    ad.coarsen(cm);
    m.validate();
    EXPECT_EQ(m.num_active_elements(), 6);
    EXPECT_EQ(m.num_vertices(), 8);
  }
}

// --- error indicator ----------------------------------------------------------

TEST(ErrorIndicator, JumpTimesLength) {
  auto m = single_tet();
  std::vector<double> u = {0.0, 2.0, 0.0, 0.0};
  const auto err = edge_error(m, u, 1.0);
  EXPECT_NEAR(err[m.find_edge(0, 1)], 2.0 * 1.0, 1e-12);
  EXPECT_NEAR(err[m.find_edge(2, 3)], 0.0, 1e-12);
}

TEST(ErrorIndicator, MarkTopFractionCountsExact) {
  const auto m = make_box_mesh(mesh::small_box(2));
  std::vector<double> u(static_cast<std::size_t>(m.num_vertices()));
  for (Index v = 0; v < m.num_vertices(); ++v) {
    u[v] = m.vertex(v).pos.x;  // gradient along x
  }
  const auto err = edge_error(m, u);
  const auto marks = mark_top_fraction(m, err, 0.25);
  Index marked = 0;
  for (char c : marks) marked += c;
  const Index active = m.num_active_edges();
  EXPECT_EQ(marked, static_cast<Index>(std::llround(0.25 * active)));
}

TEST(ErrorIndicator, ThresholdMarking) {
  auto m = single_tet();
  std::vector<double> u = {0.0, 2.0, 0.1, 0.0};
  const auto err = edge_error(m, u, 0.0);  // pure jump
  const auto above = mark_above(m, err, 1.0);
  EXPECT_TRUE(above[m.find_edge(0, 1)]);
  EXPECT_FALSE(above[m.find_edge(0, 2)]);
  const auto below = mark_below(m, err, 0.05);
  EXPECT_TRUE(below[m.find_edge(0, 3)]);
  EXPECT_FALSE(below[m.find_edge(0, 2)]);
}

// --- geometric marking ---------------------------------------------------------

TEST(GeometryMarking, SphereMarksOnlyInside) {
  const auto m = make_box_mesh(mesh::small_box(4));
  const mesh::Vec3 c{0.5, 0.5, 0.5};
  const auto marks = mark_sphere(m, c, 0.25);
  Index n = 0;
  for (Index e = 0; e < m.num_edges(); ++e) {
    if (!marks[e]) continue;
    ++n;
    const auto mid = mesh::midpoint(m.vertex(m.edge(e).v0).pos,
                                    m.vertex(m.edge(e).v1).pos);
    EXPECT_LT(norm(mid - c), 0.25);
  }
  EXPECT_GT(n, 0);
  EXPECT_LT(n, m.num_edges());
}

TEST(GeometryMarking, BoxAndSlab) {
  const auto m = make_box_mesh(mesh::small_box(4));
  const auto box = mark_box(m, {0, 0, 0}, {0.5, 1, 1});
  const auto slab = mark_slab(m, {0.5, 0.5, 0.5}, {1, 0, 0}, 0.1);
  Index nb = 0, ns = 0;
  for (Index e = 0; e < m.num_edges(); ++e) {
    nb += box[e];
    ns += slab[e];
  }
  EXPECT_GT(nb, 0);
  EXPECT_GT(ns, 0);
  EXPECT_LT(ns, nb);  // a thin slab marks less than half the box
}

TEST(GeometryMarking, RefineSphereGivesConformingLocalizedMesh) {
  auto m = make_box_mesh(mesh::small_box(3));
  MeshAdaptor ad(&m);
  ad.mark(mark_sphere(m, {0.5, 0.5, 0.5}, 0.3));
  ad.refine();
  m.validate();
  EXPECT_GT(m.num_active_elements(), 6 * 27);
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-9);
}

TEST(GeometryMarking, LongerThanMatchesLengths) {
  const auto m = make_box_mesh(mesh::small_box(2));
  const auto marks = mark_longer_than(m, 0.6);
  for (Index e = 0; e < m.num_edges(); ++e) {
    if (m.edge_elements(e).empty()) continue;
    EXPECT_EQ(static_cast<bool>(marks[e]), m.edge_length(e) > 0.6);
  }
}

TEST(Coarsen, CompactionMapTracksVertices) {
  auto m = single_tet();
  MeshAdaptor ad(&m);
  ad.mark(mark_edges(m, {0, 1, 2, 3, 4, 5}));
  ad.refine();
  std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 1);
  std::vector<Index> map;
  const auto stats = ad.coarsen(
      cm, [&](const std::vector<Index>& new_to_old) { map = new_to_old; });
  EXPECT_EQ(stats.vertex_new_to_old, map);
  ASSERT_EQ(map.size(), 4u);
  for (Index v = 0; v < 4; ++v) EXPECT_EQ(map[v], v);  // initial verts stable
}

}  // namespace
}  // namespace plum::adapt
