// Integration tests for the PLUM framework driver (Fig. 1 loop): the cycle
// runs end-to-end, repartitioning triggers on imbalance, the gain/cost gate
// behaves, remap-before beats remap-after on moved volume, and repeated
// cycles keep the solver load balanced.

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "mesh/box_mesh.hpp"
#include "solver/init_conditions.hpp"
#include "util/stats.hpp"

namespace plum::core {
namespace {

Framework make_framework(FrameworkOptions opt, int boxn = 4) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(boxn));
  Framework fw(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(fw.mesh(), fw.solver().solution(), blast);
  return fw;
}

TEST(Framework, CycleRefinesAndReports) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.10;
  auto fw = make_framework(opt);
  const auto rep = fw.cycle();
  EXPECT_GT(rep.elements_after, rep.elements_before);
  EXPECT_GT(rep.solver_work, 0);
  fw.mesh().validate();
}

TEST(Framework, LocalizedRefinementTriggersRepartition) {
  FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.08;  // blast-local -> strongly imbalanced
  opt.imbalance_trigger = 1.10;
  auto fw = make_framework(opt, 5);
  const auto rep = fw.cycle();
  EXPECT_TRUE(rep.evaluated_repartition);
  if (rep.accepted) {
    EXPECT_LT(rep.imbalance_new, rep.imbalance_old);
    EXPECT_GT(rep.gain_seconds, rep.cost_seconds);
  }
}

TEST(Framework, BalancedMarksDoNotRepartition) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.0;  // nothing marked -> perfectly balanced
  auto fw = make_framework(opt);
  const auto rep = fw.cycle();
  EXPECT_FALSE(rep.evaluated_repartition);
  EXPECT_FALSE(rep.accepted);
  EXPECT_EQ(rep.elements_after, rep.elements_before);
}

TEST(Framework, RemapBeforeMovesLessThanAfter) {
  FrameworkOptions base;
  base.nranks = 8;
  base.refine_fraction = 0.15;
  base.imbalance_trigger = 1.05;
  base.seed = 7;

  auto before = make_framework(base, 5);
  auto opt_after = base;
  opt_after.remap_before_subdivision = false;
  auto after = make_framework(opt_after, 5);

  const auto rb = before.cycle();
  const auto ra = after.cycle();
  ASSERT_TRUE(rb.evaluated_repartition);
  ASSERT_TRUE(ra.evaluated_repartition);
  // Identical decisions up to the moved weights: remap-before moves the
  // pre-subdivision trees, which is strictly less data.
  EXPECT_LT(rb.volume.total_elems, ra.volume.total_elems);
}

TEST(Framework, RepeatedCyclesKeepLoadBalanced) {
  FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.06;
  opt.imbalance_trigger = 1.15;
  auto fw = make_framework(opt, 4);
  const auto reports = fw.run(3);
  // After each accepted remap, the achieved (post-refinement) processor
  // loads are reasonably balanced.
  int accepted = 0;
  for (const auto& r : reports) accepted += r.accepted;
  EXPECT_GE(accepted, 1);
  EXPECT_LT(imbalance(fw.processor_loads()), 1.5);
  fw.mesh().validate();
}

TEST(Framework, MappersProduceSameGateDecisionShape) {
  // All three mappers must produce valid assignments inside the framework;
  // the optimal MWBG objective dominates the greedy one.
  for (auto kind : {MapperKind::kHeuristicGreedy, MapperKind::kOptimalMwbg,
                    MapperKind::kOptimalBmcm}) {
    FrameworkOptions opt;
    opt.nranks = 4;
    opt.refine_fraction = 0.12;
    opt.imbalance_trigger = 1.05;
    opt.mapper = kind;
    auto fw = make_framework(opt);
    const auto rep = fw.cycle();
    if (rep.evaluated_repartition) {
      EXPECT_GE(rep.volume.total_elems, 0);
    }
    fw.mesh().validate();
  }
}

TEST(Framework, FGreaterThanOnePartitionsFiner) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.partitions_per_proc = 2;  // F = 2
  opt.mapper = MapperKind::kHeuristicGreedy;
  opt.refine_fraction = 0.12;
  opt.imbalance_trigger = 1.05;
  auto fw = make_framework(opt, 4);
  const auto rep = fw.cycle();
  if (rep.evaluated_repartition) {
    // Processor loads remain defined and balanced-ish under F = 2.
    EXPECT_GT(rep.wmax_new, 0);
  }
  // All roots mapped to valid processors.
  for (Rank p : fw.root_partition()) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(Framework, SolutionInterpolatedAcrossCycles) {
  FrameworkOptions opt;
  opt.nranks = 2;
  opt.refine_fraction = 0.08;
  auto fw = make_framework(opt);
  fw.run(2);
  // Solution array tracks the grown mesh and stays physical.
  EXPECT_EQ(static_cast<Index>(fw.solver().solution().size()),
            fw.mesh().num_vertices());
  for (const auto& s : fw.solver().solution()) {
    EXPECT_GT(s[0], 0.0);  // density positive
  }
}

TEST(Framework, CoarseningPhaseShrinksQuietRegions) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.08;
  opt.coarsen_fraction = 0.0;
  auto grown = make_framework(opt, 3);
  grown.run(2);  // grow the mesh around the blast

  // Enable coarsening for a third cycle: quiet-region leaves collapse.
  FrameworkOptions opt2 = opt;
  opt2.coarsen_fraction = 0.5;
  auto fw = make_framework(opt2, 3);
  fw.run(2);
  const auto rep = fw.cycle();
  EXPECT_GT(rep.elements_coarsened, 0);
  fw.mesh().validate();
  // Solution stayed physical through compaction + re-refinement.
  for (const auto& s : fw.solver().solution()) EXPECT_GT(s[0], 0.0);
}

}  // namespace
}  // namespace plum::core
