// Property-based tests for mesh adaption: randomized marking / coarsening
// sweeps must preserve global invariants (validity, conservation of volume,
// conforming patterns, weight prediction exactness).

#include <gtest/gtest.h>

#include <vector>

#include "adapt/adaptor.hpp"
#include "mesh/box_mesh.hpp"
#include "util/rng.hpp"

namespace plum::adapt {
namespace {

struct SweepParams {
  std::uint64_t seed;
  double mark_fraction;
  int rounds;
};

class RandomAdaptionSweep : public ::testing::TestWithParam<SweepParams> {};

std::vector<char> random_leaf_marks(const mesh::TetMesh& m, Rng& rng,
                                    double fraction) {
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  for (Index e = 0; e < m.num_edges(); ++e) {
    if (!m.edge_elements(e).empty() && rng.uniform() < fraction) {
      marks[static_cast<std::size_t>(e)] = 1;
    }
  }
  return marks;
}

TEST_P(RandomAdaptionSweep, RefinePreservesInvariants) {
  const auto p = GetParam();
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  const double vol0 = m.total_volume();
  Rng rng(p.seed);
  MeshAdaptor ad(&m);

  for (int round = 0; round < p.rounds; ++round) {
    const auto marks = random_leaf_marks(m, rng, p.mark_fraction);
    const auto& res = ad.mark(marks);

    // Every active element's final pattern is one of the three valid types.
    for (Index t = 0; t < m.num_elements(); ++t) {
      const auto& el = m.element(t);
      if (el.alive && el.is_leaf()) {
        ASSERT_TRUE(classify_pattern(res.pattern[t]).valid);
      }
    }

    // Predicted weights are exact.
    const auto predicted = ad.predicted_weights();
    const Index predicted_elems = res.predicted_new_elements(m);
    ad.refine();
    const auto actual = m.root_weights();
    ASSERT_EQ(predicted.wcomp, actual.wcomp);
    ASSERT_EQ(predicted.wremap, actual.wremap);
    ASSERT_EQ(m.num_active_elements(), predicted_elems);

    m.validate();
    ASSERT_NEAR(m.total_volume(), vol0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomAdaptionSweep,
    ::testing::Values(SweepParams{1, 0.02, 3}, SweepParams{2, 0.10, 3},
                      SweepParams{3, 0.30, 2}, SweepParams{4, 0.60, 2},
                      SweepParams{5, 1.00, 2}, SweepParams{6, 0.005, 4}));

class RandomCoarsenSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCoarsenSweep, RefineThenRandomCoarsenStaysValid) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  const double vol0 = m.total_volume();
  Rng rng(GetParam());
  MeshAdaptor ad(&m);

  // Two refinement rounds with random marks.
  for (int round = 0; round < 2; ++round) {
    ad.mark(random_leaf_marks(m, rng, 0.3));
    ad.refine();
  }

  // Three rounds of random coarsening.
  for (int round = 0; round < 3; ++round) {
    std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 0);
    for (Index e = 0; e < m.num_edges(); ++e) {
      if (!m.edge_elements(e).empty() && rng.uniform() < 0.5) {
        cm[static_cast<std::size_t>(e)] = 1;
      }
    }
    ad.coarsen(cm);
    m.validate();
    ASSERT_NEAR(m.total_volume(), vol0, 1e-9);
    // Can never coarsen past the initial mesh.
    ASSERT_GE(m.num_active_elements(), m.num_initial_elements());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoarsenSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(AdaptionProperty, FullCoarsenAfterAnyRefinementRestoresInitial) {
  for (std::uint64_t seed : {100u, 200u, 300u}) {
    auto m = mesh::make_box_mesh(mesh::small_box(1));
    Rng rng(seed);
    MeshAdaptor ad(&m);
    ad.mark(random_leaf_marks(m, rng, 0.5));
    ad.refine();

    // Coarsen everything repeatedly until the mesh stops shrinking.
    for (int i = 0; i < 8; ++i) {
      std::vector<char> cm(static_cast<std::size_t>(m.num_edges()), 1);
      ad.coarsen(cm);
    }
    m.validate();
    EXPECT_EQ(m.num_active_elements(), m.num_initial_elements());
    EXPECT_EQ(m.num_vertices(), 8);
  }
}

TEST(AdaptionProperty, GrowthFactorBounded) {
  // A single refinement step grows the mesh by at most 8x (paper §5:
  // 1 < G < 8 for this refinement procedure).
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  Rng rng(7);
  MeshAdaptor ad(&m);
  const Index before = m.num_active_elements();
  ad.mark(random_leaf_marks(m, rng, 0.4));
  ad.refine();
  const Index after = m.num_active_elements();
  EXPECT_GE(after, before);
  EXPECT_LE(after, 8 * before);
}

TEST(AdaptionProperty, RefinementIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    auto m = mesh::make_box_mesh(mesh::small_box(2));
    Rng rng(seed);
    MeshAdaptor ad(&m);
    for (int round = 0; round < 2; ++round) {
      ad.mark(random_leaf_marks(m, rng, 0.2));
      ad.refine();
    }
    // Fingerprint: counts plus a vertex-position checksum.
    double checksum = 0;
    for (Index v = 0; v < m.num_vertices(); ++v) {
      const auto& p = m.vertex(v).pos;
      checksum += p.x * 3.0 + p.y * 7.0 + p.z * 13.0;
    }
    return std::make_tuple(m.num_vertices(), m.num_edges(),
                           m.num_active_elements(), checksum);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(std::get<2>(run_once(42)), std::get<2>(run_once(43)));
}

TEST(AdaptionProperty, ActiveEdgeCountMatchesLeafTopology) {
  // Euler-type invariant: every leaf references exactly 6 active edges and
  // every active edge is referenced by >= 1 leaf.
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  Rng rng(77);
  MeshAdaptor ad(&m);
  ad.mark(random_leaf_marks(m, rng, 0.25));
  ad.refine();
  std::vector<char> used(static_cast<std::size_t>(m.num_edges()), 0);
  for (Index t : m.active_elements()) {
    for (Index e : m.element(t).edges) used[static_cast<std::size_t>(e)] = 1;
  }
  Index active = 0;
  for (Index e = 0; e < m.num_edges(); ++e) {
    EXPECT_EQ(static_cast<bool>(used[static_cast<std::size_t>(e)]),
              !m.edge_elements(e).empty());
    active += used[static_cast<std::size_t>(e)];
  }
  EXPECT_EQ(active, m.num_active_edges());
}

TEST(AdaptionProperty, LevelsAreParentPlusOne) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  Rng rng(5);
  MeshAdaptor ad(&m);
  for (int round = 0; round < 2; ++round) {
    ad.mark(random_leaf_marks(m, rng, 0.3));
    ad.refine();
  }
  for (Index t = 0; t < m.num_elements(); ++t) {
    const auto& el = m.element(t);
    if (el.parent == kInvalidIndex) {
      EXPECT_EQ(el.level, 0);
    } else {
      EXPECT_EQ(el.level, m.element(el.parent).level + 1);
      EXPECT_EQ(el.root, m.element(el.parent).root);
    }
  }
}

}  // namespace
}  // namespace plum::adapt
