// Tests for the Euler solver substrate: dual metrics (geometric closure,
// volume partition), conservation, uniform-flow preservation, blast
// evolution, midpoint interpolation across adaption.

#include <gtest/gtest.h>

#include <cmath>

#include "adapt/adaptor.hpp"
#include "mesh/box_mesh.hpp"
#include "solver/euler.hpp"
#include "solver/init_conditions.hpp"

namespace plum::solver {
namespace {

TEST(DualMetrics, CellVolumesPartitionTotalVolume) {
  const auto m = mesh::make_box_mesh(mesh::small_box(3));
  const auto dm = build_dual_metrics(m);
  double sum = 0;
  for (double v : dm.cell_volume) sum += v;
  EXPECT_NEAR(sum, m.total_volume(), 1e-12);
}

TEST(DualMetrics, ClosedSurfacePerVertex) {
  // For every vertex the dual cell is closed: sum of signed interface areas
  // (interior, oriented outward from the vertex) plus boundary area is ~0.
  const auto m = mesh::make_box_mesh(mesh::small_box(2));
  const auto dm = build_dual_metrics(m);
  std::vector<mesh::Vec3> closure(static_cast<std::size_t>(m.num_vertices()));
  for (std::size_t k = 0; k < dm.edges.size(); ++k) {
    const auto& e = m.edge(dm.edges[k]);
    closure[static_cast<std::size_t>(e.v0)] += dm.edge_area[k];
    closure[static_cast<std::size_t>(e.v1)] -= dm.edge_area[k];
  }
  for (Index v = 0; v < m.num_vertices(); ++v) {
    closure[static_cast<std::size_t>(v)] +=
        dm.boundary_area[static_cast<std::size_t>(v)];
    EXPECT_NEAR(norm(closure[static_cast<std::size_t>(v)]), 0.0, 1e-12)
        << "vertex " << v;
  }
}

TEST(DualMetrics, BoundaryAreaTotalsBoxSurface) {
  const auto m = mesh::make_box_mesh(mesh::small_box(2));
  const auto dm = build_dual_metrics(m);
  double total = 0;
  mesh::Vec3 net{};
  for (const auto& a : dm.boundary_area) {
    total += norm(a);
    net += a;
  }
  // Unit box: outward normals cancel; per-vertex norms sum close to 6.0
  // (not exactly: vertex areas mix faces at edges/corners of the box).
  EXPECT_NEAR(net.x, 0.0, 1e-12);
  EXPECT_NEAR(net.y, 0.0, 1e-12);
  EXPECT_NEAR(net.z, 0.0, 1e-12);
  // Per-vertex norms under-count the 6.0 box surface because edge/corner
  // vertices sum normals of differently-oriented faces before taking norms.
  EXPECT_GT(total, 4.0);
  EXPECT_LT(total, 6.5);
}

TEST(DualMetrics, ActiveVerticesMatchLeafMesh) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  adapt::MeshAdaptor ad(&m);
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  marks[0] = 1;
  ad.mark(marks);
  ad.refine();
  const auto dm = build_dual_metrics(m);
  // Every vertex belongs to some leaf element in a conforming mesh.
  EXPECT_EQ(static_cast<Index>(dm.active_vertices().size()),
            m.num_vertices());
}

TEST(Euler, UniformFlowIsSteady) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  EulerSolver solver(&m);
  init_uniform(m, solver.solution());
  const auto before = solver.solution();
  solver.run(5);
  for (Index v = 0; v < m.num_vertices(); ++v) {
    for (int c = 0; c < kNumVars; ++c) {
      EXPECT_NEAR(solver.solution()[static_cast<std::size_t>(v)][c],
                  before[static_cast<std::size_t>(v)][c], 1e-12);
    }
  }
}

TEST(Euler, ConservesMassAndEnergyInClosedBox) {
  auto m = mesh::make_box_mesh(mesh::small_box(3));
  EulerSolver solver(&m);
  init_blast(m, solver.solution());
  const auto t0 = solver.totals();
  solver.run(20);
  const auto t1 = solver.totals();
  EXPECT_NEAR(t1[0], t0[0], 1e-10 * std::abs(t0[0]));  // mass
  EXPECT_NEAR(t1[4], t0[4], 1e-10 * std::abs(t0[4]));  // energy
}

TEST(Euler, BlastExpandsOutward) {
  auto m = mesh::make_box_mesh(mesh::small_box(4));
  EulerSolver solver(&m);
  BlastSpec spec;
  spec.radius = 0.3;  // cover several vertices of the coarse test mesh
  init_blast(m, solver.solution(), spec);
  // Observe mid-expansion: by ~step 40 the closed box has already
  // equilibrated through Rusanov dissipation.
  solver.run(12);
  // After expansion, density near the center drops below ambient and a
  // compression front moves out: max density exceeds 1.
  double min_rho = 1e30, max_rho = -1e30;
  for (const auto& s : solver.solution()) {
    min_rho = std::min(min_rho, s[0]);
    max_rho = std::max(max_rho, s[0]);
  }
  EXPECT_LT(min_rho, 0.99);
  EXPECT_GT(max_rho, 1.01);
  // Positivity held.
  EXPECT_GT(min_rho, 0.0);
}

TEST(Euler, CflStepIsPositiveAndBounded) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  EulerSolver solver(&m);
  init_blast(m, solver.solution());
  const auto st = solver.step();
  EXPECT_GT(st.dt, 0.0);
  EXPECT_LT(st.dt, 1.0);
  EXPECT_EQ(st.edge_flux_evals,
            2 * static_cast<std::int64_t>(solver.metrics().edges.size()));
}

TEST(Euler, MidpointInterpolationThroughAdaption) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  EulerSolver solver(&m);
  init_pulse(m, solver.solution());
  m.on_bisect = [&](Index e, Index mid) { solver.interpolate_midpoint(e, mid); };

  adapt::MeshAdaptor ad(&m);
  std::vector<char> all(static_cast<std::size_t>(m.num_edges()), 1);
  ad.mark(all);
  ad.refine();
  solver.rebuild();

  // Midpoint states are exact averages of their parents.
  int checked = 0;
  for (Index e = 0; e < m.num_edges(); ++e) {
    const auto& ed = m.edge(e);
    if (ed.mid == kInvalidIndex || ed.level != 0) continue;
    for (int c = 0; c < kNumVars; ++c) {
      EXPECT_NEAR(solver.solution()[static_cast<std::size_t>(ed.mid)][c],
                  0.5 * (solver.solution()[static_cast<std::size_t>(ed.v0)][c] +
                         solver.solution()[static_cast<std::size_t>(ed.v1)][c]),
                  1e-14);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
  // And the solver still runs stably on the refined mesh.
  solver.run(3);
  EXPECT_GT(solver.totals()[0], 0.0);
}

TEST(Euler, ErrorIndicatorConcentratesAtBlastFront) {
  auto m = mesh::make_box_mesh(mesh::small_box(5));
  EulerSolver solver(&m);
  BlastSpec spec;
  spec.radius = 0.3;
  init_blast(m, solver.solution(), spec);
  solver.run(8);
  const auto err =
      adapt::edge_error(m, solver.density_field(), 1.0);
  // The highest-error edge must sit near the blast radius, not at the walls.
  Index best = 0;
  for (Index e = 1; e < m.num_edges(); ++e) {
    if (err[static_cast<std::size_t>(e)] > err[static_cast<std::size_t>(best)]) {
      best = e;
    }
  }
  const auto mid = mesh::midpoint(m.vertex(m.edge(best).v0).pos,
                                  m.vertex(m.edge(best).v1).pos);
  const double r = norm(mid - mesh::Vec3{0.5, 0.5, 0.5});
  // The expanding front sits between the initial radius (0.3) and the box
  // corners (0.87) after 8 steps; the max-error edge must ride the front.
  EXPECT_GT(r, 0.2);
  EXPECT_LT(r, 0.7);
}

// --- second-order reconstruction ------------------------------------------------

TEST(SecondOrder, GradientsOfLinearFieldAreConsistent) {
  auto m = mesh::make_box_mesh(mesh::small_box(4));
  EulerSolver solver(&m);
  // Density varies linearly: rho = 1 + 2x - y + 0.5z.
  auto& u = solver.solution();
  for (Index v = 0; v < m.num_vertices(); ++v) {
    const auto& p = m.vertex(v).pos;
    u[static_cast<std::size_t>(v)][0] = 1.0 + 2.0 * p.x - p.y + 0.5 * p.z;
  }
  const auto grad = solver.nodal_gradients(u);
  // Interior vertices: Green-Gauss on the median dual is close to exact for
  // linear fields; allow discretization slack near 20%.
  int checked = 0;
  for (Index v = 0; v < m.num_vertices(); ++v) {
    if (m.vertex(v).boundary) continue;
    const auto& g = grad[static_cast<std::size_t>(v)][0];
    EXPECT_NEAR(g.x, 2.0, 0.4);
    EXPECT_NEAR(g.y, -1.0, 0.4);
    EXPECT_NEAR(g.z, 0.5, 0.4);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SecondOrder, UniformFlowStillSteady) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  EulerOptions opt;
  opt.second_order = true;
  EulerSolver solver(&m, opt);
  init_uniform(m, solver.solution());
  const auto before = solver.solution();
  solver.run(5);
  for (Index v = 0; v < m.num_vertices(); ++v) {
    for (int c = 0; c < kNumVars; ++c) {
      EXPECT_NEAR(solver.solution()[static_cast<std::size_t>(v)][c],
                  before[static_cast<std::size_t>(v)][c], 1e-12);
    }
  }
}

TEST(SecondOrder, ConservesAndStaysPositiveOnBlast) {
  auto m = mesh::make_box_mesh(mesh::small_box(4));
  EulerOptions opt;
  opt.second_order = true;
  EulerSolver solver(&m, opt);
  BlastSpec spec;
  spec.radius = 0.3;
  init_blast(m, solver.solution(), spec);
  const auto t0 = solver.totals();
  solver.run(15);
  const auto t1 = solver.totals();
  EXPECT_NEAR(t1[0], t0[0], 1e-10 * std::abs(t0[0]));
  EXPECT_NEAR(t1[4], t0[4], 1e-10 * std::abs(t0[4]));
  for (const auto& s : solver.solution()) {
    EXPECT_GT(s[0], 0.0);
    EXPECT_GT(solver.pressure(s), 0.0);
  }
}

TEST(SecondOrder, LessDissipativeThanFirstOrder) {
  // The pulse's density peak survives better under reconstruction.
  auto run_case = [](bool second) {
    auto m = mesh::make_box_mesh(mesh::small_box(5));
    EulerOptions opt;
    opt.second_order = second;
    EulerSolver solver(&m, opt);
    PulseSpec spec;
    spec.center = {0.5, 0.5, 0.5};
    init_pulse(m, solver.solution(), spec);
    solver.run(10);
    double peak = 0;
    for (const auto& s : solver.solution()) peak = std::max(peak, s[0]);
    return peak;
  };
  EXPECT_GT(run_case(true), run_case(false));
}

}  // namespace
}  // namespace plum::solver
