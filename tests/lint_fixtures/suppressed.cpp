// plum-lint fixture (lint-only, never compiled): every diagnostic here
// carries a justified suppression, so the file lints clean. Expected:
// 3 suppressed, 0 unsuppressed.
#include <unordered_map>

#include "runtime/engine.hpp"

namespace plum::fixture {

void suppressed(rt::Engine& eng) {
  // plum-lint: allow(unordered-iteration) -- lookup-only scratch index;
  // populated and probed by key, never iterated.
  std::unordered_map<Index, Index> scratch;
  int legacy_phase = 0;
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    (void)inbox;
    // plum-lint: allow(rank-guard-mutation) -- single-threaded test-only
    // harness; documents the legacy idiom on purpose.
    if (r == 0) ++legacy_phase;
    // plum-lint: allow(shared-accumulator) -- demo of a justified escape
    // hatch; real code should use a per-rank slot.
    legacy_phase += static_cast<int>(scratch.size());
    outbox.charge(1);
    return false;
  });
}

}  // namespace plum::fixture
