// plum-lint fixture (lint-only, never compiled): the historical PR-1 bug
// class, verbatim — rank 0 increments a captured phase counter inside a
// superstep body. Correct only when ranks run in sequential order; a data
// race under ParallelEngine. Expected: 2x rank-guard-mutation.
#include "runtime/engine.hpp"

namespace plum::fixture {

void bad_rank_guard(rt::Engine& eng, int nphases) {
  int phase = 0;
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    if (r == 0) ++phase;  // BAD: shared mutation behind a rank guard
    if (phase == 0) {
      outbox.send(0, 7, {});
    }
    if (r == 0) {
      phase = phase + static_cast<int>(inbox.messages().size());  // BAD too
    }
    return phase < nphases;
  });
}

}  // namespace plum::fixture
