// plum-lint fixture (lint-only, never compiled): banned nondeterminism
// sources — wall-clock and entropy calls vary run to run, and hashing a
// pointer keys on the allocation address (ASLR). Expected:
// 4x nondeterminism-source.
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>

namespace plum::fixture {

struct Node;

unsigned bad_nondeterminism(const Node* node) {
  std::srand(static_cast<unsigned>(time(nullptr)));    // BAD x2: srand, time
  unsigned seed = static_cast<unsigned>(std::rand());  // BAD: rand
  std::hash<Node*> addr_hash;                          // BAD: pointer hash
  return seed ^ static_cast<unsigned>(addr_hash(node));
}

}  // namespace plum::fixture
