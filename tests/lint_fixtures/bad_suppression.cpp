// plum-lint fixture (lint-only, never compiled): suppression hygiene.
// A suppression without a justification does not suppress (and is itself
// flagged), an unknown check name is flagged, and a suppression matching
// nothing is flagged stale. Expected: 2x bad-suppression,
// 1x unused-suppression, 1x nondeterminism-source (unsuppressed).
#include <cstdlib>

namespace plum::fixture {

int bad_suppression() {
  // plum-lint: allow(nondeterminism-source)
  int a = std::rand();  // stays flagged: no justification given

  // plum-lint: allow(determinism-vibes) -- no such check
  int b = 0;

  // plum-lint: allow(unordered-iteration) -- stale: nothing unordered here
  int c = 0;

  return a + b + c;
}

}  // namespace plum::fixture
