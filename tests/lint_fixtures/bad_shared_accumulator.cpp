// plum-lint fixture (lint-only, never compiled): captured accumulators
// written from a superstep without per-rank indexing — a data race under
// ParallelEngine, and even sequentially the result depends on rank
// execution order. The rank-indexed writes below must NOT be flagged.
// Expected: 3x shared-accumulator.
#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"

namespace plum::fixture {

void bad_shared_accumulator(rt::Engine& eng) {
  std::int64_t total = 0;
  double norm = 0.0;
  int rounds = 0;
  std::vector<std::int64_t> per_rank(static_cast<std::size_t>(eng.nranks()));
  eng.run([&](Rank rank, const rt::Inbox& inbox, rt::Outbox& outbox) {
    outbox.charge(1);
    total += static_cast<std::int64_t>(inbox.messages().size());  // BAD
    norm = norm + 0.5;                                            // BAD
    ++rounds;                                                     // BAD
    // OK: rank-owned slot, summed by the caller after the run.
    per_rank[static_cast<std::size_t>(rank)] += 1;
    return false;
  });
}

}  // namespace plum::fixture
