// plum-lint fixture (lint-only, never compiled): a rank-safe superstep
// program using the idioms the real code uses — per-rank slots, lambda
// locals, Outbox::step() instead of a shared phase counter, ordered maps,
// and rank guards that only *send*. Expected: 0 diagnostics.
#include <map>
#include <vector>

#include "runtime/engine.hpp"

namespace plum::fixture {

void clean_superstep(rt::Engine& eng,
                     const std::map<Index, std::vector<Index>>& shared) {
  const Rank P = eng.nranks();
  std::vector<std::int64_t> exchanged(static_cast<std::size_t>(P), 0);
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    // Locals are rank-private; mutate freely.
    std::vector<Index> batch;
    for (const auto& [edge, copies] : shared) {  // ordered: deterministic
      batch.push_back(edge);
    }
    // Per-rank slot of caller state: rank r owns exchanged[r].
    exchanged[static_cast<std::size_t>(r)] +=
        static_cast<std::int64_t>(batch.size());
    if (outbox.step() == 0) {  // logical time, not a captured counter
      for (Rank q = 0; q < P; ++q) {
        outbox.send_vec(q, 3, batch);
      }
      return true;
    }
    if (r == 0) {
      // A guarded *send* is fine — only mutations race.
      outbox.send(0, 4, {});
    }
    std::int64_t seen = 0;
    for (const auto& m : inbox.messages()) {
      seen += static_cast<std::int64_t>(m.bytes.size());
    }
    exchanged[static_cast<std::size_t>(r)] += seen;
    return false;
  });
}

}  // namespace plum::fixture
