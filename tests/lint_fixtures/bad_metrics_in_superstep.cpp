// plum-lint fixture (lint-only, never compiled): metric recording from
// inside a superstep lambda. obs::MetricsRegistry is host-side state: every
// rank calling add_sample / set_int on a captured registry races under
// ParallelEngine, and even sequentially the sample order depends on rank
// execution order. The rank-safe pattern — per-rank slots reduced and
// recorded after Engine::run returns — must NOT be flagged.
// Expected: 3x shared-accumulator.
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/engine.hpp"

namespace plum::fixture {

void bad_metrics_in_superstep(rt::Engine& eng,
                              obs::MetricsRegistry& registry) {
  const Rank P = eng.nranks();
  std::vector<std::int64_t> seen(static_cast<std::size_t>(P), 0);
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    outbox.charge(1);
    registry.add_sample("imbalance", 1.25);                        // BAD
    registry.add_sample_int(
        "msgs_seen", static_cast<std::int64_t>(inbox.messages().size()));  // BAD
    registry.set_int("last_rank", static_cast<std::int64_t>(r));   // BAD
    // OK: rank-owned slot; the caller reduces and records after the run.
    seen[static_cast<std::size_t>(r)] +=
        static_cast<std::int64_t>(inbox.messages().size());
    return false;
  });
  std::int64_t total = 0;
  for (Rank r = 0; r < P; ++r) total += seen[static_cast<std::size_t>(r)];
  registry.set_int("msgs_seen_total", total);  // OK: outside the superstep
}

}  // namespace plum::fixture
