// Raw-string literals of every encoding-prefix flavor placed before real
// violations. A prefixed raw string (`u8R"(...)"`) used to be lexed as
// identifier + ordinary string: content between embedded quotes leaked as
// tokens, stray braces desynced the brace tracker, and every check after
// the literal was silently skipped. Each function below ends in a genuine
// violation that must be reported.
#include "runtime/engine.hpp"

namespace rt = plum::rt;
using plum::Rank;

void plain_raw(rt::Engine& eng) {
  int acc1 = 0;
  const char* a = R"(unbalanced } brace and "quote" inside)";
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    acc1 += 1;  // flagged: shared-accumulator
    return false;
  }));
  (void)a;
}

void prefixed_raw(rt::Engine& eng) {
  int acc2 = 0;
  const char* b = u8R"(one " embedded quote { and braces)";
  const wchar_t* c = LR"(another " odd quote } here)";
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    acc2 += 1;  // flagged: shared-accumulator
    return false;
  }));
  (void)b;
  (void)c;
}

void delimited_raw(rt::Engine& eng) {
  int acc3 = 0;
  const char16_t* d = uR"json({"key": ")json";
  const char32_t* e = UR"x(trailing backslash \ and "quote)x";
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    if (r == 0) ++acc3;  // flagged: rank-guard-mutation
    return false;
  }));
  (void)d;
  (void)e;
}

void prefixed_ordinary(rt::Engine& eng) {
  int acc4 = 0;
  const wchar_t* w = L"wide \" escaped quote { brace";
  const char* u = u8"utf8 \\ backslash } brace";
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    acc4 += 1;  // flagged: shared-accumulator
    return false;
  }));
  (void)w;
  (void)u;
}
