// plum-lint fixture (lint-only, never compiled): wall-clock reads inside a
// superstep lambda. Rank programs must be pure functions of their inbox —
// the engine already measures per-rank step seconds at the barrier, so a
// Timer or a std::chrono ::now() call inside the lambda measures scheduler
// noise and poisons plum-path's deterministic counter view. The host-side
// Timer below must NOT be flagged.
// Expected: 2x wall-clock-in-superstep.
#include <chrono>

#include "runtime/engine.hpp"
#include "util/timer.hpp"

namespace plum::fixture {

void bad_wallclock_in_superstep(rt::Engine& eng) {
  eng.run([&](Rank rank, const rt::Inbox& inbox, rt::Outbox& outbox) {
    Timer step_timer;  // BAD: wall clock inside a rank program
    const auto t0 = std::chrono::steady_clock::now();  // BAD
    outbox.charge(static_cast<std::int64_t>(inbox.messages().size()));
    (void)rank;
    (void)t0;
    (void)step_timer;
    return false;
  });
}

// OK: timing the whole run from the host side of the barrier.
double host_side_timing(rt::Engine& eng) {
  Timer wall;
  eng.run([&](Rank, const rt::Inbox&, rt::Outbox& outbox) {
    outbox.charge(1);
    return false;
  });
  return wall.seconds();
}

}  // namespace plum::fixture
