// plum-lint fixture (lint-only, never compiled): flight-recorder writes
// from inside a superstep lambda. obs::FlightRecorder::record_event on the
// shared recorder is host-side state: ranks racing on the ring under
// ParallelEngine corrupt the event order, and even sequentially the ring
// contents depend on rank execution order. The rank-safe pattern — a
// per-rank obs::ScopeRecorder handle from FlightRecorder::handles(), indexed
// by the lambda's own rank — must NOT be flagged.
// Expected: 3x shared-accumulator.
#include <cstdint>
#include <vector>

#include "obs/scope.hpp"
#include "runtime/engine.hpp"

namespace plum::fixture {

void bad_scope_in_superstep(rt::Engine& eng, obs::FlightRecorder& recorder) {
  const Rank P = eng.nranks();
  auto handles = recorder.handles();
  int step = 0;
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    outbox.charge(1);
    recorder.record_event(step, 1);                                 // BAD
    recorder.record_event(
        step, static_cast<std::int64_t>(inbox.messages().size()));  // BAD
    recorder.record_event(step, static_cast<std::int64_t>(r));      // BAD
    // OK: rank-owned handle; each rank writes only its own ring.
    handles[static_cast<std::size_t>(r)].record_event(
        step, static_cast<std::int64_t>(inbox.messages().size()));
    return false;
  });
  ++step;
  // OK: outside the superstep the host may stamp the shared recorder.
  recorder.record_event(step, static_cast<std::int64_t>(P));
}

}  // namespace plum::fixture
