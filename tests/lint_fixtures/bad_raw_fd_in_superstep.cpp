// plum-lint fixture (lint-only, never compiled): bare POSIX fd calls
// inside a superstep lambda. All process-boundary IO belongs to the
// Transport at the barrier (runtime/frame.hpp's write_all / read_some);
// a rank program that reads or writes a file descriptor moves bytes
// outside the ledger, the conservation check, and the delivery-order
// contract. Member calls (`outbox.send`) and host-side fd use outside the
// lambda must NOT be flagged.
// Expected: 3x raw-fd-in-superstep.
#include <unistd.h>

#include "runtime/engine.hpp"

namespace plum::fixture {

void bad_raw_fd_in_superstep(rt::Engine& eng, int fd) {
  eng.run([&](Rank rank, const rt::Inbox& inbox, rt::Outbox& outbox) {
    char buf[16];
    (void)read(fd, buf, sizeof buf);       // BAD: bare fd read in a rank
    (void)::write(fd, buf, sizeof buf);    // BAD: global-scope fd write
    (void)send(fd, buf, sizeof buf, 0);    // BAD: socket send, not Outbox
    outbox.send((rank + 1) % 2, 0, {});    // OK: member call, the BSP API
    (void)inbox;
    return false;
  });
}

// OK: host-side fd use outside any superstep lambda.
void host_side_io(int fd) {
  char buf[4];
  (void)read(fd, buf, sizeof buf);
  (void)close(fd);
}

}  // namespace plum::fixture
