// Nested lambdas inside superstep bodies. A helper lambda's parameters,
// init-captures, and by-value capture copies are closure-local state —
// writing them is not a mutation of the enclosing superstep's captures.
// A nested *superstep* lambda is judged against its own rank variable,
// once, not re-scanned with the outer lambda's rank.
#include <vector>

#include "runtime/engine.hpp"

namespace rt = plum::rt;
using plum::Rank;

void helper_lambda(rt::Engine& eng) {
  std::vector<int> per_rank(8, 0);
  int shared = 0;
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    auto bump = [](int v, int& slot) {
      v += 1;    // helper parameter: not flagged
      slot = v;  // helper parameter: not flagged
      return v;
    };
    int mine = 0;
    per_rank[static_cast<std::size_t>(r)] = bump(1, mine);
    shared += mine;  // flagged: shared-accumulator
    return false;
  }));
}

void init_capture_lambda(rt::Engine& eng) {
  int shared2 = 0;
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    auto gen = [seed = 7, copy = shared2]() mutable {
      seed += 1;  // init-capture: not flagged
      copy += 2;  // by-value copy of shared2: not flagged
      return seed + copy;
    };
    shared2 += gen();  // flagged: shared-accumulator
    return false;
  }));
}

void nested_superstep(rt::Engine& eng) {
  std::vector<int> acc(8, 0);
  int shared3 = 0;
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    // An inner program built inside a superstep: its body is judged
    // against its own rank variable q, not the outer r.
    auto program = rt::make_program(
        [&](Rank q, const rt::Inbox& in2, rt::Outbox& out2) {
          acc[static_cast<std::size_t>(q)] += 1;  // q-owned row: not flagged
          shared3 += 1;  // flagged exactly once (inner pass only)
          return false;
        });
    (void)program;
    return false;
  }));
}
