// plum-lint fixture (lint-only, never compiled): range-for over an
// unordered_map inside a superstep body — the visit order decides the
// Outbox::send payload order, which breaks the bit-identical message
// stream guarantee. Expected: 3x unordered-iteration (two declarations +
// one range-for).
#include <unordered_map>
#include <unordered_set>

#include "runtime/engine.hpp"

namespace plum::fixture {

struct Mesh {
  std::unordered_map<Index, std::vector<Index>> shared;  // BAD declaration
};

void bad_unordered_iter(rt::Engine& eng, Mesh& mesh) {
  std::unordered_set<Index> dirty;  // BAD declaration
  eng.run([&](Rank r, const rt::Inbox& inbox, rt::Outbox& outbox) {
    (void)r;
    (void)inbox;
    std::vector<Index> payload;
    for (const auto& [edge, copies] : mesh.shared) {  // BAD: hash order
      payload.push_back(edge);
    }
    outbox.send_vec(0, 1, payload);
    return false;
  });
  (void)dirty;
}

}  // namespace plum::fixture
